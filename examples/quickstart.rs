//! Quickstart: generate optimized Winograd recipes, run a convolution
//! with them, verify against direct convolution, and peek at the
//! generated GPU kernel source.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use winograd_meta::prelude::*;

fn main() {
    // --- 1. A Winograd configuration: F(6,3), the paper's 3×3 sweet
    //        spot (α = 8).
    let spec = WinogradSpec::new(6, 3).expect("valid spec");
    let recipes =
        TransformRecipes::generate(spec, RecipeOptions::optimized()).expect("supported spec");
    println!("=== {spec} (alpha = {}) ===", spec.alpha());
    println!(
        "filter transform recipe : {:>3} ops  (naive matmul: {} ops)",
        recipes.filter.op_count().total(),
        OpCount::naive_matvec(spec.alpha(), spec.r).total_unfused(),
    );
    println!(
        "input  transform recipe : {:>3} ops  (naive matmul: {} ops)",
        recipes.input.op_count().total(),
        OpCount::naive_matvec(spec.alpha(), spec.alpha()).total_unfused(),
    );
    println!(
        "output transform recipe : {:>3} ops  (naive matmul: {} ops)",
        recipes.output.op_count().total(),
        OpCount::naive_matvec(spec.m, spec.alpha()).total_unfused(),
    );

    // --- 2. Run a real convolution with the recipes and check it.
    let desc = ConvDesc::new(3, 1, 1, 64, 1, 28, 28, 32);
    let mut rng = StdRng::seed_from_u64(42);
    let input = Tensor4::<f32>::random(1, 32, 28, 28, -1.0, 1.0, &mut rng);
    let filters = Tensor4::<f32>::random(64, 32, 3, 3, -1.0, 1.0, &mut rng);

    let wino =
        conv_winograd(&input, &filters, &desc, &WinogradConfig::new(6)).expect("winograd runs");
    let direct = conv_direct_f32(&input, &filters, &desc).expect("direct runs");
    let max_err = wino
        .data()
        .iter()
        .zip(direct.data())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("\n=== {desc} ===");
    println!("max |winograd - direct| = {max_err:.2e}  (FP32 rounding only)");

    // --- 3. Generate the GPU kernel plan for the same layer and show
    //        a fragment of the emitted CUDA source.
    let plan = generate_plan(
        &desc,
        PlanVariant::WinogradNonFused { m: 6 },
        &CodegenOptions::default(),
    )
    .expect("plan generates");
    println!("\n=== generated plan ===\n{plan}");
    let filt_kernel = &plan.kernels[0];
    let preview: String = filt_kernel
        .source
        .lines()
        .take(14)
        .collect::<Vec<_>>()
        .join("\n");
    println!("--- {} (first lines) ---\n{preview}\n...", filt_kernel.name);

    // --- 4. Estimate its runtime on the three modelled platforms.
    println!("\n=== modelled runtimes ===");
    for device in [gtx_1080_ti(), rx_580(), mali_g71()] {
        match estimate_plan_ms(&device, &plan) {
            Ok(ms) => println!("{:<22} {ms:.4} ms", device.name),
            Err(e) => println!("{:<22} cannot launch: {e}", device.name),
        }
    }
}
