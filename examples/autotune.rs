//! Performance portability via auto-tuning (§3.3): tune the same
//! convolution on the three modelled GPUs and show how the winning
//! configuration — variant, tile size, unrolling, blocking — changes
//! per platform, then persist the results in a tuning cache.
//!
//! ```sh
//! cargo run --release --example autotune
//! ```

use winograd_meta::prelude::*;
use winograd_meta::tuner::{evaluate_untuned, CacheEntry};

fn main() {
    // A GoogLeNet 3×3 layer from Table 4.
    let desc = ConvDesc::new(3, 1, 1, 256, 1, 14, 14, 128);
    println!("tuning {desc} ({:.2e} FLOPs)\n", desc.flops() as f64);

    let cache = TuningCache::new();
    for device in [gtx_1080_ti(), rx_580(), mali_g71()] {
        let report = tune(&desc, &device, 8).expect("something runs everywhere");
        let untuned = evaluate_untuned(&desc, &device).expect("reference runs");
        cache.put(&desc, device.name, &report.best);
        println!("=== {} ===", device.name);
        println!(
            "  evaluated {} points, rejected {} (cannot launch)",
            report.evaluated, report.rejected
        );
        println!(
            "  best: {:?} LU={} MNt={} MNb={}",
            report.best.point.variant,
            report.best.point.unroll,
            report.best.point.mnt,
            report.best.point.mnb
        );
        println!(
            "  {:.4} ms tuned vs {:.4} ms untuned ({:.2}x)",
            report.best.time_ms,
            untuned.time_ms,
            untuned.time_ms / report.best.time_ms
        );
        println!("  top variants:");
        for e in report.per_variant_best.iter().take(4) {
            println!("    {:>9.4} ms  {:?}", e.time_ms, e.point.variant);
        }
        println!();
    }

    let json = cache.to_json().expect("serializes");
    println!("=== tuning cache (shippable per-platform parameter sets) ===");
    println!("{json}");
    // Round-trip sanity.
    let reloaded = TuningCache::from_json(&json).expect("parses");
    let entry = reloaded.get(&desc, gtx_1080_ti().name).expect("present");
    let _ = CacheEntry::from_evaluation(&entry);
    println!("cache round-trip OK ({} entries)", reloaded.len());
}
