//! End-to-end ConvNet inference through the compute graph: build a
//! small network, run graph-level optimization (ReLU fusion), let the
//! variant selector pick engines per layer, and verify that every
//! engine combination computes the same result.
//!
//! ```sh
//! cargo run --release --example inference
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use winograd_meta::graph::{ComputeGraph, EngineChoice};
use winograd_meta::prelude::*;

fn build_net(engine_for: impl Fn(&ConvDesc) -> EngineChoice) -> ComputeGraph {
    let mut g = ComputeGraph::new();
    let mut rng = StdRng::seed_from_u64(7);
    let input = g.add_input();

    // conv1: 3×3, 8→16 channels on 32×32.
    let d1 = ConvDesc::new(3, 1, 1, 16, 1, 32, 32, 8);
    let c1 = g.add_conv(input, d1).expect("edge ok");
    g.set_weights(c1, Tensor4::random(16, 8, 3, 3, -0.5, 0.5, &mut rng))
        .expect("dims ok");
    g.set_engine(c1, engine_for(&d1));
    let r1 = g.add_relu(c1).expect("edge ok");
    let p1 = g.add_max_pool(r1, 2, 2).expect("edge ok");

    // conv2: 5×5, 16→24 channels on 16×16.
    let d2 = ConvDesc::new(5, 1, 2, 24, 1, 16, 16, 16);
    let c2 = g.add_conv(p1, d2).expect("edge ok");
    g.set_weights(c2, Tensor4::random(24, 16, 5, 5, -0.5, 0.5, &mut rng))
        .expect("dims ok");
    g.set_engine(c2, engine_for(&d2));
    let r2 = g.add_relu(c2).expect("edge ok");

    // conv3: strided 3×3 — the selector must fall back from Winograd.
    let d3 = ConvDesc::new(3, 2, 1, 32, 1, 16, 16, 24);
    let c3 = g.add_conv(r2, d3).expect("edge ok");
    g.set_weights(c3, Tensor4::random(32, 24, 3, 3, -0.5, 0.5, &mut rng))
        .expect("dims ok");
    g.set_engine(c3, engine_for(&d3));
    g
}

fn main() {
    let mut rng = StdRng::seed_from_u64(1);
    let input = Tensor4::<f32>::random(1, 8, 32, 32, -1.0, 1.0, &mut rng);

    println!("=== variant selection ===");
    for d in [
        ConvDesc::new(3, 1, 1, 16, 1, 32, 32, 8),
        ConvDesc::new(5, 1, 2, 24, 1, 16, 16, 16),
        ConvDesc::new(3, 2, 1, 32, 1, 16, 16, 24),
    ] {
        println!("  {d}  ->  {:?}", select_engine(&d));
    }

    // Reference: everything direct.
    let mut reference_net = build_net(|_| EngineChoice::Direct);
    let fused = reference_net.fuse_relu();
    println!("\nfused {fused} ReLU(s) into their convolutions");
    let t0 = Instant::now();
    let reference = reference_net.execute(&input).expect("direct net runs");
    let t_direct = t0.elapsed();

    // Production: selector-chosen engines (Winograd where applicable).
    let mut tuned_net = build_net(select_engine);
    tuned_net.fuse_relu();
    let t0 = Instant::now();
    let output = tuned_net.execute(&input).expect("tuned net runs");
    let t_tuned = t0.elapsed();

    assert_eq!(output.dims(), reference.dims());
    let max_err = output
        .data()
        .iter()
        .zip(reference.data())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);

    println!("\n=== results ===");
    println!("output tensor        : {:?}", output.dims());
    println!("direct engines       : {t_direct:?}");
    println!("selected engines     : {t_tuned:?}");
    println!("max engine deviation : {max_err:.2e} (FP32 rounding only)");
    assert!(max_err < 1e-2, "engines disagree beyond rounding");
    println!("\nall engines agree — inference OK");
}
