//! One meta-code, three GPU dialects: the same generated Winograd
//! filter-transform kernel emitted as CUDA-C, OpenCL C, and GLSL
//! compute (§3.2's bridging claim, live).
//!
//! ```sh
//! cargo run --release --example backends
//! ```

use winograd_meta::codegen::{gen_filter_transform_kernel, CodegenOptions};
use winograd_meta::ir::Backend;
use winograd_meta::prelude::*;

fn main() {
    let desc = ConvDesc::new(3, 1, 1, 8, 1, 14, 14, 4);
    let spec = WinogradSpec::new(2, 3).expect("valid spec");
    let recipes =
        TransformRecipes::generate(spec, RecipeOptions::optimized()).expect("supported spec");

    for backend in [Backend::Cuda, Backend::OpenCl, Backend::Vulkan] {
        let opts = CodegenOptions {
            backend,
            ..Default::default()
        };
        let kernel = gen_filter_transform_kernel(&desc, &recipes, &opts).expect("generates");
        println!("================ {backend} ================");
        // The head of the kernel shows the dialect differences; the
        // recipe body is identical math in every dialect.
        for line in kernel.source.lines().take(18) {
            println!("{line}");
        }
        println!("...\n");
    }

    println!(
        "All three variants come from one template + one recipe; only the\n\
         launch/indexing/buffer syntax differs — exactly the paper's point."
    );
}
