//! The symbolic pipeline, step by step — a executable rendition of the
//! paper's Figures 1 and 3 for F(2,3).
//!
//! ```sh
//! cargo run --release --example recipe_pipeline
//! ```

use winograd_meta::codegen::render_recipe_block;
use winograd_meta::prelude::*;
use winograd_meta::symbolic::{
    eliminate_common_subexpressions, lower_program, symbolic_matvec, RecipeOptions, Reg,
};

fn main() {
    let spec = WinogradSpec::new(2, 3).expect("valid spec");
    let points = table3_points(spec.alpha()).expect("alpha 4 supported");
    let mats = toom_cook_matrices(spec, &points).expect("construction succeeds");

    println!("=== Step 0: modified Toom-Cook matrices for {spec} ===");
    println!("points: {points:?}\n");
    println!("G (filter transform, alpha x r):\n{}", mats.g);
    println!("B^T (input transform, alpha x alpha):\n{}", mats.b_t);
    println!("A^T (output transform, m x alpha):\n{}", mats.a_t);

    println!("=== Step 1: symbolic product G * g (x0..x2 = one filter column) ===");
    let rows = symbolic_matvec(&mats.g);
    for (i, row) in rows.iter().enumerate() {
        println!("  Gg[{i}] = {row}");
    }

    println!("\n=== Step 2: common-subexpression elimination ===");
    let prog = eliminate_common_subexpressions(rows);
    for (k, def) in prog.defs.iter().enumerate() {
        println!("  t{k} = {def}");
    }
    for (i, row) in prog.rows.iter().enumerate() {
        println!("  Gg[{i}] = {row}");
    }

    println!("\n=== Step 3+4: factorization + lowering to a recipe ===");
    let recipe = lower_program(&prog, mats.g.cols(), &RecipeOptions::optimized());
    print!("{recipe}");
    let c = recipe.op_count();
    println!("=> {c}");

    println!("\n=== Step 5: splice into GPU source (column-wise loop body) ===");
    let block = render_recipe_block(&recipe, &|i| format!("g[{i}][j]"), &|o| {
        format!("Gg[{o}][j]")
    });
    println!("for (int j = 0; j < {}; j++) {block}", spec.r);

    println!("=== Exactness check: recipe(x) == G * x over rationals ===");
    let x: Vec<Rational> = vec![
        Rational::from_frac(3, 7),
        Rational::from_frac(-1, 2),
        Rational::from_frac(5, 3),
    ];
    let via_recipe = recipe.eval_exact(&x);
    let via_matrix = mats.g.matvec(&x).expect("shapes match");
    assert_eq!(via_recipe, via_matrix);
    println!(
        "identical: {:?}",
        via_recipe.iter().map(|r| r.to_string()).collect::<Vec<_>>()
    );

    // Show where the savings come from at the paper's sweet spot.
    println!("\n=== Scaling up: ops per 2-D transform, naive vs optimized ===");
    for (m, r) in [(2usize, 3usize), (4, 3), (6, 3), (4, 5), (2, 7)] {
        let spec = WinogradSpec::new(m, r).expect("valid");
        let opt = TransformRecipes::generate(spec, RecipeOptions::optimized()).expect("ok");
        let total = opt.total_transform_ops_2d();
        let naive = winograd_meta::transform::BaselineOps::for_spec(spec).total();
        println!(
            "  F({m},{r}) alpha={:<2}  optimized {:>5} ops   naive matmul {:>5} ops",
            spec.alpha(),
            total.total(),
            naive.total_unfused(),
        );
    }

    // Silence the unused-import lint for Reg, which is re-exported for
    // users who build custom renderers.
    let _ = Reg::In(0);
}
