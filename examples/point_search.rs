//! Polynomial point search (§3.1.1): greedily extend the base set
//! (0, 1, −1) from the candidate pool {a/b : |a| ≤ 9, 1 ≤ b ≤ 9} and
//! compare the result against the paper's Table-3 selection.
//!
//! The paper runs 10 000 error trials per candidate; this example uses
//! fewer so it finishes in seconds (`WINO_TRIALS` to override).
//!
//! ```sh
//! cargo run --release --example point_search
//! ```

use winograd_meta::prelude::*;
use winograd_meta::transform::{candidate_pool, measure_tile_error, search_points, SearchConfig};

fn main() {
    let trials: usize = std::env::var("WINO_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(400);

    let spec = WinogradSpec::new(4, 3).expect("valid spec"); // α = 6
    println!(
        "searching {} points for {spec} over a pool of {} candidates ({trials} trials each)\n",
        spec.points_needed(),
        candidate_pool().len()
    );

    let config = SearchConfig {
        trials,
        seed: 2024,
        max_candidates_per_step: None,
    };
    let result = search_points(spec, &config).expect("search completes");

    println!("selected points : {:?}", pts_str(&result.points));
    println!("median rel err  : {:.3e}", result.median_error);
    println!("evaluations     : {}", result.evaluations);

    let table = table3_points(spec.alpha()).expect("table entry exists");
    let table_err = measure_tile_error(spec, &table, trials, config.seed)
        .expect("table points evaluate")
        .median;
    println!("\npaper's points  : {:?}", pts_str(&table));
    println!("their median err: {table_err:.3e}");

    let ratio = result.median_error / table_err;
    println!(
        "\nsearched / paper error ratio: {ratio:.2} — {}",
        if ratio <= 1.05 {
            "the greedy search matches (or beats) the published selection"
        } else {
            "the published selection is better; raise WINO_TRIALS for a deeper search"
        }
    );
}

fn pts_str(points: &[Rational]) -> Vec<String> {
    points.iter().map(|p| p.to_string()).collect()
}
