#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 verification the
# roadmap requires (release build + full test suite). Run from the
# workspace root before committing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1: release build"
cargo build --release --offline

echo "== tier-1: test suite"
cargo test -q --offline

echo "CI OK"
