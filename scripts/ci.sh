#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 verification the
# roadmap requires (release build + full test suite). Run from the
# workspace root before committing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (workspace, warnings are errors, SAFETY comments required)"
# `undocumented_unsafe_blocks` is allow-by-default; deny it so every
# unsafe block/impl must carry a `// SAFETY:` rationale. wino-verify's
# own scanner backstops this (shims, build scripts, `unsafe fn`).
cargo clippy --workspace --all-targets --offline -- -D warnings \
  -D clippy::undocumented_unsafe_blocks

echo "== tier-1: release build"
cargo build --release --offline
# The later stages drive binaries from member crates (wino-verify,
# guard_drill, wino-serve-load, wino-bench-smoke); the root package
# build above does not produce those, so build the workspace too.
cargo build --release --offline --workspace

echo "== tier-1: test suite"
cargo test -q --offline

echo "== wino-verify: static verification (recipes, kernels, indexing, unsafe invariants)"
verify_out=$(./target/release/wino-verify)
echo "$verify_out" | tail -n 4
# The binary already exits nonzero on any failure (set -e catches it);
# these asserts additionally pin that each analysis actually ran and
# covered a nonempty surface — a stage that silently analyzed nothing
# would otherwise "pass".
assert_verify_line() {
  if ! grep -qE "$1" <<<"$verify_out"; then
    echo "FAIL: wino-verify output missing: $2" >&2
    grep -E "^(recipe|template|unsafe|compiled|index|safety|wino-verify)" <<<"$verify_out" >&2
    exit 1
  fi
}
# All six shipped compiled kernels (3 specs x input/output) plus the
# ten-kernel fresh-emitter sweep, proven — not just fingerprinted.
assert_verify_line '^compiled kernels: 16/16 proven' "16/16 compiled-kernel proofs"
# Shape x config x SIMD-level grid plus pack-model cross-checks, all clean.
assert_verify_line '^index analysis: ([1-9][0-9]*)/([1-9][0-9]*) schedule points proven' \
  "a nonempty index-analysis sweep"
if ! grep -E '^index analysis: ' <<<"$verify_out" | grep -qE ' ([0-9]+)/\1 '; then
  echo "FAIL: index analysis had failing schedule points:" >&2
  grep -E '^(index analysis|FAIL)' <<<"$verify_out" >&2
  exit 1
fi
# Every workspace unsafe site annotated; AVX2 pointer audit clean.
assert_verify_line '^safety lint: [1-9][0-9]* unsafe site\(s\) across [1-9][0-9]* files, 0 unannotated; avx2 pointer audit: 0 issue\(s\)' \
  "a clean safety lint over a nonempty unsafe-site set"
# The compiled-kernel table (wino-conv's build script) generates its
# recipes from exactly these specs with the optimized pipeline; assert
# the sweep proved each one, so only proven recipes are ever compiled.
for spec in "F(2,3)" "F(4,3)" "F(6,3)"; do
  for stage in input output; do
    if ! grep -q "$spec/$stage/optimized" <<<"$verify_out"; then
      echo "FAIL: wino-verify sweep did not cover $spec/$stage/optimized" >&2
      exit 1
    fi
  done
done
echo "   ok: compiled-kernel recipe inputs covered by the proof sweep"

echo "== probe smoke: figure6 with WINO_TRACE=summary"
# (plain grep, not -q: an early pipe close would SIGPIPE the binary)
WINO_TRACE=summary ./target/release/figure6 | grep "wino-probe phase summary" >/dev/null

echo "== probe smoke: figure6 with WINO_TRACE=json, trace must parse"
trace=results/ci-figure6.trace.json
WINO_TRACE="json:$trace" ./target/release/figure6 >/dev/null
python3 -m json.tool "$trace" >/dev/null
rm -f "$trace"

echo "== wino-guard: fault-injection drill matrix"
# Each drill run arms one WINO_FAULT site and asserts the exact probe
# counters the guard layer must produce. Injection is check-counted
# (never timed), so these values are deterministic.
drill() {
  local fault="$1"; shift
  local out
  out=$(WINO_FAULT="$fault" WINO_SIMD="${drill_simd:-auto}" ./target/release/guard_drill)
  for expect in "$@"; do
    if ! grep -qx "counter $expect" <<<"$out"; then
      echo "FAIL: WINO_FAULT='$fault' WINO_SIMD='${drill_simd:-auto}' expected 'counter $expect', got:" >&2
      grep "^counter " <<<"$out" >&2
      exit 1
    fi
  done
  echo "   ok: WINO_FAULT='${fault:-<unset>}' WINO_SIMD='${drill_simd:-auto}' -> $*"
}
drill "" \
  guard.demote.panic=0 guard.demote.guardrail=0 guard.served_by_fallback=0 \
  tuner.quarantine.panic=0 tuner.quarantine.timeout=0 \
  tuner.quarantine.nonfinite=0 tuner.cache.rebuilt=0 flight.dumps=0
drill "transform:nan"   guard.demote.guardrail=3 guard.served_by_fallback=2
drill "transform:panic" guard.demote.panic=3     guard.served_by_fallback=2
drill "gemm:nan"        guard.demote.guardrail=2 guard.served_by_fallback=1
drill "tuner:panic:3"   tuner.quarantine.panic=1
drill "tuner:timeout:2" tuner.quarantine.timeout=1
drill "tuner:nan:4"     tuner.quarantine.nonfinite=1
drill "cache:corrupt"   tuner.cache.rebuilt=1

echo "== wino-guard: drill spot-checks with the SIMD path pinned on"
# Same drill, dispatch level pinned to the compiled AVX2 kernels (on
# hosts without avx2+fma this diags and falls back to scalar, which
# still must pass). The clean run proves the f64 guardrail spot-checks
# accept the SIMD outputs at the documented tolerance (zero demotions);
# the fault runs prove injection and demotion still work on that path.
drill_simd=avx2
drill "" \
  guard.demote.panic=0 guard.demote.guardrail=0 guard.served_by_fallback=0
drill "transform:nan"   guard.demote.guardrail=3 guard.served_by_fallback=2
drill "gemm:nan"        guard.demote.guardrail=2 guard.served_by_fallback=1
unset drill_simd

echo "== wino-serve: load smoke (admission/batch accounting, fault fallback)"
# The smoke drill serves 8 sequential requests with coalescing off, so
# every serve.* counter is exact: nothing sheds at low load, each
# request is its own batch, and the filter transform runs once at
# registration (before the fault arms, so cached warm filters are
# never poisoned). Under an armed transform fault every full-chain
# batch demotes in the guard — and all 8 requests are still served.
serve_smoke() {
  local fault="$1"; shift
  local out
  out=$(WINO_FAULT="$fault" ./target/release/wino-serve-load --smoke)
  for expect in "$@"; do
    # Bare expects are counters; "gauge ..." expects match verbatim.
    local want="counter $expect"
    case "$expect" in gauge\ *) want="$expect";; esac
    if ! grep -qx "$want" <<<"$out"; then
      echo "FAIL: serve smoke WINO_FAULT='$fault' expected '$want', got:" >&2
      grep -E "^(counter|gauge) " <<<"$out" >&2
      exit 1
    fi
  done
  # Sequential requests never stack, so the depth gauge peaks at
  # exactly 1 and must drain to exactly 0 once the server shuts down.
  if ! grep -qx "gauge serve.queue_depth=0 peak=1" <<<"$out"; then
    echo "FAIL: serve smoke WINO_FAULT='$fault': serve.queue_depth did not drain to 0 (peak 1), got:" >&2
    grep "^gauge " <<<"$out" >&2
    exit 1
  fi
  echo "   ok: WINO_FAULT='${fault:-<unset>}' -> $* + queue_depth drained"
}
# conv.compiled_fallback=0 in both runs: the build-embedded SoA
# kernels' fingerprints match their recipes, so the compiled path
# never silently degrades to the interpreter (satellite of the
# compiled-kernel proof gate — drift is observable, and absent).
serve_smoke "" \
  serve.enqueued=8 serve.shed=0 serve.batches=8 serve.batched=0 \
  serve.executed=8 serve.deadline_demotions=0 conv.filter_transforms=1 \
  conv.compiled_fallback=0 guard.demote.guardrail=0 guard.served_by_fallback=0 \
  "gauge serve.breaker_state.smoke/conv=0 peak=0"
# Under a persistent transform fault the first three batches demote in
# the guard (unclean), the layer breaker trips on the third, and the
# remaining five requests ride the terminal fallback directly — still
# all served, but the poisoned Winograd head runs only 3 times, not 8.
serve_smoke "transform:nan" \
  serve.enqueued=8 serve.shed=0 serve.batches=8 serve.executed=8 \
  conv.filter_transforms=1 conv.compiled_fallback=0 \
  guard.demote.guardrail=3 guard.served_by_fallback=3 \
  serve.breaker.open=1 \
  "gauge serve.breaker_state.smoke/conv=2 peak=2"

echo "== wino-exec: network serving smoke (graph execution, arena accounting)"
# The network drill registers two zoo networks for whole-graph
# execution, warms each arena pool, then serves 8 steady-state requests
# submitted concurrently. The schedule-controlled counters are exact
# (10 network requests enqueued and executed, nothing shed); the binary
# itself asserts the host-dependent ones (filter transforms once per
# Winograd conv, planner peak under the naive activation layout) and
# prints `ok` lines CI matches verbatim. Under a persistent transform
# fault every request must still serve via the per-conv guard fallback,
# with demotions observed and still zero graph-level steady allocations.
net_smoke() {
  local fault="$1"; shift
  local out
  out=$(WINO_FAULT="$fault" ./target/release/wino-serve-load --net-smoke)
  for expect in "$@"; do
    # Bare expects are counters; "net-smoke: ..." expects match verbatim.
    local want="counter $expect"
    case "$expect" in net-smoke:*) want="$expect";; esac
    if ! grep -qx "$want" <<<"$out"; then
      echo "FAIL: net smoke WINO_FAULT='$fault' expected '$want', got:" >&2
      grep -E "^(counter|gauge|net-smoke:) " <<<"$out" >&2
      exit 1
    fi
  done
  # The submission queue must always drain once the server shuts down.
  if ! grep -q "^gauge serve.queue_depth=0 peak=" <<<"$out"; then
    echo "FAIL: net smoke WINO_FAULT='$fault': serve.queue_depth did not drain to 0, got:" >&2
    grep "^gauge " <<<"$out" >&2
    exit 1
  fi
  echo "$out"
}
# Clean run: full accounting, zero demotions, zero steady allocations.
net_smoke "" \
  serve.net_enqueued=10 serve.net_executed=10 serve.enqueued=10 \
  serve.executed=10 serve.shed=0 serve.deadline_demotions=0 \
  serve.networks_registered=2 serve.net_degraded=0 \
  exec.allocs_steady=0 exec.degraded_runs=0 \
  guard.demote.guardrail=0 guard.served_by_fallback=0 \
  "net-smoke: steady served=8/8" \
  "net-smoke: demotions=0" \
  "net-smoke: planner peak under naive activations: ok" \
  "net-smoke: warm transforms once per winograd conv: ok" >/dev/null
echo "   ok: clean network serving — exact accounting, zero steady allocations"
# Poisoned transforms: all 10 requests still serve (guard demotes each
# Winograd conv to its fallback), and the steady phase still allocates
# nothing at graph level.
net_fault_out=$(net_smoke "transform:nan" \
  serve.net_enqueued=10 serve.net_executed=10 serve.shed=0 \
  exec.allocs_steady=0 \
  "net-smoke: steady served=8/8" \
  "net-smoke: planner peak under naive activations: ok" \
  "net-smoke: warm transforms once per winograd conv: ok")
if ! grep -qE "^net-smoke: demotions=[1-9][0-9]*$" <<<"$net_fault_out"; then
  echo "FAIL: net smoke under transform:nan demoted nothing:" >&2
  grep "^net-smoke: " <<<"$net_fault_out" >&2
  exit 1
fi
echo "   ok: poisoned transforms -> all requests served via guard fallback"

echo "== wino-serve: chaos drill (supervision, containment, exactly-once)"
# Each run arms one serve-site fault against 12 sequential requests and
# asserts the exact supervision counters, the health line, and the
# outcome tally. Faults are check-counted (never timed), so the values
# are deterministic; the queue-depth gauge must always drain to 0.
chaos() {
  local fault="$1"; shift
  local out
  out=$(WINO_FAULT="$fault" ./target/release/chaos_drill)
  for expect in "$@"; do
    # Bare expects are counters; "gauge ...", "health ...", and
    # "drill: ..." expects match verbatim.
    local want="counter $expect"
    case "$expect" in gauge\ *|health\ *|drill:*) want="$expect";; esac
    if ! grep -qx "$want" <<<"$out"; then
      echo "FAIL: chaos drill WINO_FAULT='$fault' expected '$want', got:" >&2
      grep -E "^(counter|gauge|health|drill:) " <<<"$out" >&2
      exit 1
    fi
  done
  if ! grep -qx "gauge serve.queue_depth=0 peak=1" <<<"$out"; then
    echo "FAIL: chaos drill WINO_FAULT='$fault': queue depth did not drain, got:" >&2
    grep "^gauge " <<<"$out" >&2
    exit 1
  fi
  echo "   ok: WINO_FAULT='${fault:-<unset>}' -> supervision counters exact"
}
chaos "" \
  serve.enqueued=12 serve.executed=12 serve.internal_errors=0 \
  serve.batch_panics=0 serve.executor_deaths=0 serve.executor_restarts=0 \
  serve.scheduler_deaths=0 serve.responses_dropped=0 serve.shed=0 \
  "drill: outcomes ok=12 internal=0 refused=0 shed=0" \
  "health status=Healthy scheduler_alive=true executors_alive=1 restarts=0 batch_panics=0"
# The acceptance drill: kill the sole executor mid-batch. The dead
# batch's member fails terminally (Internal), the supervisor respawns
# the executor, and the remaining 11 requests are served by the
# replacement.
chaos "serve_exec:panic:1" \
  serve.enqueued=12 serve.executed=11 serve.internal_errors=1 \
  serve.executor_deaths=1 serve.executor_restarts=1 serve.batch_panics=0 \
  "drill: outcomes ok=11 internal=1 refused=0 shed=0" \
  "health status=Degraded scheduler_alive=true executors_alive=1 restarts=1 batch_panics=0"
# Kill *every* executor incarnation: the restart budget (8) runs out,
# the supervisor declares the server failed, and everything still
# pending resolves terminally (counts beyond the budget race the
# declaration, so only the budget itself is asserted).
chaos "serve_exec:panic" \
  serve.executed=0 serve.executor_deaths=9 serve.executor_restarts=8 \
  "health status=Failed scheduler_alive=true executors_alive=0 restarts=8 batch_panics=0"
# Scheduler death is unrecoverable by design: the one parked request
# fails terminally, admission closes, 11 submissions are refused.
chaos "serve_sched:panic:1" \
  serve.enqueued=1 serve.executed=0 serve.scheduler_deaths=1 \
  serve.internal_errors=1 \
  "drill: outcomes ok=0 internal=1 refused=11 shed=0" \
  "health status=Failed scheduler_alive=false executors_alive=0 restarts=0 batch_panics=0"
# A scheduler stall only delays dispatch — everything is still served.
chaos "serve_sched:stall:3" \
  serve.enqueued=12 serve.executed=12 fault.injected.serve_sched=1 \
  "drill: outcomes ok=12 internal=0 refused=0 shed=0" \
  "health status=Healthy scheduler_alive=true executors_alive=1 restarts=0 batch_panics=0"
# A dropped response maps to a terminal Internal at the waiter (closed
# channel), never a hang; the batch itself executed.
chaos "serve_resp:drop:1" \
  serve.enqueued=12 serve.executed=12 serve.responses_dropped=1 \
  serve.internal_errors=0 \
  "drill: outcomes ok=11 internal=1 refused=0 shed=0" \
  "health status=Healthy scheduler_alive=true executors_alive=1 restarts=0 batch_panics=0"
# A panic inside response delivery is contained by the executor: the
# batch fails its members, the executor itself survives (no respawn).
chaos "serve_resp:panic:1" \
  serve.enqueued=12 serve.executed=12 serve.batch_panics=1 \
  serve.executor_restarts=0 \
  "drill: outcomes ok=11 internal=1 refused=0 shed=0" \
  "health status=Degraded scheduler_alive=true executors_alive=1 restarts=0 batch_panics=1"

echo "== wino-serve: breaker trip-and-recover smoke"
# Three poisoned batches trip the layer breaker (threshold 3), an
# open-state request rides the terminal fallback, then the fault heals,
# the cool-down elapses, and one half-open probe closes the breaker.
breaker_out=$(WINO_FAULT=transform:nan ./target/release/chaos_drill --breaker-smoke)
for want in \
  "drill: breaker tripped on poison and recovered after cool-down" \
  "counter serve.breaker.open=1" \
  "counter serve.breaker.half_open=1" \
  "counter serve.breaker.close=1" \
  "counter guard.demote.guardrail=3" \
  "counter serve.executed=6" \
  "gauge serve.breaker_state.chaos/conv=0 peak=2" \
  "gauge serve.queue_depth=0 peak=1"; do
  if ! grep -qx "$want" <<<"$breaker_out"; then
    echo "FAIL: breaker smoke expected '$want', got:" >&2
    grep -E "^(counter|gauge|drill:) " <<<"$breaker_out" >&2
    exit 1
  fi
done
echo "   ok: breaker open -> fallback -> half-open probe -> closed"

echo "== wino-serve: seeded chaos schedule (randomized-but-reproducible)"
# Concurrent submitters under a seeded fault schedule: batching makes
# the ok/internal split timing-dependent, so only the invariants are
# asserted — the drill binary itself enforces exactly-once resolution,
# bit-identical Ok outputs, and a drained queue, and exits nonzero on
# any violation.
./target/release/chaos_drill --seed 42 | grep -x "drill: outcomes ok=[0-9]* internal=[0-9]* refused=0 shed=0" >/dev/null
echo "   ok: seed 42 schedule resolved every submission exactly once"

echo "== wino-serve: load harness chaos mode"
# The load harness's --chaos mode drives the alexnet registry under a
# seeded per-wave fault schedule and reports shed/internal rates into
# results/serve_load.txt.
chaos_load=$(./target/release/wino-serve-load --chaos 11 --requests 12 --concurrency 4)
for pat in \
  "serve-load: health status=" \
  "serve-load: mode=chaos(seed=11,c=4) served="; do
  if ! grep -qF "$pat" <<<"$chaos_load"; then
    echo "FAIL: chaos load run missing '$pat', got:" >&2
    echo "$chaos_load" >&2
    exit 1
  fi
done
grep -qF "mode=chaos(seed=11,c=4)" results/serve_load.txt
echo "   ok: chaos load run reported shed/internal rates into results/"

echo "== wino-serve: load harness network mode"
# The --net closed loop pushes whole-network requests through the graph
# executor; the report must land in results/ tagged with the network.
net_load=$(./target/release/wino-serve-load --net --network inception-3a-3b \
  --requests 8 --concurrency 2)
if ! grep -qF "mode=net-closed-loop(c=2) served=8" <<<"$net_load"; then
  echo "FAIL: network load run did not serve all 8 requests, got:" >&2
  echo "$net_load" >&2
  exit 1
fi
grep -qF "net:inception-3a-3b mode=net-closed-loop(c=2)" results/serve_load.txt
echo "   ok: network closed loop served and reported into results/"

echo "== wino-telemetry: metrics smoke (histograms + Prometheus snapshot)"
# The same 8-request smoke with WINO_METRICS armed: every request must
# show up in the serve histograms (queue_wait/execute/e2e count exactly
# 8 — one record per request, nothing double-counted, nothing lost),
# and the shutdown emission must land the matching lines in the
# Prometheus-style text file.
prom=results/ci-metrics.prom
rm -f "$prom"
metrics_out=$(WINO_METRICS="text:$prom" ./target/release/wino-serve-load --smoke)
for h in serve.queue_wait serve.execute serve.e2e; do
  if ! grep -q "^hist $h count=8 " <<<"$metrics_out"; then
    echo "FAIL: metrics smoke: expected 'hist $h count=8 ...', got:" >&2
    grep "^hist " <<<"$metrics_out" >&2
    exit 1
  fi
done
if [ ! -f "$prom" ]; then
  echo "FAIL: metrics smoke: WINO_METRICS=text:$prom wrote no snapshot" >&2
  exit 1
fi
for line in "serve_queue_wait_count 8" "serve_enqueued 8" "serve_executed 8"; do
  if ! grep -qx "$line" "$prom"; then
    echo "FAIL: metrics smoke: expected '$line' in $prom, got:" >&2
    cat "$prom" >&2
    exit 1
  fi
done
rm -f "$prom"
echo "   ok: serve histograms count all 8 requests; Prometheus snapshot matches"

echo "== wino-probe: flight recorder drill (incident dump on demotion)"
# Re-run the transform:nan drill with telemetry armed: each of the 3
# guardrail demotions must dump a flight file that parses, names the
# demotion reason, and contains the recent conv.* span history — the
# context an incident responder actually needs.
flight_dir=results/ci-flight
rm -rf "$flight_dir"
flight_out=$(WINO_METRICS=summary WINO_FLIGHT_DIR="$flight_dir" WINO_FAULT=transform:nan \
  ./target/release/guard_drill)
if ! grep -qx "counter flight.dumps=3" <<<"$flight_out"; then
  echo "FAIL: flight drill: expected 'counter flight.dumps=3', got:" >&2
  grep "^counter " <<<"$flight_out" >&2
  exit 1
fi
dumps=("$flight_dir"/flight-*.json)
if [ "${#dumps[@]}" -ne 3 ]; then
  echo "FAIL: flight drill: expected 3 dump files in $flight_dir, found ${#dumps[@]}" >&2
  exit 1
fi
for dump in "${dumps[@]}"; do
  python3 -m json.tool "$dump" >/dev/null
  if ! grep -q '"guard.demote.guardrail"' "$dump"; then
    echo "FAIL: flight dump $dump does not carry the demotion reason" >&2
    exit 1
  fi
  if ! grep -q '"conv\.' "$dump"; then
    echo "FAIL: flight dump $dump has no conv.* span context" >&2
    exit 1
  fi
done
rm -rf "$flight_dir"
echo "   ok: 3 demotions -> 3 parseable dumps with reason + conv.* span context"

echo "== bench smoke: head perf artifact (BENCH_head.json)"
# One zoo layer timed scalar-interpreted vs compiled-SIMD in the same
# process, per-phase GFLOP/s from probe spans (split cold/steady), and
# short closed-loop serve runs — per-layer and whole-network through
# the graph executor — whose histogram percentiles are cross-checked
# in-process against exact sorted-array ranks.
WINO_SIMD=auto ./target/release/wino-bench-smoke --out BENCH_head.json
python3 -m json.tool BENCH_head.json >/dev/null
speedup=$(python3 -c "import json; print(json.load(open('BENCH_head.json'))['zoo_layer']['speedup'])")
if ! python3 -c "import sys; sys.exit(0 if float('$speedup') >= 1.0 else 1)"; then
  echo "FAIL: SIMD+compiled path slower than scalar interpreted (speedup=$speedup)" >&2
  exit 1
fi
echo "   ok: BENCH_head.json written (zoo-layer speedup ${speedup}x)"

echo "== bench compare: perf-trajectory gate (head vs committed baseline)"
# First prove the gate itself can fail: the committed regressed fixture
# (SIMD fell back to scalar, sgemm at a tenth, serve p99 8x) must trip
# it. A gate that cannot fail is not a gate.
if ./target/release/wino-bench-compare \
    crates/bench/fixtures/cmp_baseline.json crates/bench/fixtures/cmp_regressed.json \
    >/dev/null 2>&1; then
  echo "FAIL: bench-compare passed the regressed fixture — the gate is broken" >&2
  exit 1
fi
./target/release/wino-bench-compare \
  crates/bench/fixtures/cmp_baseline.json crates/bench/fixtures/cmp_baseline.json >/dev/null
echo "   ok: gate trips on the regressed fixture, passes the identical one"
./target/release/wino-bench-compare BENCH_baseline.json BENCH_head.json

echo "CI OK"
