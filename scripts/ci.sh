#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 verification the
# roadmap requires (release build + full test suite). Run from the
# workspace root before committing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1: release build"
cargo build --release --offline

echo "== tier-1: test suite"
cargo test -q --offline

echo "== wino-verify: static verification (recipes, templates, unsafe invariants)"
./target/release/wino-verify

echo "== probe smoke: figure6 with WINO_TRACE=summary"
# (plain grep, not -q: an early pipe close would SIGPIPE the binary)
WINO_TRACE=summary ./target/release/figure6 | grep "wino-probe phase summary" >/dev/null

echo "== probe smoke: figure6 with WINO_TRACE=json, trace must parse"
trace=results/ci-figure6.trace.json
WINO_TRACE="json:$trace" ./target/release/figure6 >/dev/null
python3 -m json.tool "$trace" >/dev/null
rm -f "$trace"

echo "CI OK"
