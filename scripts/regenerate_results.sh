#!/usr/bin/env bash
# Regenerates every table/figure output under results/ (release build).
# WINO_TRIALS controls accuracy-experiment trial counts (paper: 10000).
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
TRIALS="${WINO_TRIALS:-2000}"
for bin in table1 table2 table4 figure5 figure6; do
  echo ">> $bin"
  cargo run -q --release -p wino-bench --bin "$bin" > "results/$bin.txt"
done
for bin in table3 figure4; do
  echo ">> $bin (WINO_TRIALS=$TRIALS)"
  WINO_TRIALS="$TRIALS" cargo run -q --release -p wino-bench --bin "$bin" > "results/$bin.txt"
done
for bin in figure7 figure8 figure9 network; do
  echo ">> $bin (tuning sweep)"
  cargo run -q --release -p wino-bench --bin "$bin" > "results/$bin.txt"
done
echo "done — outputs in results/"
