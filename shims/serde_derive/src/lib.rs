//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the offline
//! serde shim. Supports the shapes this workspace derives on: plain
//! non-generic structs with named fields. Written against `proc_macro`
//! directly (no `syn`/`quote` — this build environment is offline).

use proc_macro::{Delimiter, Spacing, TokenStream, TokenTree};

/// Parsed struct: name plus named-field identifiers in order.
struct StructShape {
    name: String,
    fields: Vec<String>,
}

/// Extracts the struct name and field names from a derive input.
/// Panics (surfacing as a compile error) on unsupported shapes.
fn parse_struct(input: TokenStream) -> StructShape {
    let mut tokens = input.into_iter().peekable();
    let mut name = None;

    // Skip attributes/visibility until the `struct` keyword, then take
    // the name and the brace-delimited field group.
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(id) = &tt {
            if id.to_string() == "struct" {
                match tokens.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    other => panic!("serde shim derive: expected struct name, got {other:?}"),
                }
                break;
            }
            if id.to_string() == "enum" || id.to_string() == "union" {
                panic!("serde shim derive supports only structs with named fields");
            }
        }
    }
    let name = name.expect("serde shim derive: no `struct` keyword found");

    let body = tokens
        .find_map(|tt| match tt {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde shim derive does not support tuple structs")
            }
            _ => None,
        })
        .expect("serde shim derive: struct has no braced field list");

    // Walk the field list: the ident immediately before a top-level
    // `:` (Alone spacing, i.e. not `::`) is a field name. Generic
    // argument commas are irrelevant because we never parse types.
    let mut fields = Vec::new();
    let mut prev_ident: Option<String> = None;
    let mut angle_depth = 0i32;
    let mut iter = body.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Skip the attribute group that follows.
                let _ = iter.next();
            }
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p)
                if p.as_char() == ':' && p.spacing() == Spacing::Alone && angle_depth == 0 =>
            {
                if let Some(field) = prev_ident.take() {
                    fields.push(field);
                }
            }
            TokenTree::Punct(p) if p.as_char() == ':' && p.spacing() == Spacing::Joint => {
                // `::` — consume the second colon.
                let _ = iter.next();
            }
            TokenTree::Ident(id) => prev_ident = Some(id.to_string()),
            _ => {}
        }
    }

    StructShape { name, fields }
}

/// Derives `serde::Serialize` (shim trait `to_value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_struct(input);
    let pushes: String = shape
        .fields
        .iter()
        .map(|f| {
            format!(
                "fields.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
            )
        })
        .collect();
    let code = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                     ::std::vec::Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(fields)\n\
             }}\n\
         }}\n",
        name = shape.name,
    );
    code.parse().expect("serde shim derive: generated code")
}

/// Derives `serde::Deserialize` (shim trait `from_value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_struct(input);
    let inits: String = shape
        .fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value(\
                     v.get(\"{f}\").ok_or_else(|| ::serde::DeError::missing(\"{f}\"))?\
                 )?,\n"
            )
        })
        .collect();
    let code = format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 if !matches!(v, ::serde::Value::Object(_)) {{\n\
                     return ::std::result::Result::Err(::serde::DeError::custom(\"expected object\"));\n\
                 }}\n\
                 ::std::result::Result::Ok({name} {{\n\
                     {inits}\
                 }})\n\
             }}\n\
         }}\n",
        name = shape.name,
    );
    code.parse().expect("serde shim derive: generated code")
}
