//! Offline stand-in for the subset of `proptest` 1.x this workspace
//! uses: the `proptest!` macro, `Strategy` with
//! `prop_map`/`prop_flat_map`/`prop_filter`/`prop_filter_map`,
//! `any::<T>()`, range and tuple strategies, regex-subset string
//! strategies, `collection::vec`, `Just`, `prop_oneof!`, and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Semantics: random sampling without shrinking. A failing case panics
//! with the generating seed so it can be replayed via
//! `PROPTEST_SEED`. Rejections (`prop_assume!`, filter misses) retry
//! the case up to a bounded budget, like real proptest.

use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------

/// Deterministic SplitMix64 stream used to drive all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, bound)`.
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------

/// A generator of values of one type. `sample` returns `None` when the
/// draw is rejected (filter miss); the runner retries the whole case.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then samples the strategy `f`
    /// builds from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `pred`.
    fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        let _ = whence.into();
        Filter { inner: self, pred }
    }

    /// Simultaneously filters and maps; `None` rejects the draw.
    fn prop_filter_map<O, F>(self, whence: impl Into<String>, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        let _ = whence.into();
        FilterMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.sample(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> Option<S2::Value> {
        (self.f)(self.inner.sample(rng)?).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.sample(rng).filter(|v| (self.pred)(v))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.sample(rng).and_then(&self.f)
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

// ---------------------------------------------------------------------
// Numeric range strategies
// ---------------------------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                Some((self.start as i128 + r as i128) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                Some((lo as i128 + r as i128) as $t)
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                Some(self.start + (self.end - self.start) * rng.unit_f64() as $t)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

// ---------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                wide as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Mostly tame finite values; occasional zero. (Real proptest
        // skews similarly; nothing in this workspace asks for NaN.)
        match rng.below(10) {
            0 => 0.0,
            _ => (rng.unit_f64() - 0.5) * 2e6,
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

// ---------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.sample(rng)?,)+))
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

// ---------------------------------------------------------------------
// Regex-subset string strategies
// ---------------------------------------------------------------------

/// `&str` literals act as regex strategies. Supported subset: a
/// sequence of atoms, each a literal character or a `[...]` class
/// (with `a-z` ranges; a trailing `-` is literal), optionally
/// quantified by `{n}` or `{m,n}`.
impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> Option<String> {
        Some(sample_regex_subset(self, rng))
    }
}

fn sample_regex_subset(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // Parse one atom: a char class or a literal.
        let alphabet: Vec<char> = if chars[i] == '[' {
            let end = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated char class in `{pattern}`"));
            let class = &chars[i + 1..end];
            i = end + 1;
            expand_class(class)
        } else {
            let c = if chars[i] == '\\' && i + 1 < chars.len() {
                i += 1;
                chars[i]
            } else {
                chars[i]
            };
            i += 1;
            vec![c]
        };
        // Parse an optional {n} / {m,n} quantifier.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let end = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated quantifier in `{pattern}`"));
            let body: String = chars[i + 1..end].iter().collect();
            i = end + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("quantifier lower bound"),
                    n.trim().parse::<usize>().expect("quantifier upper bound"),
                ),
                None => {
                    let n = body.trim().parse::<usize>().expect("quantifier count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let count = lo + rng.below((hi - lo + 1) as u64) as usize;
        for _ in 0..count {
            out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
        }
    }
    out
}

fn expand_class(class: &[char]) -> Vec<char> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if class[i] == '\\' && i + 1 < class.len() {
            out.push(class[i + 1]);
            i += 2;
        } else if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
            assert!(lo <= hi, "inverted class range");
            out.extend((lo..=hi).filter_map(char::from_u32));
            i += 3;
        } else {
            out.push(class[i]);
            i += 1;
        }
    }
    assert!(!out.is_empty(), "empty char class");
    out
}

// ---------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive element-count bounds for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for vectors of `element` values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------
// Union (prop_oneof!)
// ---------------------------------------------------------------------

/// Weighted choice among boxed strategies of one value type.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Builds a union from weighted arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut r = rng.below(total.max(1));
        for (w, strat) in &self.arms {
            if r < *w as u64 {
                return strat.sample(rng);
            }
            r -= *w as u64;
        }
        unreachable!("weights exhausted")
    }
}

/// Boxes one `prop_oneof!` arm (helper for type inference).
pub fn union_arm<T>(
    weight: u32,
    strat: impl Strategy<Value = T> + 'static,
) -> (u32, BoxedStrategy<T>) {
    (weight, Box::new(strat))
}

// ---------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// Case rejected (assumption failed / filter miss); retried.
    Reject(String),
    /// Case failed; the test panics.
    Fail(String),
}

impl TestCaseError {
    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }

    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Result type of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

fn base_seed(name: &str) -> u64 {
    if let Ok(seed) = std::env::var("PROPTEST_SEED") {
        return seed.parse().expect("PROPTEST_SEED must be a u64");
    }
    // FNV-1a over the test name: deterministic across runs.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Drives one property: runs `config.cases` successful cases, retrying
/// rejections up to a budget, panicking on the first failure with the
/// case seed for replay.
pub fn run_proptest(
    config: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> TestCaseResult,
) {
    let seed0 = base_seed(name);
    let mut successes = 0u32;
    let mut rejects = 0u64;
    let max_rejects = config.cases as u64 * 64 + 1024;
    let mut case_index = 0u64;
    while successes < config.cases {
        let case_seed = seed0 ^ case_index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        case_index += 1;
        let mut rng = TestRng::new(case_seed);
        match case(&mut rng) {
            Ok(()) => successes += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                assert!(
                    rejects <= max_rejects,
                    "proptest `{name}`: too many rejected cases ({rejects})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest `{name}` failed (replay with PROPTEST_SEED={case_seed}, \
                     case {case_index}): {msg}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Defines property tests. Matches the real `proptest!` surface used
/// in this workspace: an optional `#![proptest_config(...)]` header
/// and `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat_param in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __strategy = ($($strat,)*);
            $crate::run_proptest(&__config, stringify!($name), |__rng| {
                let ($($pat,)*) = match $crate::Strategy::sample(&__strategy, __rng) {
                    ::std::option::Option::Some(v) => v,
                    ::std::option::Option::None => {
                        return ::std::result::Result::Err($crate::TestCaseError::reject(
                            "strategy rejection",
                        ))
                    }
                };
                (move || -> $crate::TestCaseResult {
                    $body
                    ::std::result::Result::Ok(())
                })()
            });
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects (retries) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Weighted choice among strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::union_arm($weight as u32, $strat)),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::union_arm(1u32, $strat)),+])
    };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Any,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
        TestRng, Union,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(a in 3usize..10, b in -5i64..=5, x in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((-5..=5).contains(&b));
            prop_assert!((-1.0..1.0).contains(&x));
        }

        #[test]
        fn tuples_and_maps(v in (1usize..4, 1usize..4).prop_map(|(r, c)| r * c)) {
            prop_assert!((1..16).contains(&v));
        }

        #[test]
        fn vec_lengths(v in collection::vec(any::<u64>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn regex_subset(s in "[a-c]{2,4}", t in "[xy_]{1,8}") {
            prop_assert!(s.len() >= 2 && s.len() <= 4);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            prop_assert!(!t.is_empty() && t.chars().all(|c| "xy_".contains(c)));
        }

        #[test]
        fn oneof_weights(v in prop_oneof![3 => Just(1u8), 1 => Just(2u8)]) {
            prop_assert!(v == 1 || v == 2);
        }

        #[test]
        fn assume_rejects(v in 0u64..100) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }
    }

    #[test]
    fn filter_map_retries() {
        let strat = (0u64..100).prop_filter_map("even only", |v| (v % 2 == 0).then_some(v));
        crate::run_proptest(
            &ProptestConfig::with_cases(50),
            "filter_map_retries",
            |rng| match Strategy::sample(&strat, rng) {
                Some(v) => {
                    assert_eq!(v % 2, 0);
                    Ok(())
                }
                None => Err(TestCaseError::reject("odd")),
            },
        );
    }

    #[test]
    #[should_panic(expected = "proptest `always_fails` failed")]
    fn failures_panic_with_seed() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(v in 0u64..10) {
                prop_assert!(v > 100, "v = {v}");
            }
        }
        always_fails();
    }
}
