//! Offline stand-in for the subset of `criterion` 0.5 this workspace
//! uses. It really measures: each benchmark warms up, then times
//! `sample_size` batches and reports median per-iteration latency
//! (plus derived throughput when configured) to stdout. No plots, no
//! statistics machinery — enough for the perf trajectory the repo's
//! benches track.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput basis for derived rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements (or FLOPs) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the batch this sample runs.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level driver (mirrors `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            warm_up: Duration::from_millis(100),
            measurement: Duration::from_millis(500),
            samples: 10,
            throughput: None,
        }
    }

    /// Standalone benchmark outside a group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let mut group = self.benchmark_group("default");
        group.bench_function(id, f);
        group.finish();
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Sets the number of samples collected.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Sets the per-iteration throughput basis.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark and prints its result.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();

        // Warm-up: run single iterations until the budget is spent,
        // using the observed cost to size measurement batches.
        let mut one = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            f(&mut one);
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / warm_iters.max(1) as u128;

        // Size batches so all samples fit the measurement budget.
        let budget_ns = self.measurement.as_nanos() / self.samples.max(1) as u128;
        let iters = (budget_ns / per_iter.max(1)).clamp(1, 1_000_000) as u64;

        let mut samples_ns: Vec<u128> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples_ns.push(b.elapsed.as_nanos() / iters as u128);
        }
        samples_ns.sort_unstable();
        let median = samples_ns[samples_ns.len() / 2];

        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:.3} Gelem/s", n as f64 / median.max(1) as f64)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:.3} GB/s", n as f64 / median.max(1) as f64)
            }
            None => String::new(),
        };
        println!(
            "  {:<40} {:>12}/iter ({} samples x {} iters){}",
            id.id,
            format_ns(median),
            self.samples,
            iters,
            rate
        );
        self
    }

    /// Ends the group (purely cosmetic here).
    pub fn finish(&mut self) {}
}

fn format_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        group.sample_size(3);
        let mut ran = false;
        group.bench_function("noop", |b| {
            ran = true;
            b.iter(|| black_box(1 + 1))
        });
        group.finish();
        assert!(ran);
    }
}
