//! Offline stand-in for the subset of `serde_json` this workspace
//! uses: `to_string` / `to_string_pretty` and `from_str`, backed by the
//! serde shim's [`Value`] tree and a small hand-rolled JSON
//! parser/printer (standard JSON: objects, arrays, strings with
//! escapes, numbers, booleans, null).

pub use serde::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// JSON serialization/parse error.
#[derive(Clone, Debug, PartialEq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
///
/// # Errors
/// Non-finite floats.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
/// Non-finite floats.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parses a value of type `T` from JSON text.
///
/// # Errors
/// Malformed JSON, trailing input, or a shape mismatch for `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&value).map_err(|e| Error::new(e.to_string()))
}

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    level: usize,
) -> Result<(), Error> {
    let (nl, pad, pad_in) = match indent {
        Some(w) => ("\n", " ".repeat(w * level), " ".repeat(w * (level + 1))),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::new("non-finite float is not representable in JSON"));
            }
            let s = format!("{f}");
            out.push_str(&s);
            // Keep floats recognizably floating-point.
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(out, item, indent, level + 1)?;
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1)?;
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
    Ok(())
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(Error::new("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this
                            // shim's printer; reject them on input.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("unsupported \\u escape"))?,
                            );
                        }
                        _ => return Err(Error::new("unknown escape")),
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Int(i))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::UInt(u))
        } else {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn round_trip_map() {
        let mut m = BTreeMap::new();
        m.insert("alpha beta".to_string(), 42u64);
        m.insert("quote\"\\n".to_string(), 7u64);
        let json = to_string_pretty(&m).unwrap();
        let back: BTreeMap<String, u64> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn parses_standard_forms() {
        let v: Vec<f64> = from_str("[1, 2.5, -3e2]").unwrap();
        assert_eq!(v, vec![1.0, 2.5, -300.0]);
        let b: bool = from_str(" true ").unwrap();
        assert!(b);
        let o: Option<u32> = from_str("null").unwrap();
        assert_eq!(o, None);
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_str::<bool>("not json").is_err());
        assert!(from_str::<Vec<u32>>("[1, 2").is_err());
        assert!(from_str::<u32>("1 trailing").is_err());
    }

    #[test]
    fn floats_stay_floats() {
        let json = to_string(&vec![1.0f64]).unwrap();
        assert_eq!(json, "[1.0]");
    }
}
