//! Offline stand-in for the subset of `parking_lot` this workspace
//! uses: `RwLock`, `Mutex`, and `Condvar` with the non-poisoning API.
//! Backed by `std::sync`; poisoning is translated into panics, which
//! matches `parking_lot` semantics closely enough for this codebase
//! (a poisoned lock here means a worker already panicked).

use std::sync;

/// Non-poisoning reader–writer lock.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning mutex.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Condition variable paired with [`Mutex`].
#[derive(Default, Debug)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Blocks until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut sync::MutexGuard<'_, T>) {
        // SAFETY-free std equivalent: replace the guard with the one
        // returned by the std wait.
        take_mut(guard, |g| self.0.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Replaces `*slot` through a by-value transform. Aborts (via panic in
/// a poisoned state) if `f` panics — it cannot, in our usage.
fn take_mut<T>(slot: &mut T, f: impl FnOnce(T) -> T) {
    // SAFETY: `slot` is exclusively borrowed; the value read out is
    // written back before the borrow ends, and `f` (an infallible
    // state-transition closure in our usage) cannot unwind between
    // the read and the write.
    unsafe {
        let old = std::ptr::read(slot);
        let new = f(old);
        std::ptr::write(slot, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn mutex_and_condvar() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        t.join().unwrap();
    }
}
