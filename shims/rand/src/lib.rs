//! Offline stand-in for the subset of the `rand` 0.8 API this
//! workspace uses: `StdRng` + `SeedableRng::seed_from_u64`, the `Rng`
//! extension trait with `gen_range`, `SliceRandom::shuffle`, and the
//! `SampleUniform` bound used by generic fill helpers.
//!
//! The generator is SplitMix64 — statistically fine for test-data
//! generation, deterministic per seed, no external dependencies. The
//! streams are *not* identical to the real `rand` crate's; everything
//! in this workspace that cares about reproducibility seeds its own
//! generator, so only within-workspace determinism matters.

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing extension trait (auto-implemented for every source).
pub trait Rng: RngCore {
    /// Uniform sample from `lo..hi` or `lo..=hi`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen_range(0.0f64..1.0) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seeding support (only the `seed_from_u64` entry point is needed).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (SplitMix64 here).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// A process-local generator seeded from the wall clock.
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5eed);
    rngs::StdRng::seed_from_u64(nanos)
}

pub mod distributions {
    pub mod uniform {
        use crate::RngCore;

        /// Types that can be sampled uniformly from a range.
        pub trait SampleUniform: Sized + PartialOrd {
            /// Uniform sample from `[lo, hi)` (`inclusive` widens to
            /// `[lo, hi]`).
            fn sample_uniform<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool)
                -> Self;
        }

        /// Range forms accepted by `Rng::gen_range`.
        pub trait SampleRange<T> {
            /// Draws one sample.
            fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
                assert!(self.start < self.end, "empty gen_range range");
                T::sample_uniform(rng, self.start, self.end, false)
            }
        }

        impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty gen_range range");
                T::sample_uniform(rng, lo, hi, true)
            }
        }

        macro_rules! impl_uniform_int {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_uniform<R: RngCore>(
                        rng: &mut R,
                        lo: Self,
                        hi: Self,
                        inclusive: bool,
                    ) -> Self {
                        let lo_w = lo as i128;
                        let hi_w = hi as i128;
                        let span = (hi_w - lo_w) as u128 + if inclusive { 1 } else { 0 };
                        // Modulo bias is ~2^-64 for test-sized spans.
                        let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                        (lo_w + r as i128) as Self
                    }
                }
            )*};
        }
        impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        impl SampleUniform for f64 {
            fn sample_uniform<R: RngCore>(rng: &mut R, lo: Self, hi: Self, _incl: bool) -> Self {
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                lo + (hi - lo) * unit
            }
        }

        impl SampleUniform for f32 {
            fn sample_uniform<R: RngCore>(rng: &mut R, lo: Self, hi: Self, _incl: bool) -> Self {
                let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
                lo + (hi - lo) * unit
            }
        }
    }
}

pub mod seq {
    use crate::{Rng, RngCore};

    /// Slice helpers (only what the workspace calls).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly chosen element, `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f32 = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&x));
            let n = rng.gen_range(3usize..10);
            assert!((3..10).contains(&n));
            let m = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&m));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
