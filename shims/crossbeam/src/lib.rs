//! Offline stand-in for the subset of `crossbeam` this workspace
//! uses: scoped threads (`crossbeam::thread::scope`, backed by
//! `std::thread::scope`, stable since 1.63) and work-stealing deques
//! (`crossbeam::deque`, backed by mutexes — correct semantics, not
//! lock-free; fine for the task granularities this workspace runs).

pub mod thread {
    //! Scoped threads with the `crossbeam` calling convention (spawn
    //! closures receive a scope argument, `scope` returns `Result`).

    use std::any::Any;

    /// Scope handle passed to [`scope`] closures.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (`Err` holds
        /// the panic payload).
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure's argument mirrors
        /// crossbeam's nested-scope handle; this shim passes `()`
        /// (the workspace only ever ignores it).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(())),
            }
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; all are joined before this returns.
    ///
    /// # Errors
    /// Never returns `Err` in this shim: panics of unjoined children
    /// propagate as panics (std semantics) rather than being captured.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod deque {
    //! Work-stealing deques with the `crossbeam-deque` API shape.

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt.
    #[derive(Debug)]
    pub enum Steal<T> {
        /// Queue observed empty.
        Empty,
        /// One task stolen.
        Success(T),
        /// Transient contention; try again.
        Retry,
    }

    impl<T> Steal<T> {
        /// `Some` on success.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }

        /// `true` when the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    /// Owner side of a worker deque (LIFO for the owner).
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    /// Thief side of a worker deque (FIFO for thieves).
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Default for Worker<T> {
        fn default() -> Self {
            Self::new_lifo()
        }
    }

    impl<T> Worker<T> {
        /// New deque whose owner pops in LIFO order.
        pub fn new_lifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Pushes a task on the owner end.
        pub fn push(&self, task: T) {
            self.queue.lock().unwrap().push_back(task);
        }

        /// Pops from the owner end (most recently pushed first).
        pub fn pop(&self) -> Option<T> {
            self.queue.lock().unwrap().pop_back()
        }

        /// `true` when the deque holds no tasks.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().unwrap().is_empty()
        }

        /// Creates a thief handle.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Steals from the opposite end of the owner.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().unwrap().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }
    }

    /// Shared FIFO injector queue.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        /// New empty injector.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Enqueues a task.
        pub fn push(&self, task: T) {
            self.queue.lock().unwrap().push_back(task);
        }

        /// Steals the oldest task.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().unwrap().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// `true` when no tasks are queued.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().unwrap().is_empty()
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = [1, 2, 3];
        let sum = crate::thread::scope(|s| {
            let h = s.spawn(|_| data.iter().sum::<i32>());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 6);
    }

    #[test]
    fn deque_lifo_owner_fifo_thief() {
        use crate::deque::{Steal, Worker};
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(2));
        match s.steal() {
            Steal::Success(v) => assert_eq!(v, 1),
            other => panic!("unexpected {other:?}"),
        }
        assert!(s.steal().is_empty());
    }
}
