//! Offline stand-in for the subset of `crossbeam` this workspace
//! uses: scoped threads (`crossbeam::thread::scope`, backed by
//! `std::thread::scope`, stable since 1.63), work-stealing deques
//! (`crossbeam::deque`, backed by mutexes — correct semantics, not
//! lock-free; fine for the task granularities this workspace runs),
//! and MPMC channels (`crossbeam::channel`, backed by a mutex +
//! condvars with crossbeam's disconnect semantics).

pub mod thread {
    //! Scoped threads with the `crossbeam` calling convention (spawn
    //! closures receive a scope argument, `scope` returns `Result`).

    use std::any::Any;

    /// Scope handle passed to [`scope`] closures.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (`Err` holds
        /// the panic payload).
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure's argument mirrors
        /// crossbeam's nested-scope handle; this shim passes `()`
        /// (the workspace only ever ignores it).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(())),
            }
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; all are joined before this returns.
    ///
    /// # Errors
    /// Never returns `Err` in this shim: panics of unjoined children
    /// propagate as panics (std semantics) rather than being captured.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod deque {
    //! Work-stealing deques with the `crossbeam-deque` API shape.

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt.
    #[derive(Debug)]
    pub enum Steal<T> {
        /// Queue observed empty.
        Empty,
        /// One task stolen.
        Success(T),
        /// Transient contention; try again.
        Retry,
    }

    impl<T> Steal<T> {
        /// `Some` on success.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }

        /// `true` when the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    /// Owner side of a worker deque (LIFO for the owner).
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    /// Thief side of a worker deque (FIFO for thieves).
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Default for Worker<T> {
        fn default() -> Self {
            Self::new_lifo()
        }
    }

    impl<T> Worker<T> {
        /// New deque whose owner pops in LIFO order.
        pub fn new_lifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Pushes a task on the owner end.
        pub fn push(&self, task: T) {
            self.queue.lock().unwrap().push_back(task);
        }

        /// Pops from the owner end (most recently pushed first).
        pub fn pop(&self) -> Option<T> {
            self.queue.lock().unwrap().pop_back()
        }

        /// `true` when the deque holds no tasks.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().unwrap().is_empty()
        }

        /// Creates a thief handle.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Steals from the opposite end of the owner.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().unwrap().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }
    }

    /// Shared FIFO injector queue.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        /// New empty injector.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Enqueues a task.
        pub fn push(&self, task: T) {
            self.queue.lock().unwrap().push_back(task);
        }

        /// Steals the oldest task.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().unwrap().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// `true` when no tasks are queued.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().unwrap().is_empty()
        }
    }
}

pub mod channel {
    //! MPMC channels with the `crossbeam-channel` API shape and
    //! disconnect semantics: a receive on a channel whose senders are
    //! all dropped drains the buffer, then reports disconnection; a
    //! send fails once every receiver is gone.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        /// Waiters blocked in `recv` (signalled on send/disconnect).
        not_empty: Condvar,
        /// Waiters blocked in a bounded `send` (signalled on recv).
        not_full: Condvar,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        capacity: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    /// New channel buffering at most `cap` messages; a `send` past the
    /// bound blocks until a receive frees a slot.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        channel(Some(cap))
    }

    /// New channel with an unbounded buffer (`send` never blocks).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                capacity,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// A send failed because every receiver was dropped; the message
    /// comes back to the caller.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Why a `try_send` did not enqueue.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded buffer is at capacity.
        Full(T),
        /// Every receiver was dropped.
        Disconnected(T),
    }

    /// A receive failed: the buffer is empty and every sender was
    /// dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Why a `try_recv` returned no message.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Buffer observed empty (senders still connected).
        Empty,
        /// Buffer empty and every sender dropped.
        Disconnected,
    }

    /// Why a `recv_timeout` returned no message.
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with the buffer still empty.
        Timeout,
        /// Buffer empty and every sender dropped.
        Disconnected,
    }

    /// Producer handle (clonable; the channel disconnects for
    /// receivers when the last clone drops).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Consumer handle (clonable; any clone may receive — each message
    /// goes to exactly one receiver).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.senders -= 1;
            if inner.senders == 0 {
                // Wake receivers so they observe the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.receivers -= 1;
            if inner.receivers == 0 {
                // Wake blocked senders so they observe the disconnect.
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a message, blocking while a bounded buffer is
        /// full.
        ///
        /// # Errors
        /// [`SendError`] when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(msg));
                }
                match inner.capacity {
                    Some(cap) if inner.queue.len() >= cap => {
                        inner = self.shared.not_full.wait(inner).unwrap();
                    }
                    _ => break,
                }
            }
            inner.queue.push_back(msg);
            drop(inner);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Enqueues without blocking.
        ///
        /// # Errors
        /// [`TrySendError::Full`] at capacity,
        /// [`TrySendError::Disconnected`] when every receiver is gone.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap();
            if inner.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if let Some(cap) = inner.capacity {
                if inner.queue.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            inner.queue.push_back(msg);
            drop(inner);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the oldest message, blocking while the buffer is
        /// empty.
        ///
        /// # Errors
        /// [`RecvError`] once the buffer is empty *and* every sender
        /// has been dropped (buffered messages are always delivered
        /// first).
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.not_empty.wait(inner).unwrap();
            }
        }

        /// Dequeues with a deadline.
        ///
        /// # Errors
        /// [`RecvTimeoutError::Timeout`] when `timeout` elapses first,
        /// [`RecvTimeoutError::Disconnected`] on an empty,
        /// sender-less channel.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .not_empty
                    .wait_timeout(inner, deadline - now)
                    .unwrap();
                inner = guard;
            }
        }

        /// Dequeues without blocking.
        ///
        /// # Errors
        /// [`TryRecvError::Empty`] with live senders,
        /// [`TryRecvError::Disconnected`] without.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            if let Some(msg) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Number of buffered messages right now.
        pub fn len(&self) -> usize {
            self.shared.inner.lock().unwrap().queue.len()
        }

        /// `true` when no messages are buffered.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = [1, 2, 3];
        let sum = crate::thread::scope(|s| {
            let h = s.spawn(|_| data.iter().sum::<i32>());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 6);
    }

    #[test]
    fn deque_lifo_owner_fifo_thief() {
        use crate::deque::{Steal, Worker};
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(2));
        match s.steal() {
            Steal::Success(v) => assert_eq!(v, 1),
            other => panic!("unexpected {other:?}"),
        }
        assert!(s.steal().is_empty());
    }

    #[test]
    fn channel_fifo_and_try_recv() {
        use crate::channel::{unbounded, TryRecvError};
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn bounded_try_send_reports_full() {
        use crate::channel::{bounded, TrySendError};
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
    }

    #[test]
    fn disconnect_drains_buffer_first() {
        use crate::channel::{unbounded, RecvError};
        let (tx, rx) = unbounded();
        tx.send("a").unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok("a"));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_without_receivers() {
        use crate::channel::{unbounded, SendError};
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(5), Err(SendError(5)));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        use crate::channel::{bounded, RecvTimeoutError};
        use std::time::Duration;
        let (tx, rx) = bounded::<i32>(4);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
    }

    #[test]
    fn channel_crosses_threads_mpmc() {
        use crate::channel::unbounded;
        let (tx, rx) = unbounded::<usize>();
        let rx2 = rx.clone();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..25 {
                        tx.send(p * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = [rx, rx2]
            .into_iter()
            .map(|rx| {
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let expected: Vec<usize> = (0..4)
            .flat_map(|p| (0..25).map(move |i| p * 100 + i))
            .collect();
        assert_eq!(all, expected);
    }
}
