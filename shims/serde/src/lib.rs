//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! Unlike real serde's zero-copy visitor architecture, this shim
//! round-trips through an owned [`Value`] tree — `Serialize` lowers
//! into a `Value`, `Deserialize` rebuilds from one. `serde_json` (the
//! sibling shim) renders and parses that tree. The public surface the
//! workspace relies on is identical: `#[derive(Serialize,
//! Deserialize)]` on plain structs, and `serde_json::{to_string_pretty,
//! from_str}`.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Self-describing data tree (the JSON data model).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// Signed integers.
    Int(i64),
    /// Unsigned integers beyond `i64::MAX`.
    UInt(u64),
    /// Floating-point numbers.
    Float(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Array(Vec<Value>),
    /// Objects as insertion-ordered key–value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Clone, Debug, PartialEq)]
pub struct DeError(String);

impl DeError {
    /// Error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// Error for an absent struct field.
    pub fn missing(field: &str) -> Self {
        DeError(format!("missing field `{field}`"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Lowers a type into the [`Value`] data model.
pub trait Serialize {
    /// The value tree representing `self`.
    fn to_value(&self) -> Value;
}

/// Rebuilds a type from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parses `self` out of a value tree.
    ///
    /// # Errors
    /// Shape or type mismatches.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::custom("expected bool")),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: i128 = match v {
                    Value::Int(i) => *i as i128,
                    Value::UInt(u) => *u as i128,
                    Value::Float(f) if f.fract() == 0.0 => *f as i128,
                    _ => return Err(DeError::custom("expected integer")),
                };
                <$t>::try_from(wide).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                if wide <= i64::MAX as u64 {
                    Value::Int(wide as i64)
                } else {
                    Value::UInt(wide)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: u64 = match v {
                    Value::Int(i) if *i >= 0 => *i as u64,
                    Value::UInt(u) => *u,
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    _ => return Err(DeError::custom("expected unsigned integer")),
                };
                <$t>::try_from(wide).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    _ => Err(DeError::custom("expected number")),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::custom("expected string")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::custom("expected array")),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(DeError::custom("expected object")),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort keys.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Object(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(DeError::custom("expected object")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42usize.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Vec::<u32>::from_value(&vec![1u32, 2].to_value()).unwrap(),
            vec![1, 2]
        );
    }

    #[test]
    fn map_round_trip() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u32);
        let v = m.to_value();
        assert_eq!(v.get("a"), Some(&Value::Int(1)));
        assert_eq!(BTreeMap::<String, u32>::from_value(&v).unwrap(), m);
    }

    #[test]
    fn type_mismatch_rejected() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(String::from_value(&Value::Int(1)).is_err());
    }
}
