//! # wino-symbolic — the paper's symbolic computation engine
//!
//! Implements §3.1.2 of *Accelerating Winograd Convolutions using
//! Symbolic Computation and Meta-programming* (EuroSys '20): Winograd
//! transformation matrices are multiplied **symbolically** against a
//! matrix of input symbols, and the result is compiled into a minimal
//! straight-line "transformation recipe" through four optimization
//! steps:
//!
//! 1. **Elimination of unnecessary arithmetic** — `0·x` and `1·x`
//!    vanish structurally in the sparse [`LinExpr`] representation.
//! 2. **Column-/row-wise index representation** — recipes are
//!    one-dimensional; the 2-D transform applies the same recipe
//!    per-column and then per-row, so a single loop (or unrolled
//!    sequence) suffices in generated code.
//! 3. **Factorization** — terms sharing a coefficient magnitude are
//!    grouped so the scale is applied once ([`lower`]).
//! 4. **Common-subexpression elimination** — sub-sums shared between
//!    rows (up to scale) are hoisted into temporaries ([`cse`]).
//!
//! The resulting [`Recipe`] is exact (rational constants), executable
//! (over `f32`/`f64`/ℚ), countable (Figure 5 of the paper), and
//! renderable into GPU source code (`wino-codegen`).
//!
//! ```
//! use wino_num::RatMat;
//! use wino_symbolic::{generate_recipe, RecipeOptions};
//!
//! // F(2,3) filter transform G.
//! let g = RatMat::parse_rows(&[
//!     "1 0 0", "1/2 1/2 1/2", "1/2 -1/2 1/2", "0 0 1",
//! ]).unwrap();
//! let recipe = generate_recipe(&g, &RecipeOptions::optimized());
//! // 3 adds + 2 muls instead of the naive 12 muls + 8 adds.
//! assert_eq!(recipe.op_count().total(), 5);
//! ```

#![warn(missing_docs)]

pub mod cse;
pub mod expr;
pub mod lower;
pub mod recipe;
pub mod recipe_check;
pub mod serialize;

pub use cse::{eliminate_common_subexpressions, CseProgram};
pub use expr::{symbolic_matvec, LinExpr, Node};
pub use lower::{generate_naive_recipe, generate_recipe, lower_program, RecipeOptions};
pub use recipe::{CompiledRecipe, Instr, OpCount, Recipe, RecipeScalar, Reg};
pub use recipe_check::{
    abstract_outputs, dead_statements, verify_recipe, RecipeError, RecipeProof,
};
pub use serialize::RecipeParseError;
