//! Sparse linear expressions over indexed symbols.
//!
//! Every value computed inside a Winograd transformation is a *linear*
//! combination of input-tile (or filter-tile) elements with exact
//! rational coefficients. Representing expressions as sparse
//! `symbol → coefficient` maps makes the paper's step 1 ("elimination
//! of unnecessary arithmetic operations", §3.1.2) automatic: terms
//! multiplied by zero never exist, and multiplications by ±1 are
//! visible as unit coefficients that the lowering stage emits without a
//! multiply.

use std::collections::BTreeMap;
use std::fmt;

use wino_num::{RatMat, Rational};

/// A value referenced by a linear expression: either an input symbol
/// (element `i` of the vector being transformed) or a temporary
/// introduced by common-subexpression elimination.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Node {
    /// The `i`-th input element (the paper's `g[i][j]` with the free
    /// loop index `j` elided — recipes are one-dimensional and applied
    /// column- or row-wise).
    In(usize),
    /// The `t`-th CSE temporary.
    Tmp(usize),
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Node::In(i) => write!(f, "x{i}"),
            Node::Tmp(t) => write!(f, "t{t}"),
        }
    }
}

/// A sparse linear combination `Σ cᵢ · nodeᵢ` with non-zero rational
/// coefficients. The map is kept canonical: inserting a term that
/// cancels to zero removes the entry.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct LinExpr {
    terms: BTreeMap<Node, Rational>,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        LinExpr::default()
    }

    /// The single term `c · node`.
    pub fn term(node: Node, c: Rational) -> Self {
        let mut e = LinExpr::zero();
        e.add_term(node, c);
        e
    }

    /// Returns `true` if the expression has no terms.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Number of terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Returns `true` if there are no terms (alias of [`is_zero`]).
    ///
    /// [`is_zero`]: LinExpr::is_zero
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Adds `c · node`, cancelling to zero when appropriate.
    pub fn add_term(&mut self, node: Node, c: Rational) {
        if c.is_zero() {
            return;
        }
        let entry = self.terms.entry(node).or_default();
        *entry = &*entry + &c;
        if entry.is_zero() {
            self.terms.remove(&node);
        }
    }

    /// Removes and returns the coefficient of `node`, if present.
    pub fn remove_term(&mut self, node: &Node) -> Option<Rational> {
        self.terms.remove(node)
    }

    /// The coefficient of `node` (zero if absent).
    pub fn coeff(&self, node: &Node) -> Rational {
        self.terms.get(node).cloned().unwrap_or_default()
    }

    /// Adds another expression scaled by `c`.
    pub fn add_scaled(&mut self, other: &LinExpr, c: &Rational) {
        for (node, k) in &other.terms {
            self.add_term(*node, k * c);
        }
    }

    /// Iterates over `(node, coefficient)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (&Node, &Rational)> {
        self.terms.iter()
    }

    /// Returns `true` if the expression references `node`.
    pub fn contains(&self, node: &Node) -> bool {
        self.terms.contains_key(node)
    }

    /// Exact evaluation given values for every referenced node.
    ///
    /// `input` supplies `Node::In(i)` values; `tmps` supplies
    /// `Node::Tmp(t)` values. Panics on out-of-range references — the
    /// recipe pipeline guarantees they cannot occur.
    pub fn eval_exact(&self, input: &[Rational], tmps: &[Rational]) -> Rational {
        let mut acc = Rational::zero();
        for (node, c) in &self.terms {
            let v = match node {
                Node::In(i) => &input[*i],
                Node::Tmp(t) => &tmps[*t],
            };
            acc += &(c * v);
        }
        acc
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        for (node, c) in &self.terms {
            if first {
                if c.is_one() {
                    write!(f, "{node}")?;
                } else if c.is_neg_one() {
                    write!(f, "-{node}")?;
                } else {
                    write!(f, "{c}*{node}")?;
                }
                first = false;
            } else if c.is_one() {
                write!(f, " + {node}")?;
            } else if c.is_neg_one() {
                write!(f, " - {node}")?;
            } else if c.is_negative() {
                write!(f, " - {}*{node}", -c)?;
            } else {
                write!(f, " + {c}*{node}")?;
            }
        }
        Ok(())
    }
}

/// Builds the symbolic matrix-vector product `T · x`, where `x` is the
/// symbol vector `(In(0), …, In(cols-1))`.
///
/// Rows of the result are the expressions the recipe pipeline
/// optimizes. Zero matrix entries vanish here, which *is* the paper's
/// "elimination of unnecessary arithmetic operations" step.
pub fn symbolic_matvec(t: &RatMat) -> Vec<LinExpr> {
    let mut rows = Vec::with_capacity(t.rows());
    for i in 0..t.rows() {
        let mut e = LinExpr::zero();
        for j in 0..t.cols() {
            e.add_term(Node::In(j), t[(i, j)].clone());
        }
        rows.push(e);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(a: i64, b: i64) -> Rational {
        Rational::from_frac(a, b)
    }

    #[test]
    fn zero_coefficients_never_stored() {
        let mut e = LinExpr::zero();
        e.add_term(Node::In(0), r(0, 1));
        assert!(e.is_zero());
        e.add_term(Node::In(1), r(1, 2));
        e.add_term(Node::In(1), r(-1, 2));
        assert!(e.is_zero());
    }

    #[test]
    fn terms_merge() {
        let mut e = LinExpr::zero();
        e.add_term(Node::In(0), r(1, 3));
        e.add_term(Node::In(0), r(1, 6));
        assert_eq!(e.coeff(&Node::In(0)), r(1, 2));
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn add_scaled_distributes() {
        let mut a = LinExpr::term(Node::In(0), r(1, 1));
        let b = {
            let mut b = LinExpr::term(Node::In(0), r(1, 1));
            b.add_term(Node::In(1), r(2, 1));
            b
        };
        a.add_scaled(&b, &r(1, 2));
        assert_eq!(a.coeff(&Node::In(0)), r(3, 2));
        assert_eq!(a.coeff(&Node::In(1)), r(1, 1));
    }

    #[test]
    fn symbolic_matvec_drops_zeros() {
        let m = RatMat::parse_rows(&["1 0 -1 0", "0 1 1 0"]).unwrap();
        let rows = symbolic_matvec(&m);
        assert_eq!(rows[0].len(), 2);
        assert_eq!(rows[0].coeff(&Node::In(2)), r(-1, 1));
        assert!(!rows[0].contains(&Node::In(1)));
        assert_eq!(rows[1].len(), 2);
    }

    #[test]
    fn eval_exact() {
        let mut e = LinExpr::term(Node::In(0), r(1, 2));
        e.add_term(Node::Tmp(0), r(-2, 1));
        let v = e.eval_exact(&[r(4, 1)], &[r(3, 1)]);
        assert_eq!(v, r(-4, 1));
    }

    #[test]
    fn display_formatting() {
        let mut e = LinExpr::term(Node::In(0), r(1, 1));
        e.add_term(Node::In(1), r(-1, 1));
        e.add_term(Node::In(2), r(1, 2));
        assert_eq!(e.to_string(), "x0 - x1 + 1/2*x2");
        assert_eq!(LinExpr::zero().to_string(), "0");
    }
}
