//! Recipe verification over the linear-form abstract domain.
//!
//! Every value a straight-line transformation recipe computes is a
//! linear combination of its inputs with exact rational coefficients,
//! so running the recipe with *symbolic* inputs — abstract
//! interpretation over [`LinExpr`] — yields, for each output register,
//! the exact row vector the recipe implements. Comparing those rows
//! against the target transformation matrix `T` row-for-row is a
//! machine-checked proof that the recipe computes `T · x` for **every**
//! input, not just the sampled ones a numeric spot-check covers.

use std::fmt;

use crate::{symbolic_matvec, Instr, LinExpr, Node, OpCount, Recipe, Reg};
use wino_num::{RatMat, Rational};

/// Why a recipe failed verification.
#[derive(Clone, Debug, PartialEq)]
pub enum RecipeError {
    /// The recipe's arity does not match the matrix shape.
    Shape {
        /// `(n_in, n_out)` of the recipe.
        recipe: (usize, usize),
        /// `(cols, rows)` of the target matrix.
        matrix: (usize, usize),
    },
    /// A structural SSA invariant is violated (wraps
    /// [`Recipe::validate`]'s description).
    Structural(String),
    /// An instruction writes a temporary no output ever depends on.
    DeadStatement {
        /// Index of the dead instruction.
        index: usize,
        /// The temporary it writes.
        tmp: usize,
    },
    /// An output's proven linear form differs from the matrix row.
    RowMismatch {
        /// The output row that disagrees.
        row: usize,
        /// The linear form the recipe actually computes.
        got: String,
        /// The linear form the matrix row demands.
        want: String,
    },
}

impl fmt::Display for RecipeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecipeError::Shape { recipe, matrix } => write!(
                f,
                "arity mismatch: recipe is {}→{}, matrix is {}→{}",
                recipe.0, recipe.1, matrix.0, matrix.1
            ),
            RecipeError::Structural(msg) => write!(f, "structural: {msg}"),
            RecipeError::DeadStatement { index, tmp } => {
                write!(
                    f,
                    "instr {index}: dead statement (t{tmp} never reaches an output)"
                )
            }
            RecipeError::RowMismatch { row, got, want } => {
                write!(
                    f,
                    "row {row}: recipe computes [{got}], matrix demands [{want}]"
                )
            }
        }
    }
}

impl std::error::Error for RecipeError {}

/// The successful outcome of verifying one recipe: the equivalence is
/// proven, and these are the per-recipe diagnostics the paper's
/// Table 3 / Figure 4 stability story cares about.
#[derive(Clone, Debug)]
pub struct RecipeProof {
    /// Arithmetic-operation tally.
    pub ops: OpCount,
    /// Total instruction count (including free copies/negs).
    pub n_instr: usize,
    /// SSA temporary count.
    pub n_tmp: usize,
    /// Peak simultaneously-live temporaries.
    pub max_live_tmps: usize,
    /// Largest |entry| of the target matrix.
    pub max_abs_matrix_coeff: Rational,
    /// Largest |coefficient| in any intermediate linear form the
    /// recipe ever materializes.
    pub max_abs_intermediate_coeff: Rational,
}

impl RecipeProof {
    /// Ratio of the peak intermediate coefficient magnitude to the
    /// peak matrix coefficient magnitude — how much the factored
    /// computation amplifies values beyond what the matrix itself
    /// demands (1.0 = no growth). Large interpolation-point spreads
    /// (Table 3) show up here before they show up as f32 error.
    pub fn coeff_growth(&self) -> f64 {
        let base = self.max_abs_matrix_coeff.to_f64();
        if base == 0.0 {
            return 1.0;
        }
        (self.max_abs_intermediate_coeff.to_f64() / base).max(1.0)
    }
}

/// Indices of instructions whose results never reach an output — a
/// backward liveness pass over the straight-line program. The SSA
/// validator accepts such instructions (they are well-formed); the
/// verifier rejects them because a shipped recipe carrying dead work
/// means the lowering pipeline regressed.
pub fn dead_statements(recipe: &Recipe) -> Vec<usize> {
    let mut live = vec![false; recipe.n_tmp];
    let mut dead = Vec::new();
    for (k, ins) in recipe.instrs.iter().enumerate().rev() {
        let needed = match ins.dst() {
            Reg::Out(_) => true,
            Reg::Tmp(t) => live[t],
            Reg::In(_) => false,
        };
        if !needed {
            dead.push(k);
            continue;
        }
        for src in ins.srcs() {
            if let Reg::Tmp(t) = src {
                live[t] = true;
            }
        }
    }
    dead.reverse();
    dead
}

/// Abstract state of one symbolic execution: each register holds the
/// exact linear form of its current value.
struct AbstractState {
    tmps: Vec<LinExpr>,
    outs: Vec<LinExpr>,
    peak_coeff: Rational,
}

impl AbstractState {
    fn read(&self, reg: Reg) -> LinExpr {
        match reg {
            Reg::In(i) => LinExpr::term(Node::In(i), Rational::one()),
            Reg::Tmp(t) => self.tmps[t].clone(),
            // Recipe::validate (run first) rejects output reads.
            Reg::Out(o) => self.outs[o].clone(),
        }
    }

    fn observe(&mut self, value: &LinExpr) {
        for (_, c) in value.iter() {
            let a = c.abs();
            if a > self.peak_coeff {
                self.peak_coeff = a;
            }
        }
    }

    fn write(&mut self, dst: Reg, value: LinExpr) {
        self.observe(&value);
        match dst {
            Reg::In(_) => unreachable!("validate rejects input writes"),
            Reg::Tmp(t) => self.tmps[t] = value,
            Reg::Out(o) => self.outs[o] = value,
        }
    }
}

/// Symbolically executes `recipe` with symbolic inputs, returning the
/// proven linear form of every output plus the peak intermediate
/// coefficient magnitude. Requires a structurally valid recipe — run
/// [`Recipe::validate`] first ([`verify_recipe`] does).
pub fn abstract_outputs(recipe: &Recipe) -> (Vec<LinExpr>, Rational) {
    let mut st = AbstractState {
        tmps: vec![LinExpr::zero(); recipe.n_tmp],
        outs: vec![LinExpr::zero(); recipe.n_out],
        peak_coeff: Rational::zero(),
    };
    for ins in &recipe.instrs {
        let value = match ins {
            Instr::Zero { .. } => LinExpr::zero(),
            Instr::Copy { src, .. } => st.read(*src),
            Instr::Neg { src, .. } => {
                let mut e = LinExpr::zero();
                e.add_scaled(&st.read(*src), &-&Rational::one());
                e
            }
            Instr::Add { a, b, .. } => {
                let mut e = st.read(*a);
                e.add_scaled(&st.read(*b), &Rational::one());
                e
            }
            Instr::Sub { a, b, .. } => {
                let mut e = st.read(*a);
                e.add_scaled(&st.read(*b), &-&Rational::one());
                e
            }
            Instr::Mul { c, a, .. } => {
                let mut e = LinExpr::zero();
                e.add_scaled(&st.read(*a), c);
                e
            }
            Instr::Fma { c, a, b, .. } => {
                let mut e = st.read(*b);
                e.add_scaled(&st.read(*a), c);
                e
            }
        };
        st.write(ins.dst(), value);
    }
    (st.outs, st.peak_coeff)
}

/// Proves `recipe(x) ≡ t · x` for all `x`, over exact rationals.
///
/// The proof pipeline: shape check → structural SSA validation →
/// dead-statement liveness → abstract interpretation over linear
/// forms → row-for-row comparison against `t`.
///
/// # Errors
/// The first [`RecipeError`] encountered, in pipeline order.
pub fn verify_recipe(recipe: &Recipe, t: &RatMat) -> Result<RecipeProof, RecipeError> {
    if recipe.n_in != t.cols() || recipe.n_out != t.rows() {
        return Err(RecipeError::Shape {
            recipe: (recipe.n_in, recipe.n_out),
            matrix: (t.cols(), t.rows()),
        });
    }
    recipe.validate().map_err(RecipeError::Structural)?;
    if let Some(&index) = dead_statements(recipe).first() {
        let tmp = match recipe.instrs[index].dst() {
            Reg::Tmp(t) => t,
            _ => unreachable!("dead statements always write temporaries"),
        };
        return Err(RecipeError::DeadStatement { index, tmp });
    }
    let (outs, peak) = abstract_outputs(recipe);
    let targets = symbolic_matvec(t);
    for (row, (got, want)) in outs.iter().zip(&targets).enumerate() {
        if got != want {
            return Err(RecipeError::RowMismatch {
                row,
                got: got.to_string(),
                want: want.to_string(),
            });
        }
    }
    let mut max_matrix = Rational::zero();
    for (_, _, c) in t.non_zero_entries() {
        let a = c.abs();
        if a > max_matrix {
            max_matrix = a;
        }
    }
    Ok(RecipeProof {
        ops: recipe.op_count(),
        n_instr: recipe.instrs.len(),
        n_tmp: recipe.n_tmp,
        max_live_tmps: recipe.max_live_tmps(),
        max_abs_matrix_coeff: max_matrix,
        max_abs_intermediate_coeff: peak,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_recipe, RecipeOptions};

    fn r(a: i64, b: i64) -> Rational {
        Rational::from_frac(a, b)
    }

    #[test]
    fn identity_recipe_verifies() {
        let t = RatMat::identity(3);
        let recipe = generate_recipe(&t, &RecipeOptions::optimized());
        let proof = verify_recipe(&recipe, &t).unwrap();
        assert_eq!(proof.max_abs_matrix_coeff, r(1, 1));
        assert!(proof.coeff_growth() >= 1.0);
    }

    #[test]
    fn wrong_coefficient_rejected() {
        let t = RatMat::parse_rows(&["1 1", "1 -1"]).unwrap();
        let recipe = generate_recipe(&t, &RecipeOptions::minimal());
        let wrong = RatMat::parse_rows(&["1 1", "1 1"]).unwrap();
        let err = verify_recipe(&recipe, &wrong).unwrap_err();
        assert!(
            matches!(err, RecipeError::RowMismatch { row: 1, .. }),
            "{err}"
        );
    }

    #[test]
    fn shape_mismatch_rejected() {
        let t = RatMat::identity(3);
        let recipe = generate_recipe(&t, &RecipeOptions::minimal());
        let wide = RatMat::zeros(3, 4);
        assert!(matches!(
            verify_recipe(&recipe, &wide),
            Err(RecipeError::Shape { .. })
        ));
    }

    #[test]
    fn dead_statement_detected() {
        use crate::{Instr, Reg};
        // y0 = x0 + x1 is live; t0 = x0 - x1 never reaches an output.
        let recipe = Recipe {
            n_in: 2,
            n_out: 1,
            n_tmp: 1,
            instrs: vec![
                Instr::Sub {
                    dst: Reg::Tmp(0),
                    a: Reg::In(0),
                    b: Reg::In(1),
                },
                Instr::Add {
                    dst: Reg::Out(0),
                    a: Reg::In(0),
                    b: Reg::In(1),
                },
            ],
        };
        assert_eq!(dead_statements(&recipe), vec![0]);
        let t = RatMat::parse_rows(&["1 1"]).unwrap();
        assert!(matches!(
            verify_recipe(&recipe, &t),
            Err(RecipeError::DeadStatement { index: 0, tmp: 0 })
        ));
    }

    #[test]
    fn transitively_dead_chains_detected() {
        use crate::{Instr, Reg};
        // t0 feeds t1, t1 feeds nothing: both are dead.
        let recipe = Recipe {
            n_in: 1,
            n_out: 1,
            n_tmp: 2,
            instrs: vec![
                Instr::Copy {
                    dst: Reg::Tmp(0),
                    src: Reg::In(0),
                },
                Instr::Neg {
                    dst: Reg::Tmp(1),
                    src: Reg::Tmp(0),
                },
                Instr::Copy {
                    dst: Reg::Out(0),
                    src: Reg::In(0),
                },
            ],
        };
        assert_eq!(dead_statements(&recipe), vec![0, 1]);
    }

    #[test]
    fn coefficient_growth_tracks_intermediates() {
        use crate::{Instr, Reg};
        // y0 = (8·x0) − (15/2)·x0 = (1/2)·x0: the intermediate 8·x0
        // carries a coefficient 16× the final matrix entry.
        let recipe = Recipe {
            n_in: 1,
            n_out: 1,
            n_tmp: 2,
            instrs: vec![
                Instr::Mul {
                    dst: Reg::Tmp(0),
                    c: r(8, 1),
                    a: Reg::In(0),
                },
                Instr::Mul {
                    dst: Reg::Tmp(1),
                    c: r(-15, 16),
                    a: Reg::Tmp(0),
                },
                Instr::Add {
                    dst: Reg::Out(0),
                    a: Reg::Tmp(0),
                    b: Reg::Tmp(1),
                },
            ],
        };
        let t = RatMat::parse_rows(&["1/2"]).unwrap();
        let proof = verify_recipe(&recipe, &t).unwrap();
        assert_eq!(proof.max_abs_intermediate_coeff, r(8, 1));
        assert!((proof.coeff_growth() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn abstract_outputs_agree_with_exact_eval() {
        let t = RatMat::parse_rows(&["1 0 -1 0", "0 1 1 0", "0 -1 1 0", "0 1 0 -1"]).unwrap();
        let recipe = generate_recipe(&t, &RecipeOptions::optimized());
        recipe.validate().unwrap();
        let (outs, _) = abstract_outputs(&recipe);
        // Evaluate both forms on a concrete input and compare.
        let x: Vec<Rational> = (0..4).map(|i| r(i as i64 + 1, 3)).collect();
        let direct = recipe.eval_exact(&x);
        for (row, expr) in outs.iter().enumerate() {
            assert_eq!(expr.eval_exact(&x, &[]), direct[row]);
        }
    }
}
