//! Text serialization for recipes.
//!
//! Figure 2 of the paper shows a persistent "transformation matrices
//! DB" feeding the code generator. Recipes serialize to a compact,
//! line-oriented text format so the database can live on disk and ship
//! with deployments:
//!
//! ```text
//! recipe 4 4 1          # n_in n_out n_tmp
//! SUB y0 x0 x2
//! ADD y1 x1 x2
//! MUL t0 1/2 x1
//! FMA y2 -1/3 x0 t0
//! end
//! ```

use std::str::FromStr;

use wino_num::Rational;

use crate::recipe::{Instr, Recipe, Reg};

/// Errors from parsing the recipe text format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecipeParseError {
    /// 1-based line the error was found on.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for RecipeParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for RecipeParseError {}

fn reg_token(reg: Reg) -> String {
    match reg {
        Reg::In(i) => format!("x{i}"),
        Reg::Tmp(t) => format!("t{t}"),
        Reg::Out(o) => format!("y{o}"),
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, RecipeParseError> {
    let err = |msg: String| RecipeParseError { line, message: msg };
    let (kind, idx) = tok.split_at(1);
    let idx: usize = idx
        .parse()
        .map_err(|_| err(format!("bad register index in {tok:?}")))?;
    match kind {
        "x" => Ok(Reg::In(idx)),
        "t" => Ok(Reg::Tmp(idx)),
        "y" => Ok(Reg::Out(idx)),
        _ => Err(err(format!("unknown register class in {tok:?}"))),
    }
}

impl Recipe {
    /// Serializes to the line-oriented text format.
    pub fn to_text(&self) -> String {
        let mut out = format!("recipe {} {} {}\n", self.n_in, self.n_out, self.n_tmp);
        for ins in &self.instrs {
            let line = match ins {
                Instr::Zero { dst } => format!("ZERO {}", reg_token(*dst)),
                Instr::Copy { dst, src } => {
                    format!("COPY {} {}", reg_token(*dst), reg_token(*src))
                }
                Instr::Neg { dst, src } => {
                    format!("NEG {} {}", reg_token(*dst), reg_token(*src))
                }
                Instr::Add { dst, a, b } => {
                    format!(
                        "ADD {} {} {}",
                        reg_token(*dst),
                        reg_token(*a),
                        reg_token(*b)
                    )
                }
                Instr::Sub { dst, a, b } => {
                    format!(
                        "SUB {} {} {}",
                        reg_token(*dst),
                        reg_token(*a),
                        reg_token(*b)
                    )
                }
                Instr::Mul { dst, c, a } => {
                    format!("MUL {} {c} {}", reg_token(*dst), reg_token(*a))
                }
                Instr::Fma { dst, c, a, b } => format!(
                    "FMA {} {c} {} {}",
                    reg_token(*dst),
                    reg_token(*a),
                    reg_token(*b)
                ),
            };
            out.push_str(&line);
            out.push('\n');
        }
        out.push_str("end\n");
        out
    }

    /// Parses the text format back into a validated recipe.
    ///
    /// # Errors
    /// [`RecipeParseError`] on any malformed line or a recipe that
    /// fails structural validation.
    pub fn from_text(text: &str) -> Result<Recipe, RecipeParseError> {
        let err = |line: usize, msg: String| RecipeParseError { line, message: msg };
        let mut lines = text.lines().enumerate();
        let (ln, header) = lines
            .by_ref()
            .find(|(_, l)| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
            .ok_or_else(|| err(0, "empty input".into()))?;
        let ln = ln + 1;
        let parts: Vec<&str> = header.split_whitespace().collect();
        if parts.len() != 4 || parts[0] != "recipe" {
            return Err(err(
                ln,
                format!("expected 'recipe n_in n_out n_tmp', got {header:?}"),
            ));
        }
        let parse_dim = |tok: &str| -> Result<usize, RecipeParseError> {
            tok.parse()
                .map_err(|_| err(ln, format!("bad dimension {tok:?}")))
        };
        let (n_in, n_out, n_tmp) = (
            parse_dim(parts[1])?,
            parse_dim(parts[2])?,
            parse_dim(parts[3])?,
        );

        let mut instrs = Vec::new();
        let mut terminated = false;
        for (ln0, raw) in lines {
            let ln = ln0 + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line == "end" {
                terminated = true;
                break;
            }
            let toks: Vec<&str> = line.split_whitespace().collect();
            let need = |n: usize| -> Result<(), RecipeParseError> {
                if toks.len() == n {
                    Ok(())
                } else {
                    Err(err(ln, format!("{} expects {} operands", toks[0], n - 1)))
                }
            };
            let rat = |tok: &str| -> Result<Rational, RecipeParseError> {
                Rational::from_str(tok).map_err(|e| err(ln, format!("bad constant: {e}")))
            };
            let instr = match toks[0] {
                "ZERO" => {
                    need(2)?;
                    Instr::Zero {
                        dst: parse_reg(toks[1], ln)?,
                    }
                }
                "COPY" => {
                    need(3)?;
                    Instr::Copy {
                        dst: parse_reg(toks[1], ln)?,
                        src: parse_reg(toks[2], ln)?,
                    }
                }
                "NEG" => {
                    need(3)?;
                    Instr::Neg {
                        dst: parse_reg(toks[1], ln)?,
                        src: parse_reg(toks[2], ln)?,
                    }
                }
                "ADD" => {
                    need(4)?;
                    Instr::Add {
                        dst: parse_reg(toks[1], ln)?,
                        a: parse_reg(toks[2], ln)?,
                        b: parse_reg(toks[3], ln)?,
                    }
                }
                "SUB" => {
                    need(4)?;
                    Instr::Sub {
                        dst: parse_reg(toks[1], ln)?,
                        a: parse_reg(toks[2], ln)?,
                        b: parse_reg(toks[3], ln)?,
                    }
                }
                "MUL" => {
                    need(4)?;
                    Instr::Mul {
                        dst: parse_reg(toks[1], ln)?,
                        c: rat(toks[2])?,
                        a: parse_reg(toks[3], ln)?,
                    }
                }
                "FMA" => {
                    need(5)?;
                    Instr::Fma {
                        dst: parse_reg(toks[1], ln)?,
                        c: rat(toks[2])?,
                        a: parse_reg(toks[3], ln)?,
                        b: parse_reg(toks[4], ln)?,
                    }
                }
                other => return Err(err(ln, format!("unknown opcode {other:?}"))),
            };
            instrs.push(instr);
        }
        if !terminated {
            return Err(err(text.lines().count(), "missing 'end' terminator".into()));
        }
        let recipe = Recipe {
            n_in,
            n_out,
            n_tmp,
            instrs,
        };
        recipe
            .validate()
            .map_err(|msg| err(0, format!("recipe fails validation: {msg}")))?;
        Ok(recipe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{generate_recipe, RecipeOptions};
    use wino_num::RatMat;

    fn sample_recipe() -> Recipe {
        let t = RatMat::parse_rows(&["1 0 -1 0", "1/2 1/2 1/2 0", "0 -1/3 0 2"]).unwrap();
        generate_recipe(&t, &RecipeOptions::optimized())
    }

    #[test]
    fn round_trip_preserves_recipe() {
        let recipe = sample_recipe();
        let text = recipe.to_text();
        let parsed = Recipe::from_text(&text).unwrap();
        assert_eq!(parsed, recipe);
    }

    #[test]
    fn round_trip_preserves_semantics() {
        use wino_num::Rational;
        let recipe = sample_recipe();
        let parsed = Recipe::from_text(&recipe.to_text()).unwrap();
        let x: Vec<Rational> = (0..4)
            .map(|k| Rational::from_frac(2 * k as i64 - 3, 7))
            .collect();
        assert_eq!(parsed.eval_exact(&x), recipe.eval_exact(&x));
    }

    #[test]
    fn comments_and_blank_lines_tolerated() {
        let text = "\n# a comment\nrecipe 2 1 0\n\nADD y0 x0 x1  # inline comment\nend\n";
        let recipe = Recipe::from_text(text).unwrap();
        assert_eq!(recipe.instrs.len(), 1);
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(Recipe::from_text("").is_err());
        assert!(Recipe::from_text("recipe 2 1\nend").is_err());
        assert!(Recipe::from_text("recipe 2 1 0\nFLY y0 x0\nend").is_err());
        assert!(Recipe::from_text("recipe 2 1 0\nADD y0 x0 x1\n").is_err()); // no end
        assert!(Recipe::from_text("recipe 2 1 0\nADD y0 x0\nend").is_err()); // arity
        assert!(Recipe::from_text("recipe 2 1 0\nMUL y0 1/0 x0\nend").is_err()); // bad const
        assert!(Recipe::from_text("recipe 2 1 0\nADD y0 q0 x1\nend").is_err()); // bad reg
                                                                                // Validation failure: reads an unwritten temporary.
        assert!(Recipe::from_text("recipe 1 1 1\nCOPY y0 t0\nend").is_err());
    }

    #[test]
    fn constants_serialize_exactly() {
        let text = "recipe 1 1 0\nMUL y0 -22/7 x0\nend\n";
        let recipe = Recipe::from_text(text).unwrap();
        let round = recipe.to_text();
        assert!(round.contains("-22/7"));
        assert_eq!(Recipe::from_text(&round).unwrap(), recipe);
    }
}
