//! Common-subexpression elimination across transformation rows.
//!
//! Step 4 of the paper's recipe pipeline (§3.1.2): "We use the CSE
//! algorithm to find the common terms among the vector rows. Thus, we
//! can compute them once and reuse them multiple times."
//!
//! The implementation is a greedy *two-term* CSE, the standard approach
//! for constant-matrix multiplication networks: repeatedly find the
//! weighted pair of nodes `a + ρ·b` that occurs (up to a global scale
//! factor) in the largest number of expressions, hoist it into a
//! temporary, and substitute. Scale invariance is what lets
//! `½·g0 + ½·g2` in one row and `-¼·g0 - ¼·g2` in another share the
//! single temporary `t = g0 + g2`.

use std::collections::HashMap;

use wino_num::Rational;

use crate::expr::{LinExpr, Node};

/// Result of the CSE pass.
#[derive(Clone, Debug)]
pub struct CseProgram {
    /// Temporary definitions, in dependency order: `Tmp(k)` is defined
    /// by `defs[k]` and may reference inputs and earlier temporaries.
    pub defs: Vec<LinExpr>,
    /// The rewritten output rows, referencing inputs and temporaries.
    pub rows: Vec<LinExpr>,
}

impl CseProgram {
    /// Wraps rows without performing any elimination (used when the
    /// optimization is disabled for baseline comparisons).
    pub fn identity(rows: Vec<LinExpr>) -> Self {
        CseProgram {
            defs: Vec::new(),
            rows,
        }
    }

    /// Exact evaluation of all output rows for a given input vector —
    /// the semantic reference used by property tests.
    pub fn eval_exact(&self, input: &[Rational]) -> Vec<Rational> {
        let mut tmps: Vec<Rational> = Vec::with_capacity(self.defs.len());
        for def in &self.defs {
            let v = def.eval_exact(input, &tmps);
            tmps.push(v);
        }
        self.rows
            .iter()
            .map(|row| row.eval_exact(input, &tmps))
            .collect()
    }
}

/// A candidate pattern: the unordered pair `(a, b)` with the
/// scale-invariant coefficient ratio `ρ = c_b / c_a` (after fixing
/// `a < b` in node order).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct Pattern {
    a: Node,
    b: Node,
    ratio: Rational,
}

/// Runs greedy two-term CSE over the rows until no pair of terms occurs
/// in more than one expression.
///
/// `min_count` is the minimum number of occurrences that justifies a
/// temporary (2 in the paper's setting: compute once, reuse at least
/// once).
pub fn eliminate_common_subexpressions(rows: Vec<LinExpr>) -> CseProgram {
    let mut defs: Vec<LinExpr> = Vec::new();
    let mut exprs = rows;
    loop {
        match best_pattern(&exprs) {
            Some((pat, count)) if count >= 2 => {
                // Define tmp = a + ρ·b.
                let mut def = LinExpr::term(pat.a, Rational::one());
                def.add_term(pat.b, pat.ratio.clone());
                let tmp = Node::Tmp(defs.len());
                defs.push(def);
                // Substitute into every row that contains the pattern:
                // occurrences use scale λ = coeff(a). Definitions never
                // need rewriting — each is exactly one binary pattern,
                // and all of its occurrences were substituted away the
                // moment it was created.
                for e in exprs.iter_mut() {
                    substitute(e, &pat, tmp);
                }
            }
            _ => break,
        }
    }
    CseProgram { defs, rows: exprs }
}

/// Finds the pattern with the highest occurrence count across the
/// rows, breaking ties deterministically by pattern order.
fn best_pattern(exprs: &[LinExpr]) -> Option<(Pattern, usize)> {
    let mut counts: HashMap<Pattern, usize> = HashMap::new();
    for e in exprs.iter() {
        let terms: Vec<(&Node, &Rational)> = e.iter().collect();
        for i in 0..terms.len() {
            for j in i + 1..terms.len() {
                let (na, ca) = terms[i];
                let (nb, cb) = terms[j];
                let pat = Pattern {
                    a: *na,
                    b: *nb,
                    ratio: cb / ca,
                };
                *counts.entry(pat).or_insert(0) += 1;
            }
        }
    }
    counts
        .into_iter()
        .max_by(|(p1, c1), (p2, c2)| c1.cmp(c2).then_with(|| pattern_order(p2, p1)))
}

/// Deterministic total order on patterns for tie-breaking.
fn pattern_order(x: &Pattern, y: &Pattern) -> std::cmp::Ordering {
    (x.a, x.b, &x.ratio).cmp(&(y.a, y.b, &y.ratio))
}

/// If `e` contains `λ·(a + ρ·b)` for some λ, replaces those two terms
/// by `λ·tmp`.
fn substitute(e: &mut LinExpr, pat: &Pattern, tmp: Node) {
    let ca = e.coeff(&pat.a);
    if ca.is_zero() {
        return;
    }
    let cb = e.coeff(&pat.b);
    if cb.is_zero() {
        return;
    }
    if &cb / &ca != pat.ratio {
        return;
    }
    e.remove_term(&pat.a);
    e.remove_term(&pat.b);
    e.add_term(tmp, ca);
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_num::RatMat;

    use crate::expr::symbolic_matvec;

    fn r(a: i64, b: i64) -> Rational {
        Rational::from_frac(a, b)
    }

    /// The paper's running example (Figure 3): the F(2,3) filter
    /// transform G with a sign-flipped first row. CSE must hoist
    /// t = g0 + g2 shared by rows 1 and 2.
    #[test]
    fn figure3_filter_transform() {
        let g = RatMat::parse_rows(&["-1 0 0", "1/2 1/2 1/2", "1/2 -1/2 1/2", "0 0 1"]).unwrap();
        let rows = symbolic_matvec(&g);
        let prog = eliminate_common_subexpressions(rows);
        assert_eq!(prog.defs.len(), 1);
        let def = &prog.defs[0];
        assert_eq!(def.coeff(&Node::In(0)), r(1, 1));
        assert_eq!(def.coeff(&Node::In(2)), r(1, 1));
        // Rows 1 and 2 now reference the temporary.
        assert!(prog.rows[1].contains(&Node::Tmp(0)));
        assert!(prog.rows[2].contains(&Node::Tmp(0)));
        assert_eq!(prog.rows[1].len(), 2);
        assert_eq!(prog.rows[2].len(), 2);
        // Rows 0 and 3 are untouched single terms.
        assert_eq!(prog.rows[0].len(), 1);
        assert_eq!(prog.rows[3].len(), 1);
    }

    #[test]
    fn semantics_preserved_exactly() {
        let g = RatMat::parse_rows(&["1 0 0", "1/2 1/2 1/2", "1/2 -1/2 1/2", "0 0 1"]).unwrap();
        let rows = symbolic_matvec(&g);
        let prog = eliminate_common_subexpressions(rows);
        let input = vec![r(3, 1), r(-5, 7), r(11, 4)];
        let got = prog.eval_exact(&input);
        let expect = g.matvec(&input).unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn scale_invariant_matching() {
        // r0 = 1/2 a + 1/2 b ; r1 = -1/4 a - 1/4 b — same pattern up to
        // scale, must share one temporary t = a + b.
        let mut r0 = LinExpr::term(Node::In(0), r(1, 2));
        r0.add_term(Node::In(1), r(1, 2));
        let mut r1 = LinExpr::term(Node::In(0), r(-1, 4));
        r1.add_term(Node::In(1), r(-1, 4));
        let prog = eliminate_common_subexpressions(vec![r0, r1]);
        assert_eq!(prog.defs.len(), 1);
        assert_eq!(prog.rows[0].coeff(&Node::Tmp(0)), r(1, 2));
        assert_eq!(prog.rows[1].coeff(&Node::Tmp(0)), r(-1, 4));
    }

    #[test]
    fn no_false_sharing() {
        // a + b vs a - b: ratios differ; no temporary is worth it.
        let mut r0 = LinExpr::term(Node::In(0), r(1, 1));
        r0.add_term(Node::In(1), r(1, 1));
        let mut r1 = LinExpr::term(Node::In(0), r(1, 1));
        r1.add_term(Node::In(1), r(-1, 1));
        let prog = eliminate_common_subexpressions(vec![r0.clone(), r1.clone()]);
        assert!(prog.defs.is_empty());
        assert_eq!(prog.rows, vec![r0, r1]);
    }

    #[test]
    fn cascaded_temporaries() {
        // Four rows sharing (a+b) and ((a+b)+c) chains exercise
        // tmp-of-tmp patterns.
        let mk = |coeffs: &[(usize, (i64, i64))]| {
            let mut e = LinExpr::zero();
            for (i, (n, d)) in coeffs {
                e.add_term(Node::In(*i), r(*n, *d));
            }
            e
        };
        let rows = vec![
            mk(&[(0, (1, 1)), (1, (1, 1)), (2, (1, 1))]),
            mk(&[(0, (1, 2)), (1, (1, 2)), (2, (1, 2))]),
            mk(&[(0, (1, 1)), (1, (1, 1))]),
            mk(&[(0, (-1, 1)), (1, (-1, 1))]),
        ];
        let expect: Vec<Vec<Rational>> = {
            let input = vec![r(2, 3), r(-7, 5), r(9, 2)];
            vec![rows.iter().map(|e| e.eval_exact(&input, &[])).collect()]
        };
        let prog = eliminate_common_subexpressions(rows);
        assert!(!prog.defs.is_empty());
        let input = vec![r(2, 3), r(-7, 5), r(9, 2)];
        assert_eq!(prog.eval_exact(&input), expect[0]);
        // t0 = a + b must serve all four rows, directly or through a
        // cascaded temporary (t1 = t0 + c).
        let uses = prog
            .rows
            .iter()
            .chain(prog.defs.iter().skip(1))
            .filter(|e| e.contains(&Node::Tmp(0)))
            .count();
        assert!(uses >= 3, "expected wide reuse, got {uses} uses");
    }

    #[test]
    fn empty_and_single_rows_pass_through() {
        let rows = vec![LinExpr::zero(), LinExpr::term(Node::In(0), r(2, 1))];
        let prog = eliminate_common_subexpressions(rows.clone());
        assert!(prog.defs.is_empty());
        assert_eq!(prog.rows, rows);
    }
}
