//! Factorization and lowering of expressions to recipe instructions.
//!
//! Implements steps 3 and 5 of the paper's pipeline (§3.1.2):
//! *factorization* groups terms that share a rational coefficient
//! magnitude so the scale is applied once (`½·a + ½·b → ½·(a+b)`), and
//! *code generation* folds the resulting sums into a minimal
//! straight-line instruction sequence, optionally fusing
//! multiply-plus-add pairs into FMA instructions (§3.2.1).

use std::collections::BTreeMap;

use wino_num::{RatMat, Rational};

use crate::cse::{eliminate_common_subexpressions, CseProgram};
use crate::expr::{symbolic_matvec, LinExpr, Node};
use crate::recipe::{Instr, Recipe, Reg};

/// Switches for the optimization pipeline. Disabling individual stages
/// yields the ablation variants compared in the paper's Figures 5–6.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecipeOptions {
    /// Run cross-row common-subexpression elimination (step 4).
    pub cse: bool,
    /// Group same-magnitude coefficients per row (step 3).
    pub factorize: bool,
    /// Emit fused multiply-add instructions where profitable (§3.2.1 —
    /// disabled for targets without FMA support).
    pub fma: bool,
}

impl Default for RecipeOptions {
    fn default() -> Self {
        RecipeOptions {
            cse: true,
            factorize: true,
            fma: true,
        }
    }
}

impl RecipeOptions {
    /// All optimizations enabled (the paper's "optimized" variant).
    pub fn optimized() -> Self {
        Self::default()
    }

    /// Everything off: straight lowering of the sparse rows. Trivial
    /// ×0/×1 elimination still applies because it is inherent to the
    /// sparse representation.
    pub fn minimal() -> Self {
        RecipeOptions {
            cse: false,
            factorize: false,
            fma: false,
        }
    }
}

/// Generates an optimized recipe computing `t · x`.
///
/// This is the top-level entry of the symbolic pipeline: symbolic
/// matrix-vector product → (optional) CSE → (optional) factorization →
/// instruction lowering. The result always satisfies
/// `recipe.eval_exact(x) == t.matvec(x)` — property-tested in this
/// crate and again, per transform, in `wino-transform`.
pub fn generate_recipe(t: &RatMat, opts: &RecipeOptions) -> Recipe {
    let rows = symbolic_matvec(t);
    let prog = if opts.cse {
        eliminate_common_subexpressions(rows)
    } else {
        CseProgram::identity(rows)
    };
    lower_program(&prog, t.cols(), opts)
}

/// Generates the *naive* executable recipe: a dense dot product per
/// output row that multiplies every matrix entry — zeros and ones
/// included — exactly like the baseline matrix-multiplication kernels
/// the paper compares against in Figures 5 and 6.
pub fn generate_naive_recipe(t: &RatMat) -> Recipe {
    let mut lw = Lowerer::new(0);
    for i in 0..t.rows() {
        let mut acc: Option<Reg> = None;
        for j in 0..t.cols() {
            let prod = lw.fresh();
            lw.instrs.push(Instr::Mul {
                dst: prod,
                c: t[(i, j)].clone(),
                a: Reg::In(j),
            });
            acc = Some(match acc {
                None => prod,
                Some(prev) => {
                    let is_last = j == t.cols() - 1;
                    let dst = if is_last { Reg::Out(i) } else { lw.fresh() };
                    lw.instrs.push(Instr::Add {
                        dst,
                        a: prev,
                        b: prod,
                    });
                    dst
                }
            });
        }
        match acc {
            Some(Reg::Out(_)) => {}
            Some(reg) => lw.instrs.push(Instr::Copy {
                dst: Reg::Out(i),
                src: reg,
            }),
            None => lw.instrs.push(Instr::Zero { dst: Reg::Out(i) }),
        }
    }
    let recipe = Recipe {
        n_in: t.cols(),
        n_out: t.rows(),
        n_tmp: lw.next_tmp,
        instrs: lw.instrs,
    };
    debug_assert_eq!(recipe.validate(), Ok(()));
    recipe
}

/// Lowers a CSE program into a recipe. `n_in` is the input arity (the
/// transform matrix column count).
pub fn lower_program(prog: &CseProgram, n_in: usize, opts: &RecipeOptions) -> Recipe {
    let mut lw = Lowerer::new(prog.defs.len());
    // Temporary definitions first, in dependency order.
    for (k, def) in prog.defs.iter().enumerate() {
        lw.lower_expr(def, Reg::Tmp(k), opts);
    }
    for (i, row) in prog.rows.iter().enumerate() {
        lw.lower_expr(row, Reg::Out(i), opts);
    }
    let recipe = Recipe {
        n_in,
        n_out: prog.rows.len(),
        n_tmp: lw.next_tmp,
        instrs: lw.instrs,
    };
    debug_assert_eq!(recipe.validate(), Ok(()));
    recipe
}

/// One additive contribution to a row: `coeff * reg`.
struct Item {
    coeff: Rational,
    reg: Reg,
}

struct Lowerer {
    instrs: Vec<Instr>,
    next_tmp: usize,
}

impl Lowerer {
    fn new(cse_tmps: usize) -> Self {
        Lowerer {
            instrs: Vec::new(),
            next_tmp: cse_tmps,
        }
    }

    fn fresh(&mut self) -> Reg {
        let r = Reg::Tmp(self.next_tmp);
        self.next_tmp += 1;
        r
    }

    fn node_reg(node: &Node) -> Reg {
        match node {
            Node::In(i) => Reg::In(*i),
            Node::Tmp(t) => Reg::Tmp(*t),
        }
    }

    /// Lowers `expr` and writes the result to `dst`.
    fn lower_expr(&mut self, expr: &LinExpr, dst: Reg, opts: &RecipeOptions) {
        if expr.is_zero() {
            self.instrs.push(Instr::Zero { dst });
            return;
        }
        let items = self.build_items(expr, opts);
        self.fold_items(items, dst, opts);
    }

    /// Turns an expression into additive items, materializing factored
    /// group sums as scratch temporaries.
    fn build_items(&mut self, expr: &LinExpr, opts: &RecipeOptions) -> Vec<Item> {
        if !opts.factorize {
            return expr
                .iter()
                .map(|(n, c)| Item {
                    coeff: c.clone(),
                    reg: Self::node_reg(n),
                })
                .collect();
        }
        // Group terms by coefficient magnitude.
        let mut groups: BTreeMap<Rational, Vec<(Node, bool)>> = BTreeMap::new();
        for (node, c) in expr.iter() {
            groups
                .entry(c.abs())
                .or_default()
                .push((*node, c.is_negative()));
        }
        let mut items = Vec::new();
        for (mag, members) in groups {
            let factorable = members.len() >= 2 && !mag.is_one();
            if factorable {
                // Σ ±tᵢ computed once, scaled once. Start from a
                // positive member when one exists; otherwise factor
                // out the negated magnitude.
                let (coeff, members) = if let Some(pos) = members.iter().position(|(_, neg)| !neg) {
                    let mut m = members;
                    m.swap(0, pos);
                    (mag.clone(), m)
                } else {
                    let flipped: Vec<(Node, bool)> =
                        members.into_iter().map(|(n, _)| (n, false)).collect();
                    (-&mag, flipped)
                };
                let mut acc = Self::node_reg(&members[0].0);
                for (node, neg) in &members[1..] {
                    let next = self.fresh();
                    let reg = Self::node_reg(node);
                    self.instrs.push(if *neg {
                        Instr::Sub {
                            dst: next,
                            a: acc,
                            b: reg,
                        }
                    } else {
                        Instr::Add {
                            dst: next,
                            a: acc,
                            b: reg,
                        }
                    });
                    acc = next;
                }
                items.push(Item { coeff, reg: acc });
            } else {
                for (node, neg) in members {
                    let coeff = if neg { -&mag } else { mag.clone() };
                    items.push(Item {
                        coeff,
                        reg: Self::node_reg(&node),
                    });
                }
            }
        }
        items
    }

    /// Folds additive items into `dst` with a minimal accumulation
    /// chain.
    fn fold_items(&mut self, mut items: Vec<Item>, dst: Reg, opts: &RecipeOptions) {
        debug_assert!(!items.is_empty());
        // Single item: one terminal instruction.
        if items.len() == 1 {
            let Item { coeff, reg } = items.pop().expect("non-empty");
            self.instrs.push(if coeff.is_one() {
                Instr::Copy { dst, src: reg }
            } else if coeff.is_neg_one() {
                Instr::Neg { dst, src: reg }
            } else {
                Instr::Mul {
                    dst,
                    c: coeff,
                    a: reg,
                }
            });
            return;
        }
        // All-negative sums are computed positively and negated once at
        // the end — cheaper than a leading negation.
        if items.iter().all(|i| i.coeff.is_negative()) {
            for item in &mut items {
                item.coeff = -&item.coeff;
            }
            let inner = self.fresh();
            self.fold_items(items, inner, opts);
            self.instrs.push(Instr::Neg { dst, src: inner });
            return;
        }
        // Start the accumulator from a unit-coefficient item when one
        // exists (no multiply), otherwise from any positive item.
        let start = items
            .iter()
            .position(|i| i.coeff.is_one())
            .or_else(|| items.iter().position(|i| !i.coeff.is_negative()))
            .expect("at least one non-negative item");
        items.swap(0, start);
        let first = &items[0];
        let mut acc = if first.coeff.is_one() {
            first.reg
        } else {
            let t = self.fresh();
            self.instrs.push(Instr::Mul {
                dst: t,
                c: first.coeff.clone(),
                a: first.reg,
            });
            t
        };
        let n = items.len();
        for (k, item) in items.iter().enumerate().skip(1) {
            let target = if k == n - 1 { dst } else { self.fresh() };
            if item.coeff.is_one() {
                self.instrs.push(Instr::Add {
                    dst: target,
                    a: acc,
                    b: item.reg,
                });
            } else if item.coeff.is_neg_one() {
                self.instrs.push(Instr::Sub {
                    dst: target,
                    a: acc,
                    b: item.reg,
                });
            } else if opts.fma {
                self.instrs.push(Instr::Fma {
                    dst: target,
                    c: item.coeff.clone(),
                    a: item.reg,
                    b: acc,
                });
            } else if item.coeff.is_negative() {
                let prod = self.fresh();
                self.instrs.push(Instr::Mul {
                    dst: prod,
                    c: -&item.coeff,
                    a: item.reg,
                });
                self.instrs.push(Instr::Sub {
                    dst: target,
                    a: acc,
                    b: prod,
                });
            } else {
                let prod = self.fresh();
                self.instrs.push(Instr::Mul {
                    dst: prod,
                    c: item.coeff.clone(),
                    a: item.reg,
                });
                self.instrs.push(Instr::Add {
                    dst: target,
                    a: acc,
                    b: prod,
                });
            }
            acc = target;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recipe::OpCount;

    fn f23_g() -> RatMat {
        RatMat::parse_rows(&["1 0 0", "1/2 1/2 1/2", "1/2 -1/2 1/2", "0 0 1"]).unwrap()
    }

    fn f23_bt() -> RatMat {
        RatMat::parse_rows(&["1 0 -1 0", "0 1 1 0", "0 -1 1 0", "0 1 0 -1"]).unwrap()
    }

    fn check_semantics(t: &RatMat, recipe: &Recipe) {
        recipe.validate().unwrap();
        // A handful of structured probes catches any linear-map error:
        // unit vectors recover the matrix columns exactly.
        for j in 0..t.cols() {
            let mut x = vec![Rational::zero(); t.cols()];
            x[j] = Rational::one();
            let got = recipe.eval_exact(&x);
            let expect = t.matvec(&x).unwrap();
            assert_eq!(got, expect, "column {j} mismatch");
        }
        // And one dense rational probe for coefficient mixing.
        let x: Vec<Rational> = (0..t.cols())
            .map(|k| Rational::from_frac(2 * k as i64 + 1, 3))
            .collect();
        assert_eq!(recipe.eval_exact(&x), t.matvec(&x).unwrap());
    }

    #[test]
    fn optimized_recipe_is_correct_and_small() {
        let g = f23_g();
        let recipe = generate_recipe(&g, &RecipeOptions::optimized());
        check_semantics(&g, &recipe);
        // Paper Figure 3: t = g0+g2; rows 1/2 are ½(t ± g1); rows 0/3
        // are copies → 3 adds + 2 muls.
        let c = recipe.op_count();
        assert_eq!(c.add, 3, "recipe:\n{recipe}");
        assert_eq!(c.mul, 2, "recipe:\n{recipe}");
        assert_eq!(c.fma, 0);
    }

    #[test]
    fn input_transform_needs_no_multiplies() {
        let bt = f23_bt();
        let recipe = generate_recipe(&bt, &RecipeOptions::optimized());
        check_semantics(&bt, &recipe);
        let c = recipe.op_count();
        assert_eq!(c.mul, 0);
        assert_eq!(c.fma, 0);
        assert_eq!(c.add, 4); // one subtraction per output row
    }

    #[test]
    fn naive_recipe_counts_everything() {
        let g = f23_g();
        let recipe = generate_naive_recipe(&g);
        check_semantics(&g, &recipe);
        let c = recipe.op_count();
        let naive = OpCount::naive_matvec(4, 3);
        assert_eq!(c.mul, naive.mul);
        assert_eq!(c.add, naive.add);
    }

    #[test]
    fn optimized_never_worse_than_minimal() {
        let g = f23_g();
        let opt = generate_recipe(&g, &RecipeOptions::optimized()).op_count();
        let min = generate_recipe(&g, &RecipeOptions::minimal()).op_count();
        assert!(opt.total_unfused() <= min.total_unfused());
    }

    #[test]
    fn fma_toggle_changes_encoding_not_semantics() {
        // Row with mixed coefficients exercises the FMA path.
        let t = RatMat::parse_rows(&["1 1/2 -2/3"]).unwrap();
        let with = generate_recipe(
            &t,
            &RecipeOptions {
                fma: true,
                ..Default::default()
            },
        );
        let without = generate_recipe(
            &t,
            &RecipeOptions {
                fma: false,
                ..Default::default()
            },
        );
        check_semantics(&t, &with);
        check_semantics(&t, &without);
        assert!(with.op_count().fma > 0);
        assert_eq!(without.op_count().fma, 0);
    }

    #[test]
    fn all_negative_row_is_negated_once() {
        let t = RatMat::parse_rows(&["-1 -1 -1"]).unwrap();
        let recipe = generate_recipe(&t, &RecipeOptions::optimized());
        check_semantics(&t, &recipe);
        let c = recipe.op_count();
        assert_eq!(c.add, 2);
        assert_eq!(c.mul, 0);
        assert_eq!(c.neg, 1);
    }

    #[test]
    fn zero_row_writes_zero() {
        let t = RatMat::parse_rows(&["0 0", "1 1"]).unwrap();
        let recipe = generate_recipe(&t, &RecipeOptions::optimized());
        check_semantics(&t, &recipe);
        assert!(recipe
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::Zero { .. })));
    }

    #[test]
    fn factorization_groups_magnitudes() {
        // ½a + ½b + ½c → ½·((a+b)+c): 2 adds + 1 mul instead of 3 muls.
        let t = RatMat::parse_rows(&["1/2 1/2 1/2"]).unwrap();
        let recipe = generate_recipe(
            &t,
            &RecipeOptions {
                cse: false,
                factorize: true,
                fma: false,
            },
        );
        check_semantics(&t, &recipe);
        let c = recipe.op_count();
        assert_eq!(c.mul, 1);
        assert_eq!(c.add, 2);
    }

    #[test]
    fn mixed_sign_factor_group() {
        // ¼a − ¼b: factor ¼·(a−b).
        let t = RatMat::parse_rows(&["1/4 -1/4"]).unwrap();
        let recipe = generate_recipe(&t, &RecipeOptions::optimized());
        check_semantics(&t, &recipe);
        let c = recipe.op_count();
        assert_eq!(c.mul, 1);
        assert_eq!(c.add, 1);
    }

    #[test]
    fn all_negative_factor_group() {
        // −⅓a − ⅓b = (−⅓)·(a+b).
        let t = RatMat::parse_rows(&["-1/3 -1/3"]).unwrap();
        let recipe = generate_recipe(&t, &RecipeOptions::optimized());
        check_semantics(&t, &recipe);
        let c = recipe.op_count();
        assert_eq!(c.mul, 1);
        assert_eq!(c.add, 1);
        assert_eq!(c.neg, 0);
    }

    #[test]
    fn larger_transform_all_variants_agree() {
        // F(4,3) B^T-like structure with fractions: every pipeline
        // combination must produce the same linear map.
        let t = RatMat::parse_rows(&[
            "4 0 -5 0 1 0",
            "0 -4 -4 1 1 0",
            "0 4 -4 -1 1 0",
            "0 -2 -1 2 1 0",
            "0 2 -1 -2 1 0",
            "0 4 0 -5 0 1",
        ])
        .unwrap();
        for cse in [false, true] {
            for factorize in [false, true] {
                for fma in [false, true] {
                    let recipe = generate_recipe(
                        &t,
                        &RecipeOptions {
                            cse,
                            factorize,
                            fma,
                        },
                    );
                    check_semantics(&t, &recipe);
                }
            }
        }
    }
}
