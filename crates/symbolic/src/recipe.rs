//! Straight-line transformation recipes.
//!
//! A [`Recipe`] is the end product of the paper's symbolic pipeline: a
//! minimal sequence of scalar instructions that computes `T · x` for a
//! fixed transformation matrix `T` without ever touching the matrix at
//! runtime. Recipes are one-dimensional; a 2-D Winograd transform
//! `T · X · Tᵀ` applies the same recipe column-wise and then row-wise
//! (the paper's "column-/row-wise index-based representation").

use std::fmt;

use wino_num::Rational;

/// A register reference inside a recipe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Reg {
    /// Input element `i` (read-only).
    In(usize),
    /// Temporary `t` (each written exactly once, SSA-style).
    Tmp(usize),
    /// Output element `o` (write-only).
    Out(usize),
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::In(i) => write!(f, "x{i}"),
            Reg::Tmp(t) => write!(f, "t{t}"),
            Reg::Out(o) => write!(f, "y{o}"),
        }
    }
}

/// One scalar instruction. Constants are exact rationals; numeric
/// backends convert them once at compile time ([`Recipe::compile`]).
///
/// Field naming is uniform across variants: `dst` is written, `a`/`b`/
/// `src` are read, `c` is an immediate constant.
#[derive(Clone, Debug, PartialEq)]
#[allow(missing_docs)]
pub enum Instr {
    /// `dst = 0`
    Zero { dst: Reg },
    /// `dst = src`
    Copy { dst: Reg, src: Reg },
    /// `dst = -src`
    Neg { dst: Reg, src: Reg },
    /// `dst = a + b`
    Add { dst: Reg, a: Reg, b: Reg },
    /// `dst = a - b`
    Sub { dst: Reg, a: Reg, b: Reg },
    /// `dst = c * a`
    Mul { dst: Reg, c: Rational, a: Reg },
    /// `dst = c * a + b` (fused multiply-add)
    Fma {
        dst: Reg,
        c: Rational,
        a: Reg,
        b: Reg,
    },
}

impl Instr {
    /// Destination register of the instruction.
    pub fn dst(&self) -> Reg {
        match self {
            Instr::Zero { dst }
            | Instr::Copy { dst, .. }
            | Instr::Neg { dst, .. }
            | Instr::Add { dst, .. }
            | Instr::Sub { dst, .. }
            | Instr::Mul { dst, .. }
            | Instr::Fma { dst, .. } => *dst,
        }
    }

    /// Source registers of the instruction.
    pub fn srcs(&self) -> Vec<Reg> {
        match self {
            Instr::Zero { .. } => vec![],
            Instr::Copy { src, .. } | Instr::Neg { src, .. } => vec![*src],
            Instr::Add { a, b, .. } | Instr::Sub { a, b, .. } => vec![*a, *b],
            Instr::Mul { a, .. } => vec![*a],
            Instr::Fma { a, b, .. } => vec![*a, *b],
        }
    }
}

/// Arithmetic-operation tally of a recipe or kernel fragment, used to
/// regenerate Figure 5 of the paper.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCount {
    /// Additions and subtractions.
    pub add: usize,
    /// Multiplications by a constant.
    pub mul: usize,
    /// Fused multiply-adds.
    pub fma: usize,
    /// Sign flips (free on every target the paper considers: folded
    /// into the consuming instruction by the backend compiler).
    pub neg: usize,
    /// Register moves (also free after register allocation).
    pub copy: usize,
}

impl OpCount {
    /// Total *costed* arithmetic: adds + muls + FMAs (an FMA is one
    /// instruction — that is precisely why the paper fuses them).
    pub fn total(&self) -> usize {
        self.add + self.mul + self.fma
    }

    /// Total counting an FMA as two operations (one add + one mul) —
    /// the convention used when comparing against a baseline that has
    /// no FMA support.
    pub fn total_unfused(&self) -> usize {
        self.add + self.mul + 2 * self.fma
    }

    /// Component-wise sum.
    pub fn merge(&self, other: &OpCount) -> OpCount {
        OpCount {
            add: self.add + other.add,
            mul: self.mul + other.mul,
            fma: self.fma + other.fma,
            neg: self.neg + other.neg,
            copy: self.copy + other.copy,
        }
    }

    /// Component-wise scale (e.g. per-column recipe × column count).
    pub fn scale(&self, k: usize) -> OpCount {
        OpCount {
            add: self.add * k,
            mul: self.mul * k,
            fma: self.fma * k,
            neg: self.neg * k,
            copy: self.copy * k,
        }
    }

    /// Op count of a naive dense `p×q` matrix-vector product that
    /// multiplies and accumulates every entry, zeros and ones included
    /// — the paper's baseline ("straightforward implementation … using
    /// typical matrix multiplications").
    pub fn naive_matvec(p: usize, q: usize) -> OpCount {
        OpCount {
            add: p * q.saturating_sub(1),
            mul: p * q,
            fma: 0,
            neg: 0,
            copy: 0,
        }
    }
}

impl fmt::Display for OpCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "add={} mul={} fma={} (total={})",
            self.add,
            self.mul,
            self.fma,
            self.total()
        )
    }
}

/// A straight-line program computing `n_out` outputs from `n_in`
/// inputs through `n_tmp` single-assignment temporaries.
#[derive(Clone, Debug, PartialEq)]
pub struct Recipe {
    /// Number of input registers.
    pub n_in: usize,
    /// Number of output registers.
    pub n_out: usize,
    /// Number of temporaries.
    pub n_tmp: usize,
    /// Instructions in execution order.
    pub instrs: Vec<Instr>,
}

impl Recipe {
    /// Tallies the arithmetic operations in the recipe.
    pub fn op_count(&self) -> OpCount {
        let mut c = OpCount::default();
        for i in &self.instrs {
            match i {
                Instr::Zero { .. } => {}
                Instr::Copy { .. } => c.copy += 1,
                Instr::Neg { .. } => c.neg += 1,
                Instr::Add { .. } | Instr::Sub { .. } => c.add += 1,
                Instr::Mul { .. } => c.mul += 1,
                Instr::Fma { .. } => c.fma += 1,
            }
        }
        c
    }

    /// Exact evaluation over rationals — the semantic ground truth used
    /// by property tests (`recipe(x) ≡ T·x` must hold identically).
    ///
    /// Panics if `input.len() != n_in`; recipes are generated together
    /// with their arity, so a mismatch is a caller bug.
    pub fn eval_exact(&self, input: &[Rational]) -> Vec<Rational> {
        assert_eq!(input.len(), self.n_in, "recipe arity mismatch");
        let mut tmps = vec![Rational::zero(); self.n_tmp];
        let mut outs = vec![Rational::zero(); self.n_out];
        for ins in &self.instrs {
            let read = |reg: &Reg, tmps: &[Rational], outs: &[Rational]| -> Rational {
                match reg {
                    Reg::In(i) => input[*i].clone(),
                    Reg::Tmp(t) => tmps[*t].clone(),
                    Reg::Out(o) => outs[*o].clone(),
                }
            };
            let val = match ins {
                Instr::Zero { .. } => Rational::zero(),
                Instr::Copy { src, .. } => read(src, &tmps, &outs),
                Instr::Neg { src, .. } => -read(src, &tmps, &outs),
                Instr::Add { a, b, .. } => &read(a, &tmps, &outs) + &read(b, &tmps, &outs),
                Instr::Sub { a, b, .. } => &read(a, &tmps, &outs) - &read(b, &tmps, &outs),
                Instr::Mul { c, a, .. } => c * &read(a, &tmps, &outs),
                Instr::Fma { c, a, b, .. } => {
                    &(c * &read(a, &tmps, &outs)) + &read(b, &tmps, &outs)
                }
            };
            match ins.dst() {
                Reg::In(_) => unreachable!("inputs are read-only"),
                Reg::Tmp(t) => tmps[t] = val,
                Reg::Out(o) => outs[o] = val,
            }
        }
        outs
    }

    /// Compiles to a fast numeric executor with pre-converted
    /// constants and a flat register file.
    pub fn compile<T: RecipeScalar>(&self) -> CompiledRecipe<T> {
        let base_tmp = self.n_in;
        let base_out = self.n_in + self.n_tmp;
        let slot = |r: Reg| -> usize {
            match r {
                Reg::In(i) => i,
                Reg::Tmp(t) => base_tmp + t,
                Reg::Out(o) => base_out + o,
            }
        };
        let ops = self
            .instrs
            .iter()
            .map(|ins| match ins {
                Instr::Zero { dst } => CompiledOp::Zero { dst: slot(*dst) },
                Instr::Copy { dst, src } => CompiledOp::Copy {
                    dst: slot(*dst),
                    src: slot(*src),
                },
                Instr::Neg { dst, src } => CompiledOp::Neg {
                    dst: slot(*dst),
                    src: slot(*src),
                },
                Instr::Add { dst, a, b } => CompiledOp::Add {
                    dst: slot(*dst),
                    a: slot(*a),
                    b: slot(*b),
                },
                Instr::Sub { dst, a, b } => CompiledOp::Sub {
                    dst: slot(*dst),
                    a: slot(*a),
                    b: slot(*b),
                },
                Instr::Mul { dst, c, a } => CompiledOp::Mul {
                    dst: slot(*dst),
                    c: T::from_rational(c),
                    a: slot(*a),
                },
                Instr::Fma { dst, c, a, b } => CompiledOp::Fma {
                    dst: slot(*dst),
                    c: T::from_rational(c),
                    a: slot(*a),
                    b: slot(*b),
                },
            })
            .collect();
        CompiledRecipe {
            n_in: self.n_in,
            n_out: self.n_out,
            regs: self.n_in + self.n_tmp + self.n_out,
            base_out,
            ops,
        }
    }

    /// Renders the recipe as C-like statements using the provided
    /// register and constant formatters — the hook the code generator
    /// uses to splice recipes into kernel templates.
    pub fn render(
        &self,
        mut reg_name: impl FnMut(Reg) -> String,
        mut const_lit: impl FnMut(&Rational) -> String,
    ) -> String {
        let mut out = String::new();
        for ins in &self.instrs {
            let line = match ins {
                Instr::Zero { dst } => format!("{} = 0;", reg_name(*dst)),
                Instr::Copy { dst, src } => {
                    format!("{} = {};", reg_name(*dst), reg_name(*src))
                }
                Instr::Neg { dst, src } => {
                    format!("{} = -{};", reg_name(*dst), reg_name(*src))
                }
                Instr::Add { dst, a, b } => {
                    format!("{} = {} + {};", reg_name(*dst), reg_name(*a), reg_name(*b))
                }
                Instr::Sub { dst, a, b } => {
                    format!("{} = {} - {};", reg_name(*dst), reg_name(*a), reg_name(*b))
                }
                Instr::Mul { dst, c, a } => {
                    format!("{} = {} * {};", reg_name(*dst), const_lit(c), reg_name(*a))
                }
                Instr::Fma { dst, c, a, b } => format!(
                    "{} = fmaf({}, {}, {});",
                    reg_name(*dst),
                    const_lit(c),
                    reg_name(*a),
                    reg_name(*b)
                ),
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Order-sensitive 64-bit FNV-1a fingerprint of the recipe's
    /// structure: arities, instruction sequence, register operands,
    /// and constants hashed by their f32 bit pattern (exactly the
    /// value a compiled kernel bakes in). Generated kernels carry the
    /// fingerprint of the recipe they were emitted from; runtime
    /// dispatch refuses a kernel whose fingerprint does not match the
    /// recipe it would replace.
    pub fn fingerprint(&self) -> u64 {
        const PRIME: u64 = 0x100000001b3;
        fn eat(h: u64, bytes: &[u8]) -> u64 {
            bytes
                .iter()
                .fold(h, |h, &b| (h ^ b as u64).wrapping_mul(PRIME))
        }
        fn eat_reg(h: u64, r: Reg) -> u64 {
            let (kind, idx) = match r {
                Reg::In(i) => (0u8, i),
                Reg::Tmp(t) => (1u8, t),
                Reg::Out(o) => (2u8, o),
            };
            eat(eat(h, &[kind]), &(idx as u32).to_le_bytes())
        }
        let mut h = 0xcbf29ce484222325u64;
        for arity in [self.n_in, self.n_out, self.n_tmp] {
            h = eat(h, &(arity as u32).to_le_bytes());
        }
        for ins in &self.instrs {
            h = match ins {
                Instr::Zero { dst } => eat_reg(eat(h, &[0]), *dst),
                Instr::Copy { dst, src } => eat_reg(eat_reg(eat(h, &[1]), *dst), *src),
                Instr::Neg { dst, src } => eat_reg(eat_reg(eat(h, &[2]), *dst), *src),
                Instr::Add { dst, a, b } => eat_reg(eat_reg(eat_reg(eat(h, &[3]), *dst), *a), *b),
                Instr::Sub { dst, a, b } => eat_reg(eat_reg(eat_reg(eat(h, &[4]), *dst), *a), *b),
                Instr::Mul { dst, c, a } => {
                    let h = eat(eat(h, &[5]), &c.to_f32().to_bits().to_le_bytes());
                    eat_reg(eat_reg(h, *dst), *a)
                }
                Instr::Fma { dst, c, a, b } => {
                    let h = eat(eat(h, &[6]), &c.to_f32().to_bits().to_le_bytes());
                    eat_reg(eat_reg(eat_reg(h, *dst), *a), *b)
                }
            };
        }
        h
    }

    /// Maximum number of *simultaneously live* temporaries — what a
    /// register allocator actually needs, as opposed to the SSA count
    /// `n_tmp`. A temporary is live from its defining instruction to
    /// its last use.
    pub fn max_live_tmps(&self) -> usize {
        let mut last_use = vec![0usize; self.n_tmp];
        for (k, ins) in self.instrs.iter().enumerate() {
            for src in ins.srcs() {
                if let Reg::Tmp(t) = src {
                    last_use[t] = k;
                }
            }
        }
        let mut live = 0usize;
        let mut peak = 0usize;
        let mut expiring_at: Vec<Vec<usize>> = vec![Vec::new(); self.instrs.len() + 1];
        for (k, ins) in self.instrs.iter().enumerate() {
            if let Reg::Tmp(t) = ins.dst() {
                live += 1;
                peak = peak.max(live);
                expiring_at[last_use[t].max(k)].push(t);
            }
            for _ in &expiring_at[k] {
                live = live.saturating_sub(1);
            }
        }
        peak
    }

    /// Validates structural invariants: SSA temporaries, no reads of
    /// unwritten registers, every output written exactly once, indices
    /// in range. Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let mut tmp_written = vec![false; self.n_tmp];
        let mut out_written = vec![false; self.n_out];
        for (k, ins) in self.instrs.iter().enumerate() {
            for src in ins.srcs() {
                match src {
                    Reg::In(i) if i >= self.n_in => {
                        return Err(format!("instr {k}: input x{i} out of range"))
                    }
                    Reg::Tmp(t) if t >= self.n_tmp => {
                        return Err(format!("instr {k}: tmp t{t} out of range"))
                    }
                    Reg::Tmp(t) if !tmp_written[t] => {
                        return Err(format!("instr {k}: tmp t{t} read before write"))
                    }
                    Reg::Out(_) => return Err(format!("instr {k}: outputs are write-only")),
                    _ => {}
                }
            }
            match ins.dst() {
                Reg::In(i) => return Err(format!("instr {k}: write to input x{i}")),
                Reg::Tmp(t) if t >= self.n_tmp => {
                    return Err(format!("instr {k}: tmp t{t} out of range"))
                }
                Reg::Tmp(t) if tmp_written[t] => {
                    return Err(format!("instr {k}: tmp t{t} written twice"))
                }
                Reg::Tmp(t) => tmp_written[t] = true,
                Reg::Out(o) if o >= self.n_out => {
                    return Err(format!("instr {k}: output y{o} out of range"))
                }
                Reg::Out(o) if out_written[o] => {
                    return Err(format!("instr {k}: output y{o} written twice"))
                }
                Reg::Out(o) => out_written[o] = true,
            }
        }
        if let Some(o) = out_written.iter().position(|w| !w) {
            return Err(format!("output y{o} never written"));
        }
        Ok(())
    }
}

impl fmt::Display for Recipe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render(|r| r.to_string(), |c| c.to_string()))
    }
}

/// Scalar types a recipe can be compiled for.
pub trait RecipeScalar: Copy + Default {
    /// Converts an exact rational constant into the scalar type.
    fn from_rational(r: &Rational) -> Self;
    /// `a + b`
    fn add(a: Self, b: Self) -> Self;
    /// `a - b`
    fn sub(a: Self, b: Self) -> Self;
    /// `a * b`
    fn mul(a: Self, b: Self) -> Self;
    /// `c * a + b`, fused where the type supports it.
    fn fma(c: Self, a: Self, b: Self) -> Self;
    /// `-a`
    fn neg(a: Self) -> Self;
}

impl RecipeScalar for f32 {
    fn from_rational(r: &Rational) -> Self {
        r.to_f32()
    }
    fn add(a: Self, b: Self) -> Self {
        a + b
    }
    fn sub(a: Self, b: Self) -> Self {
        a - b
    }
    fn mul(a: Self, b: Self) -> Self {
        a * b
    }
    fn fma(c: Self, a: Self, b: Self) -> Self {
        c.mul_add(a, b)
    }
    fn neg(a: Self) -> Self {
        -a
    }
}

impl RecipeScalar for f64 {
    fn from_rational(r: &Rational) -> Self {
        r.to_f64()
    }
    fn add(a: Self, b: Self) -> Self {
        a + b
    }
    fn sub(a: Self, b: Self) -> Self {
        a - b
    }
    fn mul(a: Self, b: Self) -> Self {
        a * b
    }
    fn fma(c: Self, a: Self, b: Self) -> Self {
        c.mul_add(a, b)
    }
    fn neg(a: Self) -> Self {
        -a
    }
}

/// Flat-register instruction for the compiled executor.
#[derive(Clone, Copy, Debug)]
enum CompiledOp<T> {
    Zero {
        dst: usize,
    },
    Copy {
        dst: usize,
        src: usize,
    },
    Neg {
        dst: usize,
        src: usize,
    },
    Add {
        dst: usize,
        a: usize,
        b: usize,
    },
    Sub {
        dst: usize,
        a: usize,
        b: usize,
    },
    Mul {
        dst: usize,
        c: T,
        a: usize,
    },
    Fma {
        dst: usize,
        c: T,
        a: usize,
        b: usize,
    },
}

/// A recipe compiled for a concrete scalar type: constants converted,
/// registers flattened into one file. This is the executor the CPU
/// convolution engines run in their inner loops.
#[derive(Clone, Debug)]
pub struct CompiledRecipe<T> {
    n_in: usize,
    n_out: usize,
    regs: usize,
    base_out: usize,
    ops: Vec<CompiledOp<T>>,
}

impl<T: RecipeScalar> CompiledRecipe<T> {
    /// Number of inputs.
    pub fn n_in(&self) -> usize {
        self.n_in
    }

    /// Number of outputs.
    pub fn n_out(&self) -> usize {
        self.n_out
    }

    /// Runs the recipe, writing the outputs into `out`.
    ///
    /// `scratch` must have at least [`Self::scratch_len`] elements and
    /// is clobbered. Keeping it caller-owned avoids per-call
    /// allocation in tile loops.
    pub fn run(&self, input: &[T], out: &mut [T], scratch: &mut [T]) {
        debug_assert!(input.len() >= self.n_in);
        debug_assert!(out.len() >= self.n_out);
        debug_assert!(scratch.len() >= self.regs);
        scratch[..self.n_in].copy_from_slice(&input[..self.n_in]);
        for op in &self.ops {
            match *op {
                CompiledOp::Zero { dst } => scratch[dst] = T::default(),
                CompiledOp::Copy { dst, src } => scratch[dst] = scratch[src],
                CompiledOp::Neg { dst, src } => scratch[dst] = T::neg(scratch[src]),
                CompiledOp::Add { dst, a, b } => scratch[dst] = T::add(scratch[a], scratch[b]),
                CompiledOp::Sub { dst, a, b } => scratch[dst] = T::sub(scratch[a], scratch[b]),
                CompiledOp::Mul { dst, c, a } => scratch[dst] = T::mul(c, scratch[a]),
                CompiledOp::Fma { dst, c, a, b } => {
                    scratch[dst] = T::fma(c, scratch[a], scratch[b])
                }
            }
        }
        out[..self.n_out].copy_from_slice(&scratch[self.base_out..self.base_out + self.n_out]);
    }

    /// Required scratch length for [`Self::run`].
    pub fn scratch_len(&self) -> usize {
        self.regs
    }

    /// Convenience wrapper allocating its own buffers.
    pub fn eval(&self, input: &[T]) -> Vec<T> {
        let mut out = vec![T::default(); self.n_out];
        let mut scratch = vec![T::default(); self.regs];
        self.run(input, &mut out, &mut scratch);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(a: i64, b: i64) -> Rational {
        Rational::from_frac(a, b)
    }

    /// Hand-built F(2,3) input-transform recipe (Equations 1–4 of the
    /// paper): v0 = d0-d2, v1 = d1+d2, v2 = d2-d1, v3 = d1-d3.
    fn f23_input_recipe() -> Recipe {
        Recipe {
            n_in: 4,
            n_out: 4,
            n_tmp: 0,
            instrs: vec![
                Instr::Sub {
                    dst: Reg::Out(0),
                    a: Reg::In(0),
                    b: Reg::In(2),
                },
                Instr::Add {
                    dst: Reg::Out(1),
                    a: Reg::In(1),
                    b: Reg::In(2),
                },
                Instr::Sub {
                    dst: Reg::Out(2),
                    a: Reg::In(2),
                    b: Reg::In(1),
                },
                Instr::Sub {
                    dst: Reg::Out(3),
                    a: Reg::In(1),
                    b: Reg::In(3),
                },
            ],
        }
    }

    #[test]
    fn eval_exact_matches_paper_equations() {
        let recipe = f23_input_recipe();
        recipe.validate().unwrap();
        let d = [r(1, 1), r(2, 1), r(3, 1), r(4, 1)];
        let v = recipe.eval_exact(&d);
        assert_eq!(v, vec![r(-2, 1), r(5, 1), r(1, 1), r(-2, 1)]);
    }

    #[test]
    fn compiled_f32_matches_exact() {
        let recipe = f23_input_recipe();
        let compiled = recipe.compile::<f32>();
        let out = compiled.eval(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(out, vec![-2.0, 5.0, 1.0, -2.0]);
    }

    #[test]
    fn op_count_tallies() {
        let recipe = Recipe {
            n_in: 2,
            n_out: 1,
            n_tmp: 1,
            instrs: vec![
                Instr::Add {
                    dst: Reg::Tmp(0),
                    a: Reg::In(0),
                    b: Reg::In(1),
                },
                Instr::Mul {
                    dst: Reg::Out(0),
                    c: r(1, 2),
                    a: Reg::Tmp(0),
                },
            ],
        };
        let c = recipe.op_count();
        assert_eq!(c.add, 1);
        assert_eq!(c.mul, 1);
        assert_eq!(c.total(), 2);
    }

    #[test]
    fn fma_counting_conventions() {
        let c = OpCount {
            add: 2,
            mul: 1,
            fma: 3,
            neg: 0,
            copy: 0,
        };
        assert_eq!(c.total(), 6);
        assert_eq!(c.total_unfused(), 9);
    }

    #[test]
    fn naive_matvec_counts() {
        let c = OpCount::naive_matvec(4, 3);
        assert_eq!(c.mul, 12);
        assert_eq!(c.add, 8);
    }

    #[test]
    fn validate_catches_read_before_write() {
        let recipe = Recipe {
            n_in: 1,
            n_out: 1,
            n_tmp: 1,
            instrs: vec![Instr::Copy {
                dst: Reg::Out(0),
                src: Reg::Tmp(0),
            }],
        };
        assert!(recipe.validate().unwrap_err().contains("read before write"));
    }

    #[test]
    fn validate_catches_missing_output() {
        let recipe = Recipe {
            n_in: 1,
            n_out: 2,
            n_tmp: 0,
            instrs: vec![Instr::Copy {
                dst: Reg::Out(0),
                src: Reg::In(0),
            }],
        };
        assert!(recipe.validate().unwrap_err().contains("never written"));
    }

    #[test]
    fn validate_catches_double_write() {
        let recipe = Recipe {
            n_in: 1,
            n_out: 1,
            n_tmp: 1,
            instrs: vec![
                Instr::Copy {
                    dst: Reg::Tmp(0),
                    src: Reg::In(0),
                },
                Instr::Copy {
                    dst: Reg::Tmp(0),
                    src: Reg::In(0),
                },
                Instr::Copy {
                    dst: Reg::Out(0),
                    src: Reg::Tmp(0),
                },
            ],
        };
        assert!(recipe.validate().unwrap_err().contains("written twice"));
    }

    #[test]
    fn render_produces_c_like_code() {
        let recipe = f23_input_recipe();
        let code = recipe.render(
            |reg| match reg {
                Reg::In(i) => format!("d[{i}]"),
                Reg::Tmp(t) => format!("t{t}"),
                Reg::Out(o) => format!("v[{o}]"),
            },
            |c| format!("{}f", c.to_f32()),
        );
        assert!(code.contains("v[0] = d[0] - d[2];"));
        assert!(code.contains("v[3] = d[1] - d[3];"));
    }

    #[test]
    fn max_live_is_far_below_ssa_count_for_chains() {
        // A long accumulation chain: t0 = x0+x1; t1 = t0+x2; … only
        // two temporaries are ever live at once.
        let n = 16;
        let mut instrs = vec![Instr::Add {
            dst: Reg::Tmp(0),
            a: Reg::In(0),
            b: Reg::In(1),
        }];
        for k in 1..n {
            instrs.push(Instr::Add {
                dst: Reg::Tmp(k),
                a: Reg::Tmp(k - 1),
                b: Reg::In(0),
            });
        }
        instrs.push(Instr::Copy {
            dst: Reg::Out(0),
            src: Reg::Tmp(n - 1),
        });
        let recipe = Recipe {
            n_in: 3,
            n_out: 1,
            n_tmp: n,
            instrs,
        };
        recipe.validate().unwrap();
        assert_eq!(recipe.n_tmp, 16);
        assert!(
            recipe.max_live_tmps() <= 2,
            "got {}",
            recipe.max_live_tmps()
        );
    }

    #[test]
    fn max_live_counts_overlapping_lifetimes() {
        // t0 and t1 both live when t2 is computed.
        let instrs = vec![
            Instr::Add {
                dst: Reg::Tmp(0),
                a: Reg::In(0),
                b: Reg::In(1),
            },
            Instr::Sub {
                dst: Reg::Tmp(1),
                a: Reg::In(0),
                b: Reg::In(1),
            },
            Instr::Add {
                dst: Reg::Tmp(2),
                a: Reg::Tmp(0),
                b: Reg::Tmp(1),
            },
            Instr::Copy {
                dst: Reg::Out(0),
                src: Reg::Tmp(2),
            },
        ];
        let recipe = Recipe {
            n_in: 2,
            n_out: 1,
            n_tmp: 3,
            instrs,
        };
        assert_eq!(recipe.max_live_tmps(), 3);
    }

    #[test]
    fn fingerprint_separates_and_is_stable() {
        let a = f23_input_recipe();
        assert_eq!(a.fingerprint(), f23_input_recipe().fingerprint());
        let mut b = f23_input_recipe();
        b.instrs.swap(0, 1); // order matters
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut c = f23_input_recipe();
        c.instrs.pop();
        c.n_out = 3;
        assert_ne!(a.fingerprint(), c.fingerprint());
        // Constants participate through their f32 bit pattern.
        let mul = |v: Rational| Recipe {
            n_in: 1,
            n_out: 1,
            n_tmp: 0,
            instrs: vec![Instr::Mul {
                dst: Reg::Out(0),
                c: v,
                a: Reg::In(0),
            }],
        };
        assert_ne!(mul(r(1, 2)).fingerprint(), mul(r(1, 4)).fingerprint());
    }

    #[test]
    fn fma_semantics() {
        let recipe = Recipe {
            n_in: 2,
            n_out: 1,
            n_tmp: 0,
            instrs: vec![Instr::Fma {
                dst: Reg::Out(0),
                c: r(1, 2),
                a: Reg::In(0),
                b: Reg::In(1),
            }],
        };
        assert_eq!(recipe.eval_exact(&[r(4, 1), r(1, 1)]), vec![r(3, 1)]);
        assert_eq!(recipe.compile::<f64>().eval(&[4.0, 1.0]), vec![3.0]);
    }
}
