//! Property tests for the symbolic pipeline: every stage combination
//! must preserve the linear map exactly, and optimization must never
//! increase the executable instruction count.

use proptest::prelude::*;
use wino_num::{RatMat, Rational};
use wino_symbolic::{
    eliminate_common_subexpressions, generate_naive_recipe, generate_recipe, symbolic_matvec,
    RecipeOptions,
};

/// Small rationals weighted toward the values Winograd matrices
/// actually contain (0, ±1, ±1/2, ±2, …).
fn arb_coeff() -> impl Strategy<Value = Rational> {
    prop_oneof![
        3 => Just(Rational::zero()),
        2 => Just(Rational::one()),
        2 => Just(Rational::from_int(-1)),
        1 => Just(Rational::from_frac(1, 2)),
        1 => Just(Rational::from_frac(-1, 2)),
        1 => Just(Rational::from_int(2)),
        1 => Just(Rational::from_int(-2)),
        1 => (-12i64..=12, 1i64..=6).prop_map(|(a, b)| Rational::from_frac(a, b)),
    ]
}

fn arb_matrix(max_dim: usize) -> impl Strategy<Value = RatMat> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(move |(rows, cols)| {
        proptest::collection::vec(arb_coeff(), rows * cols)
            .prop_map(move |vals| RatMat::from_fn(rows, cols, |i, j| vals[i * cols + j].clone()))
    })
}

fn arb_input(len: usize) -> impl Strategy<Value = Vec<Rational>> {
    proptest::collection::vec(
        (-20i64..=20, 1i64..=7).prop_map(|(a, b)| Rational::from_frac(a, b)),
        len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The fundamental soundness property: for any matrix and any
    /// pipeline-switch combination, recipe(x) == T·x exactly.
    #[test]
    fn every_pipeline_preserves_the_linear_map(
        t in arb_matrix(7),
        x in arb_input(7),
        cse in any::<bool>(),
        factorize in any::<bool>(),
        fma in any::<bool>(),
    ) {
        prop_assume!(x.len() >= t.cols());
        let input = &x[..t.cols()];
        let recipe = generate_recipe(&t, &RecipeOptions { cse, factorize, fma });
        recipe.validate().unwrap();
        prop_assert_eq!(recipe.eval_exact(input), t.matvec(input).unwrap());
    }

    /// The naive dense recipe is also exact (zeros multiply, but the
    /// arithmetic stays correct).
    #[test]
    fn naive_recipe_is_exact(t in arb_matrix(6), x in arb_input(6)) {
        prop_assume!(x.len() >= t.cols());
        let input = &x[..t.cols()];
        let recipe = generate_naive_recipe(&t);
        recipe.validate().unwrap();
        prop_assert_eq!(recipe.eval_exact(input), t.matvec(input).unwrap());
    }

    /// Optimization never yields more executable instructions than the
    /// unoptimized sparse lowering.
    #[test]
    fn optimization_is_monotone(t in arb_matrix(7)) {
        let opt = generate_recipe(&t, &RecipeOptions::optimized()).op_count();
        let min = generate_recipe(&t, &RecipeOptions::minimal()).op_count();
        prop_assert!(
            opt.total() <= min.total(),
            "optimized {} > minimal {}", opt.total(), min.total()
        );
    }

    /// CSE output evaluates identically to the raw symbolic rows, and
    /// every definition is genuinely binary.
    #[test]
    fn cse_preserves_semantics_and_shape(t in arb_matrix(7), x in arb_input(7)) {
        prop_assume!(x.len() >= t.cols());
        let input = &x[..t.cols()];
        let rows = symbolic_matvec(&t);
        let expect: Vec<Rational> =
            rows.iter().map(|e| e.eval_exact(input, &[])).collect();
        let prog = eliminate_common_subexpressions(rows);
        prop_assert_eq!(prog.eval_exact(input), expect);
        for def in &prog.defs {
            prop_assert_eq!(def.len(), 2, "CSE definitions are binary patterns");
        }
    }

    /// Compiled f64 execution tracks the exact rational result within
    /// floating-point tolerance (catches constant-conversion slips).
    #[test]
    fn compiled_f64_tracks_exact(t in arb_matrix(6), x in arb_input(6)) {
        prop_assume!(x.len() >= t.cols());
        let input = &x[..t.cols()];
        let recipe = generate_recipe(&t, &RecipeOptions::optimized());
        let exact = recipe.eval_exact(input);
        let compiled = recipe.compile::<f64>();
        let xf: Vec<f64> = input.iter().map(Rational::to_f64).collect();
        let got = compiled.eval(&xf);
        for (g, e) in got.iter().zip(&exact) {
            let ef = e.to_f64();
            prop_assert!((g - ef).abs() <= 1e-9 * (1.0 + ef.abs()), "{g} vs {ef}");
        }
    }

    /// Liveness never exceeds the SSA temporary count and the recipe
    /// always validates.
    #[test]
    fn liveness_bounded_by_ssa(t in arb_matrix(7), fma in any::<bool>()) {
        let recipe = generate_recipe(&t, &RecipeOptions { cse: true, factorize: true, fma });
        prop_assert!(recipe.max_live_tmps() <= recipe.n_tmp);
        recipe.validate().unwrap();
    }
}
