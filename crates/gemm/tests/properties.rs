//! Property tests: the blocked SGEMM must agree with the reference
//! triple loop on arbitrary shapes, and respect algebraic structure.

use proptest::prelude::*;
use wino_gemm::{batched_sgemm, sgemm, sgemm_naive, sgemm_strassen, BatchedGemmShape};

fn close(a: &[f32], b: &[f32]) -> bool {
    a.iter()
        .zip(b)
        .all(|(x, y)| (x - y).abs() <= 1e-3 * (1.0 + y.abs()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn blocked_matches_naive(
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..24,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let mut c = vec![0.0f32; m * n];
        let mut expect = vec![0.0f32; m * n];
        sgemm(&a, &b, &mut c, m, k, n);
        sgemm_naive(&a, &b, &mut expect, m, k, n);
        prop_assert!(close(&c, &expect));
    }

    #[test]
    fn strassen_matches_naive_any_size(
        n in 1usize..100,
        seed in any::<u64>(),
    ) {
        // Arbitrary n, odd sizes included: exercises the blocked
        // cutoff (n ≤ 64), the even-split recursion, and the
        // pad-and-crop path (odd n > 64). Integer-valued entries keep
        // all intermediates exactly representable, so equality is
        // bitwise — indexing drift in pad/crop cannot hide inside a
        // float tolerance.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a: Vec<f32> = (0..n * n).map(|_| rng.gen_range(-3i8..4) as f32).collect();
        let b: Vec<f32> = (0..n * n).map(|_| rng.gen_range(-3i8..4) as f32).collect();
        let mut c = vec![0.0f32; n * n];
        let mut expect = vec![0.0f32; n * n];
        sgemm_strassen(&a, &b, &mut c, n);
        sgemm_naive(&a, &b, &mut expect, n, n, n);
        prop_assert_eq!(c, expect);
    }

    #[test]
    fn strassen_matches_naive_float(
        n in 60usize..80,
        seed in any::<u64>(),
    ) {
        // Real-valued spot check around the cutoff boundary with the
        // usual tolerance (Strassen's extra additions cost a few ulp).
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a: Vec<f32> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f32> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut c = vec![0.0f32; n * n];
        let mut expect = vec![0.0f32; n * n];
        sgemm_strassen(&a, &b, &mut c, n);
        sgemm_naive(&a, &b, &mut expect, n, n, n);
        prop_assert!(c.iter().zip(&expect).all(|(x, y)| (x - y).abs() <= 1e-3 * (1.0 + y.abs())));
    }

    #[test]
    fn gemm_distributes_over_addition(
        m in 1usize..8,
        k in 1usize..8,
        n in 1usize..8,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b1: Vec<f32> = (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b2: Vec<f32> = (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let bsum: Vec<f32> = b1.iter().zip(&b2).map(|(x, y)| x + y).collect();
        let mut c1 = vec![0.0f32; m * n];
        let mut c2 = vec![0.0f32; m * n];
        let mut cs = vec![0.0f32; m * n];
        sgemm(&a, &b1, &mut c1, m, k, n);
        sgemm(&a, &b2, &mut c2, m, k, n);
        sgemm(&a, &bsum, &mut cs, m, k, n);
        let csum: Vec<f32> = c1.iter().zip(&c2).map(|(x, y)| x + y).collect();
        prop_assert!(close(&cs, &csum));
    }

    #[test]
    fn batched_equals_loop_of_singles(
        batches in 1usize..6,
        m in 1usize..6,
        k in 1usize..6,
        n in 1usize..6,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let shape = BatchedGemmShape { batches, m, k, n };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a: Vec<f32> = (0..shape.a_len()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f32> = (0..shape.b_len()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut c = vec![0.0f32; shape.c_len()];
        batched_sgemm(&shape, &a, &b, &mut c);
        for batch in 0..batches {
            let mut single = vec![0.0f32; m * n];
            sgemm(&a[batch * m * k..(batch + 1) * m * k],
                  &b[batch * k * n..(batch + 1) * k * n],
                  &mut single, m, k, n);
            prop_assert!(close(&c[batch * m * n..(batch + 1) * m * n], &single));
        }
    }
}
