//! Property tests: the blocked SGEMM must agree with the reference
//! triple loop on arbitrary shapes, and respect algebraic structure.

use proptest::prelude::*;
use wino_gemm::{batched_sgemm, sgemm, sgemm_naive, sgemm_strassen, BatchedGemmShape};

fn close(a: &[f32], b: &[f32]) -> bool {
    a.iter()
        .zip(b)
        .all(|(x, y)| (x - y).abs() <= 1e-3 * (1.0 + y.abs()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn blocked_matches_naive(
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..24,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let mut c = vec![0.0f32; m * n];
        let mut expect = vec![0.0f32; m * n];
        sgemm(&a, &b, &mut c, m, k, n);
        sgemm_naive(&a, &b, &mut expect, m, k, n);
        prop_assert!(close(&c, &expect));
    }

    #[test]
    fn strassen_matches_naive_any_size(
        n in 1usize..100,
        seed in any::<u64>(),
    ) {
        // Arbitrary n, odd sizes included: exercises the blocked
        // cutoff (n ≤ 64), the even-split recursion, and the
        // pad-and-crop path (odd n > 64). Integer-valued entries keep
        // all intermediates exactly representable, so equality is
        // bitwise — indexing drift in pad/crop cannot hide inside a
        // float tolerance.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a: Vec<f32> = (0..n * n).map(|_| rng.gen_range(-3i8..4) as f32).collect();
        let b: Vec<f32> = (0..n * n).map(|_| rng.gen_range(-3i8..4) as f32).collect();
        let mut c = vec![0.0f32; n * n];
        let mut expect = vec![0.0f32; n * n];
        sgemm_strassen(&a, &b, &mut c, n);
        sgemm_naive(&a, &b, &mut expect, n, n, n);
        prop_assert_eq!(c, expect);
    }

    #[test]
    fn strassen_matches_naive_float(
        n in 60usize..80,
        seed in any::<u64>(),
    ) {
        // Real-valued spot check around the cutoff boundary with the
        // usual tolerance (Strassen's extra additions cost a few ulp).
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a: Vec<f32> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f32> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut c = vec![0.0f32; n * n];
        let mut expect = vec![0.0f32; n * n];
        sgemm_strassen(&a, &b, &mut c, n);
        sgemm_naive(&a, &b, &mut expect, n, n, n);
        prop_assert!(c.iter().zip(&expect).all(|(x, y)| (x - y).abs() <= 1e-3 * (1.0 + y.abs())));
    }

    #[test]
    fn gemm_distributes_over_addition(
        m in 1usize..8,
        k in 1usize..8,
        n in 1usize..8,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b1: Vec<f32> = (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b2: Vec<f32> = (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let bsum: Vec<f32> = b1.iter().zip(&b2).map(|(x, y)| x + y).collect();
        let mut c1 = vec![0.0f32; m * n];
        let mut c2 = vec![0.0f32; m * n];
        let mut cs = vec![0.0f32; m * n];
        sgemm(&a, &b1, &mut c1, m, k, n);
        sgemm(&a, &b2, &mut c2, m, k, n);
        sgemm(&a, &bsum, &mut cs, m, k, n);
        let csum: Vec<f32> = c1.iter().zip(&c2).map(|(x, y)| x + y).collect();
        prop_assert!(close(&cs, &csum));
    }

    #[test]
    fn batched_equals_loop_of_singles(
        batches in 1usize..6,
        m in 1usize..6,
        k in 1usize..6,
        n in 1usize..6,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let shape = BatchedGemmShape { batches, m, k, n };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a: Vec<f32> = (0..shape.a_len()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f32> = (0..shape.b_len()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut c = vec![0.0f32; shape.c_len()];
        batched_sgemm(&shape, &a, &b, &mut c);
        for batch in 0..batches {
            let mut single = vec![0.0f32; m * n];
            sgemm(&a[batch * m * k..(batch + 1) * m * k],
                  &b[batch * k * n..(batch + 1) * k * n],
                  &mut single, m, k, n);
            prop_assert!(close(&c[batch * m * n..(batch + 1) * m * n], &single));
        }
    }
}

// ---------------------------------------------------------------------
// Packing and micro-kernel properties (PR 8): the pack routines must
// realize the exported pack models slot-for-slot and round-trip every
// block element, and the blocked kernel must agree with the reference
// triple loop on adversarial shapes (primes, sub-micro-tile slivers)
// at both dispatch levels. These are the dynamic counterparts of
// wino-verify's static index analysis over the same schedule.
// ---------------------------------------------------------------------

use wino_gemm::{
    pack_a, pack_a_model, pack_b, pack_b_model, packed_a_len, packed_b_len, sgemm_acc_rt_level,
    GemmConfig, PackSlot, SimdLevel, MR_AVX2, MR_SCALAR, NR_AVX2, NR_SCALAR,
};

/// Shapes that stress remainder handling: primes (never a multiple of
/// any micro-tile or cache-block extent) and sub-micro-tile slivers.
fn adversarial_dim() -> impl Strategy<Value = usize> {
    prop_oneof![
        3 => prop_oneof![
            Just(2usize), Just(3), Just(5), Just(7), Just(11), Just(13),
            Just(17), Just(19), Just(23), Just(29), Just(31), Just(37),
        ],
        2 => 1usize..6,   // smaller than every micro-tile extent
        2 => 1usize..48,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pack_a_matches_model_and_roundtrips(
        mb in 1usize..20,
        kb in 1usize..12,
        ii in 0usize..3,
        kk in 0usize..3,
        pad in 0usize..3,
        use_avx2_tile in any::<bool>(),
    ) {
        let mr = if use_avx2_tile { MR_AVX2 } else { MR_SCALAR };
        let lda = kk + kb + pad;
        // Distinct values (flat index + 1) make slot equality pin the
        // exact source element, not just a plausible one.
        let a: Vec<f32> = (0..(ii + mb) * lda).map(|i| i as f32 + 1.0).collect();
        let mut dst = vec![f32::NAN; packed_a_len(mb, kb, mr)];
        pack_a(&mut dst, &a, ii, kk, mb, kb, lda, mr);

        // Forward: the packed buffer is the model, slot for slot.
        let model = pack_a_model(mb, kb, mr);
        prop_assert_eq!(model.len(), dst.len());
        for (idx, slot) in model.iter().enumerate() {
            let want = match *slot {
                PackSlot::Src { row, col } => a[(ii + row) * lda + kk + col],
                PackSlot::Zero => 0.0,
            };
            prop_assert_eq!(dst[idx].to_bits(), want.to_bits());
        }

        // Round-trip: every element of the mb×kb block is recovered
        // from the packed buffer exactly once.
        let mut seen = vec![false; mb * kb];
        for (idx, slot) in model.iter().enumerate() {
            if let PackSlot::Src { row, col } = *slot {
                prop_assert_eq!(dst[idx].to_bits(), a[(ii + row) * lda + kk + col].to_bits());
                prop_assert!(!seen[row * kb + col], "duplicate slot for ({}, {})", row, col);
                seen[row * kb + col] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "block element never packed");
    }

    #[test]
    fn pack_b_matches_model_and_roundtrips(
        kb in 1usize..12,
        nb in 1usize..24,
        kk in 0usize..3,
        jj in 0usize..3,
        pad in 0usize..3,
        use_avx2_tile in any::<bool>(),
    ) {
        let nr = if use_avx2_tile { NR_AVX2 } else { NR_SCALAR };
        let ldb = jj + nb + pad;
        let b: Vec<f32> = (0..(kk + kb) * ldb).map(|i| i as f32 + 1.0).collect();
        let mut dst = vec![f32::NAN; packed_b_len(kb, nb, nr)];
        pack_b(&mut dst, &b, kk, jj, kb, nb, ldb, nr);

        let model = pack_b_model(kb, nb, nr);
        prop_assert_eq!(model.len(), dst.len());
        let mut seen = vec![false; kb * nb];
        for (idx, slot) in model.iter().enumerate() {
            match *slot {
                PackSlot::Src { row, col } => {
                    let want = b[(kk + row) * ldb + jj + col];
                    prop_assert_eq!(dst[idx].to_bits(), want.to_bits());
                    prop_assert!(!seen[row * nb + col], "duplicate slot for ({}, {})", row, col);
                    seen[row * nb + col] = true;
                }
                PackSlot::Zero => prop_assert_eq!(dst[idx].to_bits(), 0.0f32.to_bits()),
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "block element never packed");
    }

    #[test]
    fn micro_kernel_matches_naive_adversarial_shapes_both_levels(
        m in adversarial_dim(),
        k in adversarial_dim(),
        n in adversarial_dim(),
        accumulate in any::<bool>(),
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let init: Vec<f32> = (0..m * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        // A tiny blocking config forces ragged remainders in every
        // dimension even for small shapes.
        let cfg = GemmConfig { mc: 8, kc: 8, nc: 16 };
        let rt = wino_runtime::Runtime::global();

        let mut expect = if accumulate { init.clone() } else { vec![0.0; m * n] };
        let mut expect_term = vec![0.0f32; m * n];
        sgemm_naive(&a, &b, &mut expect_term, m, k, n);
        for (e, t) in expect.iter_mut().zip(&expect_term) {
            if accumulate { *e += t } else { *e = *t }
        }

        let mut levels = vec![SimdLevel::Scalar];
        if wino_gemm::detect_simd() == SimdLevel::Avx2 {
            levels.push(SimdLevel::Avx2);
        }
        for level in levels {
            let mut c = init.clone();
            sgemm_acc_rt_level(&a, &b, &mut c, m, k, n, accumulate, &cfg, rt, level);
            prop_assert!(
                close(&c, &expect),
                "level {:?} diverges from naive at m={} k={} n={} accumulate={}",
                level, m, k, n, accumulate
            );
        }
    }
}
