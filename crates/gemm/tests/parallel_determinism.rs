//! Parallel == serial, bit for bit.
//!
//! The `wino-runtime` contract is that thread count never changes the
//! result: every output element is written by exactly one task and the
//! per-element accumulation order matches the serial loop. These
//! properties pin that down with exact `f32::to_bits` equality across
//! random shapes, ragged panel tilings, and 1–8 worker lanes.

use proptest::prelude::*;
use wino_gemm::{batched_sgemm_rt, sgemm_acc_rt, BatchedGemmShape, GemmConfig};
use wino_runtime::Runtime;

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn random_vec(len: usize, seed: u64) -> Vec<f32> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(-2.0..2.0)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sgemm_parallel_is_bit_identical(
        m in 1usize..48,
        k in 1usize..48,
        n in 1usize..96,
        // Ragged blocking: nc deliberately not a multiple of NR and
        // often smaller than n, so panel boundaries fall everywhere.
        mc in 4usize..40,
        nc in 4usize..40,
        threads in 1usize..9,
        accumulate in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let a = random_vec(m * k, seed);
        let b = random_vec(k * n, seed ^ 0x9e37);
        let c_init = random_vec(m * n, seed ^ 0x79b9);
        let cfg = GemmConfig { mc, kc: 16, nc };

        let mut serial = c_init.clone();
        sgemm_acc_rt(&a, &b, &mut serial, m, k, n, accumulate, &cfg, &Runtime::serial());

        let rt = Runtime::with_threads(threads);
        let mut parallel = c_init.clone();
        sgemm_acc_rt(&a, &b, &mut parallel, m, k, n, accumulate, &cfg, &rt);

        prop_assert_eq!(bits(&serial), bits(&parallel));
    }

    #[test]
    fn batched_sgemm_parallel_is_bit_identical(
        batches in 1usize..10,
        m in 1usize..12,
        k in 1usize..12,
        n in 1usize..20,
        threads in 1usize..9,
        seed in any::<u64>(),
    ) {
        let shape = BatchedGemmShape { batches, m, k, n };
        let a = random_vec(shape.a_len(), seed);
        let b = random_vec(shape.b_len(), seed ^ 0xabcd);
        let cfg = GemmConfig { mc: 8, kc: 8, nc: 12 };

        let mut serial = vec![0.0f32; shape.c_len()];
        batched_sgemm_rt(&shape, &a, &b, &mut serial, &cfg, &Runtime::serial());

        let rt = Runtime::with_threads(threads);
        let mut parallel = vec![0.0f32; shape.c_len()];
        batched_sgemm_rt(&shape, &a, &b, &mut parallel, &cfg, &rt);

        prop_assert_eq!(bits(&serial), bits(&parallel));
    }
}
