//! Batched SGEMM.
//!
//! The non-fused Winograd multiplication stage needs α² small
//! independent GEMMs over matrices stored contiguously (§3.2.2: "we
//! avoid invoking different matrix multiplication kernels and,
//! instead, use a batched-SGEMM operation"). All batches share shapes;
//! the per-batch matrices live at a fixed stride inside three flat
//! buffers.

use crate::blocked::{gemm_flops, sgemm_acc_rt_level, GemmConfig};
use crate::simd::{simd_level, SimdLevel};
use wino_runtime::{DisjointSlice, Runtime};

/// Independent batch multiplies executed by `batched_sgemm_rt`.
static GEMM_BATCHES: wino_probe::Counter = wino_probe::Counter::new("gemm.batches");

/// Shape of one batched-GEMM invocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchedGemmShape {
    /// Number of independent multiplies.
    pub batches: usize,
    /// Rows of each A and C.
    pub m: usize,
    /// Inner dimension.
    pub k: usize,
    /// Columns of each B and C.
    pub n: usize,
}

impl BatchedGemmShape {
    /// Elements required in the A buffer.
    pub fn a_len(&self) -> usize {
        self.batches * self.m * self.k
    }

    /// Elements required in the B buffer.
    pub fn b_len(&self) -> usize {
        self.batches * self.k * self.n
    }

    /// Elements required in the C buffer.
    pub fn c_len(&self) -> usize {
        self.batches * self.m * self.n
    }

    /// Total FLOPs of the whole batch.
    pub fn flops(&self) -> u64 {
        self.batches as u64 * gemm_flops(self.m, self.k, self.n)
    }
}

/// `C[b] = A[b] · B[b]` for every batch `b`, with batch-major packed
/// buffers.
///
/// Panics if a buffer is shorter than the shape requires.
pub fn batched_sgemm(shape: &BatchedGemmShape, a: &[f32], b: &[f32], c: &mut [f32]) {
    batched_sgemm_rt(shape, a, b, c, &GemmConfig::default(), Runtime::global());
}

/// [`batched_sgemm`] with explicit blocking config and runtime. The
/// batch dimension carries the parallelism (the α² multiplies are
/// independent and write disjoint `C` windows); each per-batch GEMM
/// runs serially so its accumulation order — and therefore every
/// output bit — matches the single-threaded path.
pub fn batched_sgemm_rt(
    shape: &BatchedGemmShape,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    cfg: &GemmConfig,
    rt: &Runtime,
) {
    batched_sgemm_rt_level(shape, a, b, c, cfg, rt, simd_level());
}

/// [`batched_sgemm_rt`] with the SIMD dispatch level pinned instead of
/// resolved from the process-wide [`simd_level`] — the hook the
/// Winograd engines use so one pinned level governs transforms and
/// multiplication alike (and benchmarks can compare levels in one
/// process).
pub fn batched_sgemm_rt_level(
    shape: &BatchedGemmShape,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    cfg: &GemmConfig,
    rt: &Runtime,
    level: SimdLevel,
) {
    assert!(a.len() >= shape.a_len(), "batched A too short");
    assert!(b.len() >= shape.b_len(), "batched B too short");
    assert!(c.len() >= shape.c_len(), "batched C too short");
    let (am, bm, cm) = (shape.m * shape.k, shape.k * shape.n, shape.m * shape.n);
    GEMM_BATCHES.add(shape.batches as u64);
    let serial = Runtime::serial();
    let c_win = DisjointSlice::new(&mut c[..shape.c_len()]);
    rt.parallel_for_chunks(0..shape.batches, 1, |batches| {
        let mut batch_span = wino_probe::span("gemm.batch");
        batch_span.arg("batches", || batches.len().to_string());
        for batch in batches {
            // SAFETY: batch-major C windows are disjoint across batches.
            let c_batch = unsafe { c_win.slice_mut(batch * cm..(batch + 1) * cm) };
            sgemm_acc_rt_level(
                &a[batch * am..(batch + 1) * am],
                &b[batch * bm..(batch + 1) * bm],
                c_batch,
                shape.m,
                shape.k,
                shape.n,
                false,
                cfg,
                &serial,
                level,
            );
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocked::sgemm_naive;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn batches_are_independent() {
        let shape = BatchedGemmShape {
            batches: 3,
            m: 4,
            k: 5,
            n: 6,
        };
        let mut rng = StdRng::seed_from_u64(11);
        let a: Vec<f32> = (0..shape.a_len())
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let b: Vec<f32> = (0..shape.b_len())
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let mut c = vec![0.0f32; shape.c_len()];
        batched_sgemm(&shape, &a, &b, &mut c);
        for batch in 0..shape.batches {
            let mut expect = vec![0.0f32; shape.m * shape.n];
            sgemm_naive(
                &a[batch * shape.m * shape.k..],
                &b[batch * shape.k * shape.n..],
                &mut expect,
                shape.m,
                shape.k,
                shape.n,
            );
            let got = &c[batch * shape.m * shape.n..(batch + 1) * shape.m * shape.n];
            for (x, y) in got.iter().zip(&expect) {
                assert!((x - y).abs() < 1e-4, "batch {batch}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn shape_accounting() {
        let shape = BatchedGemmShape {
            batches: 16,
            m: 8,
            k: 4,
            n: 2,
        };
        assert_eq!(shape.a_len(), 512);
        assert_eq!(shape.b_len(), 128);
        assert_eq!(shape.c_len(), 256);
        assert_eq!(shape.flops(), 16 * 2 * 8 * 4 * 2);
    }

    #[test]
    #[should_panic(expected = "batched C too short")]
    fn short_c_panics() {
        let shape = BatchedGemmShape {
            batches: 2,
            m: 2,
            k: 2,
            n: 2,
        };
        let a = vec![0.0f32; shape.a_len()];
        let b = vec![0.0f32; shape.b_len()];
        let mut c = vec![0.0f32; shape.c_len() - 1];
        batched_sgemm(&shape, &a, &b, &mut c);
    }
}
