//! Blocked single-precision GEMM.
//!
//! The Winograd matrix-multiplication stage is reframed as α² batched
//! SGEMMs (§3.2.2, after Lavin & Gray); on CPU we execute them with
//! this cache-blocked implementation: panels of `A` and `B` are packed
//! into contiguous buffers and consumed by a register-tiled
//! micro-kernel. The block sizes mirror the tuning parameters the
//! paper exposes for its GPU SGEMM (`MNt` register blocking, `MNb`
//! thread blocking, Table 1).

use crate::schedule::{
    col_panel, dim_blocks, micro_tiles, pack_capacities, tile_extents, MR_AVX2, MR_SCALAR, NR_AVX2,
    NR_SCALAR,
};
use crate::simd::{simd_level, SimdLevel};
use wino_runtime::{DisjointSlice, Runtime};

/// Multiply-add FLOPs retired by the blocked SGEMM (counted once per
/// call, not per panel, to keep the enabled path cheap).
static GEMM_FLOPS: wino_probe::Counter = wino_probe::Counter::new("gemm.flops");
/// Wall-clock distribution of worker panel chunks (the unit of GEMM
/// parallelism); records whenever tracing or telemetry is armed.
static H_PANEL: wino_probe::Histogram = wino_probe::Histogram::new("gemm.panel");

/// Cache/register blocking parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GemmConfig {
    /// Rows of the A panel kept hot in cache (MC).
    pub mc: usize,
    /// Depth of the packed panels (KC).
    pub kc: usize,
    /// Columns of the B panel (NC).
    pub nc: usize,
}

impl Default for GemmConfig {
    fn default() -> Self {
        GemmConfig {
            mc: 64,
            kc: 128,
            nc: 256,
        }
    }
}

/// Below this many FLOPs a single GEMM runs serially even on a
/// parallel runtime: the fork/join round trip costs more than the
/// multiply.
const PARALLEL_FLOP_THRESHOLD: u64 = 1 << 19;

/// `C = A·B` for row-major `A (m×k)`, `B (k×n)`, `C (m×n)`,
/// overwriting `C`.
///
/// Panics if any slice is shorter than its shape requires — shapes are
/// part of the caller's contract, not runtime input.
pub fn sgemm(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    sgemm_acc(a, b, c, m, k, n, false);
}

/// [`sgemm`] with explicit blocking parameters (the autotuner's
/// `MNt`/`MNb`-derived cache blocks end up here).
pub fn sgemm_with_config(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    cfg: &GemmConfig,
) {
    sgemm_acc_rt(a, b, c, m, k, n, false, cfg, Runtime::global());
}

/// `C += A·B` (when `accumulate`) or `C = A·B`.
pub fn sgemm_acc(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    accumulate: bool,
) {
    sgemm_acc_rt(
        a,
        b,
        c,
        m,
        k,
        n,
        accumulate,
        &GemmConfig::default(),
        Runtime::global(),
    );
}

/// Fully-parameterized entry point: explicit blocking config and
/// execution runtime. Output bits do not depend on the runtime's
/// thread count (see the module docs of `wino-runtime`).
#[allow(clippy::too_many_arguments)]
pub fn sgemm_acc_rt(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    accumulate: bool,
    cfg: &GemmConfig,
    rt: &Runtime,
) {
    sgemm_acc_rt_level(a, b, c, m, k, n, accumulate, cfg, rt, simd_level());
}

/// [`sgemm_acc_rt`] with the SIMD dispatch level pinned by the caller
/// instead of resolved from `WINO_SIMD`/detection. This is the A/B
/// hook the benchmarks and cross-kernel tests use; production paths
/// go through [`sgemm_acc_rt`].
#[allow(clippy::too_many_arguments)]
pub fn sgemm_acc_rt_level(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    accumulate: bool,
    cfg: &GemmConfig,
    rt: &Runtime,
    level: SimdLevel,
) {
    assert!(a.len() >= m * k, "A too short: {} < {}", a.len(), m * k);
    assert!(b.len() >= k * n, "B too short: {} < {}", b.len(), k * n);
    assert!(c.len() >= m * n, "C too short: {} < {}", c.len(), m * n);
    assert!(
        cfg.mc >= 1 && cfg.kc >= 1 && cfg.nc >= 1,
        "degenerate GemmConfig"
    );
    if !accumulate {
        c[..m * n].fill(0.0);
    }
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    GEMM_FLOPS.add(gemm_flops(m, k, n));
    let serial = Runtime::serial();
    let rt = if gemm_flops(m, k, n) < PARALLEL_FLOP_THRESHOLD {
        &serial
    } else {
        rt
    };
    sgemm_blocked(a, b, &mut c[..m * n], m, k, n, cfg, rt, level);
    // WINO_FAULT hook (GEMM-kernel site): one relaxed load when
    // disarmed. Sits on the one entry point every GEMM path (plain,
    // blocked-config, batched, im2col) funnels through.
    wino_probe::fault::inject_f32(wino_probe::fault::Site::Gemm, &mut c[..m * n]);
}

/// Cache-blocked kernel, parallel across `NC`-wide column panels of
/// `C`. Each panel is owned end-to-end by one task — it runs the whole
/// `kk` loop for its columns with private pack buffers — so every `C`
/// element sees the exact serial accumulation order and the result is
/// bit-identical for any thread count.
///
/// The loop nest walks the descriptors exported by [`crate::schedule`]
/// (`col_panel` → `dim_blocks` → `micro_tiles` inside `macro_kernel`),
/// so the blocking structure wino-verify's index analysis proves
/// coverage/disjointness/bounds over is the structure running here.
#[allow(clippy::too_many_arguments)]
fn sgemm_blocked(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    cfg: &GemmConfig,
    rt: &Runtime,
    level: SimdLevel,
) {
    let (mr, nr) = tile_extents(level);
    let panels = n.div_ceil(cfg.nc);
    let (a_cap, b_cap) = pack_capacities(cfg, mr, nr);
    let c_win = DisjointSlice::new(c);
    rt.parallel_for_chunks(0..panels, 1, |panel_range| {
        let mut panel_span = wino_probe::span("gemm.panel");
        panel_span.arg("panels", || panel_range.len().to_string());
        let _panel_hist = H_PANEL.start();
        let mut a_pack = vec![0.0f32; a_cap];
        let mut b_pack = vec![0.0f32; b_cap];
        for panel in panel_range {
            let jp = col_panel(n, cfg.nc, panel);
            let (jj, nb) = (jp.start, jp.len);
            for kp in dim_blocks(k, cfg.kc) {
                let (kk, kb) = (kp.start, kp.len);
                pack_b(&mut b_pack, b, kk, jj, kb, nb, n, nr);
                for ip in dim_blocks(m, cfg.mc) {
                    let (ii, mb) = (ip.start, ip.len);
                    pack_a(&mut a_pack, a, ii, kk, mb, kb, k, mr);
                    macro_kernel(&a_pack, &b_pack, &c_win, ii, jj, mb, kb, nb, n, level);
                }
            }
        }
    });
}

/// Packs `A[ii.., kk..]` (mb×kb) into `mr`-row slivers so the
/// micro-kernel reads it with unit stride. Writes exactly
/// [`crate::schedule::packed_a_len`]`(mb, kb, mr)` slots, laid out as
/// [`crate::schedule::pack_a_model`] describes (property-tested
/// equal); public so the static index analysis can cross-check the
/// running code against that model.
#[allow(clippy::too_many_arguments)]
pub fn pack_a(
    dst: &mut [f32],
    a: &[f32],
    ii: usize,
    kk: usize,
    mb: usize,
    kb: usize,
    lda: usize,
    mr: usize,
) {
    debug_assert!(dst.len() >= crate::schedule::packed_a_len(mb, kb, mr));
    debug_assert!(mb == 0 || kb == 0 || (ii + mb - 1) * lda + kk + kb <= a.len());
    let mut idx = 0;
    let mut i = 0;
    while i < mb {
        let rows = mr.min(mb - i);
        for p in 0..kb {
            for r in 0..mr {
                dst[idx] = if r < rows {
                    a[(ii + i + r) * lda + kk + p]
                } else {
                    0.0
                };
                idx += 1;
            }
        }
        i += rows;
    }
}

/// Packs `B[kk.., jj..]` (kb×nb) into `nr`-column slivers. Mirrors
/// [`pack_a`]: layout per [`crate::schedule::pack_b_model`], public
/// for the cross-check.
#[allow(clippy::too_many_arguments)]
pub fn pack_b(
    dst: &mut [f32],
    b: &[f32],
    kk: usize,
    jj: usize,
    kb: usize,
    nb: usize,
    ldb: usize,
    nr: usize,
) {
    debug_assert!(dst.len() >= crate::schedule::packed_b_len(kb, nb, nr));
    debug_assert!(kb == 0 || nb == 0 || (kk + kb - 1) * ldb + jj + nb <= b.len());
    let mut idx = 0;
    let mut j = 0;
    while j < nb {
        let cols = nr.min(nb - j);
        for p in 0..kb {
            for col in 0..nr {
                dst[idx] = if col < cols {
                    b[(kk + p) * ldb + jj + j + col]
                } else {
                    0.0
                };
                idx += 1;
            }
        }
        j += cols;
    }
}

/// Runs the mr×nr micro-kernel over one packed macro-block,
/// accumulating into `C` through the disjoint-write window (this
/// task's column panel never overlaps another task's). The tile walk
/// is the exported [`micro_tiles`] schedule, in its order.
#[allow(clippy::too_many_arguments)]
fn macro_kernel(
    a_pack: &[f32],
    b_pack: &[f32],
    c: &DisjointSlice<'_, f32>,
    ii: usize,
    jj: usize,
    mb: usize,
    kb: usize,
    nb: usize,
    ldc: usize,
    level: SimdLevel,
) {
    let (mr, nr) = tile_extents(level);
    for t in micro_tiles(mb, nb, kb, mr, nr) {
        let a_sliver = &a_pack[t.a_off..t.a_off + kb * mr];
        let b_sliver = &b_pack[t.b_off..t.b_off + kb * nr];
        let c_off = (ii + t.i) * ldc + jj + t.j;
        // Invariant (proven by wino-verify's index analysis over this
        // exact schedule): the tile's row segments stay inside this
        // task's column panel and inside C.
        debug_assert!(c_off + (t.rows - 1) * ldc + t.cols <= c.len());
        match level {
            SimdLevel::Scalar => {
                micro_kernel(a_sliver, b_sliver, c, c_off, t.rows, t.cols, ldc, kb);
            }
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 => {
                // SAFETY: Avx2 is only ever resolved when CPUID
                // reports avx2+fma (see `simd::resolve_simd`).
                unsafe {
                    micro_kernel_avx2(a_sliver, b_sliver, c, c_off, t.rows, t.cols, ldc, kb);
                }
            }
            #[cfg(not(target_arch = "x86_64"))]
            SimdLevel::Avx2 => unreachable!("avx2 level on non-x86_64"),
        }
    }
}

/// The register-tiled inner kernel: a full MR×NR accumulator array
/// lives in registers across the k loop.
#[allow(clippy::too_many_arguments)]
fn micro_kernel(
    a_sliver: &[f32],
    b_sliver: &[f32],
    c: &DisjointSlice<'_, f32>,
    c_off: usize,
    rows: usize,
    cols: usize,
    ldc: usize,
    kb: usize,
) {
    let mut acc = [[0.0f32; NR_SCALAR]; MR_SCALAR];
    for p in 0..kb {
        let av = &a_sliver[p * MR_SCALAR..p * MR_SCALAR + MR_SCALAR];
        let bv = &b_sliver[p * NR_SCALAR..p * NR_SCALAR + NR_SCALAR];
        for r in 0..MR_SCALAR {
            let ar = av[r];
            for col in 0..NR_SCALAR {
                acc[r][col] += ar * bv[col];
            }
        }
    }
    for (r, acc_row) in acc.iter().enumerate().take(rows) {
        let base = c_off + r * ldc;
        // SAFETY: this micro-tile's row segment lies inside the
        // caller's column panel, which no other task touches.
        let row = unsafe { c.slice_mut(base..base + cols) };
        for (dst, &add) in row.iter_mut().zip(acc_row[..cols].iter()) {
            *dst += add;
        }
    }
}

/// The AVX2/FMA inner kernel: MR_AVX2 rows × one 8-lane vector of
/// accumulators live in ymm registers across the k loop; each step
/// broadcasts one A element per row and fuses into the accumulator
/// with `vfmaddps`. Numerics differ from the scalar kernel (fused
/// rounding, different tile walk) — covered by the per-dispatch-level
/// determinism contract, not cross-level bit-identity.
///
/// # Safety
/// Caller must ensure the CPU supports `avx2` and `fma` (the dispatch
/// in [`macro_kernel`] only selects this after CPUID detection).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn micro_kernel_avx2(
    a_sliver: &[f32],
    b_sliver: &[f32],
    c: &DisjointSlice<'_, f32>,
    c_off: usize,
    rows: usize,
    cols: usize,
    ldc: usize,
    kb: usize,
) {
    use std::arch::x86_64::*;
    // Audited invariants (wino-verify `avx2_pointer_audit` re-derives
    // each of these from the exported schedule): every `ap` read is at
    // offset p·MR + r < kb·MR and every 8-wide `bp` load ends at
    // p·NR + 8 ≤ kb·NR, so the pointer walk never leaves the slivers;
    // the C store below writes `rows ≤ MR` row segments of `cols ≤ NR`
    // elements through the bounds-checked `DisjointSlice` window.
    debug_assert!(a_sliver.len() >= kb * MR_AVX2);
    debug_assert!(b_sliver.len() >= kb * NR_AVX2);
    debug_assert!((1..=MR_AVX2).contains(&rows));
    debug_assert!((1..=NR_AVX2).contains(&cols));
    let mut acc = [_mm256_setzero_ps(); MR_AVX2];
    let mut ap = a_sliver.as_ptr();
    let mut bp = b_sliver.as_ptr();
    for _ in 0..kb {
        let bv = _mm256_loadu_ps(bp);
        for (r, acc_r) in acc.iter_mut().enumerate() {
            let av = _mm256_set1_ps(*ap.add(r));
            *acc_r = _mm256_fmadd_ps(av, bv, *acc_r);
        }
        ap = ap.add(MR_AVX2);
        bp = bp.add(NR_AVX2);
    }
    for (r, acc_r) in acc.iter().enumerate().take(rows) {
        let base = c_off + r * ldc;
        // SAFETY: this micro-tile's row segment lies inside the
        // caller's column panel, which no other task touches.
        let row = c.slice_mut(base..base + cols);
        if cols == NR_AVX2 {
            let cv = _mm256_loadu_ps(row.as_ptr());
            _mm256_storeu_ps(row.as_mut_ptr(), _mm256_add_ps(cv, *acc_r));
        } else {
            let mut spill = [0.0f32; NR_AVX2];
            _mm256_storeu_ps(spill.as_mut_ptr(), *acc_r);
            for (dst, &add) in row.iter_mut().zip(spill[..cols].iter()) {
                *dst += add;
            }
        }
    }
}

/// Reference triple-loop GEMM used by tests and tiny problems.
pub fn sgemm_naive(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            c[i * n + j] = acc;
        }
    }
}

/// FLOPs of one `m×k · k×n` GEMM (multiply + add).
pub fn gemm_flops(m: usize, k: usize, n: usize) -> u64 {
    2 * m as u64 * k as u64 * n as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_mat(rng: &mut StdRng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    }

    fn assert_close(a: &[f32], b: &[f32]) {
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() <= 1e-4 * (1.0 + y.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn identity_multiplication() {
        let n = 8;
        let mut eye = vec![0.0f32; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let mut rng = StdRng::seed_from_u64(1);
        let b = random_mat(&mut rng, n * n);
        let mut c = vec![0.0f32; n * n];
        sgemm(&eye, &b, &mut c, n, n, n);
        assert_close(&c, &b);
    }

    #[test]
    fn matches_naive_on_awkward_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        for (m, k, n) in [(1, 1, 1), (3, 5, 7), (17, 33, 9), (65, 129, 130), (4, 4, 4)] {
            let a = random_mat(&mut rng, m * k);
            let b = random_mat(&mut rng, k * n);
            let mut c = vec![0.0f32; m * n];
            let mut expect = vec![0.0f32; m * n];
            sgemm(&a, &b, &mut c, m, k, n);
            sgemm_naive(&a, &b, &mut expect, m, k, n);
            assert_close(&c, &expect);
        }
    }

    #[test]
    fn accumulate_adds_to_existing() {
        let a = vec![1.0f32, 0.0, 0.0, 1.0];
        let b = vec![2.0f32, 3.0, 4.0, 5.0];
        let mut c = vec![10.0f32; 4];
        sgemm_acc(&a, &b, &mut c, 2, 2, 2, true);
        assert_eq!(c, vec![12.0, 13.0, 14.0, 15.0]);
        sgemm_acc(&a, &b, &mut c, 2, 2, 2, false);
        assert_eq!(c, vec![2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn zero_dimensions_are_noops() {
        let mut c = vec![7.0f32; 4];
        sgemm(&[], &[], &mut c, 0, 0, 0);
        // m*n = 0: nothing written.
        assert_eq!(c, vec![7.0; 4]);
        let mut c2 = vec![7.0f32; 4];
        sgemm(&[], &[], &mut c2, 2, 0, 2);
        // k = 0: C is cleared but no products accumulate.
        assert_eq!(&c2[..4], &[0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "A too short")]
    fn short_input_panics() {
        let mut c = vec![0.0f32; 4];
        sgemm(&[1.0], &[1.0; 4], &mut c, 2, 2, 2);
    }

    #[test]
    fn flop_accounting() {
        assert_eq!(gemm_flops(2, 3, 4), 48);
    }

    fn sgemm_level(
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
        lv: SimdLevel,
    ) {
        sgemm_acc_rt_level(
            a,
            b,
            c,
            m,
            k,
            n,
            false,
            &GemmConfig::default(),
            Runtime::global(),
            lv,
        );
    }

    #[test]
    fn avx2_matches_naive_on_awkward_shapes() {
        if crate::simd::detect_simd() != SimdLevel::Avx2 {
            return; // no AVX2+FMA on this machine; kernel untestable here
        }
        let mut rng = StdRng::seed_from_u64(7);
        // Shapes straddling every tile boundary: full 6×8 tiles,
        // partial rows, partial cols, single elements, and sizes
        // crossing the mc/kc/nc cache blocks.
        for (m, k, n) in [
            (1, 1, 1),
            (6, 4, 8),
            (5, 3, 7),
            (13, 17, 19),
            (65, 129, 130),
            (70, 64, 257),
        ] {
            let a = random_mat(&mut rng, m * k);
            let b = random_mat(&mut rng, k * n);
            let mut c = vec![0.0f32; m * n];
            let mut expect = vec![0.0f32; m * n];
            sgemm_level(&a, &b, &mut c, m, k, n, SimdLevel::Avx2);
            sgemm_naive(&a, &b, &mut expect, m, k, n);
            assert_close(&c, &expect);
        }
    }

    #[test]
    fn avx2_and_scalar_agree_within_tolerance() {
        if crate::simd::detect_simd() != SimdLevel::Avx2 {
            return;
        }
        let mut rng = StdRng::seed_from_u64(8);
        let (m, k, n) = (37, 53, 41);
        let a = random_mat(&mut rng, m * k);
        let b = random_mat(&mut rng, k * n);
        let mut c_simd = vec![0.0f32; m * n];
        let mut c_scalar = vec![0.0f32; m * n];
        sgemm_level(&a, &b, &mut c_simd, m, k, n, SimdLevel::Avx2);
        sgemm_level(&a, &b, &mut c_scalar, m, k, n, SimdLevel::Scalar);
        // Different accumulation order + FMA: close, not bit-equal.
        assert_close(&c_simd, &c_scalar);
    }

    #[test]
    fn scalar_level_accumulate_matches_plain_path() {
        // The pinned-scalar entry must take the exact same code path
        // as sgemm under WINO_SIMD=off: accumulate twice and compare
        // bitwise.
        let mut rng = StdRng::seed_from_u64(9);
        let (m, k, n) = (9, 11, 10);
        let a = random_mat(&mut rng, m * k);
        let b = random_mat(&mut rng, k * n);
        let mut c1 = vec![0.5f32; m * n];
        let mut c2 = vec![0.5f32; m * n];
        for acc in [true, false] {
            sgemm_acc_rt_level(
                &a,
                &b,
                &mut c1,
                m,
                k,
                n,
                acc,
                &GemmConfig::default(),
                Runtime::global(),
                SimdLevel::Scalar,
            );
            sgemm_acc_rt(
                &a,
                &b,
                &mut c2,
                m,
                k,
                n,
                acc,
                &GemmConfig::default(),
                Runtime::global(),
            );
        }
        // Only bit-equal when the ambient dispatch is also scalar.
        if simd_level() == SimdLevel::Scalar {
            assert_eq!(c1, c2);
        } else {
            assert_close(&c1, &c2);
        }
    }
}
