//! # wino-gemm — single-precision GEMM substrate
//!
//! A from-scratch cache-blocked SGEMM with packed panels and a
//! register-tiled micro-kernel, plus the batched variant the Winograd
//! multiplication stage is reframed into (§3.2.2 of the paper). Used
//! by the im2col convolution baseline, the non-fused CPU Winograd
//! engine, and (as a cost reference) the GPU kernel generators.

#![warn(missing_docs)]

mod batched;
mod blocked;
pub mod schedule;
pub mod simd;
mod strassen;

pub use batched::{batched_sgemm, batched_sgemm_rt, batched_sgemm_rt_level, BatchedGemmShape};
pub use blocked::{
    gemm_flops, pack_a, pack_b, sgemm, sgemm_acc, sgemm_acc_rt, sgemm_acc_rt_level, sgemm_naive,
    sgemm_with_config, GemmConfig,
};
pub use schedule::{
    col_panel, dim_blocks, micro_tiles, pack_a_model, pack_b_model, pack_capacities, packed_a_len,
    packed_b_len, tile_extents, DimBlock, MicroTile, PackSlot, MR_AVX2, MR_SCALAR, NR_AVX2,
    NR_SCALAR,
};
pub use simd::{detect_simd, resolve_simd, simd_level, SimdLevel};
pub use strassen::{sgemm_strassen, strassen_multiplies};
