//! The blocked-GEMM loop nest as data.
//!
//! `sgemm_blocked` used to carry its blocking structure implicitly in
//! `while` loops; this module exports that structure as descriptor
//! iterators and the hot path consumes them, so the schedule the
//! static index analysis in `wino-verify` reasons about is — by
//! construction, not by transcription — the schedule that executes.
//! Every claim the analysis proves (coverage, panel disjointness,
//! in-bounds packing and micro-tile extents, ragged remainders) is a
//! property of these functions.
//!
//! The descriptors are pure integer arithmetic over the problem shape
//! and [`GemmConfig`], with no dependence on the data being
//! multiplied, which is what makes them statically checkable.

use crate::blocked::GemmConfig;
use crate::simd::SimdLevel;

/// Register micro-tile extents of the portable scalar kernel. Fixed
/// at compile time so the inner loops fully unroll. These are the
/// pre-SIMD values; changing them would change scalar accumulation
/// order and break the `WINO_SIMD=off` bit-identity contract.
pub const MR_SCALAR: usize = 4;
/// Scalar micro-tile columns (see [`MR_SCALAR`]).
pub const NR_SCALAR: usize = 4;

/// Micro-tile rows of the AVX2 kernel: six rows of one 8-lane vector
/// each keeps 6 accumulator registers + a broadcast + a B vector
/// within the 16 ymm registers.
pub const MR_AVX2: usize = 6;
/// AVX2 micro-tile columns — one 8-lane f32 vector.
pub const NR_AVX2: usize = 8;

/// Micro-tile extents `(mr, nr)` of the dispatch level's inner kernel;
/// packing and the macro loop are parameterized on these.
pub fn tile_extents(level: SimdLevel) -> (usize, usize) {
    match level {
        SimdLevel::Scalar => (MR_SCALAR, NR_SCALAR),
        SimdLevel::Avx2 => (MR_AVX2, NR_AVX2),
    }
}

/// One contiguous block `[start, start + len)` of a blocked dimension.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DimBlock {
    /// First index of the block.
    pub start: usize,
    /// Block extent; `0 < len <= step` for every block, with only the
    /// final block allowed to be ragged (`len < step`).
    pub len: usize,
}

impl DimBlock {
    /// One-past-the-end index of the block.
    pub fn end(&self) -> usize {
        self.start + self.len
    }
}

/// Splits `[0, total)` into `step`-sized blocks in ascending order;
/// the last block carries the ragged remainder. An empty dimension
/// yields no blocks. This is the blocking rule all three GEMM macro
/// loops (NC column panels, KC depth blocks, MC row blocks) share.
pub fn dim_blocks(total: usize, step: usize) -> impl Iterator<Item = DimBlock> {
    assert!(step >= 1, "degenerate blocking step");
    (0..total.div_ceil(step)).map(move |b| {
        let start = b * step;
        DimBlock {
            start,
            len: step.min(total - start),
        }
    })
}

/// The `n`th column panel of an `n_total`-column matrix under
/// `nc`-wide panel blocking — the unit of cross-task parallelism in
/// `sgemm_blocked`. Identical to the `panel`th element of
/// [`dim_blocks`]`(n_total, nc)`; exported separately because the
/// parallel runtime hands tasks panel *indices*, not iterator items.
pub fn col_panel(n_total: usize, nc: usize, panel: usize) -> DimBlock {
    let start = panel * nc;
    debug_assert!(start < n_total, "panel index out of range");
    DimBlock {
        start,
        len: nc.min(n_total - start),
    }
}

/// One micro-kernel invocation inside a packed macro-block: the
/// `rows × cols` tile of `C` it owns (relative to the macro-block
/// origin) and the offsets of its A/B slivers in the pack buffers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MicroTile {
    /// Row offset within the macro-block (multiple of `mr`).
    pub i: usize,
    /// Column offset within the macro-block (multiple of `nr`).
    pub j: usize,
    /// Rows this tile actually updates (`min(mr, mb - i)`).
    pub rows: usize,
    /// Columns this tile actually updates (`min(nr, nb - j)`).
    pub cols: usize,
    /// Offset of the A sliver (`kb * mr` floats) in the A pack buffer.
    pub a_off: usize,
    /// Offset of the B sliver (`kb * nr` floats) in the B pack buffer.
    pub b_off: usize,
}

/// Micro-kernel schedule of one `mb × nb` macro-block at depth `kb`,
/// in execution order: column slivers outer, row slivers inner — the
/// exact sequence `macro_kernel` runs, so accumulation order is part
/// of the exported contract.
pub fn micro_tiles(
    mb: usize,
    nb: usize,
    kb: usize,
    mr: usize,
    nr: usize,
) -> impl Iterator<Item = MicroTile> {
    dim_blocks(nb, nr).flat_map(move |jb| {
        dim_blocks(mb, mr).map(move |ib| MicroTile {
            i: ib.start,
            j: jb.start,
            rows: ib.len,
            cols: jb.len,
            a_off: (ib.start / mr) * kb * mr,
            b_off: (jb.start / nr) * kb * nr,
        })
    })
}

/// What one slot of a pack buffer holds: an element of the source
/// block, or zero padding for the ragged sliver tail.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PackSlot {
    /// `src[row, col]` of the `mb × kb` (A) or `kb × nb` (B) block,
    /// in block-relative coordinates.
    Src {
        /// Block-relative row.
        row: usize,
        /// Block-relative column.
        col: usize,
    },
    /// Zero fill (sliver padding past the block edge).
    Zero,
}

/// Length of the packed A buffer for an `mb × kb` block under `mr`-row
/// slivers: `ceil(mb / mr)` slivers of `kb · mr` floats each.
pub fn packed_a_len(mb: usize, kb: usize, mr: usize) -> usize {
    mb.next_multiple_of(mr) * kb
}

/// Length of the packed B buffer for a `kb × nb` block under
/// `nr`-column slivers.
pub fn packed_b_len(kb: usize, nb: usize, nr: usize) -> usize {
    kb * nb.next_multiple_of(nr)
}

/// The exact slot-by-slot layout `pack_a` writes for an `mb × kb`
/// block: `mr`-row slivers, each walked depth-major, padded with
/// zeros past row `mb`. Index `s` of the result is what pack slot `s`
/// holds; [`crate::pack_a`] is property-tested against this model and
/// the model is what the index analysis proves coverage/bounds over.
pub fn pack_a_model(mb: usize, kb: usize, mr: usize) -> Vec<PackSlot> {
    let mut slots = Vec::with_capacity(packed_a_len(mb, kb, mr));
    for ib in dim_blocks(mb, mr) {
        for p in 0..kb {
            for r in 0..mr {
                slots.push(if r < ib.len {
                    PackSlot::Src {
                        row: ib.start + r,
                        col: p,
                    }
                } else {
                    PackSlot::Zero
                });
            }
        }
    }
    slots
}

/// The layout `pack_b` writes for a `kb × nb` block: `nr`-column
/// slivers walked depth-major, zero-padded past column `nb`.
pub fn pack_b_model(kb: usize, nb: usize, nr: usize) -> Vec<PackSlot> {
    let mut slots = Vec::with_capacity(packed_b_len(kb, nb, nr));
    for jb in dim_blocks(nb, nr) {
        for p in 0..kb {
            for col in 0..nr {
                slots.push(if col < jb.len {
                    PackSlot::Src {
                        row: p,
                        col: jb.start + col,
                    }
                } else {
                    PackSlot::Zero
                });
            }
        }
    }
    slots
}

/// Pack-buffer capacities `(a, b)` that `sgemm_blocked` allocates per
/// task for `cfg` at dispatch level extents `(mr, nr)` — the bound the
/// index analysis checks every sliver offset against.
pub fn pack_capacities(cfg: &GemmConfig, mr: usize, nr: usize) -> (usize, usize) {
    (
        cfg.mc.next_multiple_of(mr) * cfg.kc,
        cfg.kc * cfg.nc.next_multiple_of(nr),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_blocks_partition_with_ragged_tail() {
        let blocks: Vec<DimBlock> = dim_blocks(10, 4).collect();
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[0], DimBlock { start: 0, len: 4 });
        assert_eq!(blocks[2], DimBlock { start: 8, len: 2 });
        assert!(dim_blocks(0, 4).next().is_none());
        // Sub-block totals yield a single ragged block.
        assert_eq!(
            dim_blocks(3, 8).collect::<Vec<_>>(),
            vec![DimBlock { start: 0, len: 3 }]
        );
    }

    #[test]
    fn col_panel_matches_dim_blocks() {
        for (n, nc) in [(1, 256), (256, 256), (257, 256), (1000, 7)] {
            let blocks: Vec<DimBlock> = dim_blocks(n, nc).collect();
            for (p, want) in blocks.iter().enumerate() {
                assert_eq!(col_panel(n, nc, p), *want);
            }
        }
    }

    #[test]
    fn micro_tiles_cover_macro_block_once() {
        for (mb, nb, kb, mr, nr) in [(13, 17, 5, 4, 4), (6, 8, 1, 6, 8), (1, 1, 3, 6, 8)] {
            let mut seen = vec![0u32; mb * nb];
            for t in micro_tiles(mb, nb, kb, mr, nr) {
                assert!(t.rows >= 1 && t.rows <= mr);
                assert!(t.cols >= 1 && t.cols <= nr);
                for r in 0..t.rows {
                    for c in 0..t.cols {
                        seen[(t.i + r) * nb + t.j + c] += 1;
                    }
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "coverage hole or overlap");
        }
    }

    #[test]
    fn pack_models_have_declared_lengths() {
        assert_eq!(pack_a_model(13, 5, 4).len(), packed_a_len(13, 5, 4));
        assert_eq!(pack_b_model(5, 17, 8).len(), packed_b_len(5, 17, 8));
    }
}
