//! Runtime SIMD dispatch for the CPU micro-kernels.
//!
//! The paper's meta-programming pipeline specializes kernels at
//! generation time; on the host CPU the analogous move is to pick the
//! widest instruction set the machine actually has, once, at startup.
//! [`simd_level`] resolves that choice from CPUID detection plus the
//! `WINO_SIMD` override and caches it for the process lifetime —
//! every hot path reads one already-initialized atomic.
//!
//! Determinism contract (DESIGN.md §5.9): results are bit-identical
//! for a fixed dispatch choice at any thread count, but *not* across
//! levels — the AVX2 kernels use fused multiply-add and a different
//! accumulation tiling, so `Scalar` and `Avx2` outputs may differ in
//! the low bits. `WINO_SIMD=off` therefore pins the exact pre-SIMD
//! scalar code path, which is the reference for reproducibility runs.
//!
//! `WINO_SIMD` accepts `off` (alias `scalar`), `avx2`, or `auto`
//! (empty/unset behaves like `auto`). Malformed values are *not*
//! silently ignored: a one-line warning goes through wino-probe's
//! diagnostics channel before falling back to detection — the same
//! contract `WINO_THREADS` has in `wino-runtime`.

use std::sync::atomic::{AtomicU8, Ordering};

/// The instruction-set tiers the micro-kernels are compiled for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimdLevel {
    /// Portable scalar kernels — the exact pre-SIMD code path, and the
    /// fallback on machines (or builds) without AVX2+FMA.
    Scalar,
    /// 256-bit AVX2 kernels with FMA accumulation.
    Avx2,
}

impl SimdLevel {
    /// Stable lowercase name, as accepted by `WINO_SIMD`.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2 => "avx2",
        }
    }
}

/// Widest level this machine supports (CPUID-detected, no env input).
pub fn detect_simd() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return SimdLevel::Avx2;
        }
    }
    SimdLevel::Scalar
}

/// Resolves a `WINO_SIMD` value (`None` = unset) against detection.
/// Pure function of its inputs so tests can drive every branch without
/// touching process environment; malformed or unsatisfiable values
/// diag and fall back explicitly.
pub fn resolve_simd(raw: Option<&str>, detected: SimdLevel) -> SimdLevel {
    let Some(raw) = raw else { return detected };
    match raw.trim().to_ascii_lowercase().as_str() {
        "off" | "scalar" => SimdLevel::Scalar,
        "auto" | "" => detected,
        "avx2" => {
            if detected == SimdLevel::Avx2 {
                SimdLevel::Avx2
            } else {
                wino_probe::diag(format!(
                    "WINO_SIMD={raw:?} requested but avx2+fma not available; \
                     falling back to scalar kernels"
                ));
                SimdLevel::Scalar
            }
        }
        _ => {
            wino_probe::diag(format!(
                "invalid WINO_SIMD={raw:?} (expected off|avx2|auto); \
                 falling back to detected level {}",
                detected.name()
            ));
            detected
        }
    }
}

/// Level encoding in the process-wide cache: 0 = unresolved.
const UNSET: u8 = 0;
const SCALAR: u8 = 1;
const AVX2: u8 = 2;

static LEVEL: AtomicU8 = AtomicU8::new(UNSET);

/// The dispatch level every kernel in this process uses: `WINO_SIMD`
/// resolved against detection on first call, then cached (one relaxed
/// load thereafter). Changing the env var mid-process has no effect —
/// the level is part of the process's determinism contract.
pub fn simd_level() -> SimdLevel {
    match LEVEL.load(Ordering::Relaxed) {
        SCALAR => SimdLevel::Scalar,
        AVX2 => SimdLevel::Avx2,
        _ => {
            let env = std::env::var("WINO_SIMD").ok();
            let level = resolve_simd(env.as_deref(), detect_simd());
            let code = match level {
                SimdLevel::Scalar => SCALAR,
                SimdLevel::Avx2 => AVX2,
            };
            // Racing initializers compute the same value (env +
            // detection are stable), so last-write-wins is fine.
            LEVEL.store(code, Ordering::Relaxed);
            level
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_levels_resolve_directly() {
        for detected in [SimdLevel::Scalar, SimdLevel::Avx2] {
            assert_eq!(resolve_simd(Some("off"), detected), SimdLevel::Scalar);
            assert_eq!(resolve_simd(Some("scalar"), detected), SimdLevel::Scalar);
            assert_eq!(resolve_simd(Some(" OFF "), detected), SimdLevel::Scalar);
            assert_eq!(resolve_simd(None, detected), detected);
            assert_eq!(resolve_simd(Some("auto"), detected), detected);
            assert_eq!(resolve_simd(Some(""), detected), detected);
        }
        assert_eq!(resolve_simd(Some("avx2"), SimdLevel::Avx2), SimdLevel::Avx2);
    }

    #[test]
    fn bad_values_diag_and_fall_back() {
        // One test for both diag paths: the diagnostics buffer is
        // process-global, and two tests draining it concurrently
        // could steal each other's messages.
        assert_eq!(
            resolve_simd(Some("avx512"), SimdLevel::Avx2),
            SimdLevel::Avx2
        );
        assert_eq!(
            resolve_simd(Some("avx2"), SimdLevel::Scalar),
            SimdLevel::Scalar
        );
        let diags = wino_probe::take_diagnostics();
        assert!(
            diags.iter().any(|d| d.contains("invalid WINO_SIMD")
                && d.contains("avx512")
                && d.contains("falling back")),
            "missing malformed-value diagnostic: {diags:?}"
        );
        assert!(
            diags
                .iter()
                .any(|d| d.contains("WINO_SIMD") && d.contains("not available")),
            "missing unsatisfiable-request diagnostic: {diags:?}"
        );
    }

    #[test]
    fn cached_level_is_stable() {
        let first = simd_level();
        assert_eq!(simd_level(), first);
    }
}
