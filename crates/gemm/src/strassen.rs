//! Strassen matrix multiplication — the third complexity-reduction
//! family the paper's related work discusses (§5, after Cong & Xiao,
//! who cut convolution runtime with it). Seven recursive multiplies
//! instead of eight; below the cutoff the blocked SGEMM takes over.

use crate::blocked::sgemm;

/// Recursion cutoff: subproblems at or below this edge go to the
/// blocked kernel (Strassen's extra additions dominate below it).
const CUTOFF: usize = 64;

/// Smallest `p ≥ n` of the form `c · 2^k` with `c ≤ CUTOFF`: the
/// minimal padding that still lets every recursion level split evenly
/// until the blocked kernel takes over. Padding to the next power of
/// two — the obvious choice — overshoots badly just past a boundary
/// (n = 65 would pad to 128 and do 7·64³ ≈ 1.8 M multiplies; padding
/// to 66 recurses once into 33×33 blocked calls, ≈ 0.25 M).
fn padded_size(n: usize) -> usize {
    debug_assert!(n > CUTOFF);
    let mut k = 0u32;
    while n.div_ceil(1 << k) > CUTOFF {
        k += 1;
    }
    n.div_ceil(1 << k) << k
}

/// `C = A·B` for row-major square matrices of any size via Strassen's
/// algorithm. Sizes above the cutoff are padded to the smallest
/// `c · 2^k` (`c ≤ CUTOFF`) so the recursion always splits evenly —
/// see [`padded_size`].
///
/// Panics if a slice is shorter than `n²`; shapes are the caller's
/// contract.
pub fn sgemm_strassen(a: &[f32], b: &[f32], c: &mut [f32], n: usize) {
    assert!(a.len() >= n * n, "A too short");
    assert!(b.len() >= n * n, "B too short");
    assert!(c.len() >= n * n, "C too short");
    if n == 0 {
        return;
    }
    if n <= CUTOFF {
        sgemm(a, b, c, n, n, n);
        return;
    }
    let p = padded_size(n);
    if p == n {
        let mut out = vec![0.0f32; n * n];
        strassen_rec(a, b, &mut out, n);
        c[..n * n].copy_from_slice(&out);
    } else {
        // Pad to c·2^k, multiply, crop.
        let mut ap = vec![0.0f32; p * p];
        let mut bp = vec![0.0f32; p * p];
        let mut cp = vec![0.0f32; p * p];
        for r in 0..n {
            ap[r * p..r * p + n].copy_from_slice(&a[r * n..(r + 1) * n]);
            bp[r * p..r * p + n].copy_from_slice(&b[r * n..(r + 1) * n]);
        }
        strassen_rec(&ap, &bp, &mut cp, p);
        for r in 0..n {
            c[r * n..(r + 1) * n].copy_from_slice(&cp[r * p..r * p + n]);
        }
    }
}

/// Recursive step; `n = c · 2^k` with `c ≤ CUTOFF` here, so every
/// level above the cutoff is even and splits into equal quadrants.
fn strassen_rec(a: &[f32], b: &[f32], c: &mut [f32], n: usize) {
    if n <= CUTOFF {
        sgemm(a, b, c, n, n, n);
        return;
    }
    let h = n / 2;
    let quad = |m: &[f32], qi: usize, qj: usize| -> Vec<f32> {
        let mut out = vec![0.0f32; h * h];
        for r in 0..h {
            let src = (qi * h + r) * n + qj * h;
            out[r * h..(r + 1) * h].copy_from_slice(&m[src..src + h]);
        }
        out
    };
    let add = |x: &[f32], y: &[f32]| -> Vec<f32> { x.iter().zip(y).map(|(p, q)| p + q).collect() };
    let sub = |x: &[f32], y: &[f32]| -> Vec<f32> { x.iter().zip(y).map(|(p, q)| p - q).collect() };

    let a11 = quad(a, 0, 0);
    let a12 = quad(a, 0, 1);
    let a21 = quad(a, 1, 0);
    let a22 = quad(a, 1, 1);
    let b11 = quad(b, 0, 0);
    let b12 = quad(b, 0, 1);
    let b21 = quad(b, 1, 0);
    let b22 = quad(b, 1, 1);

    let mut m = vec![vec![0.0f32; h * h]; 7];
    strassen_rec(&add(&a11, &a22), &add(&b11, &b22), &mut m[0], h);
    strassen_rec(&add(&a21, &a22), &b11, &mut m[1], h);
    strassen_rec(&a11, &sub(&b12, &b22), &mut m[2], h);
    strassen_rec(&a22, &sub(&b21, &b11), &mut m[3], h);
    strassen_rec(&add(&a11, &a12), &b22, &mut m[4], h);
    strassen_rec(&sub(&a21, &a11), &add(&b11, &b12), &mut m[5], h);
    strassen_rec(&sub(&a12, &a22), &add(&b21, &b22), &mut m[6], h);

    // C quadrants.
    for r in 0..h {
        for col in 0..h {
            let i = r * h + col;
            let c11 = m[0][i] + m[3][i] - m[4][i] + m[6][i];
            let c12 = m[2][i] + m[4][i];
            let c21 = m[1][i] + m[3][i];
            let c22 = m[0][i] - m[1][i] + m[2][i] + m[5][i];
            c[r * n + col] = c11;
            c[r * n + col + h] = c12;
            c[(r + h) * n + col] = c21;
            c[(r + h) * n + col + h] = c22;
        }
    }
}

/// Multiplication count of Strassen vs. the classical algorithm for an
/// `n × n` problem — used by documentation and the complexity test.
/// Mirrors what [`sgemm_strassen`] actually executes: below the cutoff
/// the blocked kernel's `n³` (the old accounting charged `CUTOFF³` to
/// every small problem), above it the padded recursion's `7^k · c³`.
pub fn strassen_multiplies(n: usize) -> u64 {
    if n <= CUTOFF {
        return (n as u64).pow(3);
    }
    fn rec(p: usize) -> u64 {
        if p <= CUTOFF {
            (p as u64).pow(3)
        } else {
            7 * rec(p / 2)
        }
    }
    rec(padded_size(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocked::sgemm_naive;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_mat(rng: &mut StdRng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() <= tol * (1.0 + y.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn matches_naive_power_of_two() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [32usize, 128, 256] {
            let a = random_mat(&mut rng, n * n);
            let b = random_mat(&mut rng, n * n);
            let mut c = vec![0.0f32; n * n];
            let mut expect = vec![0.0f32; n * n];
            sgemm_strassen(&a, &b, &mut c, n);
            sgemm_naive(&a, &b, &mut expect, n, n, n);
            // Strassen loses a little precision to its additions.
            assert_close(&c, &expect, 1e-3);
        }
    }

    #[test]
    fn matches_naive_odd_size() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100;
        let a = random_mat(&mut rng, n * n);
        let b = random_mat(&mut rng, n * n);
        let mut c = vec![0.0f32; n * n];
        let mut expect = vec![0.0f32; n * n];
        sgemm_strassen(&a, &b, &mut c, n);
        sgemm_naive(&a, &b, &mut expect, n, n, n);
        assert_close(&c, &expect, 1e-3);
    }

    #[test]
    fn identity_and_zero() {
        let n = 96;
        let mut eye = vec![0.0f32; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let mut rng = StdRng::seed_from_u64(3);
        let b = random_mat(&mut rng, n * n);
        let mut c = vec![0.0f32; n * n];
        sgemm_strassen(&eye, &b, &mut c, n);
        assert_close(&c, &b, 1e-4);
        let zero = vec![0.0f32; n * n];
        sgemm_strassen(&zero, &b, &mut c, n);
        assert!(c.iter().all(|&v| v == 0.0));
        // n = 0 is a no-op.
        sgemm_strassen(&[], &[], &mut [], 0);
    }

    #[test]
    fn complexity_beats_cubic() {
        // 7^k vs 8^k: at n = 1024 (k = 4 levels above the cutoff),
        // Strassen does (7/8)^4 ≈ 59% of the classical multiplies.
        let classical = 1024u64.pow(3);
        let strassen = strassen_multiplies(1024);
        let ratio = strassen as f64 / classical as f64;
        assert!((0.55..0.65).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "A too short")]
    fn short_input_panics() {
        let mut c = vec![0.0f32; 4];
        sgemm_strassen(&[1.0], &[1.0; 4], &mut c, 2);
    }

    #[test]
    fn multiply_count_matches_dispatch() {
        // Below the cutoff the blocked kernel runs: n³, not CUTOFF³.
        assert_eq!(strassen_multiplies(10), 1000);
        assert_eq!(strassen_multiplies(64), 64u64.pow(3));
        // Just past the boundary: pad 65 → 66, one split, 33³ leaves.
        assert_eq!(strassen_multiplies(65), 7 * 33u64.pow(3));
        // The padded count must never exceed the old
        // next-power-of-two scheme's and should beat classical at 65.
        assert!(strassen_multiplies(65) < 65u64.pow(3));
        assert_eq!(strassen_multiplies(129), 49 * 33u64.pow(3));
    }

    #[test]
    fn padding_is_minimal() {
        assert_eq!(padded_size(65), 66);
        assert_eq!(padded_size(100), 100);
        assert_eq!(padded_size(127), 128);
        assert_eq!(padded_size(128), 128);
        assert_eq!(padded_size(129), 132);
        assert_eq!(padded_size(257), 264);
        for n in 65..1025 {
            let p = padded_size(n);
            assert!(p >= n, "p {p} < n {n}");
            let mut c = p;
            while c > CUTOFF {
                assert_eq!(c % 2, 0, "n {n}: {p} has odd factor {c} above cutoff");
                c /= 2;
            }
        }
    }

    #[test]
    fn pad_crop_is_exact_past_the_boundary() {
        // Integer-valued inputs keep every intermediate representable,
        // so padded Strassen must agree with naive *bitwise* — any
        // pad/crop indexing drift shows up as a hard mismatch.
        for n in [65usize, 66, 96, 129] {
            let mut state = 42u64 ^ n as u64;
            let mut next = || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) % 7) as f32 - 3.0
            };
            let a: Vec<f32> = (0..n * n).map(|_| next()).collect();
            let b: Vec<f32> = (0..n * n).map(|_| next()).collect();
            let mut c = vec![0.0f32; n * n];
            let mut expect = vec![0.0f32; n * n];
            sgemm_strassen(&a, &b, &mut c, n);
            sgemm_naive(&a, &b, &mut expect, n, n, n);
            assert_eq!(c, expect, "n = {n}");
        }
    }
}
