//! Guided search — the paper's faster alternative to brute force
//! (§3.3: "the tuning process could be further accelerated using more
//! sophisticated search methods").
//!
//! Strategy: coordinate descent. Evaluate one seed point per variant
//! (the variant axis is the discontinuous one), keep the best few
//! variants, then for each survivor optimize one parameter axis at a
//! time (LU → MNt → MNb) holding the others fixed, repeating until a
//! full sweep changes nothing. On convex-ish landscapes this visits a
//! small fraction of the brute-force space.

use wino_codegen::Unroll;
use wino_gpu::DeviceProfile;
use wino_tensor::ConvDesc;

use crate::error::TuneError;
use crate::space::{search_space, TuningPoint, MNB_VALUES, MNT_VALUES};
use crate::tuner::{evaluate_candidate as evaluate_point, Evaluation};

/// Result of a guided search.
#[derive(Clone, Debug)]
pub struct GuidedReport {
    /// The winning point.
    pub best: Evaluation,
    /// Points actually evaluated (≪ the brute-force space).
    pub evaluated: usize,
}

/// Runs coordinate-descent tuning. `survivors` is how many variants
/// advance to the refinement phase (2–4 is plenty).
///
/// # Errors
/// [`TuneError::NothingRuns`] when no point of the space launches.
pub fn tune_guided(
    desc: &ConvDesc,
    device: &DeviceProfile,
    survivors: usize,
) -> Result<GuidedReport, TuneError> {
    let space = search_space(desc);
    let mut evaluated = 0usize;

    // Phase 1: one neutral seed per variant.
    let mut variants: Vec<TuningPoint> = Vec::new();
    for p in &space {
        if !variants.iter().any(|v| v.variant == p.variant) {
            variants.push(TuningPoint {
                variant: p.variant,
                unroll: Unroll::Full,
                mnt: 4,
                mnb: 16,
                threads: 1,
            });
        }
    }
    let mut seeded: Vec<Evaluation> = variants
        .iter()
        .filter_map(|p| {
            evaluated += 1;
            evaluate_point(desc, device, p)
        })
        .collect();
    if seeded.is_empty() {
        // Neutral seeds may all be unlaunchable (e.g. tiny register
        // files); fall back to seeding with every point of the first
        // feasible parameter combination per variant.
        for p in &space {
            evaluated += 1;
            if let Some(e) = evaluate_point(desc, device, p) {
                if !seeded.iter().any(|s| s.point.variant == e.point.variant) {
                    seeded.push(e);
                }
            }
        }
    }
    if seeded.is_empty() {
        return Err(TuneError::NothingRuns(format!("{desc} on {}", device.name)));
    }
    seeded.sort_by(|a, b| a.time_ms.total_cmp(&b.time_ms));
    seeded.truncate(survivors.max(1));

    // Phase 2: coordinate descent per survivor.
    let mut best: Option<Evaluation> = None;
    for seed in seeded {
        let mut current = seed;
        loop {
            let mut improved = false;
            // Axis 1: unroll.
            for unroll in Unroll::table1_values() {
                let cand = TuningPoint {
                    unroll,
                    ..current.point
                };
                if cand == current.point {
                    continue;
                }
                evaluated += 1;
                if let Some(e) = evaluate_point(desc, device, &cand) {
                    if e.time_ms < current.time_ms {
                        current = e;
                        improved = true;
                    }
                }
            }
            // Axis 2: MNt.
            for &mnt in &MNT_VALUES {
                let cand = TuningPoint {
                    mnt,
                    ..current.point
                };
                if cand == current.point {
                    continue;
                }
                evaluated += 1;
                if let Some(e) = evaluate_point(desc, device, &cand) {
                    if e.time_ms < current.time_ms {
                        current = e;
                        improved = true;
                    }
                }
            }
            // Axis 3: MNb.
            for &mnb in &MNB_VALUES {
                let cand = TuningPoint {
                    mnb,
                    ..current.point
                };
                if cand == current.point {
                    continue;
                }
                evaluated += 1;
                if let Some(e) = evaluate_point(desc, device, &cand) {
                    if e.time_ms < current.time_ms {
                        current = e;
                        improved = true;
                    }
                }
            }
            if !improved {
                break;
            }
        }
        match &best {
            Some(b) if b.time_ms <= current.time_ms => {}
            _ => best = Some(current),
        }
    }
    // `seeded` was non-empty and every survivor yields a `current`,
    // so `best` is always `Some` here — but a typed error beats an
    // unwind if that invariant ever shifts.
    let best = best.ok_or_else(|| TuneError::NothingRuns(format!("{desc} on {}", device.name)))?;
    Ok(GuidedReport { best, evaluated })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuner::tune;
    use wino_gpu::{gtx_1080_ti, mali_g71};

    fn conv() -> ConvDesc {
        ConvDesc::new(3, 1, 1, 32, 1, 14, 14, 16)
    }

    #[test]
    fn guided_is_much_cheaper_than_brute_force() {
        let full = search_space(&conv()).len();
        let report = tune_guided(&conv(), &gtx_1080_ti(), 3).unwrap();
        assert!(
            report.evaluated * 4 < full,
            "guided used {} of {} points",
            report.evaluated,
            full
        );
    }

    #[test]
    fn guided_lands_near_the_brute_force_optimum() {
        for device in [gtx_1080_ti(), mali_g71()] {
            let brute = tune(&conv(), &device, 8).unwrap();
            let guided = tune_guided(&conv(), &device, 3).unwrap();
            let gap = guided.best.time_ms / brute.best.time_ms;
            assert!(
                gap < 1.15,
                "{}: guided {} ms vs brute {} ms ({gap:.2}x)",
                device.name,
                guided.best.time_ms,
                brute.best.time_ms
            );
        }
    }

    #[test]
    fn guided_handles_strided_baselines() {
        let strided = ConvDesc::new(3, 2, 1, 32, 1, 14, 14, 16);
        let report = tune_guided(&strided, &gtx_1080_ti(), 2).unwrap();
        assert!(report.best.point.variant.winograd_m().is_none());
    }
}
