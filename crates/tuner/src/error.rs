//! Typed errors for the tuning layer.
//!
//! The tuner is library code reachable from long-running services
//! (the bench harness, the graph planner), so conditions a caller can
//! hit — an empty feasible space, a panicking evaluation worker, a
//! damaged cache file — are typed variants here, not `expect` calls.
//! Panics remain only for internal invariants, and their messages say
//! so explicitly.

use std::any::Any;

/// Errors from tuning.
#[derive(Clone, Debug, PartialEq)]
pub enum TunerError {
    /// Not a single point of the space ran on this device.
    NothingRuns(String),
    /// A tuning worker thread panicked; the payload rendered as a
    /// string. Seen only from the *unhardened* parallel sweep —
    /// `tune_hardened` catches candidate panics per-point instead.
    WorkerPanicked(String),
    /// A persisted artifact (cache file) failed validation. Callers
    /// that prefer degradation over failure should use
    /// `TuningCache::load_or_rebuild`, which never returns this.
    CacheInvalid(String),
}

impl std::fmt::Display for TunerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TunerError::NothingRuns(msg) => write!(f, "no tuning point runs: {msg}"),
            TunerError::WorkerPanicked(msg) => write!(f, "tuning worker panicked: {msg}"),
            TunerError::CacheInvalid(msg) => write!(f, "tuning cache invalid: {msg}"),
        }
    }
}

impl std::error::Error for TunerError {}

/// Backwards-compatible name: earlier revisions exposed the error as
/// `TuneError` with the single `NothingRuns` variant.
pub type TuneError = TunerError;

/// Renders a panic payload (from `ScopedJoinHandle::join` or
/// `catch_unwind`) as a diagnostic string.
pub(crate) fn panic_payload_string(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
