//! Persistent tuning cache.
//!
//! Tuning a convolution costs a full space sweep; results are stable
//! for a given (convolution, device) pair, so the framework caches
//! them — mirroring the recipe database of §3.1.2 at the tuning layer.
//! The cache serializes to JSON so deployments can ship pre-tuned
//! parameter sets per platform.
//!
//! ## Hardened on-disk format
//!
//! A cache file a deployment ships around is exactly the kind of
//! input that rots: truncated copies, partial writes, edits by hand,
//! files from an older build. The on-disk envelope therefore carries
//! a format version and an FNV-1a checksum of the canonical entry
//! serialization, and every entry is sanity-checked on load
//! (finite positive time, plausible blocking parameters). The strict
//! loaders ([`TuningCache::from_json`], [`TuningCache::load`]) report
//! [`CacheLoadError`]; [`TuningCache::load_or_rebuild`] is the
//! serving-path entry point — it *never* fails, degrading to an empty
//! cache (a re-tune) with a `probe::diag` note and a bump of the
//! `tuner.cache.rebuilt` counter.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use wino_codegen::{PlanVariant, Unroll};
use wino_tensor::ConvDesc;

use crate::space::TuningPoint;
use crate::tuner::Evaluation;

/// Version tag of the on-disk envelope. Bump on any change to
/// [`CacheEntry`]'s semantics; older files then rebuild rather than
/// deserialize into wrong meanings.
pub const CACHE_FORMAT_VERSION: u32 = 2;

/// Serializable form of one cached tuning result.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct CacheEntry {
    /// Variant tag: `"direct"`, `"im2col"`, `"nonfused"`, `"fused"`.
    pub variant: String,
    /// Winograd output tile size (0 for baselines).
    pub m: usize,
    /// Unroll factor (0 encodes ∞).
    pub unroll: usize,
    /// Register blocking.
    pub mnt: usize,
    /// Thread blocking.
    pub mnb: usize,
    /// CPU runtime lanes of the `wino-runtime` pool.
    pub threads: usize,
    /// Modelled runtime in milliseconds.
    pub time_ms: f64,
}

impl CacheEntry {
    /// Converts an evaluation into its serializable form.
    pub fn from_evaluation(e: &Evaluation) -> Self {
        let (variant, m) = match e.point.variant {
            PlanVariant::Direct => ("direct", 0),
            PlanVariant::Im2col => ("im2col", 0),
            PlanVariant::WinogradNonFused { m } => ("nonfused", m),
            PlanVariant::WinogradFused { m } => ("fused", m),
        };
        CacheEntry {
            variant: variant.to_string(),
            m,
            unroll: match e.point.unroll {
                Unroll::Factor(f) => f,
                Unroll::Full => 0,
            },
            mnt: e.point.mnt,
            mnb: e.point.mnb,
            threads: e.point.threads,
            time_ms: e.time_ms,
        }
    }

    /// Whether the entry's numbers are plausible: finite positive
    /// time, non-zero blocking, tile size within the α ≤ 16 pruning
    /// bound. Entries failing this are dropped on load — a bit-flip
    /// that survives JSON parsing must not become a selected plan.
    pub fn is_sane(&self) -> bool {
        self.time_ms.is_finite()
            && self.time_ms > 0.0
            && (1..=1024).contains(&self.threads)
            && (1..=64).contains(&self.mnt)
            && (1..=256).contains(&self.mnb)
            && self.m <= 16
            && self.unroll <= 64
    }

    /// Reconstructs the evaluation; `None` for unknown variant tags
    /// (forward compatibility).
    pub fn to_evaluation(&self) -> Option<Evaluation> {
        let variant = match self.variant.as_str() {
            "direct" => PlanVariant::Direct,
            "im2col" => PlanVariant::Im2col,
            "nonfused" => PlanVariant::WinogradNonFused { m: self.m },
            "fused" => PlanVariant::WinogradFused { m: self.m },
            _ => return None,
        };
        Some(Evaluation {
            point: TuningPoint {
                variant,
                unroll: if self.unroll == 0 {
                    Unroll::Full
                } else {
                    Unroll::Factor(self.unroll)
                },
                mnt: self.mnt,
                mnb: self.mnb,
                threads: self.threads,
            },
            time_ms: self.time_ms,
        })
    }
}

/// Stable string key for a (convolution, device) pair.
pub fn cache_key(desc: &ConvDesc, device_name: &str) -> String {
    format!(
        "{device_name}|k{}s{}p{}oc{}b{}h{}w{}c{}",
        desc.ksz, desc.stride, desc.pad, desc.out_ch, desc.batch, desc.in_h, desc.in_w, desc.in_ch
    )
}

/// Thread-safe tuning cache with JSON persistence.
#[derive(Default)]
pub struct TuningCache {
    entries: RwLock<BTreeMap<String, CacheEntry>>,
}

impl TuningCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a cached result.
    pub fn get(&self, desc: &ConvDesc, device_name: &str) -> Option<Evaluation> {
        self.entries
            .read()
            .get(&cache_key(desc, device_name))
            .and_then(CacheEntry::to_evaluation)
    }

    /// Stores a result.
    pub fn put(&self, desc: &ConvDesc, device_name: &str, eval: &Evaluation) {
        self.entries.write().insert(
            cache_key(desc, device_name),
            CacheEntry::from_evaluation(eval),
        );
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Returns `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Serializes to the versioned, checksummed envelope (pretty
    /// JSON).
    ///
    /// # Errors
    /// Serialization failures (effectively unreachable for this type).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        let entries = self.entries.read();
        let file = CacheFile {
            version: CACHE_FORMAT_VERSION,
            checksum: entries_checksum(&entries)?,
            entries: entries.clone(),
        };
        serde_json::to_string_pretty(&file)
    }

    /// Parses and validates the versioned envelope.
    ///
    /// Individual entries that parse but fail [`CacheEntry::is_sane`]
    /// are dropped with a `probe::diag` note rather than failing the
    /// load: one damaged row should not discard a whole device's
    /// tuning results.
    ///
    /// # Errors
    /// [`CacheLoadError`] for malformed JSON, a version mismatch, or a
    /// checksum mismatch.
    pub fn from_json(json: &str) -> Result<Self, CacheLoadError> {
        let file: CacheFile = serde_json::from_str(json).map_err(CacheLoadError::Parse)?;
        if file.version != CACHE_FORMAT_VERSION {
            return Err(CacheLoadError::VersionMismatch {
                found: file.version,
                expected: CACHE_FORMAT_VERSION,
            });
        }
        let recomputed = entries_checksum(&file.entries).map_err(CacheLoadError::Parse)?;
        if recomputed != file.checksum {
            return Err(CacheLoadError::ChecksumMismatch {
                stored: file.checksum,
                recomputed,
            });
        }
        let mut entries = file.entries;
        entries.retain(|key, entry| {
            let sane = entry.is_sane();
            if !sane {
                wino_probe::diag(format!(
                    "tuning cache: dropping implausible entry {key:?}: {entry:?}"
                ));
            }
            sane
        });
        Ok(TuningCache {
            entries: RwLock::new(entries),
        })
    }

    /// Writes the cache to a file.
    ///
    /// # Errors
    /// I/O failures.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let json = self.to_json().map_err(io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Reads a cache from a file (strict: validation failures are
    /// errors).
    ///
    /// # Errors
    /// I/O or validation failures.
    pub fn load(path: &Path) -> io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        Self::from_json(&json).map_err(io::Error::other)
    }

    /// Reads a cache from a file, degrading to an empty cache on any
    /// failure — the serving-path loader, guaranteed not to fail.
    ///
    /// A missing file is the normal first-run case (empty cache, no
    /// diagnostic). A present-but-invalid file — unreadable,
    /// truncated, bit-flipped, or from another format version — emits
    /// a `probe::diag` note, bumps `tuner.cache.rebuilt`, and yields
    /// an empty cache so the caller re-tunes instead of crashing or
    /// trusting damaged parameters.
    pub fn load_or_rebuild(path: &Path) -> Self {
        static REBUILT: wino_probe::Counter = wino_probe::Counter::new("tuner.cache.rebuilt");
        if !path.exists() {
            return TuningCache::new();
        }
        let mut bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                wino_probe::diag(format!(
                    "tuning cache: could not read {}: {e}; rebuilding",
                    path.display()
                ));
                REBUILT.add(1);
                return TuningCache::new();
            }
        };
        // WINO_FAULT hook (cache-deserialization site): one relaxed
        // load when disarmed.
        wino_probe::fault::inject_bytes(wino_probe::fault::Site::CacheDeser, &mut bytes);
        match Self::from_json(&String::from_utf8_lossy(&bytes)) {
            Ok(cache) => cache,
            Err(e) => {
                wino_probe::diag(format!(
                    "tuning cache: invalid file {}: {e}; rebuilding",
                    path.display()
                ));
                REBUILT.add(1);
                TuningCache::new()
            }
        }
    }
}

/// On-disk envelope: entries plus integrity metadata.
#[derive(Serialize, Deserialize)]
struct CacheFile {
    version: u32,
    checksum: String,
    entries: BTreeMap<String, CacheEntry>,
}

/// FNV-1a over the canonical (compact, sorted — `BTreeMap` iteration
/// order) serialization of the entries, rendered as 16 hex digits.
fn entries_checksum(entries: &BTreeMap<String, CacheEntry>) -> Result<String, serde_json::Error> {
    let canonical = serde_json::to_string(entries)?;
    let mut hash: u64 = 0xcbf29ce484222325;
    for byte in canonical.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    Ok(format!("{hash:016x}"))
}

/// Why a strict cache load was refused.
#[derive(Debug)]
pub enum CacheLoadError {
    /// The JSON failed to parse (truncation, corruption, hand edits).
    Parse(serde_json::Error),
    /// The file was written by a different format version.
    VersionMismatch {
        /// Version tag found in the file.
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
    /// The entries do not match the stored checksum (bit rot or
    /// partial modification that still parses as JSON).
    ChecksumMismatch {
        /// Checksum recorded in the file.
        stored: String,
        /// Checksum recomputed from the parsed entries.
        recomputed: String,
    },
}

impl std::fmt::Display for CacheLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheLoadError::Parse(e) => write!(f, "parse error: {e}"),
            CacheLoadError::VersionMismatch { found, expected } => {
                write!(f, "format version {found} (this build reads {expected})")
            }
            CacheLoadError::ChecksumMismatch { stored, recomputed } => {
                write!(
                    f,
                    "checksum mismatch: stored {stored}, recomputed {recomputed}"
                )
            }
        }
    }
}

impl std::error::Error for CacheLoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CacheLoadError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_eval() -> Evaluation {
        Evaluation {
            point: TuningPoint {
                variant: PlanVariant::WinogradFused { m: 4 },
                unroll: Unroll::Full,
                mnt: 4,
                mnb: 16,
                threads: 1,
            },
            time_ms: 0.123,
        }
    }

    fn sample_desc() -> ConvDesc {
        ConvDesc::new(3, 1, 1, 64, 1, 14, 14, 32)
    }

    #[test]
    fn put_get_round_trip() {
        let cache = TuningCache::new();
        assert!(cache.get(&sample_desc(), "dev").is_none());
        cache.put(&sample_desc(), "dev", &sample_eval());
        let got = cache.get(&sample_desc(), "dev").unwrap();
        assert_eq!(got.point, sample_eval().point);
        assert_eq!(got.time_ms, 0.123);
    }

    #[test]
    fn keys_distinguish_device_and_shape() {
        let cache = TuningCache::new();
        cache.put(&sample_desc(), "devA", &sample_eval());
        assert!(cache.get(&sample_desc(), "devB").is_none());
        let mut other = sample_desc();
        other.batch = 5;
        assert!(cache.get(&other, "devA").is_none());
    }

    #[test]
    fn json_round_trip() {
        let cache = TuningCache::new();
        cache.put(&sample_desc(), "dev", &sample_eval());
        let json = cache.to_json().unwrap();
        let loaded = TuningCache::from_json(&json).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(
            loaded.get(&sample_desc(), "dev").unwrap().point,
            sample_eval().point
        );
    }

    #[test]
    fn file_round_trip() {
        let cache = TuningCache::new();
        cache.put(&sample_desc(), "dev", &sample_eval());
        let dir = std::env::temp_dir().join("wino_tuner_test_cache.json");
        cache.save(&dir).unwrap();
        let loaded = TuningCache::load(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn unroll_encoding() {
        let mut e = sample_eval();
        e.point.unroll = Unroll::Factor(6);
        let entry = CacheEntry::from_evaluation(&e);
        assert_eq!(entry.unroll, 6);
        assert_eq!(
            entry.to_evaluation().unwrap().point.unroll,
            Unroll::Factor(6)
        );
        e.point.unroll = Unroll::Full;
        let entry = CacheEntry::from_evaluation(&e);
        assert_eq!(entry.unroll, 0);
        assert_eq!(entry.to_evaluation().unwrap().point.unroll, Unroll::Full);
    }

    #[test]
    fn unknown_variant_tag_ignored() {
        let entry = CacheEntry {
            variant: "quantum".into(),
            m: 2,
            unroll: 1,
            mnt: 1,
            mnb: 8,
            threads: 1,
            time_ms: 1.0,
        };
        assert!(entry.to_evaluation().is_none());
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(matches!(
            TuningCache::from_json("not json"),
            Err(CacheLoadError::Parse(_))
        ));
    }

    #[test]
    fn envelope_carries_version_and_checksum() {
        let cache = TuningCache::new();
        cache.put(&sample_desc(), "dev", &sample_eval());
        let json = cache.to_json().unwrap();
        assert!(json.contains("\"version\""));
        assert!(json.contains("\"checksum\""));
    }

    #[test]
    fn version_mismatch_rejected() {
        let entries: BTreeMap<String, CacheEntry> = BTreeMap::new();
        let file = CacheFile {
            version: CACHE_FORMAT_VERSION + 1,
            checksum: entries_checksum(&entries).unwrap(),
            entries,
        };
        let json = serde_json::to_string_pretty(&file).unwrap();
        assert!(matches!(
            TuningCache::from_json(&json),
            Err(CacheLoadError::VersionMismatch { .. })
        ));
    }

    #[test]
    fn checksum_mismatch_rejected() {
        let cache = TuningCache::new();
        cache.put(&sample_desc(), "dev", &sample_eval());
        // Alter an entry value without touching the stored checksum.
        let json = cache
            .to_json()
            .unwrap()
            .replace("\"mnb\": 16", "\"mnb\": 17");
        assert!(matches!(
            TuningCache::from_json(&json),
            Err(CacheLoadError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn insane_entry_dropped_on_load() {
        let mut entries = BTreeMap::new();
        let mut bad = CacheEntry::from_evaluation(&sample_eval());
        bad.threads = 0; // no runtime can have zero lanes
        entries.insert("bad".to_string(), bad);
        entries.insert(
            "good".to_string(),
            CacheEntry::from_evaluation(&sample_eval()),
        );
        let file = CacheFile {
            version: CACHE_FORMAT_VERSION,
            checksum: entries_checksum(&entries).unwrap(),
            entries,
        };
        let json = serde_json::to_string_pretty(&file).unwrap();
        let cache = TuningCache::from_json(&json).unwrap();
        assert_eq!(cache.len(), 1, "insane entry should be dropped");
    }

    #[test]
    fn sanity_predicate() {
        let good = CacheEntry::from_evaluation(&sample_eval());
        assert!(good.is_sane());
        for mutate in [
            |e: &mut CacheEntry| e.time_ms = f64::NAN,
            |e: &mut CacheEntry| e.time_ms = -1.0,
            |e: &mut CacheEntry| e.threads = 0,
            |e: &mut CacheEntry| e.mnt = 0,
            |e: &mut CacheEntry| e.mnb = 100_000,
            |e: &mut CacheEntry| e.m = 99,
        ] {
            let mut e = good.clone();
            mutate(&mut e);
            assert!(!e.is_sane(), "mutated entry should be insane: {e:?}");
        }
    }
}
