//! Persistent tuning cache.
//!
//! Tuning a convolution costs a full space sweep; results are stable
//! for a given (convolution, device) pair, so the framework caches
//! them — mirroring the recipe database of §3.1.2 at the tuning layer.
//! The cache serializes to JSON so deployments can ship pre-tuned
//! parameter sets per platform.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use wino_codegen::{PlanVariant, Unroll};
use wino_tensor::ConvDesc;

use crate::space::TuningPoint;
use crate::tuner::Evaluation;

/// Serializable form of one cached tuning result.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct CacheEntry {
    /// Variant tag: `"direct"`, `"im2col"`, `"nonfused"`, `"fused"`.
    pub variant: String,
    /// Winograd output tile size (0 for baselines).
    pub m: usize,
    /// Unroll factor (0 encodes ∞).
    pub unroll: usize,
    /// Register blocking.
    pub mnt: usize,
    /// Thread blocking.
    pub mnb: usize,
    /// CPU runtime lanes of the `wino-runtime` pool.
    pub threads: usize,
    /// Modelled runtime in milliseconds.
    pub time_ms: f64,
}

impl CacheEntry {
    /// Converts an evaluation into its serializable form.
    pub fn from_evaluation(e: &Evaluation) -> Self {
        let (variant, m) = match e.point.variant {
            PlanVariant::Direct => ("direct", 0),
            PlanVariant::Im2col => ("im2col", 0),
            PlanVariant::WinogradNonFused { m } => ("nonfused", m),
            PlanVariant::WinogradFused { m } => ("fused", m),
        };
        CacheEntry {
            variant: variant.to_string(),
            m,
            unroll: match e.point.unroll {
                Unroll::Factor(f) => f,
                Unroll::Full => 0,
            },
            mnt: e.point.mnt,
            mnb: e.point.mnb,
            threads: e.point.threads,
            time_ms: e.time_ms,
        }
    }

    /// Reconstructs the evaluation; `None` for unknown variant tags
    /// (forward compatibility).
    pub fn to_evaluation(&self) -> Option<Evaluation> {
        let variant = match self.variant.as_str() {
            "direct" => PlanVariant::Direct,
            "im2col" => PlanVariant::Im2col,
            "nonfused" => PlanVariant::WinogradNonFused { m: self.m },
            "fused" => PlanVariant::WinogradFused { m: self.m },
            _ => return None,
        };
        Some(Evaluation {
            point: TuningPoint {
                variant,
                unroll: if self.unroll == 0 {
                    Unroll::Full
                } else {
                    Unroll::Factor(self.unroll)
                },
                mnt: self.mnt,
                mnb: self.mnb,
                threads: self.threads,
            },
            time_ms: self.time_ms,
        })
    }
}

/// Stable string key for a (convolution, device) pair.
pub fn cache_key(desc: &ConvDesc, device_name: &str) -> String {
    format!(
        "{device_name}|k{}s{}p{}oc{}b{}h{}w{}c{}",
        desc.ksz, desc.stride, desc.pad, desc.out_ch, desc.batch, desc.in_h, desc.in_w, desc.in_ch
    )
}

/// Thread-safe tuning cache with JSON persistence.
#[derive(Default)]
pub struct TuningCache {
    entries: RwLock<BTreeMap<String, CacheEntry>>,
}

impl TuningCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a cached result.
    pub fn get(&self, desc: &ConvDesc, device_name: &str) -> Option<Evaluation> {
        self.entries
            .read()
            .get(&cache_key(desc, device_name))
            .and_then(CacheEntry::to_evaluation)
    }

    /// Stores a result.
    pub fn put(&self, desc: &ConvDesc, device_name: &str, eval: &Evaluation) {
        self.entries.write().insert(
            cache_key(desc, device_name),
            CacheEntry::from_evaluation(eval),
        );
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Returns `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Serializes to pretty JSON.
    ///
    /// # Errors
    /// Serialization failures (effectively unreachable for this type).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(&*self.entries.read())
    }

    /// Loads a cache from JSON.
    ///
    /// # Errors
    /// Malformed JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        let entries: BTreeMap<String, CacheEntry> = serde_json::from_str(json)?;
        Ok(TuningCache {
            entries: RwLock::new(entries),
        })
    }

    /// Writes the cache to a file.
    ///
    /// # Errors
    /// I/O failures.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let json = self.to_json().map_err(io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Reads a cache from a file.
    ///
    /// # Errors
    /// I/O or parse failures.
    pub fn load(path: &Path) -> io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        Self::from_json(&json).map_err(io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_eval() -> Evaluation {
        Evaluation {
            point: TuningPoint {
                variant: PlanVariant::WinogradFused { m: 4 },
                unroll: Unroll::Full,
                mnt: 4,
                mnb: 16,
                threads: 1,
            },
            time_ms: 0.123,
        }
    }

    fn sample_desc() -> ConvDesc {
        ConvDesc::new(3, 1, 1, 64, 1, 14, 14, 32)
    }

    #[test]
    fn put_get_round_trip() {
        let cache = TuningCache::new();
        assert!(cache.get(&sample_desc(), "dev").is_none());
        cache.put(&sample_desc(), "dev", &sample_eval());
        let got = cache.get(&sample_desc(), "dev").unwrap();
        assert_eq!(got.point, sample_eval().point);
        assert_eq!(got.time_ms, 0.123);
    }

    #[test]
    fn keys_distinguish_device_and_shape() {
        let cache = TuningCache::new();
        cache.put(&sample_desc(), "devA", &sample_eval());
        assert!(cache.get(&sample_desc(), "devB").is_none());
        let mut other = sample_desc();
        other.batch = 5;
        assert!(cache.get(&other, "devA").is_none());
    }

    #[test]
    fn json_round_trip() {
        let cache = TuningCache::new();
        cache.put(&sample_desc(), "dev", &sample_eval());
        let json = cache.to_json().unwrap();
        let loaded = TuningCache::from_json(&json).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(
            loaded.get(&sample_desc(), "dev").unwrap().point,
            sample_eval().point
        );
    }

    #[test]
    fn file_round_trip() {
        let cache = TuningCache::new();
        cache.put(&sample_desc(), "dev", &sample_eval());
        let dir = std::env::temp_dir().join("wino_tuner_test_cache.json");
        cache.save(&dir).unwrap();
        let loaded = TuningCache::load(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn unroll_encoding() {
        let mut e = sample_eval();
        e.point.unroll = Unroll::Factor(6);
        let entry = CacheEntry::from_evaluation(&e);
        assert_eq!(entry.unroll, 6);
        assert_eq!(
            entry.to_evaluation().unwrap().point.unroll,
            Unroll::Factor(6)
        );
        e.point.unroll = Unroll::Full;
        let entry = CacheEntry::from_evaluation(&e);
        assert_eq!(entry.unroll, 0);
        assert_eq!(entry.to_evaluation().unwrap().point.unroll, Unroll::Full);
    }

    #[test]
    fn unknown_variant_tag_ignored() {
        let entry = CacheEntry {
            variant: "quantum".into(),
            m: 2,
            unroll: 1,
            mnt: 1,
            mnb: 8,
            threads: 1,
            time_ms: 1.0,
        };
        assert!(entry.to_evaluation().is_none());
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(TuningCache::from_json("not json").is_err());
    }
}
