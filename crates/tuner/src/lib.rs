//! # wino-tuner — brute-force auto-tuning and variant selection
//!
//! Implements §3.3 of the paper: the full cross-product of the Table-1
//! parameters (variant WV, unroll LU, SGEMM blocking MNt/MNb, output
//! tile m) is generated through `wino-codegen` and timed on the
//! modelled device by `wino-gpu`; points that cannot launch — a fused
//! kernel exceeding the device's shared memory, a block larger than
//! the mobile part allows — are rejected, which is precisely how the
//! same meta-code adapts across platforms. Results persist in a JSON
//! [`TuningCache`].

//!
//! The hardened layer (`tune_hardened`) threads the `wino-guard`
//! fault-tolerance machinery through the sweep: sandboxed candidate
//! evaluation with quarantine, a persisted denylist, and the numeric
//! accuracy gate. The cache persists through a versioned, checksummed
//! envelope with a degrade-to-rebuild loader.

#![warn(missing_docs)]

mod cache;
mod error;
mod guided;
mod hardened;
mod space;
mod tuner;

pub use cache::{cache_key, CacheEntry, CacheLoadError, TuningCache, CACHE_FORMAT_VERSION};
pub use error::{TuneError, TunerError};
pub use guided::{tune_guided, GuidedReport};
pub use hardened::{candidate_key, tune_hardened, HardenedReport, Quarantine};
pub use space::{
    reduced_space, search_space, TuningPoint, MNB_VALUES, MNT_VALUES, M_RANGE, THREADS_VALUES,
};
pub use tuner::{
    evaluate_candidate, evaluate_untuned, tune, tune_with_space, untuned_point, Evaluation,
    TuneReport,
};
