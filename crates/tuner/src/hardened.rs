//! The hardened tuning sweep: sandboxed evaluation, quarantine, and
//! accuracy gating.
//!
//! `tune_with_space` assumes every candidate evaluation is benign; a
//! single panicking plan generator or a cost model returning NaN can
//! abort or corrupt a whole sweep. [`tune_hardened`] wraps each
//! candidate in the guard layer's sandbox and applies three screens:
//!
//! 1. **Denylist** — candidates quarantined by an earlier sweep are
//!    skipped outright (`tuner.denylist.skipped`);
//! 2. **Numeric gate** — Winograd `(F(m,r), variant)` triples must
//!    pass the [`NumericGate`]'s accuracy trial before any of their
//!    points is eligible (rejections counted by the gate itself as
//!    `guard.gate.rejected`);
//! 3. **Sandbox** — each surviving evaluation runs under
//!    `catch_unwind` with a watchdog budget; a panic, overrun, or
//!    non-finite modelled time quarantines the candidate into the
//!    denylist (`tuner.quarantine.panic` / `.timeout` / `.nonfinite`)
//!    and the sweep continues.
//!
//! The sweep is sequential by design: sandbox bookkeeping per point is
//! far cheaper than the evaluation itself for real workloads, and a
//! deterministic order keeps quarantine decisions reproducible.

use wino_codegen::PlanVariant;
use wino_gpu::DeviceProfile;
use wino_guard::{
    run_sandboxed, DenyCause, Denylist, NumericGate, SandboxBudget, SandboxOutcome, WinogradVariant,
};
use wino_tensor::ConvDesc;

use crate::error::TunerError;
use crate::space::TuningPoint;
use crate::tuner::{evaluate_candidate, Evaluation, TuneReport};

static QUAR_PANIC: wino_probe::Counter = wino_probe::Counter::new("tuner.quarantine.panic");
static QUAR_TIMEOUT: wino_probe::Counter = wino_probe::Counter::new("tuner.quarantine.timeout");
static QUAR_NONFINITE: wino_probe::Counter = wino_probe::Counter::new("tuner.quarantine.nonfinite");
static DENYLIST_SKIPPED: wino_probe::Counter = wino_probe::Counter::new("tuner.denylist.skipped");

/// Stable denylist key for a tuning point (the model-collapsed point,
/// rendered debug-style — unique per candidate the model can
/// distinguish).
pub fn candidate_key(desc: &ConvDesc, device: &DeviceProfile, point: &TuningPoint) -> String {
    format!(
        "{}|k{}s{}|{:?}",
        device.name,
        desc.ksz,
        desc.stride,
        point.model_key()
    )
}

/// One quarantine decision made during a hardened sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct Quarantine {
    /// The candidate that misbehaved.
    pub point: TuningPoint,
    /// Its denylist key.
    pub key: String,
    /// Why it was quarantined.
    pub cause: DenyCause,
}

/// Result of a hardened sweep: the usual report plus the fault
/// bookkeeping.
#[derive(Clone, Debug)]
pub struct HardenedReport {
    /// The winning point and sweep statistics.
    pub report: TuneReport,
    /// Candidates quarantined *during this sweep*.
    pub quarantined: Vec<Quarantine>,
    /// Points skipped because the denylist already held them.
    pub denylist_skipped: usize,
    /// Points skipped because their `(F(m,r), variant)` failed the
    /// accuracy gate.
    pub gate_skipped: usize,
}

fn gate_variant(point: &TuningPoint) -> Option<(usize, WinogradVariant)> {
    match point.variant {
        PlanVariant::WinogradNonFused { m } => Some((m, WinogradVariant::NonFused)),
        PlanVariant::WinogradFused { m } => Some((m, WinogradVariant::Fused)),
        PlanVariant::Direct | PlanVariant::Im2col => None,
    }
}

/// Runs a fault-isolated, accuracy-gated sweep over `space`.
///
/// `denylist` is consulted *and updated*: pass a freshly-loaded list
/// to inherit quarantine decisions from earlier sweeps, and persist it
/// afterwards to carry this sweep's decisions forward. `gate` is
/// optional; without it, accuracy screening is skipped (the behavior
/// of the unhardened tuner).
///
/// # Errors
/// [`TunerError::NothingRuns`] when no candidate survives evaluation,
/// gating, and quarantine.
pub fn tune_hardened(
    desc: &ConvDesc,
    device: &DeviceProfile,
    space: Vec<TuningPoint>,
    budget: &SandboxBudget,
    denylist: &Denylist,
    gate: Option<&NumericGate>,
) -> Result<HardenedReport, TunerError> {
    // Same model-key dedup as the parallel sweep: the analytic device
    // model cannot distinguish the runtime-threads axis.
    let mut seen = std::collections::HashSet::new();
    let space: Vec<TuningPoint> = space
        .into_iter()
        .filter(|p| seen.insert(p.model_key()))
        .collect();

    let mut evaluations: Vec<Evaluation> = Vec::new();
    let mut quarantined: Vec<Quarantine> = Vec::new();
    let mut rejected = 0usize;
    let mut denylist_skipped = 0usize;
    let mut gate_skipped = 0usize;

    for point in &space {
        let key = candidate_key(desc, device, point);
        if denylist.contains(&key) {
            DENYLIST_SKIPPED.add(1);
            denylist_skipped += 1;
            continue;
        }
        if let (Some(gate), Some((m, variant))) = (gate, gate_variant(point)) {
            if !gate.check(m, desc.ksz, variant).passed() {
                gate_skipped += 1;
                continue;
            }
        }
        match run_sandboxed(budget, || evaluate_candidate(desc, device, point)) {
            SandboxOutcome::Completed(Some(e)) if e.time_ms.is_finite() => evaluations.push(e),
            SandboxOutcome::Completed(Some(_)) => {
                QUAR_NONFINITE.add(1);
                wino_probe::diag(format!(
                    "tuner: quarantining {key} (non-finite modelled time)"
                ));
                denylist.insert(key.clone(), DenyCause::NonFinite);
                quarantined.push(Quarantine {
                    point: *point,
                    key,
                    cause: DenyCause::NonFinite,
                });
            }
            SandboxOutcome::Completed(None) => rejected += 1,
            SandboxOutcome::Panicked(msg) => {
                QUAR_PANIC.add(1);
                wino_probe::diag(format!("tuner: quarantining {key} (panicked: {msg})"));
                denylist.insert(key.clone(), DenyCause::Panic);
                quarantined.push(Quarantine {
                    point: *point,
                    key,
                    cause: DenyCause::Panic,
                });
            }
            SandboxOutcome::TimedOut {
                elapsed_ms,
                budget_ms,
            } => {
                QUAR_TIMEOUT.add(1);
                wino_probe::diag(format!(
                    "tuner: quarantining {key} (watchdog: {elapsed_ms:.1} ms > {budget_ms:.1} ms)"
                ));
                denylist.insert(key.clone(), DenyCause::Timeout);
                quarantined.push(Quarantine {
                    point: *point,
                    key,
                    cause: DenyCause::Timeout,
                });
            }
        }
    }

    let best = evaluations
        .iter()
        .min_by(|a, b| a.time_ms.total_cmp(&b.time_ms))
        .cloned()
        .ok_or_else(|| {
            TunerError::NothingRuns(format!(
                "{desc} on {} (hardened: {} quarantined, {} gate-rejected, {} denylisted)",
                device.name,
                quarantined.len(),
                gate_skipped,
                denylist_skipped
            ))
        })?;

    let mut per_variant_best: Vec<Evaluation> = Vec::new();
    for e in &evaluations {
        match per_variant_best
            .iter_mut()
            .find(|b| b.point.variant == e.point.variant)
        {
            Some(b) => {
                if e.time_ms < b.time_ms {
                    *b = e.clone();
                }
            }
            None => per_variant_best.push(e.clone()),
        }
    }
    per_variant_best.sort_by(|a, b| a.time_ms.total_cmp(&b.time_ms));

    Ok(HardenedReport {
        report: TuneReport {
            best,
            evaluated: evaluations.len(),
            rejected,
            per_variant_best,
        },
        quarantined,
        denylist_skipped,
        gate_skipped,
    })
}
