//! The brute-force auto-tuner (§3.3).
//!
//! "By performing a brute-force … exploration of the space of variants
//! and tuning parameters, we can find the best parameters for a given
//! Winograd convolution operation and provide performance portability
//! among different hardware platforms. Considering the manageable size
//! of the search space, we used the brute-force method."
//!
//! Every point generates its kernel plan through `wino-codegen` and is
//! timed by the `wino-gpu` model; points that fail to generate or
//! cannot launch on the device (fused kernels whose shared memory or
//! registers exceed the part) are counted as rejected — that rejection
//! *is* the mechanism by which variant selection adapts per platform.

use crossbeam::thread;
use wino_codegen::{generate_plan, CodegenOptions, PlanVariant};
use wino_gpu::{estimate_plan_ms, DeviceProfile};
use wino_tensor::ConvDesc;

use crate::error::{panic_payload_string, TuneError, TunerError};
use crate::space::{search_space, TuningPoint};

/// Outcome of evaluating one tuning point.
#[derive(Clone, Debug)]
pub struct Evaluation {
    /// The point evaluated.
    pub point: TuningPoint,
    /// Modelled runtime in milliseconds.
    pub time_ms: f64,
}

/// Result of tuning one convolution on one device.
#[derive(Clone, Debug)]
pub struct TuneReport {
    /// The winning point.
    pub best: Evaluation,
    /// Points successfully evaluated.
    pub evaluated: usize,
    /// Points rejected (generation or launch failure).
    pub rejected: usize,
    /// The best evaluation per variant (for variant-comparison plots).
    pub per_variant_best: Vec<Evaluation>,
}

fn evaluate_point(
    desc: &ConvDesc,
    device: &DeviceProfile,
    point: &TuningPoint,
) -> Option<Evaluation> {
    evaluate_candidate(desc, device, point)
}

/// Generates and prices one tuning point; `None` when the point cannot
/// generate or launch. Shared by the brute-force, guided, and hardened
/// tuners — and public so external harnesses (and the guard layer's
/// sandbox) can evaluate a single candidate in isolation.
///
/// This is the tuner-candidate fault-injection site: with
/// `WINO_FAULT=tuner:<trigger>` armed, the selected call panics,
/// reports a non-finite time, or marks the sandbox watchdog expired —
/// exercising the quarantine paths of `tune_hardened`.
pub fn evaluate_candidate(
    desc: &ConvDesc,
    device: &DeviceProfile,
    point: &TuningPoint,
) -> Option<Evaluation> {
    static EVALUATED: wino_probe::Counter = wino_probe::Counter::new("tuner.evaluated");
    static REJECTED: wino_probe::Counter = wino_probe::Counter::new("tuner.rejected");
    // WINO_FAULT hook (tuner-candidate site): one relaxed load when
    // disarmed.
    let injected = if wino_probe::fault::armed(wino_probe::fault::Site::TunerCandidate) {
        wino_probe::fault::fire(wino_probe::fault::Site::TunerCandidate)
    } else {
        None
    };
    if matches!(injected, Some(wino_probe::fault::Trigger::Panic)) {
        panic!("wino-fault: injected panic at tuner candidate");
    }
    let mut span = wino_probe::span("tuner.evaluate");
    span.arg("point", || format!("{point:?}"));
    let opts = CodegenOptions {
        unroll: point.unroll,
        mnt: point.mnt,
        mnb: point.mnb,
        ..CodegenOptions::default()
    };
    let mut evaluation = (|| {
        let plan = generate_plan(desc, point.variant, &opts).ok()?;
        let time_ms = estimate_plan_ms(device, &plan).ok()?;
        Some(Evaluation {
            point: *point,
            time_ms,
        })
    })();
    if matches!(
        injected,
        Some(wino_probe::fault::Trigger::Nan) | Some(wino_probe::fault::Trigger::Inf)
    ) {
        if let Some(e) = evaluation.as_mut() {
            e.time_ms = f64::NAN;
        }
    }
    match &evaluation {
        Some(e) => {
            EVALUATED.add(1);
            span.arg("time_ms", || format!("{:.6}", e.time_ms));
        }
        None => {
            REJECTED.add(1);
            span.arg("outcome", || "rejected".into());
        }
    }
    evaluation
}

/// Brute-force tunes `desc` on `device` over the full Table-1 space,
/// evaluating points in parallel across `threads` workers.
///
/// # Errors
/// [`TuneError::NothingRuns`] when every point is rejected.
pub fn tune(
    desc: &ConvDesc,
    device: &DeviceProfile,
    threads: usize,
) -> Result<TuneReport, TuneError> {
    tune_with_space(desc, device, threads, search_space(desc))
}

/// Tunes over an explicit (possibly filtered) point set — the paper's
/// "guided or sampled exploration" alternative to full brute force,
/// and the hook the benchmark harness uses to tune Winograd-only or
/// baseline-only sub-spaces.
///
/// # Errors
/// [`TuneError::NothingRuns`] when every point is rejected.
pub fn tune_with_space(
    desc: &ConvDesc,
    device: &DeviceProfile,
    threads: usize,
    space: Vec<TuningPoint>,
) -> Result<TuneReport, TuneError> {
    let threads = threads.clamp(1, 16);
    // The analytic device model prices GPU kernels and cannot see the
    // CPU runtime's `threads` axis, so equal-model points collapse to
    // one evaluation (the first encountered — lowest thread count in
    // enumeration order). The wall-clock CPU harness is where the
    // axis is measured for real.
    let mut seen = std::collections::HashSet::new();
    let space: Vec<TuningPoint> = space
        .into_iter()
        .filter(|p| seen.insert(p.model_key()))
        .collect();
    let chunks: Vec<&[TuningPoint]> = space.chunks(space.len().div_ceil(threads).max(1)).collect();
    let results: Vec<Option<Evaluation>> = thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                s.spawn(move |_| {
                    chunk
                        .iter()
                        .map(|p| evaluate_point(desc, device, p))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut all = Vec::new();
        for h in handles {
            match h.join() {
                Ok(chunk_results) => all.extend(chunk_results),
                Err(payload) => {
                    return Err(TunerError::WorkerPanicked(panic_payload_string(payload)))
                }
            }
        }
        Ok(all)
    })
    .unwrap_or_else(|payload| Err(TunerError::WorkerPanicked(panic_payload_string(payload))))?;

    let evaluations: Vec<Evaluation> = results.iter().flatten().cloned().collect();
    let rejected = results.len() - evaluations.len();
    let best = evaluations
        .iter()
        .min_by(|a, b| a.time_ms.total_cmp(&b.time_ms))
        .cloned()
        .ok_or_else(|| TuneError::NothingRuns(format!("{desc} on {}", device.name)))?;

    // Best per variant.
    let mut per_variant_best: Vec<Evaluation> = Vec::new();
    for e in &evaluations {
        match per_variant_best
            .iter_mut()
            .find(|b| b.point.variant == e.point.variant)
        {
            Some(b) => {
                if e.time_ms < b.time_ms {
                    *b = e.clone();
                }
            }
            None => per_variant_best.push(e.clone()),
        }
    }
    per_variant_best.sort_by(|a, b| a.time_ms.total_cmp(&b.time_ms));

    Ok(TuneReport {
        best,
        evaluated: evaluations.len(),
        rejected,
        per_variant_best,
    })
}

/// The untuned reference configuration the paper uses on the mobile
/// platform when auto-tuning is disabled: "We always used a non-fused
/// implementation with m = 2, when auto-tuning is disabled" (§4.3),
/// with neutral default parameters.
pub fn untuned_point() -> TuningPoint {
    TuningPoint {
        variant: PlanVariant::WinogradNonFused { m: 2 },
        unroll: wino_codegen::Unroll::Factor(1),
        mnt: 2,
        mnb: 16,
        threads: 1,
    }
}

/// Evaluates the untuned reference on a device.
///
/// # Errors
/// [`TuneError::NothingRuns`] if even the reference fails.
pub fn evaluate_untuned(desc: &ConvDesc, device: &DeviceProfile) -> Result<Evaluation, TuneError> {
    evaluate_point(desc, device, &untuned_point())
        .or_else(|| {
            // Strided or otherwise non-Winograd layers fall back to
            // im2col, still untuned.
            evaluate_point(
                desc,
                device,
                &TuningPoint {
                    variant: PlanVariant::Im2col,
                    ..untuned_point()
                },
            )
        })
        .ok_or_else(|| TuneError::NothingRuns(format!("untuned {desc} on {}", device.name)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_gpu::{gtx_1080_ti, mali_g71};

    fn small_conv() -> ConvDesc {
        ConvDesc::new(3, 1, 1, 32, 1, 14, 14, 16)
    }

    #[test]
    fn tuning_finds_a_winner() {
        let report = tune(&small_conv(), &gtx_1080_ti(), 4).unwrap();
        assert!(report.evaluated > 0);
        assert!(report.best.time_ms > 0.0);
        // The winner must beat (or match) every per-variant best.
        for v in &report.per_variant_best {
            assert!(report.best.time_ms <= v.time_ms + 1e-12);
        }
    }

    #[test]
    fn some_points_are_rejected_on_mobile() {
        // Mali's 384-thread block limit rejects every MNb = 32 point.
        let report = tune(&small_conv(), &mali_g71(), 4).unwrap();
        assert!(report.rejected > 0, "expected rejections on Mali");
        assert!(report.best.point.mnb < 32);
    }

    #[test]
    fn tuned_beats_untuned() {
        let desc = small_conv();
        for device in [gtx_1080_ti(), mali_g71()] {
            let tuned = tune(&desc, &device, 4).unwrap();
            let untuned = evaluate_untuned(&desc, &device).unwrap();
            assert!(
                tuned.best.time_ms <= untuned.time_ms,
                "{}: tuned {} vs untuned {}",
                device.name,
                tuned.best.time_ms,
                untuned.time_ms
            );
        }
    }

    #[test]
    fn winograd_wins_on_suitable_layers() {
        // A classic 3×3 layer: some Winograd variant should beat the
        // direct baseline on the desktop GPU.
        let report = tune(&small_conv(), &gtx_1080_ti(), 4).unwrap();
        assert!(
            report.best.point.variant.winograd_m().is_some(),
            "best = {:?}",
            report.best.point
        );
    }

    #[test]
    fn strided_conv_tunes_to_baseline() {
        let desc = ConvDesc::new(3, 2, 1, 32, 1, 14, 14, 16);
        let report = tune(&desc, &gtx_1080_ti(), 2).unwrap();
        assert!(report.best.point.variant.winograd_m().is_none());
    }

    #[test]
    fn deterministic() {
        let a = tune(&small_conv(), &gtx_1080_ti(), 4).unwrap();
        let b = tune(&small_conv(), &gtx_1080_ti(), 1).unwrap();
        assert_eq!(a.best.point, b.best.point);
        assert!((a.best.time_ms - b.best.time_ms).abs() < 1e-12);
    }
}
