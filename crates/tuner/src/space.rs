//! The tuning search space (Table 1 of the paper).
//!
//! | parameter | purpose                          | values        |
//! |-----------|----------------------------------|---------------|
//! | WV        | Winograd variant (fused/non-fused)| 0, 1         |
//! | LU        | loop unrolling factor            | 1, 2, 4, 6, ∞ |
//! | MNt       | SGEMM register blocking          | powers of two |
//! | MNb       | SGEMM thread blocking            | powers of two |
//! | m         | Winograd output tile size        | 2 ≤ m ≤ 10    |
//! | threads   | CPU runtime worker lanes         | 1, 2, 4, 8    |
//!
//! The `threads` axis is this framework's extension for the CPU
//! execution runtime (`wino-runtime`): the analytic GPU device model
//! is thread-agnostic, so the model-based tuner collapses the axis
//! (see `tune_with_space`), while the wall-clock CPU harness measures
//! each value for real.

use wino_codegen::{PlanVariant, Unroll};
use wino_gemm::GemmConfig;
use wino_tensor::ConvDesc;

/// One point in the tuning space.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TuningPoint {
    /// Implementation variant (WV plus the baselines).
    pub variant: PlanVariant,
    /// Loop unrolling factor LU.
    pub unroll: Unroll,
    /// SGEMM register blocking MNt.
    pub mnt: usize,
    /// SGEMM thread blocking MNb.
    pub mnb: usize,
    /// CPU execution lanes for the `wino-runtime` pool.
    pub threads: usize,
}

impl TuningPoint {
    /// The same point with the runtime axis normalized away — the key
    /// under which the thread-agnostic device model prices it.
    pub fn model_key(&self) -> TuningPoint {
        TuningPoint {
            threads: 1,
            ..*self
        }
    }

    /// CPU cache-blocking derived from the `MNt`/`MNb` axes: `MNb`
    /// scales the A-panel rows held hot (thread blocking → macro rows)
    /// and `MNt` the B-panel columns (register blocking → panel
    /// width). The defaults (`mnt = 8`, `mnb = 8`) reproduce
    /// [`GemmConfig::default`].
    pub fn gemm_config(&self) -> GemmConfig {
        GemmConfig {
            mc: (self.mnb * 8).max(8),
            kc: 128,
            nc: (self.mnt * 32).max(32),
        }
    }
}

/// The MNt values explored.
pub const MNT_VALUES: [usize; 4] = [1, 2, 4, 8];
/// The MNb values explored.
pub const MNB_VALUES: [usize; 3] = [8, 16, 32];
/// The m range explored (Table 1: 2 ≤ m ≤ 10).
pub const M_RANGE: std::ops::RangeInclusive<usize> = 2..=10;
/// The CPU runtime thread counts explored.
pub const THREADS_VALUES: [usize; 4] = [1, 2, 4, 8];

/// Enumerates the full brute-force space for one convolution,
/// pre-pruned to points that can possibly generate: Winograd variants
/// only for unit-stride layers and supported α.
pub fn search_space(desc: &ConvDesc) -> Vec<TuningPoint> {
    let mut variants: Vec<PlanVariant> = vec![PlanVariant::Direct, PlanVariant::Im2col];
    if desc.winograd_applicable() {
        for m in M_RANGE {
            let alpha = m + desc.ksz - 1;
            if !(4..=16).contains(&alpha) {
                continue;
            }
            variants.push(PlanVariant::WinogradNonFused { m });
            variants.push(PlanVariant::WinogradFused { m });
        }
    }
    let mut points = Vec::new();
    for &variant in &variants {
        for unroll in Unroll::table1_values() {
            for &mnt in &MNT_VALUES {
                for &mnb in &MNB_VALUES {
                    for &threads in &THREADS_VALUES {
                        points.push(TuningPoint {
                            variant,
                            unroll,
                            mnt,
                            mnb,
                            threads,
                        });
                    }
                }
            }
        }
    }
    points
}

/// A reduced sweep for large batch experiments (the paper's "sampled
/// exploration" option, §3.3): unroll ∈ {1, ∞}, MNt ∈ {2, 8}, one
/// runtime lane, full MNb and variant axes. ~10× cheaper than the
/// full space while still exercising every variant.
pub fn reduced_space(desc: &ConvDesc) -> Vec<TuningPoint> {
    search_space(desc)
        .into_iter()
        .filter(|p| {
            matches!(p.unroll, Unroll::Factor(1) | Unroll::Full)
                && (p.mnt == 2 || p.mnt == 8)
                && p.threads == 1
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_size_for_3x3() {
        let desc = ConvDesc::new(3, 1, 1, 64, 1, 14, 14, 32);
        let space = search_space(&desc);
        // 2 baselines + 9 m-values × 2 WV = 20 variants; × 5 LU × 4
        // MNt × 3 MNb × 4 threads = 4800 points.
        assert_eq!(space.len(), 20 * 5 * 4 * 3 * 4);
    }

    #[test]
    fn strided_conv_gets_no_winograd_points() {
        let desc = ConvDesc::new(3, 2, 1, 64, 1, 14, 14, 32);
        let space = search_space(&desc);
        assert!(space.iter().all(|p| p.variant.winograd_m().is_none()));
        assert_eq!(space.len(), 2 * 5 * 4 * 3 * 4);
    }

    #[test]
    fn reduced_space_collapses_runtime_axis() {
        let desc = ConvDesc::new(3, 1, 1, 64, 1, 14, 14, 32);
        assert!(reduced_space(&desc).iter().all(|p| p.threads == 1));
    }

    #[test]
    fn gemm_config_defaults_match() {
        let desc = ConvDesc::new(3, 1, 1, 8, 1, 8, 8, 4);
        let p = search_space(&desc)
            .into_iter()
            .find(|p| p.mnt == 8 && p.mnb == 8)
            .unwrap();
        assert_eq!(p.gemm_config(), GemmConfig::default());
        assert_eq!(p.model_key().threads, 1);
    }

    #[test]
    fn alpha_out_of_range_pruned() {
        // 7×7 filter: m up to 10 would give α = 16 (ok) but m = 2 →
        // α = 8 ok; all fine. 9×9 filter: m ≥ 8 → α ≥ 16; m = 9,10 → α
        // = 17, 18 pruned.
        let desc = ConvDesc::new(9, 1, 4, 8, 1, 18, 18, 4);
        let space = search_space(&desc);
        assert!(space
            .iter()
            .filter_map(|p| p.variant.winograd_m())
            .all(|m| m + 9 - 1 <= 16));
    }

    #[test]
    fn points_are_unique() {
        let desc = ConvDesc::new(3, 1, 1, 8, 1, 8, 8, 4);
        let space = search_space(&desc);
        let mut dedup = space.clone();
        dedup.sort_by_key(|p| format!("{p:?}"));
        dedup.dedup();
        assert_eq!(space.len(), dedup.len());
    }
}
