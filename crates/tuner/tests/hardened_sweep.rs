//! End-to-end tests of the hardened sweep: every quarantine path
//! fires under deterministic fault injection, and the no-fault path
//! agrees with the unhardened tuner.

use wino_gpu::gtx_1080_ti;
use wino_guard::{fault, DenyCause, Denylist, NumericGate, SandboxBudget};
use wino_tensor::ConvDesc;
use wino_tuner::{reduced_space, tune_hardened, tune_with_space};

fn conv() -> ConvDesc {
    ConvDesc::new(3, 1, 1, 32, 1, 14, 14, 16)
}

#[test]
fn no_fault_matches_unhardened_sweep() {
    let _scope = fault::scoped("");
    let desc = conv();
    let device = gtx_1080_ti();
    let plain = tune_with_space(&desc, &device, 4, reduced_space(&desc)).unwrap();
    let denylist = Denylist::new();
    let hardened = tune_hardened(
        &desc,
        &device,
        reduced_space(&desc),
        &SandboxBudget::default(),
        &denylist,
        None,
    )
    .unwrap();
    assert_eq!(hardened.report.best.point, plain.best.point);
    assert_eq!(hardened.report.evaluated, plain.evaluated);
    assert!(hardened.quarantined.is_empty());
    assert!(denylist.is_empty());
}

#[test]
fn injected_panic_is_quarantined_and_sweep_completes() {
    let _scope = fault::scoped("tuner:panic:3");
    let desc = conv();
    let device = gtx_1080_ti();
    let denylist = Denylist::new();
    let report = tune_hardened(
        &desc,
        &device,
        reduced_space(&desc),
        &SandboxBudget::default(),
        &denylist,
        None,
    )
    .unwrap();
    assert_eq!(report.quarantined.len(), 1);
    assert_eq!(report.quarantined[0].cause, DenyCause::Panic);
    assert!(denylist.contains(&report.quarantined[0].key));
    assert!(report.report.evaluated > 0, "sweep must complete");
}

#[test]
fn injected_timeout_is_quarantined() {
    let _scope = fault::scoped("tuner:timeout:2");
    let desc = conv();
    let device = gtx_1080_ti();
    let denylist = Denylist::new();
    let report = tune_hardened(
        &desc,
        &device,
        reduced_space(&desc),
        &SandboxBudget::default(),
        &denylist,
        None,
    )
    .unwrap();
    assert_eq!(report.quarantined.len(), 1);
    assert_eq!(report.quarantined[0].cause, DenyCause::Timeout);
}

#[test]
fn injected_nonfinite_time_is_quarantined() {
    let _scope = fault::scoped("tuner:nan:4");
    let desc = conv();
    let device = gtx_1080_ti();
    let denylist = Denylist::new();
    let report = tune_hardened(
        &desc,
        &device,
        reduced_space(&desc),
        &SandboxBudget::default(),
        &denylist,
        None,
    )
    .unwrap();
    assert_eq!(report.quarantined.len(), 1);
    assert_eq!(report.quarantined[0].cause, DenyCause::NonFinite);
}

#[test]
fn denylist_skips_quarantined_candidates_on_the_next_sweep() {
    let desc = conv();
    let device = gtx_1080_ti();
    let denylist = Denylist::new();
    {
        let _scope = fault::scoped("tuner:panic:3");
        tune_hardened(
            &desc,
            &device,
            reduced_space(&desc),
            &SandboxBudget::default(),
            &denylist,
            None,
        )
        .unwrap();
    }
    assert_eq!(denylist.len(), 1);
    // Second sweep, fault disarmed: the quarantined candidate is
    // skipped, nothing new is quarantined.
    let _scope = fault::scoped("");
    let second = tune_hardened(
        &desc,
        &device,
        reduced_space(&desc),
        &SandboxBudget::default(),
        &denylist,
        None,
    )
    .unwrap();
    assert_eq!(second.denylist_skipped, 1);
    assert!(second.quarantined.is_empty());
}

#[test]
fn gate_rejects_poisoned_winograd_triples() {
    // With the transform output poisoned, every (F(m,r), variant)
    // trial produces NaN: the gate rejects them all and the sweep
    // selects a baseline. The analytic candidate evaluations never run
    // a real transform, so only the gate trials see the fault.
    let _scope = fault::scoped("transform:nan");
    let desc = conv();
    let device = gtx_1080_ti();
    let denylist = Denylist::new();
    let gate = NumericGate::new();
    let report = tune_hardened(
        &desc,
        &device,
        reduced_space(&desc),
        &SandboxBudget::default(),
        &denylist,
        Some(&gate),
    )
    .unwrap();
    assert!(report.gate_skipped > 0, "winograd points must be gated");
    assert!(
        report.report.best.point.variant.winograd_m().is_none(),
        "best must be a baseline, got {:?}",
        report.report.best.point
    );
}

#[test]
fn gate_admits_healthy_winograd_triples() {
    let _scope = fault::scoped("");
    let desc = conv();
    let device = gtx_1080_ti();
    let denylist = Denylist::new();
    let gate = NumericGate::new();
    let report = tune_hardened(
        &desc,
        &device,
        reduced_space(&desc),
        &SandboxBudget::default(),
        &denylist,
        Some(&gate),
    )
    .unwrap();
    // The model favors Winograd on this layer (same assertion as the
    // unhardened tuner's tests): the gate must not block it.
    assert!(report.report.best.point.variant.winograd_m().is_some());
}
