//! Regression tests for the hardened cache loader: damaged files must
//! degrade to a rebuild (empty cache + diagnostic), never unwrap or
//! serve corrupted parameters.

use std::path::PathBuf;

use wino_codegen::{PlanVariant, Unroll};
use wino_tensor::ConvDesc;
use wino_tuner::{Evaluation, TuningCache, TuningPoint};

fn sample_desc() -> ConvDesc {
    ConvDesc::new(3, 1, 1, 64, 1, 14, 14, 32)
}

fn populated_cache() -> TuningCache {
    let cache = TuningCache::new();
    cache.put(
        &sample_desc(),
        "dev",
        &Evaluation {
            point: TuningPoint {
                variant: PlanVariant::WinogradFused { m: 4 },
                unroll: Unroll::Full,
                mnt: 4,
                mnb: 16,
                threads: 1,
            },
            time_ms: 0.123,
        },
    );
    cache
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("wino_cache_hardening_{name}.json"))
}

#[test]
fn intact_file_round_trips() {
    let path = temp_path("intact");
    populated_cache().save(&path).unwrap();
    let loaded = TuningCache::load_or_rebuild(&path);
    assert_eq!(loaded.len(), 1);
    assert!(loaded.get(&sample_desc(), "dev").is_some());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn missing_file_is_an_empty_cache() {
    let path = temp_path("missing");
    let _ = std::fs::remove_file(&path);
    let loaded = TuningCache::load_or_rebuild(&path);
    assert!(loaded.is_empty());
}

#[test]
fn truncated_file_rebuilds() {
    let path = temp_path("truncated");
    populated_cache().save(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    let loaded = TuningCache::load_or_rebuild(&path);
    assert!(loaded.is_empty(), "truncated cache must rebuild empty");
    let diags = wino_probe::take_diagnostics();
    assert!(
        diags.iter().any(|d| d.contains("rebuilding")),
        "expected a rebuild diagnostic, got {diags:?}"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn bit_flipped_value_rebuilds() {
    let path = temp_path("bitflip");
    populated_cache().save(&path).unwrap();
    // Flip one payload bit inside an entry value: the JSON still
    // parses but the checksum no longer matches.
    let json = std::fs::read_to_string(&path).unwrap();
    let flipped = json.replace("\"mnb\": 16", "\"mnb\": 48");
    assert_ne!(json, flipped, "fixture must actually contain mnb: 16");
    std::fs::write(&path, flipped).unwrap();
    let loaded = TuningCache::load_or_rebuild(&path);
    assert!(loaded.is_empty(), "bit-flipped cache must rebuild empty");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn stale_version_rebuilds() {
    let path = temp_path("stale");
    populated_cache().save(&path).unwrap();
    let json = std::fs::read_to_string(&path).unwrap();
    let version_field = format!("\"version\": {}", wino_tuner::CACHE_FORMAT_VERSION);
    assert!(json.contains(&version_field));
    std::fs::write(&path, json.replace(&version_field, "\"version\": 1")).unwrap();
    let loaded = TuningCache::load_or_rebuild(&path);
    assert!(loaded.is_empty(), "stale-version cache must rebuild empty");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn injected_cache_corruption_rebuilds() {
    let _scope = wino_guard::fault::scoped("cache:corrupt");
    let path = temp_path("injected");
    populated_cache().save(&path).unwrap();
    let loaded = TuningCache::load_or_rebuild(&path);
    assert!(
        loaded.is_empty(),
        "fault-corrupted cache must rebuild empty"
    );
    let _ = std::fs::remove_file(&path);
}
