//! Cross-engine property tests: every engine must compute the same
//! convolution, for arbitrary shapes and Winograd configurations.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wino_conv::{conv_direct_f32, conv_im2col, conv_winograd, WinogradConfig, WinogradVariant};
use wino_symbolic::RecipeOptions;
use wino_tensor::{ConvDesc, Tensor4};

fn close(a: &Tensor4<f32>, b: &Tensor4<f32>, tol: f32) -> bool {
    a.dims() == b.dims()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| (x - y).abs() <= tol * (1.0 + y.abs()))
}

fn random_case(desc: &ConvDesc, seed: u64) -> (Tensor4<f32>, Tensor4<f32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let input = Tensor4::<f32>::random(
        desc.batch, desc.in_ch, desc.in_h, desc.in_w, -1.0, 1.0, &mut rng,
    );
    let filt = Tensor4::<f32>::random(
        desc.out_ch,
        desc.in_ch,
        desc.ksz,
        desc.ksz,
        -1.0,
        1.0,
        &mut rng,
    );
    (input, filt)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn im2col_equals_direct(
        batch in 1usize..3,
        in_ch in 1usize..5,
        out_ch in 1usize..5,
        hw in 3usize..10,
        ksz in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        seed in any::<u64>(),
    ) {
        prop_assume!(hw + 2 * pad >= ksz);
        let desc = ConvDesc::new(ksz, stride, pad, out_ch, batch, hw, hw, in_ch);
        let (input, filt) = random_case(&desc, seed);
        let direct = conv_direct_f32(&input, &filt, &desc).unwrap();
        let im2col = conv_im2col(&input, &filt, &desc).unwrap();
        prop_assert!(close(&im2col, &direct, 1e-3));
    }

    #[test]
    fn winograd_equals_direct(
        batch in 1usize..3,
        in_ch in 1usize..4,
        out_ch in 1usize..4,
        hw in 4usize..12,
        m in 2usize..7,
        r_idx in 0usize..2,
        fused in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let r = [3, 5][r_idx];
        prop_assume!(m + r - 1 <= 12); // stay within Table-3 α range
        prop_assume!(hw >= r);
        let desc = ConvDesc::new(r, 1, r / 2, out_ch, batch, hw, hw, in_ch);
        let (input, filt) = random_case(&desc, seed);
        let direct = conv_direct_f32(&input, &filt, &desc).unwrap();
        let variant = if fused { WinogradVariant::Fused } else { WinogradVariant::NonFused };
        let cfg = WinogradConfig::new(m).with_variant(variant);
        let wino = conv_winograd(&input, &filt, &desc, &cfg).unwrap();
        prop_assert!(close(&wino, &direct, 5e-3), "F({m},{r}) {variant:?} diverged");
    }

    #[test]
    fn fused_equals_nonfused_bitwise_shapes(
        m in 2usize..6,
        hw in 4usize..10,
        seed in any::<u64>(),
    ) {
        let desc = ConvDesc::new(3, 1, 1, 3, 1, hw, hw, 2);
        let (input, filt) = random_case(&desc, seed);
        let nf = conv_winograd(&input, &filt, &desc, &WinogradConfig::new(m)).unwrap();
        let f = conv_winograd(
            &input, &filt, &desc,
            &WinogradConfig::new(m).with_variant(WinogradVariant::Fused),
        ).unwrap();
        // Same math, possibly different accumulation order: close, not
        // necessarily bit-equal.
        prop_assert!(close(&f, &nf, 1e-4));
    }

    #[test]
    fn optimized_and_naive_recipes_agree(
        m in 2usize..6,
        seed in any::<u64>(),
    ) {
        let desc = ConvDesc::new(3, 1, 1, 2, 1, 8, 8, 2);
        let (input, filt) = random_case(&desc, seed);
        let opt = conv_winograd(&input, &filt, &desc, &WinogradConfig::new(m)).unwrap();
        let naive = conv_winograd(
            &input, &filt, &desc,
            &WinogradConfig::new(m).with_options(RecipeOptions::minimal()),
        ).unwrap();
        prop_assert!(close(&opt, &naive, 1e-4));
    }
}
