//! Parallel Winograd == serial Winograd, bit for bit.
//!
//! Both engines promise that the `wino-runtime` thread count is
//! unobservable in the output: the non-fused path parallelizes the V
//! scatter, the batched SGEMMs, and the output transform; the fused
//! path parallelizes over tiles — in every case each output element is
//! written once, in the serial operation order. Verified here with
//! exact `f32::to_bits` equality over random shapes (including ragged
//! tilings where `m` does not divide the output) and 1–8 lanes.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wino_conv::{conv_winograd_rt, WinogradConfig, WinogradVariant};
use wino_runtime::Runtime;
use wino_tensor::{ConvDesc, Tensor4};

fn random_case(desc: &ConvDesc, seed: u64) -> (Tensor4<f32>, Tensor4<f32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let input = Tensor4::<f32>::random(
        desc.batch, desc.in_ch, desc.in_h, desc.in_w, -1.0, 1.0, &mut rng,
    );
    let filt = Tensor4::<f32>::random(
        desc.out_ch,
        desc.in_ch,
        desc.ksz,
        desc.ksz,
        -1.0,
        1.0,
        &mut rng,
    );
    (input, filt)
}

fn assert_bit_identical(desc: &ConvDesc, cfg: &WinogradConfig, threads: usize, seed: u64) {
    let (input, filt) = random_case(desc, seed);
    let serial = conv_winograd_rt(&input, &filt, desc, cfg, &Runtime::serial()).unwrap();
    let rt = Runtime::with_threads(threads);
    let parallel = conv_winograd_rt(&input, &filt, desc, cfg, &rt).unwrap();
    assert_eq!(serial.dims(), parallel.dims());
    let exact = serial
        .data()
        .iter()
        .zip(parallel.data())
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(exact, "parallel output diverged from serial bits");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn nonfused_parallel_is_bit_identical(
        batch in 1usize..3,
        in_ch in 1usize..6,
        out_ch in 1usize..6,
        hw in 4usize..14,
        m in 2usize..5,
        threads in 1usize..9,
        seed in any::<u64>(),
    ) {
        // Ragged tilings welcome: hw need not align with m.
        let desc = ConvDesc::new(3, 1, 1, out_ch, batch, hw, hw, in_ch);
        let cfg = WinogradConfig::new(m).with_variant(WinogradVariant::NonFused);
        assert_bit_identical(&desc, &cfg, threads, seed);
    }

    #[test]
    fn fused_parallel_is_bit_identical(
        batch in 1usize..3,
        in_ch in 1usize..6,
        out_ch in 1usize..6,
        hw in 4usize..14,
        m in 2usize..5,
        threads in 1usize..9,
        seed in any::<u64>(),
    ) {
        let desc = ConvDesc::new(3, 1, 1, out_ch, batch, hw, hw, in_ch);
        let cfg = WinogradConfig::new(m).with_variant(WinogradVariant::Fused);
        assert_bit_identical(&desc, &cfg, threads, seed);
    }
}
