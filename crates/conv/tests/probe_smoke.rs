//! Tracing must be observation-only: both Winograd engines produce
//! bit-identical output with the probe on vs. off, and an
//! instrumented run records every phase span the engine promises.

use rand::rngs::StdRng;
use rand::SeedableRng;
use wino_conv::{conv_winograd_rt, WinogradConfig, WinogradVariant};
use wino_probe::{self as probe, Mode};
use wino_runtime::Runtime;
use wino_tensor::{ConvDesc, Tensor4};

// Probe state is process-global; keep the two smoke tests serial.
static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn random_case(desc: &ConvDesc, seed: u64) -> (Tensor4<f32>, Tensor4<f32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let input = Tensor4::<f32>::random(
        desc.batch, desc.in_ch, desc.in_h, desc.in_w, -1.0, 1.0, &mut rng,
    );
    let filt = Tensor4::<f32>::random(
        desc.out_ch,
        desc.in_ch,
        desc.ksz,
        desc.ksz,
        -1.0,
        1.0,
        &mut rng,
    );
    (input, filt)
}

fn run_traced_vs_untraced(variant: WinogradVariant, expected_spans: &[&str]) {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let desc = ConvDesc::new(3, 1, 1, 4, 2, 10, 10, 3);
    let cfg = WinogradConfig::new(4).with_variant(variant);
    let (input, filt) = random_case(&desc, 0xABCD);
    let rt = Runtime::with_threads(2);

    probe::set_mode(Mode::Off);
    probe::reset();
    let untraced = conv_winograd_rt(&input, &filt, &desc, &cfg, &rt).unwrap();
    assert!(
        probe::take_events().is_empty(),
        "disabled probe must record nothing"
    );

    probe::set_mode(Mode::Summary);
    let traced = conv_winograd_rt(&input, &filt, &desc, &cfg, &rt).unwrap();
    probe::set_mode(Mode::Off);
    let events = probe::take_events();

    assert_eq!(untraced.dims(), traced.dims());
    let exact = untraced
        .data()
        .iter()
        .zip(traced.data())
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(exact, "tracing changed the numerical output");

    for span in expected_spans {
        assert!(
            events.iter().any(|e| e.name == *span),
            "expected span {span:?} in traced run; got {:?}",
            events
                .iter()
                .map(|e| e.name)
                .collect::<std::collections::BTreeSet<_>>()
        );
    }
}

#[test]
fn nonfused_identical_with_tracing_and_spans_recorded() {
    run_traced_vs_untraced(
        WinogradVariant::NonFused,
        &[
            "conv.winograd.nonfused",
            "conv.filter_transform",
            "conv.input_transform",
            "conv.batched_sgemm",
            "conv.output_transform",
            "conv.tile_gather",
            "conv.tile_scatter",
        ],
    );
}

#[test]
fn fused_identical_with_tracing_and_spans_recorded() {
    run_traced_vs_untraced(
        WinogradVariant::Fused,
        &[
            "conv.winograd.fused",
            "conv.filter_transform",
            "conv.tile_gather",
            "conv.tile_scatter",
        ],
    );
}
