//! Recipe-driven Winograd convolution engines (non-fused and fused).
//!
//! These are the CPU reference implementations of the two kernel
//! variants the paper generates (§3.2.2). The **non-fused** engine
//! materializes the transformed filters `U'` and inputs `V'` in the
//! scatter layouts of Lavin & Gray and runs the multiplication stage
//! as α² batched SGEMMs. The **fused** engine processes one input tile
//! end-to-end — transform, channel-summed element-wise multiply,
//! output transform — without materializing intermediates, mirroring
//! the single-kernel variant's dataflow.

use std::sync::Arc;

use wino_gemm::{batched_sgemm_rt, BatchedGemmShape, GemmConfig};
use wino_runtime::{DisjointSlice, Runtime};
use wino_symbolic::RecipeOptions;
use wino_tensor::{extract_input_tile, tile_counts, ConvDesc, Tensor4};
use wino_transform::{recipe_db, TransformRecipes, WinogradSpec};

use crate::direct::check_shapes;
use crate::error::ConvError;
use crate::tiles::TileTransformer;

/// Tiles gathered into the transformed-input layout (both engines).
static TILES_GATHERED: wino_probe::Counter = wino_probe::Counter::new("conv.tiles_gathered");
/// Output tiles scattered back into NCHW planes (both engines).
static TILES_SCATTERED: wino_probe::Counter = wino_probe::Counter::new("conv.tiles_scattered");

/// Which kernel variant to model (tuning parameter `WV` of Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WinogradVariant {
    /// Separate kernels per stage + batched SGEMM.
    NonFused,
    /// One kernel: everything tile-local.
    Fused,
}

/// Configuration of a Winograd convolution run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WinogradConfig {
    /// Output tile size `m` (Table 1: `2 ≤ m ≤ 10`).
    pub m: usize,
    /// Symbolic-pipeline options (optimized vs. naive transforms).
    pub options: RecipeOptions,
    /// Kernel variant.
    pub variant: WinogradVariant,
    /// Blocking of the multiplication stage's SGEMMs (tunable via the
    /// autotuner's `MNt`/`MNb` axes).
    pub gemm: GemmConfig,
}

impl WinogradConfig {
    /// Fully-optimized non-fused configuration with output tile `m`.
    pub fn new(m: usize) -> Self {
        WinogradConfig {
            m,
            options: RecipeOptions::optimized(),
            variant: WinogradVariant::NonFused,
            gemm: GemmConfig::default(),
        }
    }

    /// Switches the variant.
    pub fn with_variant(mut self, variant: WinogradVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Switches the recipe options.
    pub fn with_options(mut self, options: RecipeOptions) -> Self {
        self.options = options;
        self
    }

    /// Switches the GEMM blocking.
    pub fn with_gemm_config(mut self, gemm: GemmConfig) -> Self {
        self.gemm = gemm;
        self
    }
}

fn winograd_checks(desc: &ConvDesc, m: usize) -> Result<WinogradSpec, ConvError> {
    if desc.stride != 1 {
        return Err(ConvError::Unsupported(format!(
            "Winograd requires stride 1, got {}",
            desc.stride
        )));
    }
    Ok(WinogradSpec::new(m, desc.ksz)?)
}

/// Winograd convolution using recipes from the process-wide database.
///
/// # Errors
/// Shape mismatches, non-unit stride, or unsupported `F(m, r)`.
pub fn conv_winograd(
    input: &Tensor4<f32>,
    filters: &Tensor4<f32>,
    desc: &ConvDesc,
    cfg: &WinogradConfig,
) -> Result<Tensor4<f32>, ConvError> {
    conv_winograd_rt(input, filters, desc, cfg, Runtime::global())
}

/// [`conv_winograd`] on an explicit execution runtime. Outputs are
/// bit-identical for every thread count: parallel tasks own disjoint
/// tiles/panels and preserve the serial per-element operation order.
///
/// # Errors
/// Shape mismatches, non-unit stride, or unsupported `F(m, r)`.
pub fn conv_winograd_rt(
    input: &Tensor4<f32>,
    filters: &Tensor4<f32>,
    desc: &ConvDesc,
    cfg: &WinogradConfig,
    rt: &Runtime,
) -> Result<Tensor4<f32>, ConvError> {
    let spec = winograd_checks(desc, cfg.m)?;
    let recipes: Arc<TransformRecipes> = recipe_db().get(spec, cfg.options)?;
    conv_winograd_with_recipes_rt(input, filters, desc, &recipes, cfg.variant, &cfg.gemm, rt)
}

/// Winograd convolution with explicitly supplied recipes (used by the
/// point-search accuracy protocol, which works with non-Table-3
/// points).
///
/// # Errors
/// Shape mismatches, non-unit stride, or a recipe/descriptor spec
/// mismatch.
pub fn conv_winograd_with_recipes(
    input: &Tensor4<f32>,
    filters: &Tensor4<f32>,
    desc: &ConvDesc,
    recipes: &TransformRecipes,
    variant: WinogradVariant,
) -> Result<Tensor4<f32>, ConvError> {
    conv_winograd_with_recipes_rt(
        input,
        filters,
        desc,
        recipes,
        variant,
        &GemmConfig::default(),
        Runtime::global(),
    )
}

/// [`conv_winograd_with_recipes`] with explicit GEMM blocking and
/// execution runtime.
///
/// # Errors
/// Shape mismatches, non-unit stride, or a recipe/descriptor spec
/// mismatch.
pub fn conv_winograd_with_recipes_rt(
    input: &Tensor4<f32>,
    filters: &Tensor4<f32>,
    desc: &ConvDesc,
    recipes: &TransformRecipes,
    variant: WinogradVariant,
    gemm: &GemmConfig,
    rt: &Runtime,
) -> Result<Tensor4<f32>, ConvError> {
    check_shapes(input, filters, desc)?;
    let spec = winograd_checks(desc, recipes.spec.m)?;
    if recipes.spec != spec {
        return Err(ConvError::Shape(format!(
            "recipes are for {} but descriptor implies {spec}",
            recipes.spec
        )));
    }
    match variant {
        WinogradVariant::NonFused => nonfused(input, filters, desc, recipes, gemm, rt),
        WinogradVariant::Fused => fused(input, filters, desc, recipes, rt),
    }
}

/// Shared pre-computation: transformed filters `U` in `(k, c, ξ)`
/// order (`ξ = α²` positions).
fn transform_filters(
    filters: &Tensor4<f32>,
    desc: &ConvDesc,
    recipes: &TransformRecipes,
) -> Vec<f32> {
    let alpha = recipes.spec.alpha();
    let a2 = alpha * alpha;
    let mut ft = TileTransformer::new(&recipes.filter);
    let mut u = vec![0.0f32; desc.out_ch * desc.in_ch * a2];
    let mut tile = vec![0.0f32; a2];
    for k in 0..desc.out_ch {
        for c in 0..desc.in_ch {
            ft.transform(filters.plane(k, c), &mut tile);
            let base = (k * desc.in_ch + c) * a2;
            u[base..base + a2].copy_from_slice(&tile);
        }
    }
    u
}

fn nonfused(
    input: &Tensor4<f32>,
    filters: &Tensor4<f32>,
    desc: &ConvDesc,
    recipes: &TransformRecipes,
    gemm: &GemmConfig,
    rt: &Runtime,
) -> Result<Tensor4<f32>, ConvError> {
    let mut conv_span = wino_probe::span("conv.winograd.nonfused");
    conv_span.arg("desc", || desc.to_string());
    let spec = recipes.spec;
    let (m, alpha) = (spec.m, spec.alpha());
    let a2 = alpha * alpha;
    let (oh, ow) = (desc.out_h(), desc.out_w());
    let (th, tw) = tile_counts(oh, ow, m);
    let p_total = desc.batch * th * tw;
    let (kc, cc) = (desc.out_ch, desc.in_ch);

    // Stage 1a: U' scatter layout (ξ, k, c) for batched GEMM A-side.
    let filter_span = wino_probe::span("conv.filter_transform");
    let u_kc = transform_filters(filters, desc, recipes);
    let mut u_scatter = vec![0.0f32; a2 * kc * cc];
    for k in 0..kc {
        for c in 0..cc {
            let base = (k * cc + c) * a2;
            for xi in 0..a2 {
                u_scatter[(xi * kc + k) * cc + c] = u_kc[base + xi];
            }
        }
    }
    drop(filter_span);

    // Stage 1b: V' scatter layout (ξ, c, p), parallel over tiles `p`.
    // A tile owns column `p` of every (ξ, c) matrix — strided but
    // disjoint writes — and each chunk carries its own transformer
    // scratch.
    let input_span = wino_probe::span("conv.input_transform");
    let padded = input.pad_spatial(desc.pad);
    let mut v_scatter = vec![0.0f32; a2 * cc * p_total];
    {
        let v_win = DisjointSlice::new(&mut v_scatter);
        rt.parallel_for_chunks(0..p_total, 1, |tiles| {
            let _chunk_span = wino_probe::span("conv.tile_gather");
            TILES_GATHERED.add(tiles.len() as u64);
            let mut it = TileTransformer::new(&recipes.input);
            let mut in_tile = vec![0.0f32; a2];
            let mut v_tile = vec![0.0f32; a2];
            for p in tiles {
                let n = p / (th * tw);
                let rem = p % (th * tw);
                let (ty, tx) = (rem / tw, rem % tw);
                for c in 0..cc {
                    extract_input_tile(&padded, n, c, ty, tx, m, alpha, &mut in_tile);
                    it.transform(&in_tile, &mut v_tile);
                    for (xi, &val) in v_tile[..a2].iter().enumerate() {
                        // SAFETY: only tile `p` writes column `p`.
                        unsafe {
                            v_win.write((xi * cc + c) * p_total + p, val);
                        }
                    }
                }
            }
        });
    }

    drop(input_span);

    // Stage 2: α² batched SGEMMs M(ξ) = U'(ξ) · V'(ξ), parallel
    // across the batch dimension.
    let mut gemm_span = wino_probe::span("conv.batched_sgemm");
    gemm_span.arg("shape", || format!("{a2}x({kc}x{cc}x{p_total})"));
    let shape = BatchedGemmShape {
        batches: a2,
        m: kc,
        k: cc,
        n: p_total,
    };
    let mut m_scatter = vec![0.0f32; shape.c_len()];
    batched_sgemm_rt(&shape, &u_scatter, &v_scatter, &mut m_scatter, gemm, rt);
    drop(gemm_span);

    // Stage 3: output transform + placement, parallel over (k, p)
    // pairs. A pair owns one m×m output tile of one plane; its rows
    // are written as disjoint segments.
    let output_span = wino_probe::span("conv.output_transform");
    let mut out = Tensor4::<f32>::zeros(desc.batch, kc, oh, ow);
    {
        let out_win = DisjointSlice::new(out.data_mut());
        rt.parallel_for_chunks(0..kc * p_total, 1, |pairs| {
            let _chunk_span = wino_probe::span("conv.tile_scatter");
            TILES_SCATTERED.add(pairs.len() as u64);
            let mut ot = TileTransformer::new(&recipes.output);
            let mut m_tile = vec![0.0f32; a2];
            let mut y_tile = vec![0.0f32; m * m];
            for q in pairs {
                let (k, p) = (q / p_total, q % p_total);
                let n = p / (th * tw);
                let rem = p % (th * tw);
                let (ty, tx) = (rem / tw, rem % tw);
                for xi in 0..a2 {
                    m_tile[xi] = m_scatter[(xi * kc + k) * p_total + p];
                }
                ot.transform(&m_tile, &mut y_tile);
                place_tile_rows(&out_win, n, k, kc, oh, ow, ty, tx, m, &y_tile);
            }
        });
    }
    drop(output_span);
    Ok(out)
}

/// Writes the clipped `m × m` tile at `(ty, tx)` of plane `(n, k)`
/// into the shared output window, one disjoint row segment at a time.
#[allow(clippy::too_many_arguments)]
fn place_tile_rows(
    out: &DisjointSlice<'_, f32>,
    n: usize,
    k: usize,
    kc: usize,
    oh: usize,
    ow: usize,
    ty: usize,
    tx: usize,
    m: usize,
    tile: &[f32],
) {
    let h_eff = m.min(oh - ty * m);
    let w_eff = m.min(ow - tx * m);
    let plane = ((n * kc + k) * oh) * ow;
    for dy in 0..h_eff {
        let row = plane + (ty * m + dy) * ow + tx * m;
        // SAFETY: exactly one (k, p) task owns this tile, and tiles
        // partition the plane, so row segments never overlap.
        let dst = unsafe { out.slice_mut(row..row + w_eff) };
        dst.copy_from_slice(&tile[dy * m..dy * m + w_eff]);
    }
}

fn fused(
    input: &Tensor4<f32>,
    filters: &Tensor4<f32>,
    desc: &ConvDesc,
    recipes: &TransformRecipes,
    rt: &Runtime,
) -> Result<Tensor4<f32>, ConvError> {
    let mut conv_span = wino_probe::span("conv.winograd.fused");
    conv_span.arg("desc", || desc.to_string());
    let spec = recipes.spec;
    let (m, alpha) = (spec.m, spec.alpha());
    let a2 = alpha * alpha;
    let (oh, ow) = (desc.out_h(), desc.out_w());
    let (th, tw) = tile_counts(oh, ow, m);
    let (kc, cc) = (desc.out_ch, desc.in_ch);

    // Per-block filter transform (computed once here; the generated
    // kernel recomputes it per thread block from shared memory).
    let filter_span = wino_probe::span("conv.filter_transform");
    let u_kc = transform_filters(filters, desc, recipes);
    drop(filter_span);

    let padded = input.pad_spatial(desc.pad);
    let mut out = Tensor4::<f32>::zeros(desc.batch, kc, oh, ow);

    // Parallel over (n, ty, tx) tiles — the fused kernel's thread
    // blocks. Each chunk owns transformer scratch; a tile writes its
    // own region of every output plane, disjoint from other tiles.
    // Per chunk, gather work (tile extraction + input transform) and
    // scatter work (channel-summed multiply + output transform +
    // placement) are interleaved per tile, so the two phases get
    // chunk-level spans instead of stage-level ones.
    let out_win = DisjointSlice::new(out.data_mut());
    rt.parallel_for_chunks(0..desc.batch * th * tw, 1, |tiles| {
        TILES_GATHERED.add(tiles.len() as u64);
        TILES_SCATTERED.add(tiles.len() as u64);
        let mut it = TileTransformer::new(&recipes.input);
        let mut ot = TileTransformer::new(&recipes.output);
        let mut in_tile = vec![0.0f32; a2];
        let mut v_tiles = vec![0.0f32; cc * a2];
        let mut acc = vec![0.0f32; a2];
        let mut y_tile = vec![0.0f32; m * m];
        for t in tiles {
            let n = t / (th * tw);
            let rem = t % (th * tw);
            let (ty, tx) = (rem / tw, rem % tw);
            // Input transform for every channel of this tile.
            let gather_span = wino_probe::span("conv.tile_gather");
            for c in 0..cc {
                extract_input_tile(&padded, n, c, ty, tx, m, alpha, &mut in_tile);
                it.transform(&in_tile, &mut v_tiles[c * a2..(c + 1) * a2]);
            }
            drop(gather_span);
            // Channel-summed element-wise multiply + output transform
            // per filter.
            let _scatter_span = wino_probe::span("conv.tile_scatter");
            for k in 0..kc {
                acc.fill(0.0);
                for c in 0..cc {
                    let u = &u_kc[(k * cc + c) * a2..(k * cc + c + 1) * a2];
                    let v = &v_tiles[c * a2..(c + 1) * a2];
                    for xi in 0..a2 {
                        acc[xi] += u[xi] * v[xi];
                    }
                }
                ot.transform(&acc, &mut y_tile);
                place_tile_rows(&out_win, n, k, kc, oh, ow, ty, tx, m, &y_tile);
            }
        }
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::conv_direct_f32;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_close(a: &Tensor4<f32>, b: &Tensor4<f32>, tol: f32) {
        assert_eq!(a.dims(), b.dims());
        for i in 0..a.len() {
            let (x, y) = (a.data()[i], b.data()[i]);
            assert!((x - y).abs() <= tol * (1.0 + y.abs()), "{x} vs {y} at {i}");
        }
    }

    fn random_case(desc: &ConvDesc, seed: u64) -> (Tensor4<f32>, Tensor4<f32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let input = Tensor4::<f32>::random(
            desc.batch, desc.in_ch, desc.in_h, desc.in_w, -1.0, 1.0, &mut rng,
        );
        let filt = Tensor4::<f32>::random(
            desc.out_ch,
            desc.in_ch,
            desc.ksz,
            desc.ksz,
            -1.0,
            1.0,
            &mut rng,
        );
        (input, filt)
    }

    #[test]
    fn nonfused_matches_direct_f23() {
        let desc = ConvDesc::new(3, 1, 1, 4, 2, 8, 8, 3);
        let (input, filt) = random_case(&desc, 21);
        let direct = conv_direct_f32(&input, &filt, &desc).unwrap();
        let wino = conv_winograd(&input, &filt, &desc, &WinogradConfig::new(2)).unwrap();
        assert_close(&wino, &direct, 1e-4);
    }

    #[test]
    fn fused_matches_direct_f23() {
        let desc = ConvDesc::new(3, 1, 1, 4, 2, 8, 8, 3);
        let (input, filt) = random_case(&desc, 22);
        let direct = conv_direct_f32(&input, &filt, &desc).unwrap();
        let cfg = WinogradConfig::new(2).with_variant(WinogradVariant::Fused);
        let wino = conv_winograd(&input, &filt, &desc, &cfg).unwrap();
        assert_close(&wino, &direct, 1e-4);
    }

    #[test]
    fn ragged_tiling_is_handled() {
        // 7×7 output with m = 4: ragged last tile row/column.
        let desc = ConvDesc::new(3, 1, 1, 2, 1, 7, 7, 2);
        let (input, filt) = random_case(&desc, 23);
        let direct = conv_direct_f32(&input, &filt, &desc).unwrap();
        let wino = conv_winograd(&input, &filt, &desc, &WinogradConfig::new(4)).unwrap();
        assert_close(&wino, &direct, 1e-4);
    }

    #[test]
    fn larger_tiles_and_filters() {
        for (m, r) in [(4, 3), (6, 3), (2, 5), (4, 5), (2, 7)] {
            let desc = ConvDesc::new(r, 1, r / 2, 3, 1, 12, 12, 2);
            let (input, filt) = random_case(&desc, 1000 + (m * 10 + r) as u64);
            let direct = conv_direct_f32(&input, &filt, &desc).unwrap();
            for variant in [WinogradVariant::NonFused, WinogradVariant::Fused] {
                let cfg = WinogradConfig::new(m).with_variant(variant);
                let wino = conv_winograd(&input, &filt, &desc, &cfg).unwrap();
                assert_close(&wino, &direct, 2e-3);
            }
        }
    }

    #[test]
    fn naive_recipes_same_result() {
        let desc = ConvDesc::new(3, 1, 1, 2, 1, 6, 6, 2);
        let (input, filt) = random_case(&desc, 31);
        let opt = conv_winograd(&input, &filt, &desc, &WinogradConfig::new(2)).unwrap();
        let cfg = WinogradConfig::new(2).with_options(RecipeOptions::minimal());
        let naive = conv_winograd(&input, &filt, &desc, &cfg).unwrap();
        assert_close(&opt, &naive, 1e-4);
    }

    #[test]
    fn no_padding_case() {
        let desc = ConvDesc::new(3, 1, 0, 2, 1, 8, 8, 2);
        let (input, filt) = random_case(&desc, 33);
        let direct = conv_direct_f32(&input, &filt, &desc).unwrap();
        let wino = conv_winograd(&input, &filt, &desc, &WinogradConfig::new(3)).unwrap();
        assert_close(&wino, &direct, 1e-4);
    }

    #[test]
    fn even_filter_sizes_work() {
        // Unusual but valid: a 2×2 filter, F(m,2).
        let desc = ConvDesc::new(2, 1, 0, 2, 1, 9, 9, 2);
        let (input, filt) = random_case(&desc, 77);
        let direct = conv_direct_f32(&input, &filt, &desc).unwrap();
        let wino = conv_winograd(&input, &filt, &desc, &WinogradConfig::new(3)).unwrap();
        assert_close(&wino, &direct, 1e-4);
    }

    #[test]
    fn stride_rejected() {
        let desc = ConvDesc::new(3, 2, 1, 2, 1, 8, 8, 2);
        let (input, filt) = random_case(&desc, 34);
        assert!(matches!(
            conv_winograd(&input, &filt, &desc, &WinogradConfig::new(2)),
            Err(ConvError::Unsupported(_))
        ));
    }

    #[test]
    fn recipe_spec_mismatch_rejected() {
        let desc = ConvDesc::new(3, 1, 1, 2, 1, 8, 8, 2);
        let (input, filt) = random_case(&desc, 35);
        let other = recipe_db()
            .get(WinogradSpec::new(4, 3).unwrap(), RecipeOptions::optimized())
            .unwrap();
        // Descriptor says r = 3 and recipes say m = 4 — consistent —
        // but force a mismatch by using a 5×5 descriptor.
        let desc5 = ConvDesc::new(5, 1, 2, 2, 1, 8, 8, 2);
        let (input5, filt5) = random_case(&desc5, 36);
        assert!(conv_winograd_with_recipes(
            &input5,
            &filt5,
            &desc5,
            &other,
            WinogradVariant::NonFused
        )
        .is_err());
        // Matching case passes.
        assert!(conv_winograd_with_recipes(
            &input,
            &filt,
            &desc,
            &other,
            WinogradVariant::NonFused
        )
        .is_ok());
    }
}
