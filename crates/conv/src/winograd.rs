//! Recipe-driven Winograd convolution engines (non-fused and fused).
//!
//! These are the CPU reference implementations of the two kernel
//! variants the paper generates (§3.2.2). The **non-fused** engine
//! materializes the transformed filters `U'` and inputs `V'` in the
//! scatter layouts of Lavin & Gray and runs the multiplication stage
//! as α² batched SGEMMs. The **fused** engine processes one input tile
//! end-to-end — transform, channel-summed element-wise multiply,
//! output transform — without materializing intermediates, mirroring
//! the single-kernel variant's dataflow.

use std::sync::{Arc, OnceLock};

use wino_gemm::{BatchedGemmShape, GemmConfig, SimdLevel};
use wino_runtime::{DisjointSlice, Runtime};
use wino_symbolic::RecipeOptions;
use wino_tensor::{extract_input_tile, tile_counts, ConvDesc, Tensor4};
use wino_transform::{recipe_db, TransformRecipes, WinogradSpec};

use crate::compiled::{compiled_for, CompiledTransforms, LANES};
use crate::direct::check_shapes;
use crate::error::ConvError;
use crate::tiles::TileTransformer;

/// Tiles gathered into the transformed-input layout (both engines).
static TILES_GATHERED: wino_probe::Counter = wino_probe::Counter::new("conv.tiles_gathered");
/// Output tiles scattered back into NCHW planes (both engines).
static TILES_SCATTERED: wino_probe::Counter = wino_probe::Counter::new("conv.tiles_scattered");
/// Whole-filter-bank transforms `U = G·g·Gᵀ` performed. A serving
/// layer that warms its filters sees exactly one bump per registered
/// layer, never per request.
static FILTER_TRANSFORMS: wino_probe::Counter = wino_probe::Counter::new("conv.filter_transforms");

/// Per-phase duration histograms for the non-fused pipeline (the
/// fused engine interleaves phases per tile, so it records nothing
/// here). These record whenever tracing *or* telemetry is armed, so
/// a serving process sees phase distributions without span buffers.
static H_FILTER: wino_probe::Histogram = wino_probe::Histogram::new("conv.filter_transform");
static H_INPUT: wino_probe::Histogram = wino_probe::Histogram::new("conv.input_transform");
static H_SGEMM: wino_probe::Histogram = wino_probe::Histogram::new("conv.batched_sgemm");
static H_OUTPUT: wino_probe::Histogram = wino_probe::Histogram::new("conv.output_transform");

/// Which kernel variant to model (tuning parameter `WV` of Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WinogradVariant {
    /// Separate kernels per stage + batched SGEMM.
    NonFused,
    /// One kernel: everything tile-local.
    Fused,
}

/// Configuration of a Winograd convolution run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WinogradConfig {
    /// Output tile size `m` (Table 1: `2 ≤ m ≤ 10`).
    pub m: usize,
    /// Symbolic-pipeline options (optimized vs. naive transforms).
    pub options: RecipeOptions,
    /// Kernel variant.
    pub variant: WinogradVariant,
    /// Blocking of the multiplication stage's SGEMMs (tunable via the
    /// autotuner's `MNt`/`MNb` axes).
    pub gemm: GemmConfig,
}

impl WinogradConfig {
    /// Fully-optimized non-fused configuration with output tile `m`.
    pub fn new(m: usize) -> Self {
        WinogradConfig {
            m,
            options: RecipeOptions::optimized(),
            variant: WinogradVariant::NonFused,
            gemm: GemmConfig::default(),
        }
    }

    /// Switches the variant.
    pub fn with_variant(mut self, variant: WinogradVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Switches the recipe options.
    pub fn with_options(mut self, options: RecipeOptions) -> Self {
        self.options = options;
        self
    }

    /// Switches the GEMM blocking.
    pub fn with_gemm_config(mut self, gemm: GemmConfig) -> Self {
        self.gemm = gemm;
        self
    }
}

fn winograd_checks(desc: &ConvDesc, m: usize) -> Result<WinogradSpec, ConvError> {
    if desc.stride != 1 {
        return Err(ConvError::Unsupported(format!(
            "Winograd requires stride 1, got {}",
            desc.stride
        )));
    }
    Ok(WinogradSpec::new(m, desc.ksz)?)
}

/// Winograd convolution using recipes from the process-wide database.
///
/// # Errors
/// Shape mismatches, non-unit stride, or unsupported `F(m, r)`.
pub fn conv_winograd(
    input: &Tensor4<f32>,
    filters: &Tensor4<f32>,
    desc: &ConvDesc,
    cfg: &WinogradConfig,
) -> Result<Tensor4<f32>, ConvError> {
    conv_winograd_rt(input, filters, desc, cfg, Runtime::global())
}

/// [`conv_winograd`] on an explicit execution runtime. Outputs are
/// bit-identical for every thread count: parallel tasks own disjoint
/// tiles/panels and preserve the serial per-element operation order.
///
/// # Errors
/// Shape mismatches, non-unit stride, or unsupported `F(m, r)`.
pub fn conv_winograd_rt(
    input: &Tensor4<f32>,
    filters: &Tensor4<f32>,
    desc: &ConvDesc,
    cfg: &WinogradConfig,
    rt: &Runtime,
) -> Result<Tensor4<f32>, ConvError> {
    check_shapes(input, filters, desc)?;
    let spec = winograd_checks(desc, cfg.m)?;
    let recipes: Arc<TransformRecipes> = recipe_db().get(spec, cfg.options)?;
    let pre = PrecomputedFilters::new(filters, desc, recipes)?;
    conv_winograd_precomputed_rt(input, &pre, desc, cfg.variant, &cfg.gemm, rt)
}

/// Winograd convolution with explicitly supplied recipes (used by the
/// point-search accuracy protocol, which works with non-Table-3
/// points).
///
/// # Errors
/// Shape mismatches, non-unit stride, or a recipe/descriptor spec
/// mismatch.
pub fn conv_winograd_with_recipes(
    input: &Tensor4<f32>,
    filters: &Tensor4<f32>,
    desc: &ConvDesc,
    recipes: &TransformRecipes,
    variant: WinogradVariant,
) -> Result<Tensor4<f32>, ConvError> {
    conv_winograd_with_recipes_rt(
        input,
        filters,
        desc,
        recipes,
        variant,
        &GemmConfig::default(),
        Runtime::global(),
    )
}

/// [`conv_winograd_with_recipes`] with explicit GEMM blocking and
/// execution runtime.
///
/// # Errors
/// Shape mismatches, non-unit stride, or a recipe/descriptor spec
/// mismatch.
pub fn conv_winograd_with_recipes_rt(
    input: &Tensor4<f32>,
    filters: &Tensor4<f32>,
    desc: &ConvDesc,
    recipes: &TransformRecipes,
    variant: WinogradVariant,
    gemm: &GemmConfig,
    rt: &Runtime,
) -> Result<Tensor4<f32>, ConvError> {
    check_shapes(input, filters, desc)?;
    let pre = PrecomputedFilters::new(filters, desc, Arc::new(recipes.clone()))?;
    conv_winograd_precomputed_rt(input, &pre, desc, variant, gemm, rt)
}

/// Transformed filters `U = G·g·Gᵀ` for one filter bank, computed once
/// and reusable across convolution calls.
///
/// Both engines consume this type: the fused engine reads the
/// `(k, c, ξ)` layout directly, and the non-fused engine reads the
/// `(ξ, k, c)` scatter layout (derived lazily — a pure element
/// reorder, so a warm run stays bit-identical to a cold one). The
/// serving layer's plan registry builds one per registered layer so
/// steady-state requests skip the filter-transform phase entirely;
/// transforms are visible as the `conv.filter_transforms` counter and
/// the `conv.filter_transform` span.
///
/// The transform depends only on the filter bank, the recipes, and
/// the channel counts — batch size and spatial extent of later inputs
/// are free to vary.
pub struct PrecomputedFilters {
    recipes: Arc<TransformRecipes>,
    out_ch: usize,
    in_ch: usize,
    /// `(k, c, ξ)` layout (`ξ = α²` positions), the fused engine's
    /// access pattern.
    u_kc: Vec<f32>,
    /// `(ξ, k, c)` scatter layout, the non-fused engine's batched-GEMM
    /// A-side; built on first non-fused use.
    u_scatter: OnceLock<Vec<f32>>,
}

impl PrecomputedFilters {
    /// Transforms `filters` (K,C,r,r) once under `recipes`.
    ///
    /// # Errors
    /// Filter dims inconsistent with `desc`, non-unit stride, or a
    /// recipe/descriptor spec mismatch.
    pub fn new(
        filters: &Tensor4<f32>,
        desc: &ConvDesc,
        recipes: Arc<TransformRecipes>,
    ) -> Result<Self, ConvError> {
        let spec = winograd_checks(desc, recipes.spec.m)?;
        if recipes.spec != spec {
            return Err(ConvError::Shape(format!(
                "recipes are for {} but descriptor implies {spec}",
                recipes.spec
            )));
        }
        if filters.dims() != (desc.out_ch, desc.in_ch, desc.ksz, desc.ksz) {
            return Err(ConvError::Shape(format!(
                "filter dims {:?} do not match descriptor {desc}",
                filters.dims()
            )));
        }
        let filter_span = wino_probe::span("conv.filter_transform");
        let filter_hist = H_FILTER.start();
        let alpha = spec.alpha();
        let a2 = alpha * alpha;
        let mut ft = TileTransformer::new(&recipes.filter);
        let mut u_kc = vec![0.0f32; desc.out_ch * desc.in_ch * a2];
        let mut tile = vec![0.0f32; a2];
        for k in 0..desc.out_ch {
            for c in 0..desc.in_ch {
                ft.transform(filters.plane(k, c), &mut tile);
                let base = (k * desc.in_ch + c) * a2;
                u_kc[base..base + a2].copy_from_slice(&tile);
            }
        }
        drop(filter_span);
        drop(filter_hist);
        FILTER_TRANSFORMS.add(1);
        Ok(PrecomputedFilters {
            recipes,
            out_ch: desc.out_ch,
            in_ch: desc.in_ch,
            u_kc,
            u_scatter: OnceLock::new(),
        })
    }

    /// [`PrecomputedFilters::new`] resolving recipes for `cfg` from
    /// the process-wide database.
    ///
    /// # Errors
    /// As [`PrecomputedFilters::new`], plus unsupported `F(m, r)`.
    pub fn for_config(
        filters: &Tensor4<f32>,
        desc: &ConvDesc,
        cfg: &WinogradConfig,
    ) -> Result<Self, ConvError> {
        let spec = winograd_checks(desc, cfg.m)?;
        let recipes = recipe_db().get(spec, cfg.options)?;
        Self::new(filters, desc, recipes)
    }

    /// The recipes the transform was computed with.
    pub fn recipes(&self) -> &Arc<TransformRecipes> {
        &self.recipes
    }

    /// The `F(m, r)` specification.
    pub fn spec(&self) -> WinogradSpec {
        self.recipes.spec
    }

    /// Output-channel count `K` of the transformed bank.
    pub fn out_ch(&self) -> usize {
        self.out_ch
    }

    /// Input-channel count `C` of the transformed bank.
    pub fn in_ch(&self) -> usize {
        self.in_ch
    }

    /// `U` in `(k, c, ξ)` order.
    pub fn u_kc(&self) -> &[f32] {
        &self.u_kc
    }

    /// `U'` in `(ξ, k, c)` scatter order, building it on first use.
    fn u_scatter(&self) -> &[f32] {
        self.u_scatter.get_or_init(|| {
            let _span = wino_probe::span("conv.filter_transform");
            let _hist = H_FILTER.start();
            let a2 = self.spec().alpha() * self.spec().alpha();
            let (kc, cc) = (self.out_ch, self.in_ch);
            let mut u_scatter = vec![0.0f32; a2 * kc * cc];
            for k in 0..kc {
                for c in 0..cc {
                    let base = (k * cc + c) * a2;
                    for xi in 0..a2 {
                        u_scatter[(xi * kc + k) * cc + c] = self.u_kc[base + xi];
                    }
                }
            }
            u_scatter
        })
    }

    /// Validates that `desc` is servable by this transform: same
    /// channel counts and the same implied `F(m, r)`.
    fn check_desc(&self, desc: &ConvDesc) -> Result<(), ConvError> {
        let spec = winograd_checks(desc, self.recipes.spec.m)?;
        if self.recipes.spec != spec {
            return Err(ConvError::Shape(format!(
                "precomputed filters are for {} but descriptor implies {spec}",
                self.recipes.spec
            )));
        }
        if (desc.out_ch, desc.in_ch) != (self.out_ch, self.in_ch) {
            return Err(ConvError::Shape(format!(
                "precomputed filters are {}x{} channels but descriptor {desc} wants {}x{}",
                self.out_ch, self.in_ch, desc.out_ch, desc.in_ch
            )));
        }
        Ok(())
    }
}

/// Winograd convolution reusing an already-transformed filter bank
/// (skips the filter-transform phase entirely).
///
/// # Errors
/// Shape mismatches, non-unit stride, or a transform/descriptor
/// mismatch.
pub fn conv_winograd_precomputed(
    input: &Tensor4<f32>,
    pre: &PrecomputedFilters,
    desc: &ConvDesc,
    variant: WinogradVariant,
    gemm: &GemmConfig,
) -> Result<Tensor4<f32>, ConvError> {
    conv_winograd_precomputed_rt(input, pre, desc, variant, gemm, Runtime::global())
}

/// [`conv_winograd_precomputed`] on an explicit execution runtime.
///
/// Output is bit-identical to the cold-path
/// [`conv_winograd_with_recipes_rt`] with the same recipes: the warm
/// `U` is the same values, only computed earlier.
///
/// # Errors
/// Shape mismatches, non-unit stride, or a transform/descriptor
/// mismatch.
pub fn conv_winograd_precomputed_rt(
    input: &Tensor4<f32>,
    pre: &PrecomputedFilters,
    desc: &ConvDesc,
    variant: WinogradVariant,
    gemm: &GemmConfig,
    rt: &Runtime,
) -> Result<Tensor4<f32>, ConvError> {
    conv_winograd_precomputed_level(input, pre, desc, variant, gemm, rt, wino_gemm::simd_level())
}

/// The engines with the transform dispatch level pinned (the public
/// entry points pass the process-wide [`wino_gemm::simd_level`]).
/// Public as a benchmarking/testing hook: it lets one process measure
/// the scalar interpreted path against the compiled SIMD path without
/// re-resolving `WINO_SIMD`.
///
/// Under [`SimdLevel::Scalar`] both engines run the interpreted
/// per-tile transform paths unchanged; under [`SimdLevel::Avx2`] they
/// batch full groups of [`LANES`] tiles through the compiled SoA
/// kernels (when [`compiled_for`] approves them) and interpret the
/// ragged remainder. The transform kernels have no cross-lane
/// operations, so their outputs are bit-identical across levels; only
/// the GEMM stage's micro-kernel differs per level.
///
/// # Errors
/// As [`conv_winograd_precomputed_rt`].
#[allow(clippy::too_many_arguments)]
pub fn conv_winograd_precomputed_level(
    input: &Tensor4<f32>,
    pre: &PrecomputedFilters,
    desc: &ConvDesc,
    variant: WinogradVariant,
    gemm: &GemmConfig,
    rt: &Runtime,
    level: SimdLevel,
) -> Result<Tensor4<f32>, ConvError> {
    conv_winograd_precomputed_levels(input, pre, desc, variant, gemm, rt, level, level)
}

/// The engines with the transform and GEMM dispatch levels pinned
/// *independently* — a test hook: holding the GEMM level fixed while
/// varying the transform level isolates the compiled-SoA wiring from
/// the micro-kernel's FMA-vs-mul+add rounding difference, so the
/// transform halves can be compared bit-for-bit.
#[allow(clippy::too_many_arguments)]
fn conv_winograd_precomputed_levels(
    input: &Tensor4<f32>,
    pre: &PrecomputedFilters,
    desc: &ConvDesc,
    variant: WinogradVariant,
    gemm: &GemmConfig,
    rt: &Runtime,
    transform_level: SimdLevel,
    gemm_level: SimdLevel,
) -> Result<Tensor4<f32>, ConvError> {
    if input.dims() != (desc.batch, desc.in_ch, desc.in_h, desc.in_w) {
        return Err(ConvError::Shape(format!(
            "input dims {:?} do not match descriptor {desc}",
            input.dims()
        )));
    }
    pre.check_desc(desc)?;
    let compiled = match transform_level {
        SimdLevel::Scalar => None,
        SimdLevel::Avx2 => compiled_for(pre.recipes()),
    };
    match variant {
        WinogradVariant::NonFused => nonfused(
            input,
            pre,
            desc,
            gemm,
            rt,
            transform_level,
            gemm_level,
            compiled,
        ),
        WinogradVariant::Fused => fused(input, pre, desc, rt, transform_level, compiled),
    }
}

/// Decomposes a linear tile index into `(batch, tile_y, tile_x)`.
fn tile_coords(p: usize, th: usize, tw: usize) -> (usize, usize, usize) {
    let n = p / (th * tw);
    let rem = p % (th * tw);
    (n, rem / tw, rem % tw)
}

// Lane loops index `lane l ↔ tile t0 + l` in parallel; an iterator
// form would hide that pairing.
#[allow(clippy::needless_range_loop, clippy::too_many_arguments)]
fn nonfused(
    input: &Tensor4<f32>,
    pre: &PrecomputedFilters,
    desc: &ConvDesc,
    gemm: &GemmConfig,
    rt: &Runtime,
    level: SimdLevel,
    gemm_level: SimdLevel,
    compiled: Option<CompiledTransforms>,
) -> Result<Tensor4<f32>, ConvError> {
    let mut conv_span = wino_probe::span("conv.winograd.nonfused");
    conv_span.arg("desc", || desc.to_string());
    let recipes = pre.recipes();
    let spec = recipes.spec;
    let (m, alpha) = (spec.m, spec.alpha());
    let a2 = alpha * alpha;
    let (oh, ow) = (desc.out_h(), desc.out_w());
    let (th, tw) = tile_counts(oh, ow, m);
    let p_total = desc.batch * th * tw;
    let (kc, cc) = (desc.out_ch, desc.in_ch);

    // Stage 1a: U' scatter layout (ξ, k, c) for batched GEMM A-side
    // (already resident on a warm run).
    let u_scatter = pre.u_scatter();

    // Stage 1b: V' scatter layout (ξ, c, p), parallel over tiles `p`.
    // A tile owns column `p` of every (ξ, c) matrix — strided but
    // disjoint writes — and each chunk carries its own transformer
    // scratch.
    let input_span = wino_probe::span("conv.input_transform");
    let input_hist = H_INPUT.start();
    let padded = input.pad_spatial(desc.pad);
    let mut v_scatter = vec![0.0f32; a2 * cc * p_total];
    if let Some(ct) = compiled {
        // Compiled SoA path: full groups of LANES tiles go through the
        // generated kernel; the ragged tail group is interpreted.
        let v_win = DisjointSlice::new(&mut v_scatter);
        rt.parallel_for_chunks(0..p_total.div_ceil(LANES), 1, |groups| {
            let _chunk_span = wino_probe::span("conv.tile_gather");
            let mut it = TileTransformer::new(&recipes.input);
            let mut in_tile = vec![0.0f32; a2];
            let mut v_tile = vec![0.0f32; a2];
            let mut src = vec![[0.0f32; LANES]; a2];
            let mut dst = vec![[0.0f32; LANES]; a2];
            for g in groups {
                let p0 = g * LANES;
                let count = LANES.min(p_total - p0);
                TILES_GATHERED.add(count as u64);
                if count == LANES {
                    for c in 0..cc {
                        for l in 0..LANES {
                            let (n, ty, tx) = tile_coords(p0 + l, th, tw);
                            extract_input_tile(&padded, n, c, ty, tx, m, alpha, &mut in_tile);
                            for (xi, &val) in in_tile[..a2].iter().enumerate() {
                                src[xi][l] = val;
                            }
                        }
                        ct.input.run(level, &src, &mut dst);
                        wino_probe::fault::inject_f32(
                            wino_probe::fault::Site::Transform,
                            dst.as_flattened_mut(),
                        );
                        for l in 0..LANES {
                            let p = p0 + l;
                            for (xi, lanes) in dst[..a2].iter().enumerate() {
                                // SAFETY: only tile `p` writes column `p`.
                                unsafe {
                                    v_win.write((xi * cc + c) * p_total + p, lanes[l]);
                                }
                            }
                        }
                    }
                } else {
                    for p in p0..p_total {
                        let (n, ty, tx) = tile_coords(p, th, tw);
                        for c in 0..cc {
                            extract_input_tile(&padded, n, c, ty, tx, m, alpha, &mut in_tile);
                            it.transform(&in_tile, &mut v_tile);
                            for (xi, &val) in v_tile[..a2].iter().enumerate() {
                                // SAFETY: only tile `p` writes column `p`.
                                unsafe {
                                    v_win.write((xi * cc + c) * p_total + p, val);
                                }
                            }
                        }
                    }
                }
            }
        });
    } else {
        let v_win = DisjointSlice::new(&mut v_scatter);
        rt.parallel_for_chunks(0..p_total, 1, |tiles| {
            let _chunk_span = wino_probe::span("conv.tile_gather");
            TILES_GATHERED.add(tiles.len() as u64);
            let mut it = TileTransformer::new(&recipes.input);
            let mut in_tile = vec![0.0f32; a2];
            let mut v_tile = vec![0.0f32; a2];
            for p in tiles {
                let (n, ty, tx) = tile_coords(p, th, tw);
                for c in 0..cc {
                    extract_input_tile(&padded, n, c, ty, tx, m, alpha, &mut in_tile);
                    it.transform(&in_tile, &mut v_tile);
                    for (xi, &val) in v_tile[..a2].iter().enumerate() {
                        // SAFETY: only tile `p` writes column `p`.
                        unsafe {
                            v_win.write((xi * cc + c) * p_total + p, val);
                        }
                    }
                }
            }
        });
    }

    drop(input_span);
    drop(input_hist);

    // Stage 2: α² batched SGEMMs M(ξ) = U'(ξ) · V'(ξ), parallel
    // across the batch dimension.
    let mut gemm_span = wino_probe::span("conv.batched_sgemm");
    let gemm_hist = H_SGEMM.start();
    gemm_span.arg("shape", || format!("{a2}x({kc}x{cc}x{p_total})"));
    let shape = BatchedGemmShape {
        batches: a2,
        m: kc,
        k: cc,
        n: p_total,
    };
    let mut m_scatter = vec![0.0f32; shape.c_len()];
    wino_gemm::batched_sgemm_rt_level(
        &shape,
        u_scatter,
        &v_scatter,
        &mut m_scatter,
        gemm,
        rt,
        gemm_level,
    );
    drop(gemm_span);
    drop(gemm_hist);

    // Stage 3: output transform + placement, parallel over (k, p)
    // pairs. A pair owns one m×m output tile of one plane; its rows
    // are written as disjoint segments.
    let output_span = wino_probe::span("conv.output_transform");
    let output_hist = H_OUTPUT.start();
    let mut out = Tensor4::<f32>::zeros(desc.batch, kc, oh, ow);
    if let Some(ct) = compiled {
        let total = kc * p_total;
        let out_win = DisjointSlice::new(out.data_mut());
        rt.parallel_for_chunks(0..total.div_ceil(LANES), 1, |groups| {
            let _chunk_span = wino_probe::span("conv.tile_scatter");
            let mut ot = TileTransformer::new(&recipes.output);
            let mut m_tile = vec![0.0f32; a2];
            let mut y_tile = vec![0.0f32; m * m];
            let mut src = vec![[0.0f32; LANES]; a2];
            let mut dst = vec![[0.0f32; LANES]; m * m];
            for g in groups {
                let q0 = g * LANES;
                let count = LANES.min(total - q0);
                TILES_SCATTERED.add(count as u64);
                if count == LANES {
                    for l in 0..LANES {
                        let (k, p) = ((q0 + l) / p_total, (q0 + l) % p_total);
                        for (xi, lanes) in src[..a2].iter_mut().enumerate() {
                            lanes[l] = m_scatter[(xi * kc + k) * p_total + p];
                        }
                    }
                    ct.output.run(level, &src, &mut dst);
                    wino_probe::fault::inject_f32(
                        wino_probe::fault::Site::Transform,
                        dst.as_flattened_mut(),
                    );
                    for l in 0..LANES {
                        let (k, p) = ((q0 + l) / p_total, (q0 + l) % p_total);
                        let (n, ty, tx) = tile_coords(p, th, tw);
                        for (pos, val) in y_tile.iter_mut().enumerate() {
                            *val = dst[pos][l];
                        }
                        place_tile_rows(&out_win, n, k, kc, oh, ow, ty, tx, m, &y_tile);
                    }
                } else {
                    for q in q0..total {
                        let (k, p) = (q / p_total, q % p_total);
                        let (n, ty, tx) = tile_coords(p, th, tw);
                        for xi in 0..a2 {
                            m_tile[xi] = m_scatter[(xi * kc + k) * p_total + p];
                        }
                        ot.transform(&m_tile, &mut y_tile);
                        place_tile_rows(&out_win, n, k, kc, oh, ow, ty, tx, m, &y_tile);
                    }
                }
            }
        });
    } else {
        let out_win = DisjointSlice::new(out.data_mut());
        rt.parallel_for_chunks(0..kc * p_total, 1, |pairs| {
            let _chunk_span = wino_probe::span("conv.tile_scatter");
            TILES_SCATTERED.add(pairs.len() as u64);
            let mut ot = TileTransformer::new(&recipes.output);
            let mut m_tile = vec![0.0f32; a2];
            let mut y_tile = vec![0.0f32; m * m];
            for q in pairs {
                let (k, p) = (q / p_total, q % p_total);
                let (n, ty, tx) = tile_coords(p, th, tw);
                for xi in 0..a2 {
                    m_tile[xi] = m_scatter[(xi * kc + k) * p_total + p];
                }
                ot.transform(&m_tile, &mut y_tile);
                place_tile_rows(&out_win, n, k, kc, oh, ow, ty, tx, m, &y_tile);
            }
        });
    }
    drop(output_span);
    drop(output_hist);
    Ok(out)
}

/// Writes the clipped `m × m` tile at `(ty, tx)` of plane `(n, k)`
/// into the shared output window, one disjoint row segment at a time.
#[allow(clippy::too_many_arguments)]
fn place_tile_rows(
    out: &DisjointSlice<'_, f32>,
    n: usize,
    k: usize,
    kc: usize,
    oh: usize,
    ow: usize,
    ty: usize,
    tx: usize,
    m: usize,
    tile: &[f32],
) {
    let h_eff = m.min(oh - ty * m);
    let w_eff = m.min(ow - tx * m);
    let plane = ((n * kc + k) * oh) * ow;
    for dy in 0..h_eff {
        let row = plane + (ty * m + dy) * ow + tx * m;
        // SAFETY: exactly one (k, p) task owns this tile, and tiles
        // partition the plane, so row segments never overlap.
        let dst = unsafe { out.slice_mut(row..row + w_eff) };
        dst.copy_from_slice(&tile[dy * m..dy * m + w_eff]);
    }
}

// Lane loops index `lane l ↔ tile t0 + l` in parallel; an iterator
// form would hide that pairing.
#[allow(clippy::needless_range_loop)]
fn fused(
    input: &Tensor4<f32>,
    pre: &PrecomputedFilters,
    desc: &ConvDesc,
    rt: &Runtime,
    level: SimdLevel,
    compiled: Option<CompiledTransforms>,
) -> Result<Tensor4<f32>, ConvError> {
    let mut conv_span = wino_probe::span("conv.winograd.fused");
    conv_span.arg("desc", || desc.to_string());
    let recipes = pre.recipes();
    let spec = recipes.spec;
    let (m, alpha) = (spec.m, spec.alpha());
    let a2 = alpha * alpha;
    let (oh, ow) = (desc.out_h(), desc.out_w());
    let (th, tw) = tile_counts(oh, ow, m);
    let (kc, cc) = (desc.out_ch, desc.in_ch);

    // The (k, c, ξ) filter bank (the generated kernel recomputes it
    // per thread block from shared memory; here it is resident).
    let u_kc = pre.u_kc();

    let padded = input.pad_spatial(desc.pad);
    let mut out = Tensor4::<f32>::zeros(desc.batch, kc, oh, ow);

    // Parallel over (n, ty, tx) tiles — the fused kernel's thread
    // blocks. Each chunk owns transformer scratch; a tile writes its
    // own region of every output plane, disjoint from other tiles.
    // Per chunk, gather work (tile extraction + input transform) and
    // scatter work (channel-summed multiply + output transform +
    // placement) are interleaved per tile, so the two phases get
    // chunk-level spans instead of stage-level ones.
    let out_win = DisjointSlice::new(out.data_mut());
    if let Some(ct) = compiled {
        // Compiled SoA path: LANES spatial tiles advance together
        // through transform, channel-summed multiply, and output
        // transform; the ragged tail group runs the interpreted body.
        let total = desc.batch * th * tw;
        rt.parallel_for_chunks(0..total.div_ceil(LANES), 1, |groups| {
            let mut it = TileTransformer::new(&recipes.input);
            let mut ot = TileTransformer::new(&recipes.output);
            let mut in_tile = vec![0.0f32; a2];
            let mut v_tiles = vec![0.0f32; cc * a2];
            let mut acc = vec![0.0f32; a2];
            let mut y_tile = vec![0.0f32; m * m];
            let mut src = vec![[0.0f32; LANES]; a2];
            let mut v_soa = vec![[0.0f32; LANES]; cc * a2];
            let mut acc_soa = vec![[0.0f32; LANES]; a2];
            let mut y_soa = vec![[0.0f32; LANES]; m * m];
            for g in groups {
                let t0 = g * LANES;
                let count = LANES.min(total - t0);
                TILES_GATHERED.add(count as u64);
                TILES_SCATTERED.add(count as u64);
                if count == LANES {
                    let gather_span = wino_probe::span("conv.tile_gather");
                    for c in 0..cc {
                        for l in 0..LANES {
                            let (n, ty, tx) = tile_coords(t0 + l, th, tw);
                            extract_input_tile(&padded, n, c, ty, tx, m, alpha, &mut in_tile);
                            for (xi, &val) in in_tile[..a2].iter().enumerate() {
                                src[xi][l] = val;
                            }
                        }
                        let v = &mut v_soa[c * a2..(c + 1) * a2];
                        ct.input.run(level, &src, v);
                        wino_probe::fault::inject_f32(
                            wino_probe::fault::Site::Transform,
                            v.as_flattened_mut(),
                        );
                    }
                    drop(gather_span);
                    let _scatter_span = wino_probe::span("conv.tile_scatter");
                    for k in 0..kc {
                        acc_soa.fill([0.0; LANES]);
                        for c in 0..cc {
                            let u = &u_kc[(k * cc + c) * a2..(k * cc + c + 1) * a2];
                            let v = &v_soa[c * a2..(c + 1) * a2];
                            for xi in 0..a2 {
                                for l in 0..LANES {
                                    acc_soa[xi][l] += u[xi] * v[xi][l];
                                }
                            }
                        }
                        ct.output.run(level, &acc_soa, &mut y_soa);
                        wino_probe::fault::inject_f32(
                            wino_probe::fault::Site::Transform,
                            y_soa.as_flattened_mut(),
                        );
                        for l in 0..LANES {
                            let (n, ty, tx) = tile_coords(t0 + l, th, tw);
                            for (pos, val) in y_tile.iter_mut().enumerate() {
                                *val = y_soa[pos][l];
                            }
                            place_tile_rows(&out_win, n, k, kc, oh, ow, ty, tx, m, &y_tile);
                        }
                    }
                } else {
                    for t in t0..total {
                        let (n, ty, tx) = tile_coords(t, th, tw);
                        let gather_span = wino_probe::span("conv.tile_gather");
                        for c in 0..cc {
                            extract_input_tile(&padded, n, c, ty, tx, m, alpha, &mut in_tile);
                            it.transform(&in_tile, &mut v_tiles[c * a2..(c + 1) * a2]);
                        }
                        drop(gather_span);
                        let _scatter_span = wino_probe::span("conv.tile_scatter");
                        for k in 0..kc {
                            acc.fill(0.0);
                            for c in 0..cc {
                                let u = &u_kc[(k * cc + c) * a2..(k * cc + c + 1) * a2];
                                let v = &v_tiles[c * a2..(c + 1) * a2];
                                for xi in 0..a2 {
                                    acc[xi] += u[xi] * v[xi];
                                }
                            }
                            ot.transform(&acc, &mut y_tile);
                            place_tile_rows(&out_win, n, k, kc, oh, ow, ty, tx, m, &y_tile);
                        }
                    }
                }
            }
        });
        return Ok(out);
    }
    rt.parallel_for_chunks(0..desc.batch * th * tw, 1, |tiles| {
        TILES_GATHERED.add(tiles.len() as u64);
        TILES_SCATTERED.add(tiles.len() as u64);
        let mut it = TileTransformer::new(&recipes.input);
        let mut ot = TileTransformer::new(&recipes.output);
        let mut in_tile = vec![0.0f32; a2];
        let mut v_tiles = vec![0.0f32; cc * a2];
        let mut acc = vec![0.0f32; a2];
        let mut y_tile = vec![0.0f32; m * m];
        for t in tiles {
            let (n, ty, tx) = tile_coords(t, th, tw);
            // Input transform for every channel of this tile.
            let gather_span = wino_probe::span("conv.tile_gather");
            for c in 0..cc {
                extract_input_tile(&padded, n, c, ty, tx, m, alpha, &mut in_tile);
                it.transform(&in_tile, &mut v_tiles[c * a2..(c + 1) * a2]);
            }
            drop(gather_span);
            // Channel-summed element-wise multiply + output transform
            // per filter.
            let _scatter_span = wino_probe::span("conv.tile_scatter");
            for k in 0..kc {
                acc.fill(0.0);
                for c in 0..cc {
                    let u = &u_kc[(k * cc + c) * a2..(k * cc + c + 1) * a2];
                    let v = &v_tiles[c * a2..(c + 1) * a2];
                    for xi in 0..a2 {
                        acc[xi] += u[xi] * v[xi];
                    }
                }
                ot.transform(&acc, &mut y_tile);
                place_tile_rows(&out_win, n, k, kc, oh, ow, ty, tx, m, &y_tile);
            }
        }
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::conv_direct_f32;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_close(a: &Tensor4<f32>, b: &Tensor4<f32>, tol: f32) {
        assert_eq!(a.dims(), b.dims());
        for i in 0..a.len() {
            let (x, y) = (a.data()[i], b.data()[i]);
            assert!((x - y).abs() <= tol * (1.0 + y.abs()), "{x} vs {y} at {i}");
        }
    }

    fn random_case(desc: &ConvDesc, seed: u64) -> (Tensor4<f32>, Tensor4<f32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let input = Tensor4::<f32>::random(
            desc.batch, desc.in_ch, desc.in_h, desc.in_w, -1.0, 1.0, &mut rng,
        );
        let filt = Tensor4::<f32>::random(
            desc.out_ch,
            desc.in_ch,
            desc.ksz,
            desc.ksz,
            -1.0,
            1.0,
            &mut rng,
        );
        (input, filt)
    }

    #[test]
    fn nonfused_matches_direct_f23() {
        let desc = ConvDesc::new(3, 1, 1, 4, 2, 8, 8, 3);
        let (input, filt) = random_case(&desc, 21);
        let direct = conv_direct_f32(&input, &filt, &desc).unwrap();
        let wino = conv_winograd(&input, &filt, &desc, &WinogradConfig::new(2)).unwrap();
        assert_close(&wino, &direct, 1e-4);
    }

    #[test]
    fn fused_matches_direct_f23() {
        let desc = ConvDesc::new(3, 1, 1, 4, 2, 8, 8, 3);
        let (input, filt) = random_case(&desc, 22);
        let direct = conv_direct_f32(&input, &filt, &desc).unwrap();
        let cfg = WinogradConfig::new(2).with_variant(WinogradVariant::Fused);
        let wino = conv_winograd(&input, &filt, &desc, &cfg).unwrap();
        assert_close(&wino, &direct, 1e-4);
    }

    #[test]
    fn ragged_tiling_is_handled() {
        // 7×7 output with m = 4: ragged last tile row/column.
        let desc = ConvDesc::new(3, 1, 1, 2, 1, 7, 7, 2);
        let (input, filt) = random_case(&desc, 23);
        let direct = conv_direct_f32(&input, &filt, &desc).unwrap();
        let wino = conv_winograd(&input, &filt, &desc, &WinogradConfig::new(4)).unwrap();
        assert_close(&wino, &direct, 1e-4);
    }

    #[test]
    fn larger_tiles_and_filters() {
        for (m, r) in [(4, 3), (6, 3), (2, 5), (4, 5), (2, 7)] {
            let desc = ConvDesc::new(r, 1, r / 2, 3, 1, 12, 12, 2);
            let (input, filt) = random_case(&desc, 1000 + (m * 10 + r) as u64);
            let direct = conv_direct_f32(&input, &filt, &desc).unwrap();
            for variant in [WinogradVariant::NonFused, WinogradVariant::Fused] {
                let cfg = WinogradConfig::new(m).with_variant(variant);
                let wino = conv_winograd(&input, &filt, &desc, &cfg).unwrap();
                assert_close(&wino, &direct, 2e-3);
            }
        }
    }

    #[test]
    fn naive_recipes_same_result() {
        let desc = ConvDesc::new(3, 1, 1, 2, 1, 6, 6, 2);
        let (input, filt) = random_case(&desc, 31);
        let opt = conv_winograd(&input, &filt, &desc, &WinogradConfig::new(2)).unwrap();
        let cfg = WinogradConfig::new(2).with_options(RecipeOptions::minimal());
        let naive = conv_winograd(&input, &filt, &desc, &cfg).unwrap();
        assert_close(&opt, &naive, 1e-4);
    }

    #[test]
    fn no_padding_case() {
        let desc = ConvDesc::new(3, 1, 0, 2, 1, 8, 8, 2);
        let (input, filt) = random_case(&desc, 33);
        let direct = conv_direct_f32(&input, &filt, &desc).unwrap();
        let wino = conv_winograd(&input, &filt, &desc, &WinogradConfig::new(3)).unwrap();
        assert_close(&wino, &direct, 1e-4);
    }

    #[test]
    fn even_filter_sizes_work() {
        // Unusual but valid: a 2×2 filter, F(m,2).
        let desc = ConvDesc::new(2, 1, 0, 2, 1, 9, 9, 2);
        let (input, filt) = random_case(&desc, 77);
        let direct = conv_direct_f32(&input, &filt, &desc).unwrap();
        let wino = conv_winograd(&input, &filt, &desc, &WinogradConfig::new(3)).unwrap();
        assert_close(&wino, &direct, 1e-4);
    }

    fn assert_bits_equal(a: &Tensor4<f32>, b: &Tensor4<f32>) {
        assert_eq!(a.dims(), b.dims());
        for i in 0..a.len() {
            assert_eq!(
                a.data()[i].to_bits(),
                b.data()[i].to_bits(),
                "bit mismatch at {i}: {} vs {}",
                a.data()[i],
                b.data()[i]
            );
        }
    }

    #[test]
    fn precomputed_filters_bit_identical_to_cold_path() {
        let desc = ConvDesc::new(3, 1, 1, 4, 3, 10, 10, 2);
        let (input, filt) = random_case(&desc, 41);
        for variant in [WinogradVariant::NonFused, WinogradVariant::Fused] {
            let cfg = WinogradConfig::new(4).with_variant(variant);
            let cold = conv_winograd(&input, &filt, &desc, &cfg).unwrap();
            let pre = PrecomputedFilters::for_config(&filt, &desc, &cfg).unwrap();
            let warm = conv_winograd_precomputed(&input, &pre, &desc, variant, &cfg.gemm).unwrap();
            assert_bits_equal(&warm, &cold);
            // The same warm bank serves a different batch size too.
            let desc2 = ConvDesc { batch: 5, ..desc };
            let (input2, _) = random_case(&desc2, 42);
            let cold2 = conv_winograd(&input2, &filt, &desc2, &cfg).unwrap();
            let warm2 =
                conv_winograd_precomputed(&input2, &pre, &desc2, variant, &cfg.gemm).unwrap();
            assert_bits_equal(&warm2, &cold2);
        }
    }

    #[test]
    fn compiled_engines_bit_identical_to_interpreted() {
        // Forcing the *transform* dispatch level must not change
        // output bits: the compiled SoA kernels retire the
        // interpreter's per-lane ops in the interpreter's order. The
        // GEMM level is pinned to Scalar on both sides — the
        // micro-kernel's FMA rounding is the one legitimate
        // cross-level difference, and holding it fixed isolates the
        // transform wiring. Gated on actual AVX2 support because
        // Avx2-level kernels require it.
        if wino_gemm::detect_simd() != SimdLevel::Avx2 {
            return;
        }
        let desc = ConvDesc::new(3, 1, 1, 4, 3, 12, 12, 3);
        let (input, filt) = random_case(&desc, 55);
        for m in [2usize, 4, 6] {
            let cfg = WinogradConfig::new(m);
            let pre = PrecomputedFilters::for_config(&filt, &desc, &cfg).unwrap();
            assert!(
                compiled_for(pre.recipes()).is_some(),
                "expected compiled kernels for F({m},3)"
            );
            for variant in [WinogradVariant::NonFused, WinogradVariant::Fused] {
                let rt = Runtime::global();
                let run = |transform_level| {
                    conv_winograd_precomputed_levels(
                        &input,
                        &pre,
                        &desc,
                        variant,
                        &cfg.gemm,
                        rt,
                        transform_level,
                        SimdLevel::Scalar,
                    )
                    .unwrap()
                };
                assert_bits_equal(&run(SimdLevel::Avx2), &run(SimdLevel::Scalar));
            }
        }
    }

    #[test]
    fn precomputed_filters_reject_mismatches() {
        let desc = ConvDesc::new(3, 1, 1, 2, 2, 8, 8, 2);
        let (input, filt) = random_case(&desc, 43);
        let cfg = WinogradConfig::new(2);
        let pre = PrecomputedFilters::for_config(&filt, &desc, &cfg).unwrap();
        // Wrong channel count.
        let bad = ConvDesc { in_ch: 3, ..desc };
        let (bad_input, _) = random_case(&bad, 44);
        assert!(conv_winograd_precomputed(
            &bad_input,
            &pre,
            &bad,
            WinogradVariant::NonFused,
            &GemmConfig::default()
        )
        .is_err());
        // Wrong filter size for the descriptor.
        let desc5 = ConvDesc::new(5, 1, 2, 2, 2, 8, 8, 2);
        assert!(PrecomputedFilters::for_config(&filt, &desc5, &cfg).is_err());
        // Input dims inconsistent with the descriptor.
        let small = ConvDesc {
            in_h: 4,
            in_w: 4,
            ..desc
        };
        assert!(conv_winograd_precomputed(
            &input,
            &pre,
            &small,
            WinogradVariant::NonFused,
            &GemmConfig::default()
        )
        .is_err());
    }

    #[test]
    fn stride_rejected() {
        let desc = ConvDesc::new(3, 2, 1, 2, 1, 8, 8, 2);
        let (input, filt) = random_case(&desc, 34);
        assert!(matches!(
            conv_winograd(&input, &filt, &desc, &WinogradConfig::new(2)),
            Err(ConvError::Unsupported(_))
        ));
    }

    #[test]
    fn recipe_spec_mismatch_rejected() {
        let desc = ConvDesc::new(3, 1, 1, 2, 1, 8, 8, 2);
        let (input, filt) = random_case(&desc, 35);
        let other = recipe_db()
            .get(WinogradSpec::new(4, 3).unwrap(), RecipeOptions::optimized())
            .unwrap();
        // Descriptor says r = 3 and recipes say m = 4 — consistent —
        // but force a mismatch by using a 5×5 descriptor.
        let desc5 = ConvDesc::new(5, 1, 2, 2, 1, 8, 8, 2);
        let (input5, filt5) = random_case(&desc5, 36);
        assert!(conv_winograd_with_recipes(
            &input5,
            &filt5,
            &desc5,
            &other,
            WinogradVariant::NonFused
        )
        .is_err());
        // Matching case passes.
        assert!(conv_winograd_with_recipes(
            &input,
            &filt,
            &desc,
            &other,
            WinogradVariant::NonFused
        )
        .is_ok());
    }
}
