//! Build-time-compiled SoA transform kernels and their runtime gate.
//!
//! `build.rs` runs the symbolic pipeline at compile time, proves each
//! recipe with `wino-verify`, and emits one specialized
//! structure-of-arrays kernel per transform into `OUT_DIR`; this
//! module `include!`s that file and decides, per convolution call,
//! whether the compiled kernels may serve the resolved recipes.
//!
//! The gate is a fingerprint equality check: a kernel runs only for
//! the exact recipe it was generated (and verified) from. Any drift —
//! different pipeline options, a changed recipe generator — falls back
//! to the interpreted [`crate::TileTransformer`] path, which is the
//! behavior the compiled path is bit-identical to anyway (per lane the
//! emitted ops are the interpreter's ops in the interpreter's order).

use wino_gemm::SimdLevel;
use wino_symbolic::RecipeOptions;
use wino_transform::TransformRecipes;

/// Counts every convolution call whose optimized-pipeline recipes were
/// expected to have compiled kernels but fingerprint-mismatched the
/// build-time table — the silent-drift case. Steady-state serving must
/// keep this at zero (asserted by the ci.sh serve smoke); any bump
/// means a kernel proven at build time no longer covers the recipe in
/// use and the engine quietly lost its compiled fast path.
static COMPILED_FALLBACK: wino_probe::Counter = wino_probe::Counter::new("conv.compiled_fallback");

/// Tiles processed together by one SoA kernel application. Eight f32
/// lanes = one AVX2 vector; every emitted vector op covers the whole
/// batch in one instruction on the `_avx2` entry points.
pub const LANES: usize = 8;

/// A compiled 2-D transform over a batch of [`LANES`] tiles in
/// position-major SoA layout (`src[pos][lane]`).
type SoaFn = fn(&[[f32; LANES]], &mut [[f32; LANES]]);

/// The AVX2+FMA entry of the same kernel.
///
/// # Safety
/// Calling through this pointer requires AVX2+FMA on the host; the
/// [`SimdLevel::Avx2`] dispatch token (CPUID-gated) encodes exactly
/// that proof, so every call site threads it through.
#[cfg(target_arch = "x86_64")]
type SoaAvx2Fn = unsafe fn(&[[f32; LANES]], &mut [[f32; LANES]]);

/// One compiled transform kernel: both entry points plus the identity
/// of the recipe it was generated from.
#[derive(Clone, Copy)]
pub struct SoaKernel {
    scalar: SoaFn,
    #[cfg(target_arch = "x86_64")]
    avx2: SoaAvx2Fn,
    fingerprint: u64,
    n_in: usize,
    n_out: usize,
}

impl SoaKernel {
    /// 1-D input arity; the 2-D kernel reads `n_in² × LANES` values.
    pub fn n_in(&self) -> usize {
        self.n_in
    }

    /// 1-D output arity; the 2-D kernel writes `n_out² × LANES` values.
    pub fn n_out(&self) -> usize {
        self.n_out
    }

    /// Fingerprint of the source recipe (see
    /// [`wino_symbolic::Recipe::fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Applies the kernel to one SoA tile batch under `level`.
    ///
    /// `src` must hold at least `n_in²` positions and `dst` at least
    /// `n_out²`. Output bits do not depend on `level`: the kernel has
    /// no cross-lane operations, so the AVX2 entry retires the same
    /// per-lane IEEE ops the scalar entry does.
    pub fn run(&self, level: SimdLevel, src: &[[f32; LANES]], dst: &mut [[f32; LANES]]) {
        match level {
            SimdLevel::Scalar => (self.scalar)(src, dst),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: Avx2 is only ever resolved on CPUs reporting
            // avx2+fma (see wino_gemm::resolve_simd).
            SimdLevel::Avx2 => unsafe { (self.avx2)(src, dst) },
            #[cfg(not(target_arch = "x86_64"))]
            SimdLevel::Avx2 => (self.scalar)(src, dst),
        }
    }
}

/// The compiled kernel pair serving one Winograd configuration.
#[derive(Clone, Copy)]
pub struct CompiledTransforms {
    /// Input transform `Bᵀ·d·B` (α² SoA positions in and out).
    pub input: SoaKernel,
    /// Output transform `Aᵀ·M·A` (α² positions in, m² out).
    pub output: SoaKernel,
}

/// Returns the compiled kernels for `recipes` if — and only if — they
/// were generated from these exact recipes.
///
/// Non-optimized pipeline options never have compiled kernels (the
/// build table is generated with [`RecipeOptions::optimized`]), so
/// they return `None` silently. An optimized configuration that is in
/// the table but fingerprint-mismatches indicates build/runtime recipe
/// drift — that falls back too, but leaves a diagnostic, because it
/// means the proof obtained at build time no longer covers the recipe
/// in use.
pub fn compiled_for(recipes: &TransformRecipes) -> Option<CompiledTransforms> {
    if recipes.options != RecipeOptions::optimized() {
        return None;
    }
    let spec = recipes.spec;
    let (input, output) = gen::lookup(spec.m, spec.r)?;
    if input.fingerprint != recipes.input.fingerprint()
        || output.fingerprint != recipes.output.fingerprint()
    {
        COMPILED_FALLBACK.add(1);
        wino_probe::diag(format!(
            "compiled transform kernels for {spec} do not match the runtime \
             recipes (build-time fingerprint {:016x}/{:016x}, runtime \
             {:016x}/{:016x}); using the interpreted path",
            input.fingerprint,
            output.fingerprint,
            recipes.input.fingerprint(),
            recipes.output.fingerprint(),
        ));
        return None;
    }
    Some(CompiledTransforms { input, output })
}

/// The generated kernels. The lane loops in the emitted bodies are
/// index-based by construction (the emitter unrolls positions, not
/// lanes), which trips clippy's range-loop lint; the shape is
/// intentional there.
#[allow(clippy::needless_range_loop)]
mod gen {
    use super::{SoaKernel, LANES};
    include!(concat!(env!("OUT_DIR"), "/compiled_transforms.rs"));
}

/// The `(m, r)` configurations this build compiled kernels for, from
/// the generated table itself (no drift against `build.rs`).
pub fn compiled_specs() -> &'static [(usize, usize)] {
    gen::SPECS
}

/// The exact Rust source of the build-script-generated kernels this
/// binary is running. `wino-verify`'s compiled-kernel analysis parses
/// this text back into a statement IR and proves each kernel
/// equivalent to its transform — the shipped machine code (modulo
/// rustc) is what gets verified, not a regenerated lookalike.
pub fn generated_source() -> &'static str {
    include_str!(concat!(env!("OUT_DIR"), "/compiled_transforms.rs"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiles::TileTransformer;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use wino_gemm::detect_simd;
    use wino_transform::WinogradSpec;

    fn optimized(m: usize, r: usize) -> TransformRecipes {
        TransformRecipes::generate(WinogradSpec::new(m, r).unwrap(), RecipeOptions::optimized())
            .unwrap()
    }

    #[test]
    fn zoo_specs_have_compiled_kernels() {
        for (m, r) in [(2, 3), (4, 3), (6, 3)] {
            let recipes = optimized(m, r);
            let ct = compiled_for(&recipes)
                .unwrap_or_else(|| panic!("no compiled kernels for F({m},{r})"));
            assert_eq!(ct.input.n_in(), recipes.spec.alpha());
            assert_eq!(ct.input.n_out(), recipes.spec.alpha());
            assert_eq!(ct.output.n_in(), recipes.spec.alpha());
            assert_eq!(ct.output.n_out(), m);
            assert_eq!(ct.input.fingerprint(), recipes.input.fingerprint());
            assert_eq!(ct.output.fingerprint(), recipes.output.fingerprint());
        }
    }

    #[test]
    fn uncompiled_configs_fall_back() {
        // Not in the build table at all.
        let recipes = optimized(4, 5);
        assert!(compiled_for(&recipes).is_none());
        // In the table, but the recipes were generated under different
        // pipeline options than the compiled kernels.
        let naive =
            TransformRecipes::generate(WinogradSpec::new(2, 3).unwrap(), RecipeOptions::minimal())
                .unwrap();
        assert!(compiled_for(&naive).is_none());
    }

    /// Runs `kern` and the interpreter over the same random tile batch
    /// and demands bitwise equality lane by lane.
    fn assert_kernel_matches_interpreter(
        kern: &SoaKernel,
        recipe: &wino_symbolic::Recipe,
        level: SimdLevel,
        seed: u64,
    ) {
        let ni = kern.n_in() * kern.n_in();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut src = vec![[0.0f32; LANES]; ni];
        for pos in src.iter_mut() {
            for lane in pos.iter_mut() {
                *lane = rng.gen_range(-2.0..2.0);
            }
        }
        assert_kernel_matches_interpreter_on(kern, recipe, level, &src);
    }

    /// The bit-compare itself, on an explicit SoA tile batch.
    fn assert_kernel_matches_interpreter_on(
        kern: &SoaKernel,
        recipe: &wino_symbolic::Recipe,
        level: SimdLevel,
        src: &[[f32; LANES]],
    ) {
        let (ni, no) = (kern.n_in() * kern.n_in(), kern.n_out() * kern.n_out());
        let mut dst = vec![[0.0f32; LANES]; no];
        kern.run(level, src, &mut dst);

        let mut tt = TileTransformer::new(recipe);
        let mut tile_in = vec![0.0f32; ni];
        let mut tile_out = vec![0.0f32; no];
        for l in 0..LANES {
            for (pos, v) in tile_in.iter_mut().enumerate() {
                *v = src[pos][l];
            }
            tt.transform(&tile_in, &mut tile_out);
            for (pos, v) in tile_out.iter().enumerate() {
                assert_eq!(
                    v.to_bits(),
                    dst[pos][l].to_bits(),
                    "lane {l} position {pos} under {level:?}: {} vs {}",
                    v,
                    dst[pos][l]
                );
            }
        }
    }

    #[test]
    fn compiled_kernels_bit_identical_to_interpreter() {
        for (m, r) in [(2, 3), (4, 3), (6, 3)] {
            let recipes = optimized(m, r);
            let ct = compiled_for(&recipes).unwrap();
            let mut levels = vec![SimdLevel::Scalar];
            if detect_simd() == SimdLevel::Avx2 {
                levels.push(SimdLevel::Avx2);
            }
            for level in levels {
                let seed = (m * 100 + r) as u64;
                assert_kernel_matches_interpreter(&ct.input, &recipes.input, level, seed);
                assert_kernel_matches_interpreter(&ct.output, &recipes.output, level, seed + 1);
            }
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]
        // The stated ulp bound is zero: per lane, the compiled kernel
        // (scalar or AVX2 entry) retires exactly the interpreter's
        // IEEE ops in the interpreter's order — no cross-lane
        // operations, no reassociation — so the match is bitwise for
        // arbitrary finite inputs, not merely within a tolerance.
        // `WINO_SIMD=off` never reaches these kernels at all, so its
        // bit-identity to the interpreted path is structural.
        #[test]
        fn compiled_transforms_match_interpreter_for_arbitrary_tiles(
            values in proptest::collection::vec(-1.0e3f32..1.0e3, 36 * LANES),
        ) {
            let recipes = optimized(4, 3);
            let ct = compiled_for(&recipes).unwrap();
            let ni = recipes.spec.alpha() * recipes.spec.alpha();
            let mut src = vec![[0.0f32; LANES]; ni];
            for (i, v) in values.iter().enumerate() {
                src[i / LANES][i % LANES] = *v;
            }
            let mut levels = vec![SimdLevel::Scalar];
            if detect_simd() == SimdLevel::Avx2 {
                levels.push(SimdLevel::Avx2);
            }
            for level in levels {
                assert_kernel_matches_interpreter_on(&ct.input, &recipes.input, level, &src);
                assert_kernel_matches_interpreter_on(&ct.output, &recipes.output, level, &src);
            }
        }
    }
}
