//! Full-convolution accuracy measurement (§4.1, Table 3, Figure 4).
//!
//! Random input and filter tensors uniform in (−1, 1), Winograd in
//! FP32 versus direct convolution in FP64, relative error via the L1
//! norm, median over many trials — the paper's exact protocol, at the
//! level of whole convolutions (channel accumulation included).

use rand::rngs::StdRng;
use rand::SeedableRng;
use wino_symbolic::RecipeOptions;
use wino_tensor::{relative_error_l1, ConvDesc, Tensor4};
use wino_transform::{ErrorStats, TransformRecipes, WinogradSpec};

use crate::direct::conv_direct_f64;
use crate::error::ConvError;
use crate::winograd::{conv_winograd_with_recipes, WinogradVariant};

/// The default convolution used by the accuracy protocol: small enough
/// for 10k-trial sweeps, multi-channel so accumulation error is
/// represented.
pub fn accuracy_probe_desc(r: usize) -> ConvDesc {
    ConvDesc::new(r, 1, r / 2, 4, 1, 16, 16, 4)
}

/// One error trial: fresh random tensors, FP32 Winograd vs FP64
/// direct.
///
/// # Errors
/// Propagates engine failures (spec/descriptor mismatches).
pub fn conv_error_trial(
    recipes: &TransformRecipes,
    desc: &ConvDesc,
    rng: &mut StdRng,
) -> Result<f64, ConvError> {
    let input =
        Tensor4::<f32>::random(desc.batch, desc.in_ch, desc.in_h, desc.in_w, -1.0, 1.0, rng);
    let filt = Tensor4::<f32>::random(desc.out_ch, desc.in_ch, desc.ksz, desc.ksz, -1.0, 1.0, rng);
    let wino = conv_winograd_with_recipes(&input, &filt, desc, recipes, WinogradVariant::NonFused)?;
    let direct = conv_direct_f64(&input.to_f64(), &filt.to_f64(), desc)?;
    Ok(relative_error_l1(&wino.to_f64(), &direct))
}

/// Measures the relative-error distribution of `spec` with the given
/// points over `trials` random convolutions.
///
/// # Errors
/// Propagates recipe-generation and engine failures.
pub fn measure_conv_error(
    spec: WinogradSpec,
    points: &[wino_num::Rational],
    trials: usize,
    seed: u64,
) -> Result<ErrorStats, ConvError> {
    let recipes = TransformRecipes::generate_with_points(spec, points, RecipeOptions::optimized())?;
    let desc = accuracy_probe_desc(spec.r);
    let mut rng = StdRng::seed_from_u64(seed);
    let samples: Result<Vec<f64>, ConvError> = (0..trials.max(1))
        .map(|_| conv_error_trial(&recipes, &desc, &mut rng))
        .collect();
    Ok(ErrorStats::from_samples(samples?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_transform::table3_points;

    #[test]
    fn f23_conv_error_is_small() {
        let spec = WinogradSpec::new(2, 3).unwrap();
        let stats = measure_conv_error(spec, &table3_points(4).unwrap(), 25, 1).unwrap();
        assert!(stats.median > 0.0);
        assert!(stats.median < 1e-5, "median = {}", stats.median);
    }

    #[test]
    fn error_grows_with_alpha_at_conv_level() {
        let small = measure_conv_error(
            WinogradSpec::new(2, 3).unwrap(),
            &table3_points(4).unwrap(),
            20,
            2,
        )
        .unwrap();
        let large = measure_conv_error(
            WinogradSpec::new(10, 3).unwrap(),
            &table3_points(12).unwrap(),
            20,
            2,
        )
        .unwrap();
        assert!(large.median > small.median * 10.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = WinogradSpec::new(4, 3).unwrap();
        let a = measure_conv_error(spec, &table3_points(6).unwrap(), 10, 3).unwrap();
        let b = measure_conv_error(spec, &table3_points(6).unwrap(), 10, 3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn probe_desc_is_winograd_friendly() {
        for r in [3, 5, 7] {
            let d = accuracy_probe_desc(r);
            assert!(d.winograd_applicable());
            assert_eq!(d.out_h(), if r % 2 == 1 { 16 } else { d.out_h() });
        }
    }
}
