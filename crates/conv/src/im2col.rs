//! im2col + GEMM convolution — the "reshape as matrix multiplication"
//! lowering of §2 of the paper, and the engine inference frameworks
//! fall back to when Winograd does not apply (strided or large-kernel
//! layers).

use wino_gemm::sgemm;
use wino_tensor::{ConvDesc, Tensor4};

use crate::direct::check_shapes;
use crate::error::ConvError;

/// Gathers convolution patches into the `(C·r², OH·OW)` column matrix
/// for one image.
pub fn im2col_image(input: &Tensor4<f32>, n: usize, desc: &ConvDesc, cols: &mut [f32]) {
    let (oh, ow) = (desc.out_h(), desc.out_w());
    let k2 = desc.ksz * desc.ksz;
    let row_len = oh * ow;
    let (ih, iw) = (desc.in_h as isize, desc.in_w as isize);
    for c in 0..desc.in_ch {
        let plane = input.plane(n, c);
        for fy in 0..desc.ksz {
            for fx in 0..desc.ksz {
                let row = c * k2 + fy * desc.ksz + fx;
                for oy in 0..oh {
                    let y = (oy * desc.stride) as isize - desc.pad as isize + fy as isize;
                    for ox in 0..ow {
                        let x = (ox * desc.stride) as isize - desc.pad as isize + fx as isize;
                        cols[row * row_len + oy * ow + ox] = if y >= 0 && y < ih && x >= 0 && x < iw
                        {
                            plane[y as usize * desc.in_w + x as usize]
                        } else {
                            0.0
                        };
                    }
                }
            }
        }
    }
}

/// im2col + SGEMM convolution: filters flatten to `(K, C·r²)`, patches
/// to `(C·r², OH·OW)`, and one GEMM per image produces `(K, OH·OW)`.
///
/// # Errors
/// [`ConvError::Shape`] when tensor dims disagree with `desc`.
pub fn conv_im2col(
    input: &Tensor4<f32>,
    filters: &Tensor4<f32>,
    desc: &ConvDesc,
) -> Result<Tensor4<f32>, ConvError> {
    check_shapes(input, filters, desc)?;
    let (oh, ow) = (desc.out_h(), desc.out_w());
    let k2 = desc.ksz * desc.ksz;
    let gemm_k = desc.in_ch * k2;
    let gemm_n = oh * ow;
    let mut cols = vec![0.0f32; gemm_k * gemm_n];
    let mut out = Tensor4::<f32>::zeros(desc.batch, desc.out_ch, oh, ow);
    // Filters are already contiguous in (K, C·r²) layout.
    let filt_mat = filters.data();
    for n in 0..desc.batch {
        im2col_image(input, n, desc, &mut cols);
        // C (K × OH·OW) lands directly in the output tensor: plane
        // (n, k) is contiguous and of length OH·OW.
        let start = out.offset(n, 0, 0, 0);
        let end = start + desc.out_ch * gemm_n;
        sgemm(
            filt_mat,
            &cols,
            &mut out.data_mut()[start..end],
            desc.out_ch,
            gemm_k,
            gemm_n,
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::conv_direct_f32;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_close(a: &Tensor4<f32>, b: &Tensor4<f32>) {
        assert_eq!(a.dims(), b.dims());
        for i in 0..a.len() {
            let (x, y) = (a.data()[i], b.data()[i]);
            assert!((x - y).abs() <= 1e-3 * (1.0 + y.abs()), "{x} vs {y} at {i}");
        }
    }

    #[test]
    fn matches_direct_same_padding() {
        let desc = ConvDesc::new(3, 1, 1, 4, 2, 6, 6, 3);
        let mut rng = StdRng::seed_from_u64(5);
        let input = Tensor4::<f32>::random(2, 3, 6, 6, -1.0, 1.0, &mut rng);
        let filt = Tensor4::<f32>::random(4, 3, 3, 3, -1.0, 1.0, &mut rng);
        assert_close(
            &conv_im2col(&input, &filt, &desc).unwrap(),
            &conv_direct_f32(&input, &filt, &desc).unwrap(),
        );
    }

    #[test]
    fn matches_direct_strided_no_pad() {
        let desc = ConvDesc::new(5, 2, 0, 3, 1, 11, 9, 2);
        let mut rng = StdRng::seed_from_u64(6);
        let input = Tensor4::<f32>::random(1, 2, 11, 9, -1.0, 1.0, &mut rng);
        let filt = Tensor4::<f32>::random(3, 2, 5, 5, -1.0, 1.0, &mut rng);
        assert_close(
            &conv_im2col(&input, &filt, &desc).unwrap(),
            &conv_direct_f32(&input, &filt, &desc).unwrap(),
        );
    }

    #[test]
    fn matches_direct_1x1() {
        let desc = ConvDesc::new(1, 1, 0, 8, 1, 4, 4, 16);
        let mut rng = StdRng::seed_from_u64(7);
        let input = Tensor4::<f32>::random(1, 16, 4, 4, -1.0, 1.0, &mut rng);
        let filt = Tensor4::<f32>::random(8, 16, 1, 1, -1.0, 1.0, &mut rng);
        assert_close(
            &conv_im2col(&input, &filt, &desc).unwrap(),
            &conv_direct_f32(&input, &filt, &desc).unwrap(),
        );
    }

    #[test]
    fn im2col_layout() {
        // 1 channel, 2×2 input, 2×2 kernel, no pad: single output,
        // columns are the flattened patch.
        let desc = ConvDesc::new(2, 1, 0, 1, 1, 2, 2, 1);
        let input = Tensor4::<f32>::from_fn(1, 1, 2, 2, |_, _, y, x| (y * 2 + x + 1) as f32);
        let mut cols = vec![0.0f32; 4];
        im2col_image(&input, 0, &desc, &mut cols);
        assert_eq!(cols, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn shape_mismatch_detected() {
        let desc = ConvDesc::new(3, 1, 1, 2, 1, 4, 4, 3);
        let input = Tensor4::<f32>::zeros(1, 2, 4, 4);
        let filt = Tensor4::<f32>::zeros(2, 3, 3, 3);
        assert!(conv_im2col(&input, &filt, &desc).is_err());
    }
}
