//! # wino-conv — the convolution engines
//!
//! CPU implementations of every convolution variant the paper's
//! system generates and compares:
//!
//! * [`conv_direct_f32`] / [`conv_direct_f64`] — sliding-window
//!   reference (FP64 is the accuracy ground truth of §4.1);
//! * [`conv_im2col`] — the "reshape as matrix multiplication" lowering
//!   of §2, backed by the blocked SGEMM of `wino-gemm`;
//! * [`conv_winograd`] — recipe-driven Winograd in both the
//!   **non-fused** (batched-SGEMM) and **fused** (tile-local) variants
//!   of §3.2.2, with output tile size `m` and symbolic-pipeline
//!   options as tuning parameters.
//!
//! The [`accuracy`] module reproduces the paper's error-measurement
//! protocol (Table 3, Figure 4); [`flops`] accounts Winograd work for
//! Figure 5d and the GPU cost model. The [`compiled`] module holds the
//! build-time-compiled SoA transform kernels both Winograd engines
//! dispatch to when SIMD is enabled (see `DESIGN.md` §5.9).

#![warn(missing_docs)]

pub mod accuracy;
pub mod compiled;
mod direct;
mod error;
pub mod fft;
pub mod flops;
mod im2col;
mod tiles;
mod winograd;
mod winograd1d;

pub use accuracy::{accuracy_probe_desc, conv_error_trial, measure_conv_error};
pub use direct::{conv_direct_f32, conv_direct_f64};
pub use error::ConvError;
pub use fft::conv_fft;
pub use flops::{winograd_flops, winograd_flops_baseline, winograd_tile_total, WinogradFlops};
pub use im2col::{conv_im2col, im2col_image};
pub use tiles::TileTransformer;
pub use winograd::{
    conv_winograd, conv_winograd_precomputed, conv_winograd_precomputed_level,
    conv_winograd_precomputed_rt, conv_winograd_rt, conv_winograd_with_recipes,
    conv_winograd_with_recipes_rt, PrecomputedFilters, WinogradConfig, WinogradVariant,
};
pub use winograd1d::{conv1d_direct, conv1d_winograd};
