//! Direct (sliding-window) convolution — the numerical reference.
//!
//! The FP64 variant is the ground truth the paper measures Winograd
//! accuracy against (§4.1); the FP32 variant is the "direct" baseline
//! engine. Note that, following every deep-learning framework (and the
//! paper's §2), "convolution" here is cross-correlation: the filter is
//! not flipped.

use wino_tensor::{ConvDesc, Tensor4};

use crate::error::ConvError;

/// Validates that `input` (N,C,H,W) and `filters` (K,C,r,r) match the
/// descriptor.
pub(crate) fn check_shapes<T: Copy + Default>(
    input: &Tensor4<T>,
    filters: &Tensor4<T>,
    desc: &ConvDesc,
) -> Result<(), ConvError> {
    if input.dims() != (desc.batch, desc.in_ch, desc.in_h, desc.in_w) {
        return Err(ConvError::Shape(format!(
            "input dims {:?} do not match descriptor {desc}",
            input.dims()
        )));
    }
    if filters.dims() != (desc.out_ch, desc.in_ch, desc.ksz, desc.ksz) {
        return Err(ConvError::Shape(format!(
            "filter dims {:?} do not match descriptor {desc}",
            filters.dims()
        )));
    }
    Ok(())
}

macro_rules! direct_impl {
    ($name:ident, $t:ty, $doc:expr) => {
        #[doc = $doc]
        ///
        /// # Errors
        /// [`ConvError::Shape`] when tensor dims disagree with `desc`.
        pub fn $name(
            input: &Tensor4<$t>,
            filters: &Tensor4<$t>,
            desc: &ConvDesc,
        ) -> Result<Tensor4<$t>, ConvError> {
            check_shapes(input, filters, desc)?;
            let (oh, ow) = (desc.out_h(), desc.out_w());
            let mut out = Tensor4::<$t>::zeros(desc.batch, desc.out_ch, oh, ow);
            let (ih, iw) = (desc.in_h as isize, desc.in_w as isize);
            for n in 0..desc.batch {
                for k in 0..desc.out_ch {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let mut acc: $t = 0.0;
                            let base_y = (oy * desc.stride) as isize - desc.pad as isize;
                            let base_x = (ox * desc.stride) as isize - desc.pad as isize;
                            for c in 0..desc.in_ch {
                                for fy in 0..desc.ksz {
                                    let y = base_y + fy as isize;
                                    if y < 0 || y >= ih {
                                        continue;
                                    }
                                    for fx in 0..desc.ksz {
                                        let x = base_x + fx as isize;
                                        if x < 0 || x >= iw {
                                            continue;
                                        }
                                        acc += input[(n, c, y as usize, x as usize)]
                                            * filters[(k, c, fy, fx)];
                                    }
                                }
                            }
                            out[(n, k, oy, ox)] = acc;
                        }
                    }
                }
            }
            Ok(out)
        }
    };
}

direct_impl!(conv_direct_f32, f32, "Direct convolution in FP32.");
direct_impl!(
    conv_direct_f64,
    f64,
    "Direct convolution in FP64 (the accuracy reference)."
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_3x3_same_padding() {
        // 1×1×3×3 ramp input, single 3×3 filter picking the center.
        let desc = ConvDesc::new(3, 1, 1, 1, 1, 3, 3, 1);
        let input = Tensor4::<f32>::from_fn(1, 1, 3, 3, |_, _, y, x| (y * 3 + x) as f32);
        let mut filt = Tensor4::<f32>::zeros(1, 1, 3, 3);
        filt[(0, 0, 1, 1)] = 1.0;
        let out = conv_direct_f32(&input, &filt, &desc).unwrap();
        assert_eq!(out.dims(), (1, 1, 3, 3));
        for y in 0..3 {
            for x in 0..3 {
                assert_eq!(out[(0, 0, y, x)], input[(0, 0, y, x)]);
            }
        }
    }

    #[test]
    fn padding_contributes_zeros() {
        let desc = ConvDesc::new(3, 1, 1, 1, 1, 2, 2, 1);
        let input = Tensor4::<f32>::from_fn(1, 1, 2, 2, |_, _, _, _| 1.0);
        let filt = Tensor4::<f32>::from_fn(1, 1, 3, 3, |_, _, _, _| 1.0);
        let out = conv_direct_f32(&input, &filt, &desc).unwrap();
        // Corner output sees all four input pixels; every output does
        // here since the image is 2×2.
        assert_eq!(out[(0, 0, 0, 0)], 4.0);
    }

    #[test]
    fn stride_two_subsamples() {
        let desc = ConvDesc::new(1, 2, 0, 1, 1, 4, 4, 1);
        let input = Tensor4::<f32>::from_fn(1, 1, 4, 4, |_, _, y, x| (y * 4 + x) as f32);
        let filt = Tensor4::<f32>::from_fn(1, 1, 1, 1, |_, _, _, _| 1.0);
        let out = conv_direct_f32(&input, &filt, &desc).unwrap();
        assert_eq!(out.dims(), (1, 1, 2, 2));
        assert_eq!(out[(0, 0, 0, 0)], 0.0);
        assert_eq!(out[(0, 0, 0, 1)], 2.0);
        assert_eq!(out[(0, 0, 1, 0)], 8.0);
        assert_eq!(out[(0, 0, 1, 1)], 10.0);
    }

    #[test]
    fn channels_accumulate() {
        let desc = ConvDesc::new(1, 1, 0, 1, 1, 1, 1, 3);
        let input = Tensor4::<f32>::from_fn(1, 3, 1, 1, |_, c, _, _| (c + 1) as f32);
        let filt = Tensor4::<f32>::from_fn(1, 3, 1, 1, |_, _, _, _| 1.0);
        let out = conv_direct_f32(&input, &filt, &desc).unwrap();
        assert_eq!(out[(0, 0, 0, 0)], 6.0);
    }

    #[test]
    fn shape_mismatch_detected() {
        let desc = ConvDesc::new(3, 1, 1, 2, 1, 4, 4, 3);
        let input = Tensor4::<f32>::zeros(1, 3, 4, 5); // wrong W
        let filt = Tensor4::<f32>::zeros(2, 3, 3, 3);
        assert!(matches!(
            conv_direct_f32(&input, &filt, &desc),
            Err(ConvError::Shape(_))
        ));
        let input = Tensor4::<f32>::zeros(1, 3, 4, 4);
        let filt = Tensor4::<f32>::zeros(2, 2, 3, 3); // wrong C
        assert!(conv_direct_f32(&input, &filt, &desc).is_err());
    }

    #[test]
    fn f64_matches_f32_on_exact_values() {
        let desc = ConvDesc::new(3, 1, 1, 2, 2, 5, 5, 3);
        let input32 =
            Tensor4::<f32>::from_fn(2, 3, 5, 5, |n, c, y, x| (n + c + y + x) as f32 * 0.25);
        let filt32 =
            Tensor4::<f32>::from_fn(2, 3, 3, 3, |k, c, y, x| (k * 9 + c + y * x) as f32 * 0.125);
        let out32 = conv_direct_f32(&input32, &filt32, &desc).unwrap();
        let out64 = conv_direct_f64(&input32.to_f64(), &filt32.to_f64(), &desc).unwrap();
        for i in 0..out32.len() {
            assert!((out32.data()[i] as f64 - out64.data()[i]).abs() < 1e-3);
        }
    }
}
