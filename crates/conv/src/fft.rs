//! FFT-based convolution — the other fast-convolution family the paper
//! positions Winograd against (§5, after Mathieu et al. / Vasilache et
//! al.): transform to the frequency domain, multiply by the filter's
//! (conjugated) frequency response, transform back. Unlike Winograd it
//! works over complex numbers and only pays off for large filters or
//! few channels, which is exactly the trade-off this engine lets the
//! benchmarks exhibit.
//!
//! The FFT itself is a from-scratch iterative radix-2 Cooley-Tukey over
//! `f64` complex values (accuracy headroom for the f32 tensors).

use wino_tensor::{ConvDesc, Tensor4};

use crate::direct::check_shapes;
use crate::error::ConvError;

/// A complex number over f64.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Constructs `re + im·i`.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Complex multiplication.
    #[inline]
    #[allow(clippy::should_implement_trait)] // tiny internal helper, not worth an ops impl
    pub fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Complex {
        Complex::new(self.re, -self.im)
    }

    #[inline]
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }

    #[inline]
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

/// In-place iterative radix-2 FFT. `data.len()` must be a power of
/// two; `inverse` selects the inverse transform (including the `1/N`
/// normalization).
///
/// # Panics
/// If the length is not a power of two — an internal-contract
/// violation, since all planning in this module rounds up first.
pub fn fft_inplace(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length {n} is not a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterfly stages.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::new(ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = data[start + k + len / 2].mul(w);
                data[start + k] = u.add(v);
                data[start + k + len / 2] = u.sub(v);
                w = w.mul(wlen);
            }
        }
        len <<= 1;
    }
    if inverse {
        let inv_n = 1.0 / n as f64;
        for v in data.iter_mut() {
            v.re *= inv_n;
            v.im *= inv_n;
        }
    }
}

/// In-place 2-D FFT on a row-major `rows × cols` buffer (both
/// power-of-two).
pub fn fft2d_inplace(data: &mut [Complex], rows: usize, cols: usize, inverse: bool) {
    debug_assert_eq!(data.len(), rows * cols);
    // Rows.
    for r in 0..rows {
        fft_inplace(&mut data[r * cols..(r + 1) * cols], inverse);
    }
    // Columns (gather/scatter through a scratch column).
    let mut col = vec![Complex::default(); rows];
    for c in 0..cols {
        for r in 0..rows {
            col[r] = data[r * cols + c];
        }
        fft_inplace(&mut col, inverse);
        for r in 0..rows {
            data[r * cols + c] = col[r];
        }
    }
}

/// Plans the padded frequency-domain extent for a convolution: the
/// linear-correlation support `in + r − 1` rounded up to a power of
/// two per axis.
fn fft_extents(desc: &ConvDesc) -> (usize, usize) {
    let ph = (desc.in_h + 2 * desc.pad + desc.ksz - 1).next_power_of_two();
    let pw = (desc.in_w + 2 * desc.pad + desc.ksz - 1).next_power_of_two();
    (ph, pw)
}

/// FFT-based convolution (cross-correlation, like every engine here).
///
/// Works for any stride/padding: the full unit-stride correlation map
/// is computed in the frequency domain and then subsampled.
///
/// # Errors
/// [`ConvError::Shape`] when tensor dims disagree with `desc`.
pub fn conv_fft(
    input: &Tensor4<f32>,
    filters: &Tensor4<f32>,
    desc: &ConvDesc,
) -> Result<Tensor4<f32>, ConvError> {
    check_shapes(input, filters, desc)?;
    let (fh, fw) = fft_extents(desc);
    let plane = fh * fw;
    let r = desc.ksz;

    // Frequency response of every (k, c) filter, conjugated once so
    // the per-image loop is a pure multiply-accumulate.
    let mut filt_freq = vec![Complex::default(); desc.out_ch * desc.in_ch * plane];
    let mut buf = vec![Complex::default(); plane];
    for k in 0..desc.out_ch {
        for c in 0..desc.in_ch {
            buf.iter_mut().for_each(|v| *v = Complex::default());
            let fp = filters.plane(k, c);
            for y in 0..r {
                for x in 0..r {
                    buf[y * fw + x] = Complex::new(fp[y * r + x] as f64, 0.0);
                }
            }
            fft2d_inplace(&mut buf, fh, fw, false);
            let base = (k * desc.in_ch + c) * plane;
            for (dst, src) in filt_freq[base..base + plane].iter_mut().zip(&buf) {
                *dst = src.conj();
            }
        }
    }

    let (oh, ow) = (desc.out_h(), desc.out_w());
    let mut out = Tensor4::<f32>::zeros(desc.batch, desc.out_ch, oh, ow);
    let padded = input.pad_spatial(desc.pad);
    let (ih, iw) = (padded.h(), padded.w());
    let mut in_freq = vec![Complex::default(); desc.in_ch * plane];
    let mut acc = vec![Complex::default(); plane];

    for n in 0..desc.batch {
        // Forward-transform every input channel once per image.
        for c in 0..desc.in_ch {
            let dst = &mut in_freq[c * plane..(c + 1) * plane];
            dst.iter_mut().for_each(|v| *v = Complex::default());
            let ip = padded.plane(n, c);
            for y in 0..ih {
                for x in 0..iw {
                    dst[y * fw + x] = Complex::new(ip[y * iw + x] as f64, 0.0);
                }
            }
            fft2d_inplace(dst, fh, fw, false);
        }
        // One inverse transform per output channel.
        for k in 0..desc.out_ch {
            acc.iter_mut().for_each(|v| *v = Complex::default());
            for c in 0..desc.in_ch {
                let f = &filt_freq[(k * desc.in_ch + c) * plane..][..plane];
                let x = &in_freq[c * plane..(c + 1) * plane];
                for i in 0..plane {
                    acc[i] = acc[i].add(x[i].mul(f[i]));
                }
            }
            fft2d_inplace(&mut acc, fh, fw, true);
            // Correlation with conj(filter) leaves the valid map at
            // offset 0; subsample by the stride.
            let op = out.plane_mut(n, k);
            for oy in 0..oh {
                for ox in 0..ow {
                    op[oy * ow + ox] = acc[(oy * desc.stride) * fw + ox * desc.stride].re as f32;
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::conv_direct_f32;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_close(a: &Tensor4<f32>, b: &Tensor4<f32>, tol: f32) {
        assert_eq!(a.dims(), b.dims());
        for i in 0..a.len() {
            let (x, y) = (a.data()[i], b.data()[i]);
            assert!((x - y).abs() <= tol * (1.0 + y.abs()), "{x} vs {y} at {i}");
        }
    }

    fn random_case(desc: &ConvDesc, seed: u64) -> (Tensor4<f32>, Tensor4<f32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        (
            Tensor4::random(
                desc.batch, desc.in_ch, desc.in_h, desc.in_w, -1.0, 1.0, &mut rng,
            ),
            Tensor4::random(
                desc.out_ch,
                desc.in_ch,
                desc.ksz,
                desc.ksz,
                -1.0,
                1.0,
                &mut rng,
            ),
        )
    }

    #[test]
    fn fft_round_trip() {
        let mut rng = StdRng::seed_from_u64(1);
        use rand::Rng;
        let orig: Vec<Complex> = (0..64)
            .map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let mut data = orig.clone();
        fft_inplace(&mut data, false);
        fft_inplace(&mut data, true);
        for (a, b) in data.iter().zip(&orig) {
            assert!((a.re - b.re).abs() < 1e-12 && (a.im - b.im).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Complex::default(); 16];
        data[0] = Complex::new(1.0, 0.0);
        fft_inplace(&mut data, false);
        for v in &data {
            assert!((v.re - 1.0).abs() < 1e-12 && v.im.abs() < 1e-12);
        }
    }

    #[test]
    fn fft2d_round_trip() {
        let mut rng = StdRng::seed_from_u64(2);
        use rand::Rng;
        let orig: Vec<Complex> = (0..8 * 16)
            .map(|_| Complex::new(rng.gen_range(-1.0..1.0), 0.0))
            .collect();
        let mut data = orig.clone();
        fft2d_inplace(&mut data, 8, 16, false);
        fft2d_inplace(&mut data, 8, 16, true);
        for (a, b) in data.iter().zip(&orig) {
            assert!((a.re - b.re).abs() < 1e-10);
        }
    }

    #[test]
    fn matches_direct_same_padding() {
        let desc = ConvDesc::new(3, 1, 1, 4, 2, 9, 9, 3);
        let (input, filt) = random_case(&desc, 3);
        assert_close(
            &conv_fft(&input, &filt, &desc).unwrap(),
            &conv_direct_f32(&input, &filt, &desc).unwrap(),
            1e-4,
        );
    }

    #[test]
    fn matches_direct_large_filter() {
        // 7×7: the regime where FFT is competitive.
        let desc = ConvDesc::new(7, 1, 3, 3, 1, 12, 12, 2);
        let (input, filt) = random_case(&desc, 4);
        assert_close(
            &conv_fft(&input, &filt, &desc).unwrap(),
            &conv_direct_f32(&input, &filt, &desc).unwrap(),
            1e-4,
        );
    }

    #[test]
    fn matches_direct_strided() {
        let desc = ConvDesc::new(5, 2, 2, 4, 1, 11, 11, 2);
        let (input, filt) = random_case(&desc, 5);
        assert_close(
            &conv_fft(&input, &filt, &desc).unwrap(),
            &conv_direct_f32(&input, &filt, &desc).unwrap(),
            1e-4,
        );
    }

    #[test]
    fn matches_direct_no_padding_1x1() {
        let desc = ConvDesc::new(1, 1, 0, 2, 1, 4, 4, 3);
        let (input, filt) = random_case(&desc, 6);
        assert_close(
            &conv_fft(&input, &filt, &desc).unwrap(),
            &conv_direct_f32(&input, &filt, &desc).unwrap(),
            1e-4,
        );
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn fft_rejects_bad_length() {
        let mut data = vec![Complex::default(); 6];
        fft_inplace(&mut data, false);
    }
}
