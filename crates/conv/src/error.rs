//! Error type for the convolution engines.

use std::fmt;

use wino_transform::TransformError;

/// Errors produced by the convolution engines.
#[derive(Clone, Debug, PartialEq)]
pub enum ConvError {
    /// Transform generation failed (unsupported α, bad spec, …).
    Transform(TransformError),
    /// Tensor shapes disagree with the convolution descriptor.
    Shape(String),
    /// The requested engine cannot run this convolution (e.g. Winograd
    /// with stride ≠ 1).
    Unsupported(String),
}

impl fmt::Display for ConvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConvError::Transform(e) => write!(f, "transform error: {e}"),
            ConvError::Shape(msg) => write!(f, "shape error: {msg}"),
            ConvError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
        }
    }
}

impl std::error::Error for ConvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConvError::Transform(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TransformError> for ConvError {
    fn from(e: TransformError) -> Self {
        ConvError::Transform(e)
    }
}
