//! Winograd FLOP accounting for whole convolutions.
//!
//! Drives Figure 5d ("whole Winograd" reduction) and feeds the GPU
//! cost model: the per-tile recipe op counts from `wino-transform`
//! scaled by how many times each stage runs for a full convolution.

use wino_symbolic::OpCount;
use wino_tensor::{tile_counts, ConvDesc};
use wino_transform::{BaselineOps, TransformRecipes};

use crate::error::ConvError;

/// FLOP breakdown of a full Winograd convolution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WinogradFlops {
    /// Filter-transform stage (runs per `(k, c)` pair).
    pub filter_transform: u64,
    /// Input-transform stage (runs per `(tile, c)` pair).
    pub input_transform: u64,
    /// Multiplication stage (α² GEMMs of K×C·C×P).
    pub multiplication: u64,
    /// Output-transform stage (runs per `(k, tile)` pair).
    pub output_transform: u64,
}

impl WinogradFlops {
    /// Total FLOPs.
    pub fn total(&self) -> u64 {
        self.filter_transform + self.input_transform + self.multiplication + self.output_transform
    }

    /// Transform-only FLOPs.
    pub fn transforms(&self) -> u64 {
        self.total() - self.multiplication
    }
}

fn ops_flops(c: OpCount) -> u64 {
    // FLOP convention: an FMA is 2 FLOPs (mul + add), matching the
    // descriptor-level conv FLOP counts.
    c.total_unfused() as u64
}

/// Per-convolution tile count `P = N·⌈H/m⌉·⌈W/m⌉` (§2.1).
pub fn winograd_tile_total(desc: &ConvDesc, m: usize) -> u64 {
    let (th, tw) = tile_counts(desc.out_h(), desc.out_w(), m);
    (desc.batch * th * tw) as u64
}

/// FLOPs of a Winograd convolution executed with the given recipes.
///
/// # Errors
/// [`ConvError::Shape`] if the recipe filter size disagrees with the
/// descriptor.
pub fn winograd_flops(
    desc: &ConvDesc,
    recipes: &TransformRecipes,
) -> Result<WinogradFlops, ConvError> {
    if recipes.spec.r != desc.ksz {
        return Err(ConvError::Shape(format!(
            "recipes are for r = {} but descriptor has ksz = {}",
            recipes.spec.r, desc.ksz
        )));
    }
    let spec = recipes.spec;
    let alpha2 = (spec.alpha() * spec.alpha()) as u64;
    let p = winograd_tile_total(desc, spec.m);
    let (k, c) = (desc.out_ch as u64, desc.in_ch as u64);
    Ok(WinogradFlops {
        filter_transform: k * c * ops_flops(recipes.filter_transform_ops_2d()),
        input_transform: p * c * ops_flops(recipes.input_transform_ops_2d()),
        multiplication: alpha2 * 2 * k * c * p,
        output_transform: k * p * ops_flops(recipes.output_transform_ops_2d()),
    })
}

/// FLOPs of the same convolution with *naive matrix-multiplication*
/// transforms — the paper's baseline.
pub fn winograd_flops_baseline(desc: &ConvDesc, m: usize) -> Result<WinogradFlops, ConvError> {
    let spec = wino_transform::WinogradSpec::new(m, desc.ksz)?;
    let base = BaselineOps::for_spec(spec);
    let alpha2 = (spec.alpha() * spec.alpha()) as u64;
    let p = winograd_tile_total(desc, m);
    let (k, c) = (desc.out_ch as u64, desc.in_ch as u64);
    Ok(WinogradFlops {
        filter_transform: k * c * ops_flops(base.filter),
        input_transform: p * c * ops_flops(base.input),
        multiplication: alpha2 * 2 * k * c * p,
        output_transform: k * p * ops_flops(base.output),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_symbolic::RecipeOptions;
    use wino_transform::WinogradSpec;

    fn recipes(m: usize, r: usize) -> TransformRecipes {
        TransformRecipes::generate(WinogradSpec::new(m, r).unwrap(), RecipeOptions::optimized())
            .unwrap()
    }

    #[test]
    fn winograd_beats_direct_on_multiplication_stage() {
        // 3×3 conv, F(6,3): Winograd multiplication FLOPs must be well
        // below direct-conv FLOPs (the whole point of the algorithm).
        let desc = ConvDesc::new(3, 1, 1, 64, 1, 24, 24, 32);
        let w = winograd_flops(&desc, &recipes(6, 3)).unwrap();
        assert!(
            w.multiplication < desc.flops() / 2,
            "mult {} vs direct {}",
            w.multiplication,
            desc.flops()
        );
    }

    #[test]
    fn optimized_transforms_cheaper_than_baseline() {
        let desc = ConvDesc::new(3, 1, 1, 64, 1, 24, 24, 32);
        let opt = winograd_flops(&desc, &recipes(6, 3)).unwrap();
        let base = winograd_flops_baseline(&desc, 6).unwrap();
        assert!(opt.transforms() < base.transforms());
        assert_eq!(opt.multiplication, base.multiplication);
    }

    #[test]
    fn tile_total_counts_batches() {
        let desc = ConvDesc::new(3, 1, 1, 8, 5, 14, 14, 8);
        // 14×14 output, m = 6 → 3×3 tiles per image × 5 images.
        assert_eq!(winograd_tile_total(&desc, 6), 45);
    }

    #[test]
    fn filter_size_mismatch_rejected() {
        let desc = ConvDesc::new(5, 1, 2, 8, 1, 14, 14, 8);
        assert!(winograd_flops(&desc, &recipes(2, 3)).is_err());
    }

    #[test]
    fn totals_add_up() {
        let desc = ConvDesc::new(3, 1, 1, 8, 1, 12, 12, 4);
        let w = winograd_flops(&desc, &recipes(4, 3)).unwrap();
        assert_eq!(
            w.total(),
            w.filter_transform + w.input_transform + w.multiplication + w.output_transform
        );
        assert_eq!(w.transforms(), w.total() - w.multiplication);
    }
}
