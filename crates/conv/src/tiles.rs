//! Two-pass 2-D tile transformation driven by a 1-D recipe.
//!
//! A 2-D Winograd transform `T · X · Tᵀ` is two applications of the
//! same 1-D recipe: once per column of `X`, then once per row of the
//! intermediate (the paper's column-/row-wise index representation,
//! §3.1.2 step 2).

use wino_symbolic::{CompiledRecipe, Recipe};

/// Applies a compiled 1-D recipe along both axes of a square tile.
/// Owns all scratch buffers so tile loops allocate nothing.
pub struct TileTransformer {
    recipe: CompiledRecipe<f32>,
    /// Input extent per 1-D application.
    q: usize,
    /// Output extent per 1-D application.
    p: usize,
    mid: Vec<f32>,
    vec_in: Vec<f32>,
    vec_out: Vec<f32>,
    scratch: Vec<f32>,
}

impl TileTransformer {
    /// Compiles `recipe` (a `q → p` linear map) for f32 execution.
    pub fn new(recipe: &Recipe) -> Self {
        let compiled = recipe.compile::<f32>();
        let (q, p) = (recipe.n_in, recipe.n_out);
        TileTransformer {
            scratch: vec![0.0; compiled.scratch_len()],
            recipe: compiled,
            q,
            p,
            mid: vec![0.0; p * q],
            vec_in: vec![0.0; q],
            vec_out: vec![0.0; p],
        }
    }

    /// Input tile side length.
    pub fn input_size(&self) -> usize {
        self.q
    }

    /// Output tile side length.
    pub fn output_size(&self) -> usize {
        self.p
    }

    /// Transforms the `q×q` tile `input` into the `p×p` tile `out`
    /// (both row-major).
    pub fn transform(&mut self, input: &[f32], out: &mut [f32]) {
        let (q, p) = (self.q, self.p);
        debug_assert!(input.len() >= q * q);
        debug_assert!(out.len() >= p * p);
        // Pass 1: columns of the input.
        for j in 0..q {
            for i in 0..q {
                self.vec_in[i] = input[i * q + j];
            }
            self.recipe
                .run(&self.vec_in, &mut self.vec_out, &mut self.scratch);
            for i in 0..p {
                self.mid[i * q + j] = self.vec_out[i];
            }
        }
        // Pass 2: rows of the intermediate.
        for i in 0..p {
            self.vec_in[..q].copy_from_slice(&self.mid[i * q..i * q + q]);
            self.recipe
                .run(&self.vec_in, &mut self.vec_out, &mut self.scratch);
            out[i * p..i * p + p].copy_from_slice(&self.vec_out[..p]);
        }
        // WINO_FAULT hook (transform-output site): one relaxed load
        // when disarmed.
        wino_probe::fault::inject_f32(wino_probe::fault::Site::Transform, &mut out[..p * p]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_symbolic::{generate_recipe, RecipeOptions};
    use wino_transform::{table3_points, toom_cook_matrices, WinogradSpec};

    #[test]
    fn two_pass_equals_matrix_sandwich() {
        let spec = WinogradSpec::new(2, 3).unwrap();
        let mats = toom_cook_matrices(spec, &table3_points(4).unwrap()).unwrap();
        let recipe = generate_recipe(&mats.b_t, &RecipeOptions::optimized());
        let mut tt = TileTransformer::new(&recipe);
        assert_eq!(tt.input_size(), 4);
        assert_eq!(tt.output_size(), 4);

        let tile: Vec<f32> = (0..16).map(|k| k as f32 * 0.25 - 2.0).collect();
        let mut out = vec![0.0f32; 16];
        tt.transform(&tile, &mut out);

        // Reference: Bᵀ d B in f64 through the exact matrices.
        let bt = mats.b_t.to_f64_vec();
        let d: Vec<f64> = tile.iter().map(|&v| v as f64).collect();
        let mut mid = [0.0f64; 16];
        for i in 0..4 {
            for j in 0..4 {
                mid[i * 4 + j] = (0..4).map(|k| bt[i * 4 + k] * d[k * 4 + j]).sum();
            }
        }
        let mut expect = vec![0.0f64; 16];
        for i in 0..4 {
            for j in 0..4 {
                expect[i * 4 + j] = (0..4).map(|k| mid[i * 4 + k] * bt[j * 4 + k]).sum();
            }
        }
        for (g, e) in out.iter().zip(&expect) {
            assert!((*g as f64 - e).abs() < 1e-4, "{g} vs {e}");
        }
    }

    #[test]
    fn rectangular_transform_shapes() {
        // Filter transform: r → α.
        let spec = WinogradSpec::new(4, 3).unwrap();
        let mats = toom_cook_matrices(spec, &table3_points(6).unwrap()).unwrap();
        let recipe = generate_recipe(&mats.g, &RecipeOptions::optimized());
        let mut tt = TileTransformer::new(&recipe);
        assert_eq!(tt.input_size(), 3);
        assert_eq!(tt.output_size(), 6);
        let g: Vec<f32> = (0..9).map(|k| (k as f32 - 4.0) * 0.1).collect();
        let mut u = vec![0.0f32; 36];
        tt.transform(&g, &mut u);
        // Spot-check against the exact 2-D product.
        let exact = {
            use wino_num::{RatMat, Rational};
            let gm = RatMat::from_fn(3, 3, |i, j| Rational::from_frac((i * 3 + j) as i64 - 4, 10));
            mats.g
                .matmul(&gm)
                .unwrap()
                .matmul(&mats.g.transpose())
                .unwrap()
        };
        for i in 0..6 {
            for j in 0..6 {
                let e = exact[(i, j)].to_f64();
                assert!((u[i * 6 + j] as f64 - e).abs() < 1e-5);
            }
        }
    }
}
