//! 1-D Winograd convolution — the algorithm in its original FIR-filter
//! form (§2.1 of the paper: `F(m, r)` computes m outputs of an r-tap
//! filter with m + r − 1 multiplications). Useful for sequence data
//! and as the simplest possible demonstration of the recipes.

use wino_symbolic::{CompiledRecipe, RecipeOptions};
use wino_transform::{recipe_db, WinogradSpec};

use crate::error::ConvError;

/// Direct 1-D valid correlation: `y[k] = Σ_j x[k+j]·h[j]`.
pub fn conv1d_direct(input: &[f32], filter: &[f32]) -> Vec<f32> {
    if input.len() < filter.len() || filter.is_empty() {
        return Vec::new();
    }
    let out_len = input.len() - filter.len() + 1;
    (0..out_len)
        .map(|k| {
            filter
                .iter()
                .enumerate()
                .map(|(j, &h)| input[k + j] * h)
                .sum()
        })
        .collect()
}

/// 1-D Winograd valid correlation with output tile size `m`.
///
/// The signal is cut into overlapping α-element tiles with stride `m`;
/// each tile runs the three recipes: `y = Aᵀ[(G·h) ⊙ (Bᵀ·x)]`.
///
/// # Errors
/// Propagates unsupported `F(m, r)` configurations.
pub fn conv1d_winograd(input: &[f32], filter: &[f32], m: usize) -> Result<Vec<f32>, ConvError> {
    if input.len() < filter.len() || filter.is_empty() {
        return Ok(Vec::new());
    }
    let r = filter.len();
    let spec = WinogradSpec::new(m, r)?;
    let alpha = spec.alpha();
    let recipes = recipe_db().get(spec, RecipeOptions::optimized())?;

    let filter_rc: CompiledRecipe<f32> = recipes.filter.compile();
    let input_rc: CompiledRecipe<f32> = recipes.input.compile();
    let output_rc: CompiledRecipe<f32> = recipes.output.compile();
    let scratch_len = filter_rc
        .scratch_len()
        .max(input_rc.scratch_len())
        .max(output_rc.scratch_len());
    let mut scratch = vec![0.0f32; scratch_len];

    // Filter transform once: u = G·h.
    let mut u = vec![0.0f32; alpha];
    filter_rc.run(filter, &mut u, &mut scratch);

    let out_len = input.len() - r + 1;
    let tiles = out_len.div_ceil(m);
    let mut out = vec![0.0f32; out_len];
    let mut x_tile = vec![0.0f32; alpha];
    let mut v = vec![0.0f32; alpha];
    let mut prod = vec![0.0f32; alpha];
    let mut y = vec![0.0f32; m];
    for t in 0..tiles {
        let start = t * m;
        // Gather the tile, zero-padding past the end.
        for (i, slot) in x_tile.iter_mut().enumerate() {
            *slot = input.get(start + i).copied().unwrap_or(0.0);
        }
        input_rc.run(&x_tile, &mut v, &mut scratch);
        for i in 0..alpha {
            prod[i] = u[i] * v[i];
        }
        output_rc.run(&prod, &mut y, &mut scratch);
        let take = m.min(out_len - start);
        out[start..start + take].copy_from_slice(&y[..take]);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn assert_close(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() <= 1e-4 * (1.0 + y.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn paper_equations_f23() {
        // §2.1's worked example: d = (d0..d3), g = (g0..g2).
        let d = [1.0f32, 2.0, 3.0, 4.0];
        let g = [0.5f32, -1.0, 0.25];
        let wino = conv1d_winograd(&d, &g, 2).unwrap();
        let direct = conv1d_direct(&d, &g);
        assert_eq!(direct.len(), 2);
        assert_close(&wino, &direct);
    }

    #[test]
    fn random_signals_all_specs() {
        let mut rng = StdRng::seed_from_u64(5);
        for r in [2usize, 3, 5, 7] {
            for m in 2..=6usize {
                if !(4..=16).contains(&(m + r - 1)) {
                    continue;
                }
                let input: Vec<f32> = (0..64).map(|_| rng.gen_range(-1.0..1.0)).collect();
                let filter: Vec<f32> = (0..r).map(|_| rng.gen_range(-1.0..1.0)).collect();
                let wino = conv1d_winograd(&input, &filter, m)
                    .unwrap_or_else(|e| panic!("F({m},{r}): {e}"));
                assert_close(&wino, &conv1d_direct(&input, &filter));
            }
        }
    }

    #[test]
    fn ragged_tail_handled() {
        // out_len = 7 with m = 3: last tile is partial.
        let mut rng = StdRng::seed_from_u64(6);
        let input: Vec<f32> = (0..9).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let filter = [0.3f32, -0.7, 1.1];
        let wino = conv1d_winograd(&input, &filter, 3).unwrap();
        assert_close(&wino, &conv1d_direct(&input, &filter));
    }

    #[test]
    fn degenerate_inputs() {
        assert!(conv1d_winograd(&[1.0], &[1.0, 2.0], 2).unwrap().is_empty());
        assert!(conv1d_direct(&[1.0], &[1.0, 2.0]).is_empty());
        assert!(conv1d_direct(&[], &[]).is_empty());
    }

    #[test]
    fn multiplication_count_is_minimal() {
        // The entire point of §2.1: F(2,3) uses 4 multiplies per tile.
        let spec = WinogradSpec::new(2, 3).unwrap();
        assert_eq!(spec.multiplications_1d(), 4);
        // The element-wise product in conv1d_winograd is exactly α
        // multiplies per tile; the transforms are multiply-free for
        // F(2,3)'s input side.
        let recipes = recipe_db().get(spec, RecipeOptions::optimized()).unwrap();
        assert_eq!(
            recipes.input.op_count().mul + recipes.input.op_count().fma,
            0
        );
    }
}
