//! Static index analysis of the blocked-GEMM packing and tiling.
//!
//! `wino-gemm` exports its loop nest as data ([`wino_gemm::dim_blocks`],
//! [`wino_gemm::col_panel`], [`wino_gemm::micro_tiles`], the pack
//! models) and `sgemm_blocked` *consumes those descriptors*, so the
//! schedule this module reasons about is the schedule that executes —
//! by construction, not by transcription. Over that data the analysis
//! proves, for a grid of problem shapes × blocking configs × both SIMD
//! dispatch levels:
//!
//! - **Coverage:** every `(i, j)` of `C` is written exactly once per
//!   k-block — no element missed (a wrong result) and none touched
//!   twice (a data race under panel parallelism).
//! - **Disjointness:** column panels partition `[0, n)`, so the
//!   per-panel tasks' write sets never intersect and the
//!   `DisjointSlice` windows in the micro-kernels are sound.
//! - **In-bounds:** packed buffer lengths fit the allocated
//!   capacities, every micro-tile's A/B sliver lies inside its pack
//!   buffer, and every `C` row segment stays inside both the matrix
//!   and its task's column panel — including every ragged remainder
//!   combination (`m % mr`, `n % nr`, tail blocks of `mc`/`kc`/`nc`).
//!
//! The reasoning is interval/affine arithmetic over loop bounds: all
//! quantities are affine in the block descriptors, so checking every
//! descriptor (there are finitely many per shape) *is* the proof for
//! that shape. The model-vs-implementation gap for the packing loops —
//! `pack_a`/`pack_b` are hand-written while the analysis walks
//! [`wino_gemm::pack_a_model`]/[`wino_gemm::pack_b_model`] — is closed
//! by [`cross_check_packing`], which runs the real loops on
//! sentinel-valued matrices and compares slot-for-slot against the
//! model.

use std::fmt;

use wino_gemm::{
    col_panel, dim_blocks, micro_tiles, pack_a, pack_a_model, pack_b, pack_b_model,
    pack_capacities, packed_a_len, packed_b_len, tile_extents, GemmConfig, MicroTile, PackSlot,
    SimdLevel,
};

/// One defect found by the index analysis.
#[derive(Clone, Debug)]
pub struct IndexIssue {
    /// Which configuration/loop the defect is in.
    pub context: String,
    /// The violated property, with concrete indices.
    pub detail: String,
}

impl fmt::Display for IndexIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.context, self.detail)
    }
}

/// The analysis outcome for one `(shape, config, level)` point.
#[derive(Clone, Debug)]
pub struct IndexCheck {
    /// Human label, e.g. `gemm 65x129x257 cfg(64,128,256) avx2`.
    pub label: String,
    /// All defects found (empty = proven clean).
    pub issues: Vec<IndexIssue>,
}

impl IndexCheck {
    /// Whether this point proved clean.
    pub fn passed(&self) -> bool {
        self.issues.is_empty()
    }
}

/// Problem shapes the sweep proves: exact block multiples, primes,
/// sub-micro-tile extents, singletons, and shapes straddling every
/// cache-block boundary.
const SHAPES: &[(usize, usize, usize)] = &[
    (1, 1, 1),
    (4, 4, 4),
    (5, 3, 7),
    (6, 1, 8),
    (13, 17, 19),
    (37, 53, 41),
    (64, 128, 256),
    (65, 129, 257),
    (3, 2, 131),
];

/// Blocking configs the sweep proves: the default, a tiny config that
/// maximizes block-count edge cases, and an awkward config whose steps
/// divide nothing evenly (every tail is ragged).
fn sweep_configs() -> Vec<GemmConfig> {
    vec![
        GemmConfig::default(),
        GemmConfig {
            mc: 8,
            kc: 8,
            nc: 16,
        },
        GemmConfig {
            mc: 5,
            kc: 3,
            nc: 7,
        },
    ]
}

fn issue(context: &str, detail: impl Into<String>) -> IndexIssue {
    IndexIssue {
        context: context.to_string(),
        detail: detail.into(),
    }
}

/// Checks that `blocks` partitions `[0, total)` in order with only the
/// final block ragged. The blocks must come from the exported
/// iterators; this re-derives the partition property instead of
/// trusting it.
fn check_partition(
    ctx: &str,
    dim: &str,
    blocks: &[wino_gemm::DimBlock],
    total: usize,
    step: usize,
    issues: &mut Vec<IndexIssue>,
) {
    let mut expect_start = 0usize;
    for (idx, b) in blocks.iter().enumerate() {
        if b.start != expect_start {
            issues.push(issue(
                ctx,
                format!(
                    "{dim} block {idx} starts at {} (expected {expect_start})",
                    b.start
                ),
            ));
            return;
        }
        if b.len == 0 || b.len > step {
            issues.push(issue(
                ctx,
                format!(
                    "{dim} block {idx} has degenerate extent {} (step {step})",
                    b.len
                ),
            ));
            return;
        }
        if b.len < step && idx != blocks.len() - 1 {
            issues.push(issue(
                ctx,
                format!("{dim} block {idx} is ragged ({} < {step}) but not last — remainder handled early", b.len),
            ));
            return;
        }
        expect_start = b.end();
    }
    if expect_start != total {
        issues.push(issue(
            ctx,
            format!("{dim} blocks cover [0, {expect_start}), dimension is {total} — remainder unhandled"),
        ));
    }
}

/// Checks one macro-block's micro-tile schedule: coverage of the
/// `mb × nb` block exactly once, tiles inside the block, slivers
/// inside the pack buffers. Takes the tiles as a slice so negative
/// fixtures can feed a tampered schedule.
#[allow(clippy::too_many_arguments)]
fn check_micro_tiles(
    ctx: &str,
    tiles: &[MicroTile],
    mb: usize,
    nb: usize,
    kb: usize,
    mr: usize,
    nr: usize,
    issues: &mut Vec<IndexIssue>,
) {
    let a_len = packed_a_len(mb, kb, mr);
    let b_len = packed_b_len(kb, nb, nr);
    let mut cover = vec![0u32; mb * nb];
    for t in tiles {
        if t.rows == 0 || t.rows > mr || t.cols == 0 || t.cols > nr {
            issues.push(issue(
                ctx,
                format!(
                    "tile ({},{}) has degenerate extent {}x{}",
                    t.i, t.j, t.rows, t.cols
                ),
            ));
            return;
        }
        if t.i + t.rows > mb || t.j + t.cols > nb {
            issues.push(issue(
                ctx,
                format!(
                    "tile ({},{}) extent {}x{} escapes the {mb}x{nb} macro-block",
                    t.i, t.j, t.rows, t.cols
                ),
            ));
            return;
        }
        if t.a_off + kb * mr > a_len {
            issues.push(issue(
                ctx,
                format!(
                    "tile ({},{}) A sliver [{}, {}) escapes packed A of {a_len}",
                    t.i,
                    t.j,
                    t.a_off,
                    t.a_off + kb * mr
                ),
            ));
            return;
        }
        if t.b_off + kb * nr > b_len {
            issues.push(issue(
                ctx,
                format!(
                    "tile ({},{}) B sliver [{}, {}) escapes packed B of {b_len}",
                    t.i,
                    t.j,
                    t.b_off,
                    t.b_off + kb * nr
                ),
            ));
            return;
        }
        for r in 0..t.rows {
            for c in 0..t.cols {
                cover[(t.i + r) * nb + t.j + c] += 1;
            }
        }
    }
    for (pos, &count) in cover.iter().enumerate() {
        if count != 1 {
            let (i, j) = (pos / nb, pos % nb);
            issues.push(issue(
                ctx,
                format!("C tile element ({i},{j}) written {count} times (want exactly 1)"),
            ));
            return;
        }
    }
}

/// Proves the full schedule for one `(m, k, n)` × config × level
/// point. Every property is derived from the exported descriptors;
/// nothing about the shape is assumed beyond what the descriptors say.
pub fn check_schedule(
    m: usize,
    k: usize,
    n: usize,
    cfg: &GemmConfig,
    level: SimdLevel,
) -> IndexCheck {
    let (mr, nr) = tile_extents(level);
    let label = format!(
        "gemm {m}x{k}x{n} cfg({},{},{}) {}",
        cfg.mc,
        cfg.kc,
        cfg.nc,
        match level {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2 => "avx2",
        }
    );
    let mut issues = Vec::new();
    let ctx = label.clone();

    // Panel disjointness + partition of the n dimension. The panels
    // are what `parallel_for_chunks` hands to concurrent tasks, so
    // this is the data-race freedom argument for DisjointSlice.
    let panels: Vec<_> = (0..n.div_ceil(cfg.nc))
        .map(|p| col_panel(n, cfg.nc, p))
        .collect();
    check_partition(&ctx, "column-panel", &panels, n, cfg.nc, &mut issues);
    let kblocks: Vec<_> = dim_blocks(k, cfg.kc).collect();
    check_partition(&ctx, "k", &kblocks, k, cfg.kc, &mut issues);
    let mblocks: Vec<_> = dim_blocks(m, cfg.mc).collect();
    check_partition(&ctx, "m", &mblocks, m, cfg.mc, &mut issues);
    if !issues.is_empty() {
        return IndexCheck { label, issues };
    }

    let (a_cap, b_cap) = pack_capacities(cfg, mr, nr);
    // Per k-block coverage of all of C exactly once, across every
    // panel and row block — one pass proves both "no element missed"
    // and "no element written twice".
    let mut cover = vec![0u32; m * n];
    for jp in &panels {
        for kp in &kblocks {
            // Pack buffers must fit the per-task allocation.
            if packed_b_len(kp.len, jp.len, nr) > b_cap {
                issues.push(issue(
                    &ctx,
                    format!(
                        "packed B for k-block {} panel {} needs {} > capacity {b_cap}",
                        kp.start,
                        jp.start,
                        packed_b_len(kp.len, jp.len, nr)
                    ),
                ));
            }
            for ip in &mblocks {
                if packed_a_len(ip.len, kp.len, mr) > a_cap {
                    issues.push(issue(
                        &ctx,
                        format!(
                            "packed A for m-block {} k-block {} needs {} > capacity {a_cap}",
                            ip.start,
                            kp.start,
                            packed_a_len(ip.len, kp.len, mr)
                        ),
                    ));
                }
                let tiles: Vec<_> = micro_tiles(ip.len, jp.len, kp.len, mr, nr).collect();
                let mctx = format!("{ctx} macro({},{})", ip.start, jp.start);
                check_micro_tiles(&mctx, &tiles, ip.len, jp.len, kp.len, mr, nr, &mut issues);
                for t in &tiles {
                    // The C write window of this tile, in matrix
                    // coordinates: rows [ii+t.i, ii+t.i+rows), cols
                    // [jj+t.j, jj+t.j+cols). Three affine facts:
                    let (i0, j0) = (ip.start + t.i, jp.start + t.j);
                    // (1) inside C (the debug_assert in macro_kernel);
                    if (i0 + t.rows - 1) * n + j0 + t.cols > m * n {
                        issues.push(issue(
                            &mctx,
                            format!(
                                "tile C window rows {i0}..{} cols {j0}..{} escapes {m}x{n}",
                                i0 + t.rows,
                                j0 + t.cols
                            ),
                        ));
                    }
                    // (2) row segments never wrap into the next matrix
                    // row (segment end within the row's columns);
                    if j0 + t.cols > n {
                        issues.push(issue(
                            &mctx,
                            format!(
                                "tile row segment cols {j0}..{} wrap past n={n}",
                                j0 + t.cols
                            ),
                        ));
                    }
                    // (3) inside this task's column panel — the
                    // disjointness half of the DisjointSlice argument.
                    if j0 < jp.start || j0 + t.cols > jp.end() {
                        issues.push(issue(
                            &mctx,
                            format!(
                                "tile cols {j0}..{} escape panel [{}, {})",
                                j0 + t.cols,
                                jp.start,
                                jp.end()
                            ),
                        ));
                    }
                }
            }
            // Count coverage only for the first k-block: each k-block
            // repeats the identical (panel × m-block × tile) walk, so
            // one count proves all of them.
            if Some(kp) == kblocks.first() {
                for ip in &mblocks {
                    for t in micro_tiles(ip.len, jp.len, kp.len, mr, nr) {
                        for r in 0..t.rows {
                            for c in 0..t.cols {
                                cover[(ip.start + t.i + r) * n + jp.start + t.j + c] += 1;
                            }
                        }
                    }
                }
            }
        }
    }
    if !kblocks.is_empty() {
        for (pos, &count) in cover.iter().enumerate() {
            if count != 1 {
                issues.push(issue(
                    &ctx,
                    format!(
                        "C[{}, {}] written {count} times per k-block (want exactly 1)",
                        pos / n,
                        pos % n
                    ),
                ));
                break;
            }
        }
    }
    IndexCheck { label, issues }
}

/// Checks one pack model: declared length, every source reference
/// inside the block, every block element packed exactly once, padding
/// exactly where the model says (the sliver tails).
fn check_pack_model(
    ctx: &str,
    model: &[PackSlot],
    rows: usize,
    cols: usize,
    declared_len: usize,
    issues: &mut Vec<IndexIssue>,
) {
    if model.len() != declared_len {
        issues.push(issue(
            ctx,
            format!(
                "model has {} slots, declared length is {declared_len}",
                model.len()
            ),
        ));
        return;
    }
    let mut cover = vec![0u32; rows * cols];
    let mut zeros = 0usize;
    for (s, slot) in model.iter().enumerate() {
        match slot {
            PackSlot::Src { row, col } => {
                if *row >= rows || *col >= cols {
                    issues.push(issue(
                        ctx,
                        format!("slot {s} reads block[{row}, {col}] outside {rows}x{cols}"),
                    ));
                    return;
                }
                cover[row * cols + col] += 1;
            }
            PackSlot::Zero => zeros += 1,
        }
    }
    if let Some((pos, &count)) = cover.iter().enumerate().find(|(_, &c)| c != 1) {
        issues.push(issue(
            ctx,
            format!(
                "block element ({}, {}) packed {count} times (want exactly 1)",
                pos / cols,
                pos % cols
            ),
        ));
        return;
    }
    if zeros != declared_len - rows * cols {
        issues.push(issue(
            ctx,
            format!(
                "{zeros} zero slots, expected {}",
                declared_len - rows * cols
            ),
        ));
    }
}

/// Runs the full schedule proof over the shape × config × level grid.
pub fn analyze_gemm_indexing() -> Vec<IndexCheck> {
    let mut out = Vec::new();
    for cfg in sweep_configs() {
        for &(m, k, n) in SHAPES {
            for level in [SimdLevel::Scalar, SimdLevel::Avx2] {
                out.push(check_schedule(m, k, n, &cfg, level));
            }
        }
    }
    // Pack-model structure for every (block, sliver) extent the grid
    // can produce, plus primes and sub-sliver extents.
    for &(mb, kb, mr) in &[
        (64usize, 128usize, 4usize),
        (64, 128, 6),
        (1, 1, 4),
        (5, 3, 6),
        (13, 7, 4),
        (6, 8, 6),
        (3, 2, 4),
    ] {
        let label = format!("pack_a model {mb}x{kb}/mr{mr}");
        let mut issues = Vec::new();
        check_pack_model(
            &label,
            &pack_a_model(mb, kb, mr),
            mb,
            kb,
            packed_a_len(mb, kb, mr),
            &mut issues,
        );
        out.push(IndexCheck { label, issues });
    }
    for &(kb, nb, nr) in &[
        (128usize, 256usize, 4usize),
        (128, 256, 8),
        (1, 1, 8),
        (3, 7, 8),
        (7, 13, 4),
        (8, 8, 8),
        (2, 3, 8),
    ] {
        let label = format!("pack_b model {kb}x{nb}/nr{nr}");
        let mut issues = Vec::new();
        // The B model packs a kb×nb block element-for-element; its
        // "rows × cols" coverage domain is kb × nb.
        check_pack_model(
            &label,
            &pack_b_model(kb, nb, nr),
            kb,
            nb,
            packed_b_len(kb, nb, nr),
            &mut issues,
        );
        out.push(IndexCheck { label, issues });
    }
    out
}

/// Closes the model/implementation gap: runs the real
/// [`wino_gemm::pack_a`]/[`wino_gemm::pack_b`] loops over matrices
/// whose every element encodes its own flat index (exact in f32 for
/// these extents) and demands the buffer match the model slot for
/// slot, with capacity padding untouched.
pub fn cross_check_packing() -> Vec<IndexCheck> {
    const SENTINEL: f32 = -1.0;
    let mut out = Vec::new();
    for &(mb, kb, mr, ii, kk) in &[
        (13usize, 5usize, 4usize, 3usize, 2usize),
        (6, 8, 6, 0, 0),
        (1, 1, 4, 7, 7),
        (5, 3, 6, 1, 0),
        (4, 4, 4, 0, 5),
    ] {
        let label = format!("pack_a impl {mb}x{kb}/mr{mr}@({ii},{kk})");
        let mut issues = Vec::new();
        let lda = kk + kb + 3;
        let a: Vec<f32> = (0..(ii + mb) * lda).map(|v| v as f32 + 2.0).collect();
        let len = packed_a_len(mb, kb, mr);
        let mut dst = vec![SENTINEL; len + 5];
        pack_a(&mut dst, &a, ii, kk, mb, kb, lda, mr);
        for (s, slot) in pack_a_model(mb, kb, mr).iter().enumerate() {
            let want = match slot {
                PackSlot::Src { row, col } => a[(ii + row) * lda + kk + col],
                PackSlot::Zero => 0.0,
            };
            if dst[s] != want {
                issues.push(issue(
                    &label,
                    format!("slot {s}: impl wrote {}, model says {want}", dst[s]),
                ));
                break;
            }
        }
        if dst[len..].iter().any(|&v| v != SENTINEL) {
            issues.push(issue(&label, "impl wrote past the model length"));
        }
        out.push(IndexCheck { label, issues });
    }
    for &(kb, nb, nr, kk, jj) in &[
        (5usize, 13usize, 8usize, 2usize, 3usize),
        (8, 8, 8, 0, 0),
        (1, 1, 8, 4, 4),
        (3, 7, 4, 0, 1),
        (4, 4, 8, 5, 0),
    ] {
        let label = format!("pack_b impl {kb}x{nb}/nr{nr}@({kk},{jj})");
        let mut issues = Vec::new();
        let ldb = jj + nb + 3;
        let b: Vec<f32> = (0..(kk + kb) * ldb).map(|v| v as f32 + 2.0).collect();
        let len = packed_b_len(kb, nb, nr);
        let mut dst = vec![SENTINEL; len + 5];
        pack_b(&mut dst, &b, kk, jj, kb, nb, ldb, nr);
        for (s, slot) in pack_b_model(kb, nb, nr).iter().enumerate() {
            let want = match slot {
                PackSlot::Src { row, col } => b[(kk + row) * ldb + jj + col],
                PackSlot::Zero => 0.0,
            };
            if dst[s] != want {
                issues.push(issue(
                    &label,
                    format!("slot {s}: impl wrote {}, model says {want}", dst[s]),
                ));
                break;
            }
        }
        if dst[len..].iter().any(|&v| v != SENTINEL) {
            issues.push(issue(&label, "impl wrote past the model length"));
        }
        out.push(IndexCheck { label, issues });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_sweep_proves_clean() {
        for check in analyze_gemm_indexing() {
            assert!(
                check.passed(),
                "{}: {}",
                check.label,
                check.issues.first().unwrap()
            );
        }
    }

    #[test]
    fn packing_impl_matches_models() {
        for check in cross_check_packing() {
            assert!(
                check.passed(),
                "{}: {}",
                check.label,
                check.issues.first().unwrap()
            );
        }
    }

    // ---- negative fixtures (ISSUE satellite c): a tampered schedule
    // is rejected with a precise diagnostic ----

    #[test]
    fn missing_remainder_handling_rejected() {
        // Drop the ragged tail tile column: 13x17 under 4x4 tiles has
        // a j=16 remainder column; a schedule without it leaves a
        // coverage hole the analysis must name.
        let (mb, nb, kb, mr, nr) = (13usize, 17usize, 5usize, 4usize, 4usize);
        let tiles: Vec<MicroTile> = micro_tiles(mb, nb, kb, mr, nr)
            .filter(|t| t.cols == nr)
            .collect();
        let mut issues = Vec::new();
        check_micro_tiles("fixture", &tiles, mb, nb, kb, mr, nr, &mut issues);
        let detail = &issues.first().expect("hole must be found").detail;
        assert!(
            detail.contains("written 0 times"),
            "diagnostic should name the uncovered element: {detail}"
        );
    }

    #[test]
    fn out_of_bounds_panel_index_rejected() {
        // Shift one tile's sliver offset past the pack buffer — the
        // panel-index arithmetic a refactor is most likely to break.
        let (mb, nb, kb, mr, nr) = (8usize, 8usize, 3usize, 4usize, 4usize);
        let mut tiles: Vec<MicroTile> = micro_tiles(mb, nb, kb, mr, nr).collect();
        tiles[0].b_off = packed_b_len(kb, nb, nr);
        let mut issues = Vec::new();
        check_micro_tiles("fixture", &tiles, mb, nb, kb, mr, nr, &mut issues);
        let detail = &issues.first().expect("escape must be found").detail;
        assert!(detail.contains("escapes packed B"), "{detail}");
    }

    #[test]
    fn overlapping_tiles_rejected() {
        let (mb, nb, kb, mr, nr) = (4usize, 4usize, 2usize, 4usize, 4usize);
        let mut tiles: Vec<MicroTile> = micro_tiles(mb, nb, kb, mr, nr).collect();
        let dup = tiles[0];
        tiles.push(dup);
        let mut issues = Vec::new();
        check_micro_tiles("fixture", &tiles, mb, nb, kb, mr, nr, &mut issues);
        assert!(issues.first().unwrap().detail.contains("written 2 times"));
    }

    #[test]
    fn non_partitioning_panels_rejected() {
        // A panel set that skips columns [4, 7) of n=10.
        let blocks = vec![
            wino_gemm::DimBlock { start: 0, len: 4 },
            wino_gemm::DimBlock { start: 7, len: 3 },
        ];
        let mut issues = Vec::new();
        check_partition("fixture", "column-panel", &blocks, 10, 4, &mut issues);
        assert!(issues.first().unwrap().detail.contains("starts at 7"));
    }

    #[test]
    fn tampered_pack_model_rejected() {
        // A model that reads one row past the block.
        let mut model = pack_a_model(5, 3, 4);
        for slot in model.iter_mut() {
            if let PackSlot::Src { row, .. } = slot {
                if *row == 4 {
                    *row = 5;
                }
            }
        }
        let mut issues = Vec::new();
        check_pack_model("fixture", &model, 5, 3, packed_a_len(5, 3, 4), &mut issues);
        assert!(issues.first().unwrap().detail.contains("outside 5x3"));
    }
}
