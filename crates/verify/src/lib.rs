//! # wino-verify — static verification of the Winograd pipeline
//!
//! Six analyses, one CLI (`wino-verify`), all wired into CI:
//!
//! 1. **Recipe verifier** ([`recipe_check`]) — proves every
//!    straight-line recipe equivalent to its transformation matrix by
//!    abstract interpretation over exact rational linear forms, after
//!    SSA well-formedness and dead-statement checks. This upgrades the
//!    paper's correctness claim for the symbolically optimized recipes
//!    (§3.1.2) from "numerically spot-checked" to "machine-proved for
//!    all inputs". (The implementation lives in
//!    `wino_symbolic::recipe_check`, re-exported here, so build
//!    scripts low in the crate graph — notably wino-conv's compiled
//!    transform generator — can use the same proof gate without
//!    pulling in the GPU linting stack.)
//! 2. **Template/kernel linter** ([`template_lint`]) — parses every
//!    shipped kernel template, drives the generators over a
//!    representative sweep, and validates the emitted sources and
//!    launch configurations against the paper's device profiles.
//! 3. **Unsafe-invariant audit** ([`unsafe_audit`]) — proves the
//!    parallel chunk schedule partitions its range and exercises the
//!    debug-mode ownership ledger behind `DisjointSlice`.
//! 4. **Compiled-kernel verifier** ([`compiled_kernel`]) — parses the
//!    build-embedded SoA kernels (and fresh emitter output) back into
//!    a statement IR and proves each computes `T·X·Tᵀ` by abstract
//!    interpretation over exact rational linear forms, upgrading the
//!    runtime fingerprint gate to a proof gate.
//! 5. **Index analysis** ([`index_analysis`]) — proves coverage,
//!    panel disjointness, and in-bounds access for the blocked-GEMM
//!    packing and micro-tiling over the loop schedule wino-gemm
//!    exports (and executes).
//! 6. **Safety lint** ([`safety_lint`]) — a tokenizer-based fallback
//!    behind clippy's `undocumented_unsafe_blocks` demanding a
//!    rationale at every workspace `unsafe` site, plus the AVX2
//!    pointer-walk audit anchored to runtime debug-asserts.

#![warn(missing_docs)]

pub mod compiled_kernel;
pub mod index_analysis;
pub mod safety_lint;
pub mod template_lint;
pub mod unsafe_audit;

pub use compiled_kernel::{
    eval_parsed_pass, parse_kernels, verify_embedded_kernels, verify_emitter_kernels,
    verify_kernel, KernelCheck, KernelError, KernelProof, ParsedKernel,
};
pub use index_analysis::{
    analyze_gemm_indexing, check_schedule, cross_check_packing, IndexCheck, IndexIssue,
};
pub use safety_lint::{audit_avx2_pointer_paths, scan_workspace_unsafe, SafetyIssue, SafetyReport};
pub use template_lint::{lint_generated_plans, lint_static_templates};
pub use unsafe_audit::{
    audit_all, audit_chunk_partition, audit_scatter_coverage, debug_checks_enabled,
};
pub use wino_symbolic::recipe_check;
pub use wino_symbolic::recipe_check::{
    abstract_outputs, dead_statements, verify_recipe, RecipeError, RecipeProof,
};

use wino_symbolic::RecipeOptions;
use wino_transform::{TransformRecipes, WinogradSpec};

/// Verification outcome of one recipe: which configuration it came
/// from and either its proof (with diagnostics) or the failure.
#[derive(Clone, Debug)]
pub struct RecipeSummary {
    /// `F(m,r)` specification the recipe belongs to.
    pub spec: WinogradSpec,
    /// Stage name: `filter`, `input`, or `output`.
    pub stage: &'static str,
    /// Pipeline description (`naive`, `minimal`, `cse`, …).
    pub pipeline: String,
    /// Proof with per-recipe diagnostics, or the verification error.
    pub result: Result<RecipeProof, RecipeError>,
}

impl RecipeSummary {
    /// Short `F(m,r)/stage/pipeline` label for reports.
    pub fn label(&self) -> String {
        format!(
            "F({},{})/{}/{}",
            self.spec.m, self.spec.r, self.stage, self.pipeline
        )
    }
}

/// Verifies the three recipes of one [`TransformRecipes`] bundle
/// against the exact matrices it was derived from.
pub fn verify_transform_recipes(tr: &TransformRecipes, pipeline: &str) -> Vec<RecipeSummary> {
    [
        ("filter", &tr.filter, &tr.matrices.g),
        ("input", &tr.input, &tr.matrices.b_t),
        ("output", &tr.output, &tr.matrices.a_t),
    ]
    .into_iter()
    .map(|(stage, recipe, matrix)| RecipeSummary {
        spec: tr.spec,
        stage,
        pipeline: pipeline.to_string(),
        result: verify_recipe(recipe, matrix),
    })
    .collect()
}

/// The full `F(m,r)` grid the recipe DB ships: the Figure-5 sweep
/// (r ∈ {3, 5, 7}, m ∈ [2, 10]) restricted to the α ∈ [4, 16] range
/// covered by the paper's Table-3 interpolation points.
pub fn sweep_specs() -> Vec<WinogradSpec> {
    let mut specs = Vec::new();
    for r in [3usize, 5, 7] {
        for m in 2..=10usize {
            if let Ok(spec) = WinogradSpec::new(m, r) {
                if (4..=16).contains(&spec.alpha()) {
                    specs.push(spec);
                }
            }
        }
    }
    specs
}

/// The pipeline configurations verified per spec: every stage of the
/// symbolic pipeline (so post-CSE and post-factorization output are
/// each proved, not just the final composition) plus the naive dense
/// baseline.
pub fn sweep_pipelines() -> Vec<(String, RecipeOptions)> {
    let combos = [
        ("minimal", RecipeOptions::minimal()),
        (
            "cse",
            RecipeOptions {
                cse: true,
                factorize: false,
                fma: false,
            },
        ),
        (
            "cse+factorize",
            RecipeOptions {
                cse: true,
                factorize: true,
                fma: false,
            },
        ),
        ("optimized", RecipeOptions::optimized()),
    ];
    combos
        .into_iter()
        .map(|(name, opts)| (name.to_string(), opts))
        .collect()
}

/// Verifies every recipe in the shipped recipe DB grid — all sweep
/// specs × all pipeline configurations, plus the naive baseline —
/// generating through the process-global [`wino_transform::recipe_db`]
/// so the exact cached artifacts the engines run are what gets proved.
pub fn verify_recipe_db() -> Vec<RecipeSummary> {
    let db = wino_transform::recipe_db();
    let mut out = Vec::new();
    for spec in sweep_specs() {
        for (name, opts) in sweep_pipelines() {
            match db.get(spec, opts) {
                Ok(tr) => out.extend(verify_transform_recipes(&tr, &name)),
                Err(e) => out.push(RecipeSummary {
                    spec,
                    stage: "filter",
                    pipeline: name.clone(),
                    result: Err(RecipeError::Structural(format!("generation failed: {e}"))),
                }),
            }
        }
        match db.get_naive(spec) {
            Ok(tr) => out.extend(verify_transform_recipes(&tr, "naive")),
            Err(e) => out.push(RecipeSummary {
                spec,
                stage: "filter",
                pipeline: "naive".to_string(),
                result: Err(RecipeError::Structural(format!("generation failed: {e}"))),
            }),
        }
    }
    out
}

/// Aggregate outcome of all analyses.
#[derive(Clone, Debug)]
pub struct VerificationReport {
    /// Per-recipe verification results over the full DB sweep.
    pub recipes: Vec<RecipeSummary>,
    /// Static template lint issues.
    pub template_issues: Vec<String>,
    /// Generated-plan lint issues.
    pub plan_issues: Vec<String>,
    /// Unsafe-invariant audit issues.
    pub audit_issues: Vec<String>,
    /// Compiled-kernel proofs: the build-embedded SoA kernels plus a
    /// fresh emitter sweep, each parsed back from source and proven.
    pub kernel_checks: Vec<KernelCheck>,
    /// GEMM packing/tiling index-analysis results over the
    /// shape × config × SIMD-level grid.
    pub index_checks: Vec<IndexCheck>,
    /// SAFETY-comment lint over every workspace `.rs` file.
    pub safety: SafetyReport,
    /// AVX2 pointer-walk audit findings (empty = proven + anchored).
    pub pointer_audit: Vec<SafetyIssue>,
    /// Whether this build carries the debug ownership ledger.
    pub debug_checks: bool,
}

impl VerificationReport {
    /// Recipes whose verification failed.
    pub fn failed_recipes(&self) -> Vec<&RecipeSummary> {
        self.recipes.iter().filter(|s| s.result.is_err()).collect()
    }

    /// Compiled-kernel checks whose proof failed.
    pub fn failed_kernels(&self) -> Vec<&KernelCheck> {
        self.kernel_checks.iter().filter(|c| !c.passed()).collect()
    }

    /// Index-analysis points with at least one defect.
    pub fn failed_index_checks(&self) -> Vec<&IndexCheck> {
        self.index_checks.iter().filter(|c| !c.passed()).collect()
    }

    /// `true` when every analysis came back clean.
    pub fn passed(&self) -> bool {
        self.failed_recipes().is_empty()
            && self.template_issues.is_empty()
            && self.plan_issues.is_empty()
            && self.audit_issues.is_empty()
            && self.failed_kernels().is_empty()
            && self.failed_index_checks().is_empty()
            && self.safety.passed()
            && self.pointer_audit.is_empty()
    }

    /// Largest coefficient growth proven across all verified recipes,
    /// with the recipe it occurs in — the stability headline number.
    pub fn peak_coeff_growth(&self) -> Option<(String, f64)> {
        self.recipes
            .iter()
            .filter_map(|s| {
                s.result
                    .as_ref()
                    .ok()
                    .map(|p| (s.label(), p.coeff_growth()))
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }
}

/// Runs every analysis over the whole workspace.
pub fn run_full_verification() -> VerificationReport {
    let mut kernel_checks = verify_embedded_kernels();
    kernel_checks.extend(verify_emitter_kernels());
    let mut index_checks = analyze_gemm_indexing();
    index_checks.extend(cross_check_packing());
    VerificationReport {
        recipes: verify_recipe_db(),
        template_issues: lint_static_templates(),
        plan_issues: lint_generated_plans(),
        audit_issues: audit_all(),
        kernel_checks,
        index_checks,
        safety: scan_workspace_unsafe(),
        pointer_audit: audit_avx2_pointer_paths(),
        debug_checks: debug_checks_enabled(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_figure5_grid() {
        let specs = sweep_specs();
        // r=3: m 2..=10 (α 4..12); r=5: m 2..=10 (α 6..14); r=7: m 2..=10 (α 8..16).
        assert_eq!(specs.len(), 27);
        assert!(specs.iter().all(|s| (4..=16).contains(&s.alpha())));
    }

    #[test]
    fn single_spec_verifies_end_to_end() {
        let spec = WinogradSpec::new(2, 3).unwrap();
        let tr =
            TransformRecipes::generate(spec, wino_symbolic::RecipeOptions::optimized()).unwrap();
        let results = verify_transform_recipes(&tr, "optimized");
        assert_eq!(results.len(), 3);
        for s in &results {
            s.result
                .as_ref()
                .unwrap_or_else(|e| panic!("{}: {e}", s.label()));
        }
    }
}
