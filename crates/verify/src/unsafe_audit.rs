//! Unsafe-invariant audit for the parallel scatter paths.
//!
//! The `unsafe` surface of the workspace is concentrated in
//! `wino_runtime::DisjointSlice` and the scatter loops in `gemm`/
//! `conv` built on it. Their soundness argument has two legs, and this
//! audit exercises both:
//!
//! 1. **Schedule disjointness** — `parallel_for_chunks` hands out
//!    chunks that partition the index range, so tasks that derive their
//!    writes from disjoint chunk indices write disjoint elements. The
//!    audit proves the partition property over the exported
//!    [`chunk_ranges`] schedule for a grid of shapes.
//! 2. **Write witnesses** — debug builds carry a per-element ownership
//!    ledger inside `DisjointSlice` (bounds asserts + cross-thread
//!    overlap panics). The audit reports whether the ledger is compiled
//!    into the running binary and runs a live scatter coverage check.

use wino_runtime::{chunk_ranges, DisjointSlice, Runtime};

/// `true` when this build carries `DisjointSlice`'s debug ownership
/// ledger (dev/test profile); `false` in release, where the contract
/// is trusted.
pub fn debug_checks_enabled() -> bool {
    DisjointSlice::<f32>::checks_enabled()
}

/// Proves the published chunk schedule partitions its range: chunks
/// are contiguous, cover every index exactly once, and respect the
/// caller's minimum granularity. Returns issues; empty means the
/// disjointness precondition of every `parallel_for_chunks` scatter
/// holds by construction.
pub fn audit_chunk_partition() -> Vec<String> {
    let mut issues = Vec::new();
    let shapes: Vec<(std::ops::Range<usize>, usize, usize)> = vec![
        (0..1, 1, 1),
        (0..7, 2, 1),
        (0..64, 4, 1),
        (0..1000, 8, 1),
        (10..250, 3, 7),
        (0..255, 16, 8),
        (5..6, 32, 4),
        (0..4096, 6, 32),
    ];
    for (range, threads, min_chunk) in shapes {
        let label = format!("chunk_ranges({range:?}, threads={threads}, min_chunk={min_chunk})");
        let chunks = chunk_ranges(range.clone(), threads, min_chunk);
        if range.is_empty() {
            if !chunks.is_empty() {
                issues.push(format!("{label}: non-empty schedule for empty range"));
            }
            continue;
        }
        if chunks.first().map(|c| c.start) != Some(range.start)
            || chunks.last().map(|c| c.end) != Some(range.end)
        {
            issues.push(format!("{label}: schedule does not span the range"));
            continue;
        }
        for pair in chunks.windows(2) {
            if pair[0].end != pair[1].start {
                issues.push(format!(
                    "{label}: gap or overlap between {:?} and {:?}",
                    pair[0], pair[1]
                ));
            }
        }
        for (i, chunk) in chunks.iter().enumerate() {
            let is_last = i + 1 == chunks.len();
            if chunk.is_empty() {
                issues.push(format!("{label}: empty chunk {chunk:?}"));
            }
            if !is_last && chunk.len() < min_chunk.max(1) && chunks.len() > 1 {
                issues.push(format!("{label}: chunk {chunk:?} below min_chunk"));
            }
        }
    }
    issues
}

/// Live coverage witness: a parallel scatter through `DisjointSlice`
/// (per-element `write` on one half, `slice_mut` ranges on the other,
/// mirroring conv's V-scatter and gemm's panel stores) must write
/// every element exactly once. In debug builds this also runs the
/// ownership ledger over every claim.
pub fn audit_scatter_coverage() -> Vec<String> {
    let mut issues = Vec::new();
    let rt = Runtime::with_threads(4);
    let n = 1024;
    let mut data = vec![u32::MAX; n];
    {
        let win = DisjointSlice::new(&mut data);
        rt.parallel_for_chunks(0..n / 2, 1, |chunk| {
            for i in chunk {
                // SAFETY: distinct indices from a partitioning schedule.
                unsafe { win.write(i, i as u32) };
            }
        });
        rt.parallel_for_chunks(0..8, 1, |blocks| {
            for b in blocks {
                let lo = n / 2 + b * (n / 16);
                // SAFETY: blocks map to disjoint ranges.
                let out = unsafe { win.slice_mut(lo..lo + n / 16) };
                for (k, slot) in out.iter_mut().enumerate() {
                    *slot = (lo + k) as u32;
                }
            }
        });
    }
    for (i, &v) in data.iter().enumerate() {
        if v != i as u32 {
            issues.push(format!(
                "scatter coverage: index {i} holds {v}, expected {i}"
            ));
            break;
        }
    }
    issues
}

/// All unsafe-invariant audits in one sweep.
pub fn audit_all() -> Vec<String> {
    let mut issues = audit_chunk_partition();
    issues.extend(audit_scatter_coverage());
    issues
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_audit_is_clean() {
        assert_eq!(audit_chunk_partition(), Vec::<String>::new());
    }

    #[test]
    fn scatter_coverage_is_clean() {
        assert_eq!(audit_scatter_coverage(), Vec::<String>::new());
    }

    #[test]
    fn tests_run_with_ledger_compiled_in() {
        // `cargo test` builds the dev profile, so the audit's
        // scatter exercise above ran under the ownership ledger.
        assert!(debug_checks_enabled());
    }
}
