//! Template and generated-kernel linting.
//!
//! Two layers: the *static* lint parses every kernel template the
//! codegen crate ships — malformed `%(placeholder)` syntax fails even
//! on code paths no test happens to exercise — and the *generated*
//! lint drives the kernel generators over representative
//! configurations, checking that the emitted source is hole-free and
//! that every launch configuration fits at least one of the paper's
//! devices.

use wino_codegen::{generate_plan, template_inventory, CodegenOptions, PlanVariant, Template};
use wino_gpu::{occupancy, paper_devices};
use wino_ir::{Backend, Kernel};
use wino_tensor::ConvDesc;

/// Lints every static template in the codegen inventory. Returns one
/// human-readable issue per violation; empty means clean.
pub fn lint_static_templates() -> Vec<String> {
    let mut issues = Vec::new();
    for (name, src) in template_inventory() {
        let template = match Template::parse(src) {
            Ok(t) => t,
            Err(e) => {
                issues.push(format!("{name}: {e}"));
                continue;
            }
        };
        let placeholders = template.placeholders();
        if placeholders.is_empty() {
            issues.push(format!("{name}: template has no placeholders"));
        }
        for ph in placeholders {
            if !ph.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                issues.push(format!("{name}: suspicious placeholder name %({ph})"));
            }
        }
    }
    issues
}

/// The convolution shapes the generated-plan lint sweeps: a small
/// VGG-like layer and a deliberately awkward non-square one.
fn lint_descs() -> Vec<ConvDesc> {
    vec![
        ConvDesc::new(3, 1, 1, 32, 1, 14, 14, 16),
        ConvDesc::new(3, 1, 1, 24, 2, 13, 9, 8),
    ]
}

fn lint_variants() -> Vec<PlanVariant> {
    vec![
        PlanVariant::Direct,
        PlanVariant::Im2col,
        PlanVariant::WinogradNonFused { m: 2 },
        PlanVariant::WinogradNonFused { m: 4 },
        PlanVariant::WinogradFused { m: 2 },
    ]
}

/// Per-kernel checks shared by every generated plan: no residual
/// placeholder syntax, balanced braces, structural validity, and a
/// launch configuration at least one paper device accepts.
fn check_kernel(context: &str, kernel: &Kernel, issues: &mut Vec<String>) {
    if let Err(e) = kernel.validate() {
        issues.push(format!("{context}/{}: {e}", kernel.name));
    }
    if kernel.source.contains("%(") {
        issues.push(format!(
            "{context}/{}: unfilled placeholder in generated source",
            kernel.name
        ));
    }
    let opens = kernel.source.matches('{').count();
    let closes = kernel.source.matches('}').count();
    if opens != closes {
        issues.push(format!(
            "{context}/{}: unbalanced braces ({opens} open, {closes} close)",
            kernel.name
        ));
    }
    let devices = paper_devices();
    let rejections: Vec<String> = devices
        .iter()
        .filter_map(|d| {
            occupancy(d, &kernel.launch)
                .err()
                .map(|e| format!("{}: {e}", d.name))
        })
        .collect();
    if rejections.len() == devices.len() {
        issues.push(format!(
            "{context}/{}: launch config rejected by every paper device ({})",
            kernel.name,
            rejections.join("; ")
        ));
    }
}

/// Generates plans over the lint sweep (shapes × variants × backends)
/// and checks every emitted kernel. Returns issues; empty means every
/// generated kernel is hole-free and launchable.
pub fn lint_generated_plans() -> Vec<String> {
    let mut issues = Vec::new();
    for desc in lint_descs() {
        for variant in lint_variants() {
            for backend in [Backend::Cuda, Backend::OpenCl, Backend::Vulkan] {
                let opts = CodegenOptions {
                    backend,
                    ..Default::default()
                };
                let context = format!("{desc}/{variant:?}/{backend}");
                match generate_plan(&desc, variant, &opts) {
                    Ok(plan) => {
                        if let Err(e) = plan.validate() {
                            issues.push(format!("{context}: invalid plan: {e}"));
                        }
                        for kernel in &plan.kernels {
                            check_kernel(&context, kernel, &mut issues);
                        }
                    }
                    Err(e) => issues.push(format!("{context}: generation failed: {e}")),
                }
            }
        }
    }
    issues
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_templates_are_clean() {
        assert_eq!(lint_static_templates(), Vec::<String>::new());
    }

    #[test]
    fn generated_plans_are_clean() {
        assert_eq!(lint_generated_plans(), Vec::<String>::new());
    }
}
