//! Compiled-kernel verification: parse generated SoA Rust back into a
//! statement IR and prove each kernel computes `T · X · Tᵀ`.
//!
//! The build script already refuses to *emit* a kernel whose source
//! recipe fails `verify_recipe`, and `compiled_for` refuses to *run* a
//! kernel whose fingerprint drifted from the runtime recipe. Both gates
//! trust that `emit_soa_transform` faithfully translated the recipe
//! into Rust. This module removes that trust: it parses the emitted
//! text — the exact bytes `include!`d into `wino-conv`, plus fresh
//! emitter output — into a small statement IR and abstractly
//! interprets it over exact rational linear forms, re-deriving what the
//! kernel computes from the program text alone.
//!
//! The proof chain has three links:
//!
//! 1. **Pass ≡ rounded recipe.** Every baked-in `f32::from_bits`
//!    constant is a dyadic rational, so it lifts losslessly into
//!    [`Rational`] via [`Rational::from_f32_exact`]. Abstract
//!    interpretation of the parsed pass body then yields one exact
//!    linear form per output lane, compared row-for-row against the
//!    abstract rows of the recipe with its constants rounded to f32.
//! 2. **Rounded recipe ≡ `T`.** When every recipe constant is itself
//!    dyadic (all shipped r=3 input kernels and F(2,3)/F(4,3) output),
//!    rounding is the identity and the kernel rows equal the rows of
//!    `T` exactly — the [`KernelProof::lossless`] flag records this.
//!    Otherwise `verify_recipe` still proves the *exact* recipe `≡ T`,
//!    and constant rounding is the only gap (reported, not hidden).
//! 3. **2-D composition.** The column/row loop nests are parsed as
//!    affine index expressions and simulated symbolically: every read
//!    is bounds-checked, every `mid`/`dst` position must be written
//!    exactly once, and the final form at `dst[(i,j)]` must equal
//!    `Σ R[i,a]·R[j,b]·src[(a,b)]` — so a swapped stride or transposed
//!    write is a proof failure, not a silent data scramble.
//!
//! What is *not* proven (see DESIGN.md §5.11): FMA rounding — the
//! abstract domain is exact, so `vfma` and `vmul`+`vadd` look equal
//! even though their f32 roundings differ — and the CPUID dispatch
//! deciding which entry point runs.

use std::collections::HashMap;
use std::fmt;

use wino_codegen::emit_soa_transform;
use wino_num::{RatMat, Rational};
use wino_symbolic::{
    abstract_outputs, symbolic_matvec, Instr, LinExpr, Node, Recipe, RecipeOptions,
};
use wino_transform::{TransformRecipes, WinogradSpec};

/// A register of the parsed pass body: `x[i]`, `tN`, or `yN`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum KReg {
    In(usize),
    Tmp(usize),
    Out(usize),
}

impl fmt::Display for KReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KReg::In(i) => write!(f, "x[{i}]"),
            KReg::Tmp(t) => write!(f, "t{t}"),
            KReg::Out(o) => write!(f, "y{o}"),
        }
    }
}

/// One parsed pass statement's right-hand side. Constants are kept as
/// raw f32 bit patterns — exactly what the text bakes in.
#[derive(Clone, Copy, Debug)]
enum KOp {
    Zero,
    Copy(KReg),
    Neg(KReg),
    Add(KReg, KReg),
    Sub(KReg, KReg),
    Mul(u32, KReg),
    Fma(u32, KReg, KReg),
}

/// `let <dst> = <op>;`
#[derive(Clone, Copy, Debug)]
struct KStmt {
    dst: KReg,
    op: KOp,
}

/// An affine index expression `Σ coeffᵥ · v + offset` over the loop
/// variables in scope, as parsed from an index like `src[12 + j]` or
/// `mid[i * 6 + j]`.
#[derive(Clone, Debug)]
struct Affine {
    /// One coefficient per in-scope variable (parser-supplied order).
    coeffs: Vec<i64>,
    offset: i64,
}

impl Affine {
    fn eval(&self, vals: &[i64]) -> i64 {
        debug_assert_eq!(vals.len(), self.coeffs.len());
        self.offset
            + self
                .coeffs
                .iter()
                .zip(vals)
                .map(|(c, v)| c * v)
                .sum::<i64>()
    }
}

/// One of the two loop nests applying the 1-D pass across a tile
/// dimension: `for <loop_var> in 0..<bound> { let y = pass([<args>]);
/// for (<enum_var>, v) in … { <write_array>[<write_idx>] = v; } }`.
#[derive(Clone, Debug)]
struct LoopNest {
    loop_var: String,
    bound: usize,
    /// Array the pass arguments read (`src` or `mid`).
    read_array: String,
    /// Index of each pass argument, affine in `[loop_var]`.
    args: Vec<Affine>,
    enum_var: String,
    /// Array the results scatter into (`mid` or `dst`).
    write_array: String,
    /// Write index, affine in `[loop_var, enum_var]`.
    write_idx: Affine,
}

/// A fully parsed emitted SoA kernel: the pass body IR, both loop
/// nests, and the surrounding structural facts.
#[derive(Clone, Debug)]
pub struct ParsedKernel {
    /// Kernel base name (e.g. `f4x3_input`).
    pub name: String,
    /// 1-D pass input arity (the `[[f32; L]; n]` parameter length).
    pub n_in: usize,
    /// 1-D pass output arity.
    pub n_out: usize,
    stmts: Vec<KStmt>,
    /// Registers of the pass return array, in order.
    ret: Vec<KReg>,
    /// `debug_assert!(src.len() >= …)` bound — the kernel's read extent.
    src_bound: usize,
    /// `debug_assert!(dst.len() >= …)` bound — the kernel's write extent.
    dst_bound: usize,
    mid_len: usize,
    col: LoopNest,
    row: LoopNest,
    /// The `{NAME}_FINGERPRINT` constant tying kernel to recipe.
    pub fingerprint: u64,
    has_scalar_entry: bool,
    has_avx2_entry: bool,
    avx2_has_target_feature: bool,
}

/// Why a compiled kernel failed verification. Every variant names the
/// kernel and pins the failure to a line, row, or position.
#[derive(Clone, Debug)]
pub enum KernelError {
    /// The text does not parse as the emitter grammar.
    Parse {
        /// Kernel being parsed (or `<source>` before any header).
        kernel: String,
        /// The offending source line, trimmed.
        line: String,
        /// What the parser expected.
        reason: String,
    },
    /// A well-formed kernel violates a structural invariant.
    Structural {
        /// Kernel name.
        kernel: String,
        /// Violated invariant.
        reason: String,
    },
    /// An index provably escapes its array extent.
    OutOfBounds {
        /// Kernel name.
        kernel: String,
        /// Which access, at which loop trip, escapes which extent.
        reason: String,
    },
    /// A position is written twice or never, or read before any write.
    Coverage {
        /// Kernel name.
        kernel: String,
        /// The coverage defect.
        reason: String,
    },
    /// A pass output lane's proven linear form differs from the
    /// rounded recipe row.
    RowMismatch {
        /// Kernel name.
        kernel: String,
        /// Output lane.
        row: usize,
        /// Form the kernel text computes.
        got: String,
        /// Form the recipe demands.
        want: String,
    },
    /// The composed 2-D result at one position differs from
    /// `R·X·Rᵀ` — the loop nests scramble data the pass computed
    /// correctly.
    Composition {
        /// Kernel name.
        kernel: String,
        /// Flat `dst` position that disagrees.
        pos: usize,
        /// Form the kernel writes there.
        got: String,
        /// Form `R·X·Rᵀ` demands there.
        want: String,
    },
    /// The baked fingerprint does not match the recipe under proof.
    Fingerprint {
        /// Kernel name.
        kernel: String,
        /// Fingerprint baked into the kernel text.
        baked: u64,
        /// Fingerprint of the recipe being verified against.
        recipe: u64,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::Parse {
                kernel,
                line,
                reason,
            } => {
                write!(f, "{kernel}: parse error: {reason} (at `{line}`)")
            }
            KernelError::Structural { kernel, reason } => {
                write!(f, "{kernel}: structural: {reason}")
            }
            KernelError::OutOfBounds { kernel, reason } => {
                write!(f, "{kernel}: out of bounds: {reason}")
            }
            KernelError::Coverage { kernel, reason } => {
                write!(f, "{kernel}: coverage: {reason}")
            }
            KernelError::RowMismatch {
                kernel,
                row,
                got,
                want,
            } => write!(
                f,
                "{kernel}: pass row {row}: kernel computes [{got}], recipe demands [{want}]"
            ),
            KernelError::Composition {
                kernel,
                pos,
                got,
                want,
            } => write!(
                f,
                "{kernel}: dst[{pos}]: composed form [{got}] != R·X·Rᵀ form [{want}]"
            ),
            KernelError::Fingerprint {
                kernel,
                baked,
                recipe,
            } => write!(
                f,
                "{kernel}: baked fingerprint {baked:016x} != recipe fingerprint {recipe:016x}"
            ),
        }
    }
}

impl std::error::Error for KernelError {}

/// The successful outcome: the kernel text provably computes
/// `R · X · Rᵀ` for the rounded recipe rows `R`, with every index in
/// bounds and every position written exactly once.
#[derive(Clone, Debug)]
pub struct KernelProof {
    /// Kernel base name.
    pub name: String,
    /// 1-D input arity.
    pub n_in: usize,
    /// 1-D output arity.
    pub n_out: usize,
    /// Parsed pass-body statement count.
    pub n_stmts: usize,
    /// True when the kernel rows equal the exact rows of `T` — i.e.
    /// every recipe constant is dyadic and f32 rounding changed
    /// nothing. Then the proof is `kernel ≡ T·x` outright; otherwise
    /// it is `kernel ≡ round(recipe)` with `recipe ≡ T` proven
    /// separately over exact rationals.
    pub lossless: bool,
    /// The verified fingerprint.
    pub fingerprint: u64,
}

/// One kernel's verification outcome, labeled for reporting.
#[derive(Clone, Debug)]
pub struct KernelCheck {
    /// Human label, e.g. `F(4,3) input (embedded)`.
    pub label: String,
    /// Proof or first failure.
    pub result: Result<KernelProof, KernelError>,
}

impl KernelCheck {
    /// Whether the proof went through.
    pub fn passed(&self) -> bool {
        self.result.is_ok()
    }
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn perr(kernel: &str, line: &str, reason: impl Into<String>) -> KernelError {
    KernelError::Parse {
        kernel: kernel.to_string(),
        line: line.trim().to_string(),
        reason: reason.into(),
    }
}

/// Splits `s` on top-level commas (depth-aware over `(`/`)` and `[`/`]`).
fn split_args(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, ch) in s.char_indices() {
        match ch {
            '(' | '[' => depth += 1,
            ')' | ']' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(s[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    let last = s[start..].trim();
    if !last.is_empty() {
        out.push(last);
    }
    out
}

/// Parses `x[N]`, `tN`, or `yN`.
fn parse_reg(s: &str) -> Option<KReg> {
    let s = s.trim();
    if let Some(rest) = s.strip_prefix("x[") {
        let idx = rest.strip_suffix(']')?;
        return idx.parse().ok().map(KReg::In);
    }
    if let Some(rest) = s.strip_prefix('t') {
        return rest.parse().ok().map(KReg::Tmp);
    }
    if let Some(rest) = s.strip_prefix('y') {
        return rest.parse().ok().map(KReg::Out);
    }
    None
}

/// Parses `f32::from_bits(0xXXXXXXXX)` with an optional trailing
/// `/* … */` decimal comment, returning the raw bits.
fn parse_const(s: &str) -> Option<u32> {
    let rest = s.trim().strip_prefix("f32::from_bits(0x")?;
    let close = rest.find(')')?;
    let bits = u32::from_str_radix(&rest[..close], 16).ok()?;
    let tail = rest[close + 1..].trim();
    if !tail.is_empty() {
        let tail = tail.strip_prefix("/*")?;
        tail.strip_suffix("*/")?;
    }
    Some(bits)
}

/// Parses a pass-statement RHS into an op.
fn parse_rhs(s: &str) -> Option<KOp> {
    let s = s.trim();
    if s == "[0.0f32; L]" {
        return Some(KOp::Zero);
    }
    for (name, unary) in [("vneg", true), ("vadd", false), ("vsub", false)] {
        if let Some(rest) = s.strip_prefix(name) {
            let inner = rest.strip_prefix('(')?.strip_suffix(')')?;
            let args = split_args(inner);
            return match (name, unary, args.as_slice()) {
                ("vneg", true, [a]) => Some(KOp::Neg(parse_reg(a)?)),
                ("vadd", false, [a, b]) => Some(KOp::Add(parse_reg(a)?, parse_reg(b)?)),
                ("vsub", false, [a, b]) => Some(KOp::Sub(parse_reg(a)?, parse_reg(b)?)),
                _ => None,
            };
        }
    }
    if let Some(rest) = s.strip_prefix("vmul(") {
        let inner = rest.strip_suffix(')')?;
        if let [c, a] = split_args(inner).as_slice() {
            return Some(KOp::Mul(parse_const(c)?, parse_reg(a)?));
        }
        return None;
    }
    if let Some(rest) = s.strip_prefix("vfma(") {
        let inner = rest.strip_suffix(')')?;
        if let [c, a, b] = split_args(inner).as_slice() {
            return Some(KOp::Fma(parse_const(c)?, parse_reg(a)?, parse_reg(b)?));
        }
        return None;
    }
    // A bare register is a copy.
    parse_reg(s).map(KOp::Copy)
}

/// Parses an affine index expression over `vars` (e.g. `12 + j`,
/// `i * 6 + 3`, `j`). Terms are `INT`, `VAR`, `VAR * INT`, `INT * VAR`
/// joined by `+`.
fn parse_affine(s: &str, vars: &[&str]) -> Option<Affine> {
    let mut coeffs = vec![0i64; vars.len()];
    let mut offset = 0i64;
    for term in s.split('+') {
        let term = term.trim();
        if term.is_empty() {
            return None;
        }
        let mut factors = term.split('*').map(str::trim);
        let first = factors.next()?;
        let second = factors.next();
        if factors.next().is_some() {
            return None;
        }
        let classify = |tok: &str| -> Option<Result<usize, i64>> {
            if let Some(v) = vars.iter().position(|v| *v == tok) {
                Some(Ok(v))
            } else {
                tok.parse::<i64>().ok().map(Err)
            }
        };
        match (classify(first)?, second.map(&classify)) {
            (Err(k), None) => offset += k,
            (Ok(v), None) => coeffs[v] += 1,
            (Ok(v), Some(Some(Err(k)))) | (Err(k), Some(Some(Ok(v)))) => coeffs[v] += k,
            _ => return None,
        }
    }
    Some(Affine { coeffs, offset })
}

/// Parses `NAME[IDX]` returning the array name and raw index text.
fn parse_indexed(s: &str) -> Option<(&str, &str)> {
    let open = s.find('[')?;
    let idx = s[open + 1..].strip_suffix(']')?;
    let name = &s[..open];
    if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return None;
    }
    Some((name, idx))
}

/// A line cursor over the generated source.
struct Lines<'a> {
    lines: Vec<&'a str>,
    pos: usize,
}

impl<'a> Lines<'a> {
    fn next(&mut self) -> Option<&'a str> {
        let l = self.lines.get(self.pos).copied();
        self.pos += 1;
        l
    }

    /// Next non-empty, non-`//`-comment line, trimmed.
    fn next_code(&mut self) -> Option<&'a str> {
        loop {
            let l = self.next()?.trim();
            if !l.is_empty() && !l.starts_with("//") {
                return Some(l);
            }
        }
    }
}

/// Parses one loop nest starting at its `for … in 0..N {` line.
fn parse_loop_nest(cur: &mut Lines<'_>, kernel: &str, head: &str) -> Result<LoopNest, KernelError> {
    let inner = head
        .strip_prefix("for ")
        .and_then(|r| r.strip_suffix(" {"))
        .ok_or_else(|| perr(kernel, head, "expected `for VAR in 0..N {`"))?;
    let (loop_var, range) = inner
        .split_once(" in 0..")
        .ok_or_else(|| perr(kernel, head, "expected `for VAR in 0..N {`"))?;
    let bound: usize = range
        .parse()
        .map_err(|_| perr(kernel, head, "loop bound is not a literal integer"))?;

    let pass_line = cur
        .next_code()
        .ok_or_else(|| perr(kernel, "<eof>", "expected `let y = pass([…]);`"))?;
    let args_text = pass_line
        .strip_prefix("let y = pass([")
        .and_then(|r| r.strip_suffix("]);"))
        .ok_or_else(|| perr(kernel, pass_line, "expected `let y = pass([…]);`"))?;
    let mut read_array = None;
    let mut args = Vec::new();
    for arg in split_args(args_text) {
        let (array, idx) = parse_indexed(arg).ok_or_else(|| {
            perr(
                kernel,
                pass_line,
                format!("pass arg `{arg}` is not NAME[IDX]"),
            )
        })?;
        match &read_array {
            None => read_array = Some(array.to_string()),
            Some(prev) if prev == array => {}
            Some(prev) => {
                return Err(perr(
                    kernel,
                    pass_line,
                    format!("pass args mix arrays `{prev}` and `{array}`"),
                ))
            }
        }
        let aff = parse_affine(idx, &[loop_var]).ok_or_else(|| {
            perr(
                kernel,
                pass_line,
                format!("index `{idx}` is not affine in `{loop_var}`"),
            )
        })?;
        args.push(aff);
    }
    let read_array =
        read_array.ok_or_else(|| perr(kernel, pass_line, "pass takes no arguments"))?;

    let enum_line = cur
        .next_code()
        .ok_or_else(|| perr(kernel, "<eof>", "expected enumerate loop"))?;
    let enum_var = enum_line
        .strip_prefix("for (")
        .and_then(|r| r.split_once(','))
        .map(|(v, _)| v.trim().to_string())
        .filter(|_| enum_line.ends_with("in y.into_iter().enumerate() {"))
        .ok_or_else(|| {
            perr(
                kernel,
                enum_line,
                "expected `for (VAR, v) in y.into_iter().enumerate() {`",
            )
        })?;

    let write_line = cur
        .next_code()
        .ok_or_else(|| perr(kernel, "<eof>", "expected scatter write"))?;
    let assign = write_line
        .strip_suffix(" = v;")
        .ok_or_else(|| perr(kernel, write_line, "expected `NAME[IDX] = v;`"))?;
    let (write_array, idx) = parse_indexed(assign)
        .ok_or_else(|| perr(kernel, write_line, "expected `NAME[IDX] = v;`"))?;
    let write_idx = parse_affine(idx, &[loop_var, enum_var.as_str()]).ok_or_else(|| {
        perr(
            kernel,
            write_line,
            format!("write index `{idx}` is not affine in `{loop_var}`/`{enum_var}`"),
        )
    })?;

    for close in ["}", "}"] {
        let l = cur
            .next_code()
            .ok_or_else(|| perr(kernel, "<eof>", "unclosed loop nest"))?;
        if l != close {
            return Err(perr(kernel, l, "expected closing `}`"));
        }
    }

    Ok(LoopNest {
        loop_var: loop_var.to_string(),
        bound,
        read_array,
        args,
        enum_var,
        write_array: write_array.to_string(),
        write_idx,
    })
}

/// Parses every emitted kernel out of `source` (a generated
/// `compiled_transforms.rs` or a single `emit_soa_transform` output).
pub fn parse_kernels(source: &str) -> Result<Vec<ParsedKernel>, KernelError> {
    let mut cur = Lines {
        lines: source.lines().collect(),
        pos: 0,
    };
    let mut kernels = Vec::new();
    while let Some(line) = cur.next() {
        let trimmed = line.trim();
        let Some(rest) = trimmed.strip_prefix("fn ") else {
            continue;
        };
        let Some(name) =
            rest.strip_suffix("_body<const L: usize>(src: &[[f32; L]], dst: &mut [[f32; L]]) {")
        else {
            continue;
        };
        kernels.push(parse_kernel_at(&mut cur, name)?);
    }
    Ok(kernels)
}

/// Parses one kernel whose `_body` header was just consumed.
fn parse_kernel_at(cur: &mut Lines<'_>, name: &str) -> Result<ParsedKernel, KernelError> {
    let bound = |cur: &mut Lines<'_>, array: &str| -> Result<usize, KernelError> {
        let l = cur
            .next_code()
            .ok_or_else(|| perr(name, "<eof>", "expected debug_assert bound"))?;
        l.strip_prefix(&format!("debug_assert!({array}.len() >= "))
            .and_then(|r| r.strip_suffix(");"))
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| {
                perr(
                    name,
                    l,
                    format!("expected `debug_assert!({array}.len() >= N);`"),
                )
            })
    };
    let src_bound = bound(cur, "src")?;
    let dst_bound = bound(cur, "dst")?;

    let l = cur
        .next_code()
        .ok_or_else(|| perr(name, "<eof>", "expected pass fn"))?;
    if l != "#[inline(always)]" {
        return Err(perr(name, l, "expected `#[inline(always)]` before pass"));
    }
    let sig = cur
        .next_code()
        .ok_or_else(|| perr(name, "<eof>", "expected pass signature"))?;
    let (n_in, n_out) = sig
        .strip_prefix("fn pass<const L: usize>(x: [[f32; L]; ")
        .and_then(|r| r.split_once("]) -> [[f32; L]; "))
        .and_then(|(ni, rest)| {
            let no = rest.strip_suffix("] {")?;
            Some((ni.parse().ok()?, no.parse().ok()?))
        })
        .ok_or_else(|| perr(name, sig, "expected pass signature"))?;

    // Pass body: `let R = RHS;` statements, then the return array.
    let mut stmts = Vec::new();
    let ret = loop {
        let l = cur
            .next_code()
            .ok_or_else(|| perr(name, "<eof>", "unterminated pass body"))?;
        if let Some(rest) = l.strip_prefix("let ") {
            let (dst, rhs) = rest
                .split_once(" = ")
                .ok_or_else(|| perr(name, l, "expected `let DST = RHS;`"))?;
            let rhs = rhs
                .strip_suffix(';')
                .ok_or_else(|| perr(name, l, "statement missing `;`"))?;
            let dst = parse_reg(dst)
                .ok_or_else(|| perr(name, l, format!("`{dst}` is not a register")))?;
            let op =
                parse_rhs(rhs).ok_or_else(|| perr(name, l, format!("unparseable RHS `{rhs}`")))?;
            stmts.push(KStmt { dst, op });
        } else if let Some(inner) = l.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
            let mut ret = Vec::new();
            for r in split_args(inner) {
                ret.push(
                    parse_reg(r)
                        .ok_or_else(|| perr(name, l, format!("`{r}` is not a register")))?,
                );
            }
            break ret;
        } else {
            return Err(perr(name, l, "expected statement or return array"));
        }
    };
    let l = cur
        .next_code()
        .ok_or_else(|| perr(name, "<eof>", "unclosed pass"))?;
    if l != "}" {
        return Err(perr(name, l, "expected `}` closing pass"));
    }

    let mid_line = cur
        .next_code()
        .ok_or_else(|| perr(name, "<eof>", "expected mid buffer"))?;
    let mid_len: usize = mid_line
        .strip_prefix("let mut mid = [[0.0f32; L]; ")
        .and_then(|r| r.strip_suffix("];"))
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| perr(name, mid_line, "expected `let mut mid = [[0.0f32; L]; N];`"))?;

    let col_head = cur
        .next_code()
        .ok_or_else(|| perr(name, "<eof>", "expected column loop"))?;
    let col = parse_loop_nest(cur, name, col_head)?;
    let row_head = cur
        .next_code()
        .ok_or_else(|| perr(name, "<eof>", "expected row loop"))?;
    let row = parse_loop_nest(cur, name, row_head)?;

    let l = cur
        .next_code()
        .ok_or_else(|| perr(name, "<eof>", "unclosed body"))?;
    if l != "}" {
        return Err(perr(name, l, "expected `}` closing body"));
    }

    // Entry points and fingerprint, in emitted order; tolerate doc
    // comments and attributes between them.
    let mut has_scalar_entry = false;
    let mut has_avx2_entry = false;
    let mut avx2_has_target_feature = false;
    let mut pending_target_feature = false;
    let fingerprint = loop {
        let l = cur
            .next_code()
            .ok_or_else(|| perr(name, "<eof>", "missing fingerprint const"))?;
        if l == r#"#[target_feature(enable = "avx2", enable = "fma")]"# {
            pending_target_feature = true;
        } else if l.starts_with(&format!("pub fn {name}_scalar<const L: usize>")) {
            has_scalar_entry = true;
        } else if l.starts_with(&format!("pub unsafe fn {name}_avx2<const L: usize>")) {
            has_avx2_entry = true;
            avx2_has_target_feature = pending_target_feature;
        } else if let Some(rest) = l.strip_prefix(&format!(
            "pub const {}_FINGERPRINT: u64 = 0x",
            name.to_ascii_uppercase()
        )) {
            let hex = rest
                .strip_suffix(';')
                .ok_or_else(|| perr(name, l, "fingerprint missing `;`"))?;
            break u64::from_str_radix(hex, 16)
                .map_err(|_| perr(name, l, "fingerprint is not hex"))?;
        }
    };

    Ok(ParsedKernel {
        name: name.to_string(),
        n_in,
        n_out,
        stmts,
        ret,
        src_bound,
        dst_bound,
        mid_len,
        col,
        row,
        fingerprint,
        has_scalar_entry,
        has_avx2_entry,
        avx2_has_target_feature,
    })
}

// ---------------------------------------------------------------------
// Verification
// ---------------------------------------------------------------------

fn serr(kernel: &str, reason: impl Into<String>) -> KernelError {
    KernelError::Structural {
        kernel: kernel.to_string(),
        reason: reason.into(),
    }
}

/// Lifts a baked f32 bit pattern into its exact rational value.
fn lift_bits(kernel: &str, bits: u32) -> Result<Rational, KernelError> {
    Rational::from_f32_exact(f32::from_bits(bits))
        .ok_or_else(|| serr(kernel, format!("constant 0x{bits:08x} is not finite")))
}

/// Rounds every constant of `recipe` through f32, mirroring what
/// `rust_f32_literal` bakes into the text. Returns the rounded recipe
/// and whether rounding was the identity.
fn round_recipe(kernel: &str, recipe: &Recipe) -> Result<(Recipe, bool), KernelError> {
    let mut lossless = true;
    let mut round = |c: &Rational| -> Result<Rational, KernelError> {
        let rounded = Rational::from_f32_exact(c.to_f32())
            .ok_or_else(|| serr(kernel, format!("recipe constant {c} overflows f32")))?;
        if &rounded != c {
            lossless = false;
        }
        Ok(rounded)
    };
    let mut instrs = Vec::with_capacity(recipe.instrs.len());
    for ins in &recipe.instrs {
        instrs.push(match ins {
            Instr::Mul { dst, c, a } => Instr::Mul {
                dst: *dst,
                c: round(c)?,
                a: *a,
            },
            Instr::Fma { dst, c, a, b } => Instr::Fma {
                dst: *dst,
                c: round(c)?,
                a: *a,
                b: *b,
            },
            other => other.clone(),
        });
    }
    Ok((
        Recipe {
            n_in: recipe.n_in,
            n_out: recipe.n_out,
            n_tmp: recipe.n_tmp,
            instrs,
        },
        lossless,
    ))
}

/// Abstractly interprets the parsed pass body, returning one exact
/// linear form (over `Node::In(0..n_in)`) per output lane, in return
/// order.
fn abstract_pass(k: &ParsedKernel) -> Result<Vec<LinExpr>, KernelError> {
    let name = k.name.as_str();
    let mut env: HashMap<KReg, LinExpr> = HashMap::new();
    let read = |env: &HashMap<KReg, LinExpr>, r: KReg| -> Result<LinExpr, KernelError> {
        match r {
            KReg::In(i) if i < k.n_in => Ok(LinExpr::term(Node::In(i), Rational::one())),
            KReg::In(i) => Err(KernelError::OutOfBounds {
                kernel: name.to_string(),
                reason: format!("pass reads x[{i}] but arity is {}", k.n_in),
            }),
            reg => env
                .get(&reg)
                .cloned()
                .ok_or_else(|| serr(name, format!("`{reg}` read before definition"))),
        }
    };
    for st in &k.stmts {
        if matches!(st.dst, KReg::In(_)) {
            return Err(serr(name, "pass statement writes an input register"));
        }
        let value = match st.op {
            KOp::Zero => LinExpr::zero(),
            KOp::Copy(a) => read(&env, a)?,
            KOp::Neg(a) => {
                let mut e = LinExpr::zero();
                e.add_scaled(&read(&env, a)?, &-&Rational::one());
                e
            }
            KOp::Add(a, b) => {
                let mut e = read(&env, a)?;
                e.add_scaled(&read(&env, b)?, &Rational::one());
                e
            }
            KOp::Sub(a, b) => {
                let mut e = read(&env, a)?;
                e.add_scaled(&read(&env, b)?, &-&Rational::one());
                e
            }
            KOp::Mul(bits, a) => {
                let mut e = LinExpr::zero();
                e.add_scaled(&read(&env, a)?, &lift_bits(name, bits)?);
                e
            }
            KOp::Fma(bits, a, b) => {
                let mut e = read(&env, b)?;
                e.add_scaled(&read(&env, a)?, &lift_bits(name, bits)?);
                e
            }
        };
        // Sequential overwrite models Rust `let` shadowing exactly.
        env.insert(st.dst, value);
    }
    if k.ret.len() != k.n_out {
        return Err(serr(
            name,
            format!(
                "pass returns {} values, arity says {}",
                k.ret.len(),
                k.n_out
            ),
        ));
    }
    k.ret
        .iter()
        .map(|&r| read(&env, r))
        .collect::<Result<Vec<_>, _>>()
}

/// Applies proven pass rows to symbolic arguments:
/// `out[o] = Σᵢ rows[o][In(i)] · args[i]`.
fn apply_rows(rows: &[LinExpr], args: &[LinExpr]) -> Vec<LinExpr> {
    rows.iter()
        .map(|row| {
            let mut out = LinExpr::zero();
            for (node, c) in row.iter() {
                let Node::In(i) = node else {
                    unreachable!("pass rows only reference inputs")
                };
                out.add_scaled(&args[*i], c);
            }
            out
        })
        .collect()
}

/// Simulates one loop nest symbolically: reads `source` forms
/// (bounds-checked), applies `rows`, scatters into a fresh buffer of
/// `write_len` positions (bounds-checked, each written exactly once).
fn simulate_nest(
    k: &ParsedKernel,
    nest: &LoopNest,
    rows: &[LinExpr],
    source: &[LinExpr],
    source_name: &str,
    write_len: usize,
) -> Result<Vec<LinExpr>, KernelError> {
    let name = k.name.as_str();
    if nest.read_array != source_name {
        return Err(serr(
            name,
            format!(
                "`{}` pass reads `{}`, expected `{source_name}`",
                nest.loop_var, nest.read_array
            ),
        ));
    }
    if nest.args.len() != k.n_in {
        return Err(serr(
            name,
            format!(
                "loop passes {} args, pass arity is {}",
                nest.args.len(),
                k.n_in
            ),
        ));
    }
    let mut out: Vec<Option<LinExpr>> = vec![None; write_len];
    for trip in 0..nest.bound as i64 {
        let mut args = Vec::with_capacity(k.n_in);
        for (a, aff) in nest.args.iter().enumerate() {
            let p = aff.eval(&[trip]);
            if p < 0 || p as usize >= source.len() {
                return Err(KernelError::OutOfBounds {
                    kernel: name.to_string(),
                    reason: format!(
                        "{}={trip}: pass arg {a} reads {source_name}[{p}], extent is {}",
                        nest.loop_var,
                        source.len()
                    ),
                });
            }
            args.push(source[p as usize].clone());
        }
        let y = apply_rows(rows, &args);
        for (e, form) in y.into_iter().enumerate() {
            let p = nest.write_idx.eval(&[trip, e as i64]);
            if p < 0 || p as usize >= write_len {
                return Err(KernelError::OutOfBounds {
                    kernel: name.to_string(),
                    reason: format!(
                        "{}={trip}, {}={e}: writes {}[{p}], extent is {write_len}",
                        nest.loop_var, nest.enum_var, nest.write_array
                    ),
                });
            }
            let slot = &mut out[p as usize];
            if slot.is_some() {
                return Err(KernelError::Coverage {
                    kernel: name.to_string(),
                    reason: format!(
                        "{}[{p}] written twice (second at {}={trip}, {}={e})",
                        nest.write_array, nest.loop_var, nest.enum_var
                    ),
                });
            }
            *slot = Some(form);
        }
    }
    out.into_iter()
        .enumerate()
        .map(|(p, form)| {
            form.ok_or_else(|| KernelError::Coverage {
                kernel: name.to_string(),
                reason: format!("{}[{p}] never written", nest.write_array),
            })
        })
        .collect()
}

/// Proves the parsed kernel computes `R · X · Rᵀ` for the rounded rows
/// `R` of `recipe`, with `recipe ≡ t` proven separately over exact
/// rationals. See the module docs for the full chain.
pub fn verify_kernel(
    k: &ParsedKernel,
    recipe: &Recipe,
    t: &RatMat,
) -> Result<KernelProof, KernelError> {
    let name = k.name.as_str();

    // Link 0: the source recipe itself is exactly `T` (re-proven here
    // rather than trusted from the build log).
    wino_symbolic::verify_recipe(recipe, t)
        .map_err(|e| serr(name, format!("source recipe fails exact verification: {e}")))?;
    if k.n_in != recipe.n_in || k.n_out != recipe.n_out {
        return Err(serr(
            name,
            format!(
                "pass arity {}→{} but recipe is {}→{}",
                k.n_in, k.n_out, recipe.n_in, recipe.n_out
            ),
        ));
    }
    if k.fingerprint != recipe.fingerprint() {
        return Err(KernelError::Fingerprint {
            kernel: name.to_string(),
            baked: k.fingerprint,
            recipe: recipe.fingerprint(),
        });
    }

    // Structural extents: the kernel's own debug_asserts must promise
    // exactly the n² tile footprints the SoA contract states.
    for (what, got, want) in [
        ("src bound", k.src_bound, k.n_in * k.n_in),
        ("dst bound", k.dst_bound, k.n_out * k.n_out),
        ("mid length", k.mid_len, k.n_out * k.n_in),
    ] {
        if got != want {
            return Err(serr(name, format!("{what} is {got}, expected {want}")));
        }
    }
    if !k.has_scalar_entry {
        return Err(serr(name, "missing `_scalar` entry point"));
    }
    if !k.has_avx2_entry {
        return Err(serr(name, "missing `_avx2` entry point"));
    }
    if !k.avx2_has_target_feature {
        return Err(serr(
            name,
            "`_avx2` entry lacks #[target_feature(avx2,fma)]",
        ));
    }

    // Link 1: pass body ≡ rounded recipe, row for row.
    let (rounded, _) = round_recipe(name, recipe)?;
    let (want_rows, _) = abstract_outputs(&rounded);
    let got_rows = abstract_pass(k)?;
    for (row, (got, want)) in got_rows.iter().zip(&want_rows).enumerate() {
        if got != want {
            return Err(KernelError::RowMismatch {
                kernel: name.to_string(),
                row,
                got: got.to_string(),
                want: want.to_string(),
            });
        }
    }

    // Link 2: is rounding the identity? Then kernel rows ≡ T exactly.
    let lossless = got_rows == symbolic_matvec(t);

    // Link 3: 2-D composition. Symbolic src positions In(a·n_in + b),
    // column pass then row pass, demand dst[(i,j)] = Σ R[i,a]R[j,b]·X[(a,b)].
    let src: Vec<LinExpr> = (0..k.n_in * k.n_in)
        .map(|p| LinExpr::term(Node::In(p), Rational::one()))
        .collect();
    let mid = simulate_nest(k, &k.col, &got_rows, &src, "src", k.mid_len)?;
    let dst = simulate_nest(k, &k.row, &got_rows, &mid, "mid", k.dst_bound)?;
    if k.col.write_array != "mid" || k.row.write_array != "dst" {
        return Err(serr(
            name,
            format!(
                "loops write `{}` then `{}`, expected `mid` then `dst`",
                k.col.write_array, k.row.write_array
            ),
        ));
    }
    let coeff = |r: usize, c: usize| got_rows[r].coeff(&Node::In(c));
    for i in 0..k.n_out {
        for j in 0..k.n_out {
            let mut want = LinExpr::zero();
            for a in 0..k.n_in {
                let ra = coeff(i, a);
                if ra == Rational::zero() {
                    continue;
                }
                for b in 0..k.n_in {
                    let prod = &ra * &coeff(j, b);
                    if prod != Rational::zero() {
                        want.add_term(Node::In(a * k.n_in + b), prod);
                    }
                }
            }
            let pos = i * k.n_out + j;
            if dst[pos] != want {
                return Err(KernelError::Composition {
                    kernel: name.to_string(),
                    pos,
                    got: dst[pos].to_string(),
                    want: want.to_string(),
                });
            }
        }
    }

    Ok(KernelProof {
        name: name.to_string(),
        n_in: k.n_in,
        n_out: k.n_out,
        n_stmts: k.stmts.len(),
        lossless,
        fingerprint: k.fingerprint,
    })
}

/// Interprets the parsed pass body concretely in f32, mirroring the
/// lane semantics of the emitted helpers (`vfma` = `mul_add`). Used by
/// tests to cross-check the parser against the recipe interpreter
/// bit-for-bit — a proof about the IR is only as good as the parse
/// that produced it.
pub fn eval_parsed_pass(k: &ParsedKernel, input: &[f32]) -> Result<Vec<f32>, KernelError> {
    let name = k.name.as_str();
    if input.len() != k.n_in {
        return Err(serr(name, "input length != pass arity"));
    }
    let mut env: HashMap<KReg, f32> = HashMap::new();
    let read = |env: &HashMap<KReg, f32>, r: KReg| -> Result<f32, KernelError> {
        match r {
            KReg::In(i) => input
                .get(i)
                .copied()
                .ok_or_else(|| serr(name, format!("x[{i}] out of range"))),
            reg => env
                .get(&reg)
                .copied()
                .ok_or_else(|| serr(name, format!("`{reg}` read before definition"))),
        }
    };
    for st in &k.stmts {
        let v = match st.op {
            KOp::Zero => 0.0,
            KOp::Copy(a) => read(&env, a)?,
            KOp::Neg(a) => -read(&env, a)?,
            KOp::Add(a, b) => read(&env, a)? + read(&env, b)?,
            KOp::Sub(a, b) => read(&env, a)? - read(&env, b)?,
            KOp::Mul(c, a) => f32::from_bits(c) * read(&env, a)?,
            KOp::Fma(c, a, b) => f32::from_bits(c).mul_add(read(&env, a)?, read(&env, b)?),
        };
        env.insert(st.dst, v);
    }
    k.ret.iter().map(|&r| read(&env, r)).collect()
}

// ---------------------------------------------------------------------
// Sweeps
// ---------------------------------------------------------------------

fn check_spec_pair(parsed: &[ParsedKernel], m: usize, r: usize, origin: &str) -> Vec<KernelCheck> {
    let mut out = Vec::new();
    let gen = WinogradSpec::new(m, r)
        .map_err(|e| e.to_string())
        .and_then(|spec| {
            TransformRecipes::generate(spec, RecipeOptions::optimized()).map_err(|e| e.to_string())
        });
    let recipes = match gen {
        Ok(r) => r,
        Err(e) => {
            out.push(KernelCheck {
                label: format!("F({m},{r}) ({origin})"),
                result: Err(serr(
                    &format!("f{m}x{r}"),
                    format!("recipe generation failed: {e}"),
                )),
            });
            return out;
        }
    };
    for (kind, recipe, t) in [
        ("input", &recipes.input, &recipes.matrices.b_t),
        ("output", &recipes.output, &recipes.matrices.a_t),
    ] {
        let kname = format!("f{m}x{r}_{kind}");
        let result = match parsed.iter().find(|k| k.name == kname) {
            Some(k) => verify_kernel(k, recipe, t),
            None => Err(serr(
                &kname,
                format!("kernel not present in {origin} source"),
            )),
        };
        out.push(KernelCheck {
            label: format!("F({m},{r}) {kind} ({origin})"),
            result,
        });
    }
    out
}

/// Verifies every kernel the running `wino-conv` build embeds: parses
/// `compiled_transforms.rs` out of the binary (via `include_str!`) and
/// proves each kernel in the build table against freshly generated
/// recipes and matrices. This is the proof-gate upgrade over the
/// fingerprint check: the shipped *text* is re-proven, not merely
/// matched by hash.
pub fn verify_embedded_kernels() -> Vec<KernelCheck> {
    let source = wino_conv::compiled::generated_source();
    let parsed = match parse_kernels(source) {
        Ok(p) => p,
        Err(e) => {
            return vec![KernelCheck {
                label: "embedded kernel table".to_string(),
                result: Err(e),
            }]
        }
    };
    let specs = wino_conv::compiled::compiled_specs();
    let mut out = Vec::new();
    // Every kernel in the source must belong to the spec table — an
    // extra kernel would be unproven dead code riding in the binary.
    if parsed.len() != 2 * specs.len() {
        out.push(KernelCheck {
            label: "embedded kernel table".to_string(),
            result: Err(serr(
                "<table>",
                format!(
                    "generated source holds {} kernels, spec table implies {}",
                    parsed.len(),
                    2 * specs.len()
                ),
            )),
        });
    }
    for &(m, r) in specs {
        out.extend(check_spec_pair(&parsed, m, r, "embedded"));
    }
    out
}

/// Verifies fresh `emit_soa_transform` output for a spread of
/// configurations, including ones the build table does not ship — a
/// proof about the *emitter*, not just the three checked-in tables.
pub fn verify_emitter_kernels() -> Vec<KernelCheck> {
    let mut out = Vec::new();
    for &(m, r) in &[(2usize, 3usize), (4, 3), (6, 3), (4, 5), (2, 5)] {
        let Ok(spec) = WinogradSpec::new(m, r) else {
            continue;
        };
        let Ok(recipes) = TransformRecipes::generate(spec, RecipeOptions::optimized()) else {
            continue;
        };
        for (kind, recipe, t) in [
            ("input", &recipes.input, &recipes.matrices.b_t),
            ("output", &recipes.output, &recipes.matrices.a_t),
        ] {
            let kname = format!("f{m}x{r}_{kind}");
            let source = emit_soa_transform(&kname, recipe, "emitter-sweep kernel");
            let result = parse_kernels(&source).and_then(|parsed| match parsed.as_slice() {
                [k] => verify_kernel(k, recipe, t),
                other => Err(serr(
                    &kname,
                    format!(
                        "expected 1 kernel in emitter output, parsed {}",
                        other.len()
                    ),
                )),
            });
            out.push(KernelCheck {
                label: format!("F({m},{r}) {kind} (emitter)"),
                result,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recipes(m: usize, r: usize) -> TransformRecipes {
        TransformRecipes::generate(WinogradSpec::new(m, r).unwrap(), RecipeOptions::optimized())
            .unwrap()
    }

    fn emitted(m: usize, r: usize, kind: &str) -> (String, Recipe, RatMat) {
        let rs = recipes(m, r);
        let (recipe, t) = match kind {
            "input" => (rs.input.clone(), rs.matrices.b_t.clone()),
            _ => (rs.output.clone(), rs.matrices.a_t.clone()),
        };
        let name = format!("f{m}x{r}_{kind}");
        let src = emit_soa_transform(&name, &recipe, "test kernel");
        (src, recipe, t)
    }

    fn verify_text(src: &str, recipe: &Recipe, t: &RatMat) -> Result<KernelProof, KernelError> {
        let parsed = parse_kernels(src).expect("tampered text must still parse");
        assert_eq!(parsed.len(), 1);
        verify_kernel(&parsed[0], recipe, t)
    }

    #[test]
    fn embedded_kernels_all_prove() {
        let checks = verify_embedded_kernels();
        assert_eq!(checks.len(), 6, "three specs × input/output");
        for c in &checks {
            assert!(
                c.passed(),
                "{}: {}",
                c.label,
                c.result.as_ref().unwrap_err()
            );
        }
    }

    #[test]
    fn emitter_sweep_proves_unshipped_configs() {
        let checks = verify_emitter_kernels();
        assert!(checks.len() >= 8, "sweep should cover at least 4 specs");
        for c in &checks {
            assert!(
                c.passed(),
                "{}: {}",
                c.label,
                c.result.as_ref().unwrap_err()
            );
        }
    }

    #[test]
    fn dyadic_specs_prove_lossless() {
        // F(2,3): every BT/AT entry is dyadic, so the kernel rows must
        // equal T exactly, not merely the rounded recipe.
        let (src, recipe, t) = emitted(2, 3, "input");
        let proof = verify_text(&src, &recipe, &t).unwrap();
        assert!(proof.lossless);
        assert_eq!(proof.n_in, 4);
        assert_eq!(proof.n_out, 4);
    }

    // ---- negative fixtures: each tamper rejected with a precise
    // diagnostic (ISSUE satellite c) ----

    #[test]
    fn tampered_coefficient_rejected() {
        let (src, recipe, t) = emitted(4, 3, "input");
        // Flip one baked constant's sign bit.
        let pos = src.find("f32::from_bits(0x").expect("kernel has constants");
        let hex_start = pos + "f32::from_bits(0x".len();
        let hex: String = src[hex_start..hex_start + 8].to_string();
        let bits = u32::from_str_radix(&hex, 16).unwrap() ^ 0x8000_0000;
        let tampered = format!("{}{:08x}{}", &src[..hex_start], bits, &src[hex_start + 8..]);
        let err = verify_text(&tampered, &recipe, &t).unwrap_err();
        assert!(
            matches!(err, KernelError::RowMismatch { .. }),
            "want RowMismatch, got: {err}"
        );
    }

    #[test]
    fn swapped_lane_stride_rejected() {
        let (src, recipe, t) = emitted(2, 3, "input");
        // Transpose the column-pass scatter: mid[i*4+j] → mid[j*4+i].
        let tampered = src.replace("mid[i * 4 + j] = v;", "mid[j * 4 + i] = v;");
        assert_ne!(tampered, src, "fixture must actually tamper");
        let err = verify_text(&tampered, &recipe, &t).unwrap_err();
        assert!(
            matches!(err, KernelError::Composition { .. }),
            "want Composition (BT is not symmetric), got: {err}"
        );
    }

    #[test]
    fn out_of_bounds_read_rejected() {
        let (src, recipe, t) = emitted(2, 3, "input");
        // src has 16 positions; push the last column-pass gather past it.
        let tampered = src.replace("src[12 + j]", "src[16 + j]");
        assert_ne!(tampered, src);
        let err = verify_text(&tampered, &recipe, &t).unwrap_err();
        match &err {
            KernelError::OutOfBounds { reason, .. } => {
                assert!(
                    reason.contains("src[16]"),
                    "diagnostic should name the access: {reason}"
                );
            }
            other => panic!("want OutOfBounds, got: {other}"),
        }
    }

    #[test]
    fn swapped_return_order_rejected() {
        let (src, recipe, t) = emitted(2, 3, "input");
        let tampered = src.replace("[y0, y1, y2, y3]", "[y1, y0, y2, y3]");
        assert_ne!(tampered, src);
        let err = verify_text(&tampered, &recipe, &t).unwrap_err();
        assert!(
            matches!(err, KernelError::RowMismatch { row: 0, .. }),
            "want RowMismatch at row 0, got: {err}"
        );
    }

    #[test]
    fn fingerprint_drift_rejected() {
        let (src, recipe, t) = emitted(2, 3, "input");
        let parsed = parse_kernels(&src).unwrap();
        let mut k = parsed[0].clone();
        k.fingerprint ^= 1;
        let err = verify_kernel(&k, &recipe, &t).unwrap_err();
        assert!(matches!(err, KernelError::Fingerprint { .. }), "{err}");
    }

    #[test]
    fn missing_avx2_entry_rejected() {
        let (src, recipe, t) = emitted(2, 3, "input");
        // Drop the target_feature attribute: entry exists but is not
        // actually compiled for AVX2 — the dispatch contract is broken.
        let tampered = src.replace(
            "#[target_feature(enable = \"avx2\", enable = \"fma\")]\n",
            "",
        );
        assert_ne!(tampered, src);
        let err = verify_text(&tampered, &recipe, &t).unwrap_err();
        assert!(
            matches!(err, KernelError::Structural { ref reason, .. } if reason.contains("target_feature")),
            "{err}"
        );
    }

    #[test]
    fn parsed_pass_is_bit_identical_to_recipe_interpreter() {
        // The parser cross-check: interpreting the parsed IR in f32
        // must retire exactly the interpreter's ops.
        for (m, r) in [(2usize, 3usize), (4, 3), (6, 3)] {
            for kind in ["input", "output"] {
                let (src, recipe, _) = emitted(m, r, kind);
                let parsed = parse_kernels(&src).unwrap();
                let compiled = recipe.compile::<f32>();
                let mut scratch = vec![0.0f32; compiled.scratch_len()];
                let input: Vec<f32> = (0..recipe.n_in)
                    .map(|i| (i as f32 * 0.37 - 1.1) * 1.7)
                    .collect();
                let mut want = vec![0.0f32; recipe.n_out];
                compiled.run(&input, &mut want, &mut scratch);
                let got = eval_parsed_pass(&parsed[0], &input).unwrap();
                for (o, (g, w)) in got.iter().zip(&want).enumerate() {
                    assert_eq!(
                        g.to_bits(),
                        w.to_bits(),
                        "F({m},{r}) {kind} lane {o}: {g} vs {w}"
                    );
                }
            }
        }
    }
}
