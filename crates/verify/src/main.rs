//! `wino-verify` — run all static analyses and fail on any violation.
//!
//! Exit status 0 means: every recipe in the shipped DB sweep is proven
//! equivalent to its transformation matrix over exact rationals, every
//! kernel template and generated plan lints clean, and the
//! unsafe-invariant audits hold. Wired into `scripts/ci.sh`.

use std::process::ExitCode;
use std::time::Instant;

use wino_verify::{run_full_verification, RecipeSummary};

fn print_recipe_table(recipes: &[RecipeSummary]) {
    println!(
        "  {:<28} {:>6} {:>6} {:>6} {:>6} {:>10}",
        "recipe", "add", "mul", "fma", "instr", "growth"
    );
    for s in recipes {
        if let Ok(p) = &s.result {
            println!(
                "  {:<28} {:>6} {:>6} {:>6} {:>6} {:>10.2}",
                s.label(),
                p.ops.add,
                p.ops.mul,
                p.ops.fma,
                p.n_instr,
                p.coeff_growth()
            );
        }
    }
}

fn main() -> ExitCode {
    let t0 = Instant::now();
    let report = run_full_verification();
    let elapsed = t0.elapsed();

    let total = report.recipes.len();
    let failed = report.failed_recipes();
    println!(
        "recipe verifier: {}/{} recipes proven equivalent over exact rationals",
        total - failed.len(),
        total
    );
    if let Some((label, growth)) = report.peak_coeff_growth() {
        println!("  peak coefficient growth: {growth:.2}x ({label})");
    }
    // Full diagnostics for the headline pipeline; the other pipelines
    // are proven too, just not tabulated.
    let optimized: Vec<RecipeSummary> = report
        .recipes
        .iter()
        .filter(|s| s.pipeline == "optimized")
        .cloned()
        .collect();
    print_recipe_table(&optimized);

    for s in &failed {
        if let Err(e) = &s.result {
            println!("FAIL {}: {e}", s.label());
        }
    }

    println!(
        "template lint: {} static issue(s), {} generated-plan issue(s)",
        report.template_issues.len(),
        report.plan_issues.len()
    );
    for issue in report.template_issues.iter().chain(&report.plan_issues) {
        println!("FAIL {issue}");
    }

    println!(
        "unsafe audit: {} issue(s) (debug ownership ledger: {})",
        report.audit_issues.len(),
        if report.debug_checks {
            "compiled in"
        } else {
            "release build, contract trusted"
        }
    );
    for issue in &report.audit_issues {
        println!("FAIL {issue}");
    }

    let kernels_ok = report.kernel_checks.iter().filter(|c| c.passed()).count();
    println!(
        "compiled kernels: {kernels_ok}/{} proven equal to their transforms",
        report.kernel_checks.len()
    );
    for c in &report.kernel_checks {
        match &c.result {
            Ok(p) => println!(
                "  {:<28} {:>3} stmts, {}→{}, {}",
                c.label,
                p.n_stmts,
                p.n_in,
                p.n_out,
                if p.lossless {
                    "lossless (= T exactly)"
                } else {
                    "constants rounded to f32"
                }
            ),
            Err(e) => println!("FAIL {}: {e}", c.label),
        }
    }

    let index_ok = report.index_checks.iter().filter(|c| c.passed()).count();
    println!(
        "index analysis: {index_ok}/{} schedule points proven \
         (coverage, disjointness, bounds)",
        report.index_checks.len()
    );
    for c in report.failed_index_checks() {
        for issue in &c.issues {
            println!("FAIL {issue}");
        }
    }

    println!(
        "safety lint: {} unsafe site(s) across {} files, {} unannotated; \
         avx2 pointer audit: {} issue(s)",
        report.safety.unsafe_sites,
        report.safety.files_scanned,
        report.safety.issues.len(),
        report.pointer_audit.len()
    );
    for issue in report.safety.issues.iter().chain(&report.pointer_audit) {
        println!("FAIL {issue}");
    }

    println!("wino-verify: completed in {:.2?}", elapsed);
    if report.passed() {
        println!("wino-verify: PASS");
        ExitCode::SUCCESS
    } else {
        println!("wino-verify: FAIL");
        ExitCode::FAILURE
    }
}
