//! Unsafe-audit expansion: SAFETY-comment lint and AVX2 pointer audit.
//!
//! Two layers of defense around every `unsafe` in the workspace:
//!
//! 1. **SAFETY-comment lint.** CI's primary enforcement is clippy's
//!    `undocumented_unsafe_blocks` (promoted to deny in `scripts/ci.sh`).
//!    This module is the fallback scanner behind it: a small Rust
//!    tokenizer (comments, strings, raw strings, char literals,
//!    lifetimes) walks every workspace source file and demands each
//!    `unsafe` token — block, fn, impl, or trait — carry a
//!    `// SAFETY:` comment or a `# Safety` doc section in the lines
//!    above. Running our own scanner means a clippy version change or
//!    an `#[allow]` sneaking in cannot silently drop the invariant,
//!    and it covers the `shims/` and build scripts uniformly.
//! 2. **AVX2 pointer audit.** The `#[target_feature]` entry points are
//!    the only places raw pointer arithmetic happens. For the GEMM
//!    micro-kernel the audit re-derives each pointer-walk bound from
//!    the exported schedule constants (interval arithmetic over the k
//!    loop) and then checks the *source text* still carries the
//!    matching `debug_assert!` — every audited invariant is
//!    cross-checked at runtime in debug builds, so the static claim
//!    and the executable check cannot drift apart unnoticed.

use std::fmt;
use std::path::{Path, PathBuf};

use wino_gemm::{MR_AVX2, NR_AVX2};

/// One lint finding: an `unsafe` site without its safety rationale, or
/// an audit invariant whose debug-assert anchor is missing.
#[derive(Clone, Debug)]
pub struct SafetyIssue {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: usize,
    /// What is missing.
    pub reason: String,
}

impl fmt::Display for SafetyIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.file, self.line, self.reason)
    }
}

/// Outcome of the workspace scan.
#[derive(Clone, Debug)]
pub struct SafetyReport {
    /// `.rs` files tokenized.
    pub files_scanned: usize,
    /// Total `unsafe` tokens found (annotated or not).
    pub unsafe_sites: usize,
    /// Sites lacking a SAFETY rationale.
    pub issues: Vec<SafetyIssue>,
}

impl SafetyReport {
    /// Whether every unsafe site carries its rationale.
    pub fn passed(&self) -> bool {
        self.issues.is_empty()
    }
}

/// How many lines above an `unsafe` token the scanner searches for a
/// `// SAFETY:` / `# Safety` marker. Wide enough for a doc block plus
/// `#[cfg]`/`#[target_feature]`/`#[allow]` attribute stacks between
/// the doc and the `unsafe fn` line; narrow enough that a comment for
/// one site cannot excuse the next.
const SAFETY_LOOKBACK_LINES: usize = 12;

/// Positions (1-based lines) of every `unsafe` keyword token in
/// `source`, skipping comments, string/char literals, raw strings,
/// and lifetimes. This is the tokenizer that keeps a codegen template
/// containing the *text* "unsafe" from tripping the lint.
pub fn unsafe_token_lines(source: &str) -> Vec<usize> {
    let chars: Vec<char> = source.chars().collect();
    let n = chars.len();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    let bump = |c: char, line: &mut usize| {
        if c == '\n' {
            *line += 1;
        }
    };
    while i < n {
        let c = chars[i];
        match c {
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                // Nested block comments, per Rust.
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        bump(chars[i], &mut line);
                        i += 1;
                    }
                }
            }
            '"' => {
                i += 1;
                while i < n {
                    match chars[i] {
                        // An escape may be `\<newline>` (line
                        // continuation) — the skipped char still
                        // advances the line counter.
                        '\\' => {
                            if i + 1 < n {
                                bump(chars[i + 1], &mut line);
                            }
                            i += 2;
                        }
                        '"' => {
                            i += 1;
                            break;
                        }
                        other => {
                            bump(other, &mut line);
                            i += 1;
                        }
                    }
                }
            }
            '\'' => {
                // Char literal vs lifetime: a literal closes with `'`
                // within a couple of chars (or after an escape); a
                // lifetime is `'` + identifier with no closing quote.
                if i + 1 < n && chars[i + 1] == '\\' {
                    i += 2;
                    while i < n && chars[i] != '\'' {
                        i += 1;
                    }
                    i += 1;
                } else if i + 2 < n && chars[i + 2] == '\'' {
                    bump(chars[i + 1], &mut line);
                    i += 3;
                } else {
                    i += 1; // lifetime quote
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let ident: String = chars[start..i].iter().collect();
                // Raw-string prefixes: r"…", r#"…"#, br#"…"#.
                if (ident == "r" || ident == "br") && i < n && (chars[i] == '"' || chars[i] == '#')
                {
                    let mut hashes = 0usize;
                    while i < n && chars[i] == '#' {
                        hashes += 1;
                        i += 1;
                    }
                    if i < n && chars[i] == '"' {
                        i += 1;
                        'raw: while i < n {
                            if chars[i] == '"' {
                                let mut j = i + 1;
                                let mut seen = 0usize;
                                while j < n && seen < hashes && chars[j] == '#' {
                                    seen += 1;
                                    j += 1;
                                }
                                if seen == hashes {
                                    i = j;
                                    break 'raw;
                                }
                            }
                            bump(chars[i], &mut line);
                            i += 1;
                        }
                    }
                } else if ident == "b" && i < n && chars[i] == '\'' {
                    // Byte char literal b'x'.
                    i += 1;
                    if i < n && chars[i] == '\\' {
                        i += 1;
                    }
                    while i < n && chars[i] != '\'' {
                        i += 1;
                    }
                    i += 1;
                } else if ident == "unsafe" {
                    out.push(line);
                }
            }
            other => {
                bump(other, &mut line);
                i += 1;
            }
        }
    }
    out
}

/// Does any of the `SAFETY_LOOKBACK_LINES` lines at or above
/// `line` (1-based) carry a safety rationale marker?
fn has_safety_marker(lines: &[&str], line: usize) -> bool {
    let hi = line.min(lines.len());
    let lo = hi.saturating_sub(SAFETY_LOOKBACK_LINES);
    lines[lo..hi]
        .iter()
        .any(|l| l.contains("SAFETY:") || l.contains("# Safety"))
}

/// Scans one source file's text; `name` is used in diagnostics.
pub fn scan_source(name: &str, source: &str) -> (usize, Vec<SafetyIssue>) {
    let lines: Vec<&str> = source.lines().collect();
    let sites = unsafe_token_lines(source);
    let issues = sites
        .iter()
        .filter(|&&l| !has_safety_marker(&lines, l))
        .map(|&l| SafetyIssue {
            file: name.to_string(),
            line: l,
            reason: "`unsafe` without a `// SAFETY:` comment or `# Safety` doc section".to_string(),
        })
        .collect();
    (sites.len(), issues)
}

/// Locates the workspace root from this crate's manifest dir — stable
/// whether the caller runs from the workspace root (the CLI) or a
/// crate dir (unit tests).
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/verify has a workspace root two levels up")
        .to_path_buf()
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().collect();
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name != "target" && !name.starts_with('.') {
                collect_rs_files(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Scans every `.rs` file under `crates/`, `shims/`, `src/`, and
/// `tests/` of the workspace — production code, build scripts, shims,
/// and tests alike; an unsound test helper corrupts results just as
/// effectively as an unsound kernel.
pub fn scan_workspace_unsafe() -> SafetyReport {
    let root = workspace_root();
    let mut files = Vec::new();
    for top in ["crates", "shims", "src", "tests"] {
        collect_rs_files(&root.join(top), &mut files);
    }
    let mut report = SafetyReport {
        files_scanned: 0,
        unsafe_sites: 0,
        issues: Vec::new(),
    };
    for path in files {
        let Ok(source) = std::fs::read_to_string(&path) else {
            continue;
        };
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(&path)
            .to_string_lossy()
            .into_owned();
        let (sites, issues) = scan_source(&rel, &source);
        report.files_scanned += 1;
        report.unsafe_sites += sites;
        report.issues.extend(issues);
    }
    report
}

/// k-loop depths the pointer audit proves bounds for: every `kb` the
/// blocking sweep can produce (1..=KC plus ragged tails) is covered by
/// monotonicity once the endpoints and a spread of interior points
/// hold; the audit checks the closed-form inequality for each.
const AUDITED_KB: &[usize] = &[1, 2, 3, 5, 8, 16, 64, 127, 128, 129, 1024];

/// Statically audits the AVX2 micro-kernel's pointer walk against the
/// exported schedule constants, then anchors each invariant to the
/// `debug_assert!` that cross-checks it at runtime.
///
/// The kernel advances `ap` by [`MR_AVX2`] and `bp` by [`NR_AVX2`] per
/// k step and reads `*ap.add(r)` (r < MR) plus one 8-lane load at
/// `bp`. The slivers are `kb·MR` and `kb·NR` floats (proven in-bounds
/// inside the pack buffers by the index analysis), so the obligations
/// are: `(kb-1)·MR + MR ≤ kb·MR`, `(kb-1)·NR + 8 ≤ kb·NR`, and the
/// vector width actually equals `NR_AVX2`.
pub fn audit_avx2_pointer_paths() -> Vec<SafetyIssue> {
    let mut issues = Vec::new();
    let file = "crates/gemm/src/blocked.rs".to_string();
    let mut fail = |reason: String| {
        issues.push(SafetyIssue {
            file: file.clone(),
            line: 0,
            reason,
        })
    };

    // Invariant 1: the 8-lane B load matches the B sliver stride —
    // if NR_AVX2 ever changed without rewriting the kernel, the load
    // would read into the next sliver.
    if NR_AVX2 != 8 {
        fail(format!(
            "AVX2 B load is 8 lanes but NR_AVX2 = {NR_AVX2}; final k-step load escapes the sliver"
        ));
    }
    for &kb in AUDITED_KB {
        // Invariant 2: last A read (kb-1)·MR + (MR-1) is inside kb·MR.
        let last_a = (kb - 1) * MR_AVX2 + (MR_AVX2 - 1);
        if last_a >= kb * MR_AVX2 {
            fail(format!(
                "kb={kb}: A pointer walk reads offset {last_a} of a {}-float sliver",
                kb * MR_AVX2
            ));
        }
        // Invariant 3: last B load [(kb-1)·NR, (kb-1)·NR+8) ends at kb·NR.
        let last_b_end = (kb - 1) * NR_AVX2 + 8;
        if last_b_end > kb * NR_AVX2 {
            fail(format!(
                "kb={kb}: B load ends at {last_b_end} past the {}-float sliver",
                kb * NR_AVX2
            ));
        }
    }

    // Anchor: each audited invariant must be cross-checked by a
    // debug_assert in the kernel source, so debug builds re-verify at
    // runtime what this audit proved statically. A refactor that drops
    // an assert (or renames the sliver) fails here.
    let source = match std::fs::read_to_string(workspace_root().join(&file)) {
        Ok(s) => s,
        Err(e) => {
            fail(format!("cannot read kernel source for assert anchors: {e}"));
            return issues;
        }
    };
    for anchor in [
        "debug_assert!(a_sliver.len() >= kb * MR_AVX2);",
        "debug_assert!(b_sliver.len() >= kb * NR_AVX2);",
        "debug_assert!((1..=MR_AVX2).contains(&rows));",
        "debug_assert!((1..=NR_AVX2).contains(&cols));",
    ] {
        if !source.contains(anchor) {
            fail(format!(
                "audited invariant lost its runtime cross-check: `{anchor}` not found"
            ));
        }
    }
    // The C-side bound is asserted where the offsets are computed.
    if !source.contains("debug_assert!(c_off + (t.rows - 1) * ldc + t.cols <= c.len());") {
        fail("macro_kernel lost the C write-window debug_assert".to_string());
    }
    issues
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizer_skips_non_code_unsafe() {
        let src = r##"
// unsafe in a line comment
/* unsafe in a block /* nested unsafe */ comment */
let a = "unsafe in a string";
let b = r#"unsafe in a raw string"#;
let c = 'u';
fn lifetime<'unsafe_looking>() {}
"##;
        assert!(unsafe_token_lines(src).is_empty());
    }

    #[test]
    fn tokenizer_finds_real_unsafe() {
        let src = "fn f() {\n    let x = unsafe { g() };\n}\nunsafe fn g() {}\n";
        assert_eq!(unsafe_token_lines(src), vec![2, 4]);
    }

    #[test]
    fn tokenizer_counts_string_continuation_lines() {
        // A `\<newline>` escape inside a string spans lines; the line
        // counter must not lose them or every later site misreports.
        let src = "let s = \"first \\\n    second\";\nunsafe fn g() {}\n";
        assert_eq!(unsafe_token_lines(src), vec![3]);
    }

    #[test]
    fn unannotated_unsafe_is_flagged() {
        let src = "fn f() {\n    let x = unsafe { g() };\n}\n";
        let (sites, issues) = scan_source("fixture.rs", src);
        assert_eq!(sites, 1);
        assert_eq!(issues.len(), 1);
        assert_eq!(issues[0].line, 2);
    }

    #[test]
    fn safety_comment_satisfies_the_lint() {
        let src = "fn f() {\n    // SAFETY: g has no preconditions here.\n    let x = unsafe { g() };\n}\n";
        let (sites, issues) = scan_source("fixture.rs", src);
        assert_eq!(sites, 1);
        assert!(issues.is_empty());
    }

    #[test]
    fn safety_doc_section_satisfies_the_lint() {
        let src = "/// Does a thing.\n///\n/// # Safety\n/// Caller must check CPUID.\n#[target_feature(enable = \"avx2\")]\npub unsafe fn f() {}\n";
        let (_, issues) = scan_source("fixture.rs", src);
        assert!(issues.is_empty());
    }

    #[test]
    fn distant_comment_does_not_excuse_a_site() {
        let mut src = String::from("// SAFETY: only covers nearby lines.\n");
        for _ in 0..SAFETY_LOOKBACK_LINES {
            src.push_str("fn filler() {}\n");
        }
        src.push_str("fn f() { unsafe { g() } }\n");
        let (_, issues) = scan_source("fixture.rs", &src);
        assert_eq!(issues.len(), 1);
    }

    #[test]
    fn workspace_is_fully_annotated() {
        let report = scan_workspace_unsafe();
        assert!(
            report.files_scanned > 50,
            "scan walked {} files",
            report.files_scanned
        );
        assert!(
            report.unsafe_sites > 30,
            "found {} unsafe sites",
            report.unsafe_sites
        );
        let rendered: Vec<String> = report.issues.iter().map(|i| i.to_string()).collect();
        assert!(
            report.passed(),
            "unannotated unsafe sites:\n{}",
            rendered.join("\n")
        );
    }

    #[test]
    fn avx2_pointer_audit_is_clean() {
        let issues = audit_avx2_pointer_paths();
        let rendered: Vec<String> = issues.iter().map(|i| i.to_string()).collect();
        assert!(issues.is_empty(), "{}", rendered.join("\n"));
    }
}
