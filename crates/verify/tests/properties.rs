//! Property tests for the verifier itself: any recipe the lowering
//! pipeline produces — for random matrices or real `F(m,r)`
//! transforms, under every pipeline-switch combination — must verify
//! against its generating matrix, and the CSE stage must never change
//! the proven linear form.

use proptest::prelude::*;
use wino_num::{RatMat, Rational};
use wino_symbolic::{
    eliminate_common_subexpressions, generate_naive_recipe, generate_recipe, symbolic_matvec,
    LinExpr, RecipeOptions,
};
use wino_transform::{TransformRecipes, WinogradSpec};
use wino_verify::{abstract_outputs, verify_recipe};

/// Small rationals weighted toward the values Winograd matrices
/// actually contain (0, ±1, ±1/2, ±2, …).
fn arb_coeff() -> impl Strategy<Value = Rational> {
    prop_oneof![
        3 => Just(Rational::zero()),
        2 => Just(Rational::one()),
        2 => Just(Rational::from_int(-1)),
        1 => Just(Rational::from_frac(1, 2)),
        1 => Just(Rational::from_frac(-1, 2)),
        1 => Just(Rational::from_int(2)),
        1 => Just(Rational::from_int(-2)),
        1 => (-12i64..=12, 1i64..=6).prop_map(|(a, b)| Rational::from_frac(a, b)),
    ]
}

fn arb_matrix(max_dim: usize) -> impl Strategy<Value = RatMat> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(move |(rows, cols)| {
        proptest::collection::vec(arb_coeff(), rows * cols)
            .prop_map(move |vals| RatMat::from_fn(rows, cols, |i, j| vals[i * cols + j].clone()))
    })
}

/// Valid `F(m,r)` specs within the Table-3 α range.
fn arb_spec() -> impl Strategy<Value = WinogradSpec> {
    (2usize..=10, prop_oneof![Just(3usize), Just(5), Just(7)]).prop_filter_map(
        "alpha in [4,16]",
        |(m, r)| {
            WinogradSpec::new(m, r)
                .ok()
                .filter(|s| (4..=16).contains(&s.alpha()))
        },
    )
}

/// Inlines a CSE program's binary definitions back into closed linear
/// forms over the original inputs, so its rows can be compared against
/// the pre-CSE symbolic rows.
fn inline_cse_rows(prog: &wino_symbolic::CseProgram) -> Vec<LinExpr> {
    let mut defs: Vec<LinExpr> = Vec::with_capacity(prog.defs.len());
    for def in &prog.defs {
        let mut closed = LinExpr::zero();
        for (node, coeff) in def.iter() {
            match node {
                wino_symbolic::Node::In(_) => {
                    closed.add_scaled(&LinExpr::term(*node, Rational::one()), coeff)
                }
                wino_symbolic::Node::Tmp(d) => closed.add_scaled(&defs[*d], coeff),
            }
        }
        defs.push(closed);
    }
    prog.rows
        .iter()
        .map(|row| {
            let mut closed = LinExpr::zero();
            for (node, coeff) in row.iter() {
                match node {
                    wino_symbolic::Node::In(_) => {
                        closed.add_scaled(&LinExpr::term(*node, Rational::one()), coeff)
                    }
                    wino_symbolic::Node::Tmp(d) => closed.add_scaled(&defs[*d], coeff),
                }
            }
            closed
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any recipe the lowering pipeline produces for any matrix, under
    /// any switch combination, is proven equivalent to that matrix.
    #[test]
    fn lowered_recipes_verify_against_their_matrix(
        t in arb_matrix(7),
        cse in any::<bool>(),
        factorize in any::<bool>(),
        fma in any::<bool>(),
    ) {
        let recipe = generate_recipe(&t, &RecipeOptions { cse, factorize, fma });
        let proof = verify_recipe(&recipe, &t);
        prop_assert!(proof.is_ok(), "pipeline produced an unprovable recipe: {}", proof.unwrap_err());
    }

    /// The naive dense lowering also verifies.
    #[test]
    fn naive_recipes_verify(t in arb_matrix(6)) {
        let recipe = generate_naive_recipe(&t);
        let proof = verify_recipe(&recipe, &t);
        prop_assert!(proof.is_ok(), "{}", proof.unwrap_err());
    }

    /// CSE never changes the proven linear form: inlining its
    /// definitions reproduces the raw symbolic rows exactly.
    #[test]
    fn cse_preserves_the_proven_linear_form(t in arb_matrix(7)) {
        let rows = symbolic_matvec(&t);
        let prog = eliminate_common_subexpressions(rows.clone());
        let inlined = inline_cse_rows(&prog);
        prop_assert_eq!(inlined, rows);
    }

    /// Real `F(m,r)` transform bundles verify under any switch
    /// combination — the property the CI sweep relies on, sampled
    /// across the whole grid instead of enumerated.
    #[test]
    fn transform_bundles_verify(
        spec in arb_spec(),
        cse in any::<bool>(),
        factorize in any::<bool>(),
        fma in any::<bool>(),
    ) {
        let tr = TransformRecipes::generate(spec, RecipeOptions { cse, factorize, fma }).unwrap();
        for (recipe, matrix) in [
            (&tr.filter, &tr.matrices.g),
            (&tr.input, &tr.matrices.b_t),
            (&tr.output, &tr.matrices.a_t),
        ] {
            let proof = verify_recipe(recipe, matrix);
            prop_assert!(proof.is_ok(), "F({},{}): {}", spec.m, spec.r, proof.unwrap_err());
        }
    }

    /// The abstract interpreter agrees with concrete exact evaluation
    /// on random inputs — a self-check of the verifier's own core.
    #[test]
    fn abstract_interpretation_matches_concrete_eval(
        t in arb_matrix(6),
        seed in proptest::collection::vec((-20i64..=20, 1i64..=7), 6),
    ) {
        let recipe = generate_recipe(&t, &RecipeOptions::optimized());
        recipe.validate().unwrap();
        let (outs, _) = abstract_outputs(&recipe);
        let x: Vec<Rational> = seed[..t.cols()]
            .iter()
            .map(|&(a, b)| Rational::from_frac(a, b))
            .collect();
        let direct = recipe.eval_exact(&x);
        for (row, expr) in outs.iter().enumerate() {
            prop_assert_eq!(expr.eval_exact(&x, &[]), direct[row].clone());
        }
    }
}

// ---------------------------------------------------------------------
// Compiled-kernel verifier properties (PR 8): for any spec in the
// sweep grid, the emitted SoA kernel must parse back, prove equal to
// its transformation matrix, and — interpreted concretely in f32 —
// retire bit-for-bit the same ops as the recipe interpreter.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn emitted_kernel_proves_and_matches_interpreter(
        spec in arb_spec(),
        output_stage in any::<bool>(),
        seed in any::<u64>(),
    ) {
        use wino_verify::{eval_parsed_pass, parse_kernels, verify_kernel};

        let tr = TransformRecipes::generate(spec, RecipeOptions::optimized()).unwrap();
        let (recipe, matrix, kind) = if output_stage {
            (&tr.output, &tr.matrices.a_t, "output")
        } else {
            (&tr.input, &tr.matrices.b_t, "input")
        };
        let name = format!("f{}x{}_{kind}", spec.m, spec.r);
        let src = wino_codegen::emit_soa_transform(&name, recipe, "property-test kernel");

        // Static: the emitted text parses and proves equal to `matrix`.
        let parsed = parse_kernels(&src).unwrap();
        prop_assert_eq!(parsed.len(), 1);
        let proof = verify_kernel(&parsed[0], recipe, matrix);
        prop_assert!(proof.is_ok(), "F({},{}) {}: {}", spec.m, spec.r, kind, proof.unwrap_err());

        // Dynamic: the parsed IR under f32 interpretation is
        // bit-identical to the recipe interpreter on random inputs.
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as i32 % 1000) as f32 / 250.0
        };
        let compiled = recipe.compile::<f32>();
        let mut scratch = vec![0.0f32; compiled.scratch_len()];
        let input: Vec<f32> = (0..recipe.n_in).map(|_| next()).collect();
        let mut want = vec![0.0f32; recipe.n_out];
        compiled.run(&input, &mut want, &mut scratch);
        let got = eval_parsed_pass(&parsed[0], &input).unwrap();
        for (lane, (g, w)) in got.iter().zip(&want).enumerate() {
            prop_assert_eq!(
                g.to_bits(), w.to_bits(),
                "F({},{}) {} lane {}: {} vs {}", spec.m, spec.r, kind, lane, g, w
            );
        }
    }
}
