//! Deliberately-broken fixtures: each class of defect the verifier
//! exists to catch, asserted caught. If any of these starts passing,
//! the analysis it exercises has silently lost its teeth.

use wino_codegen::{render_template_strict, CodegenError};
use wino_num::{RatMat, Rational};
use wino_symbolic::{generate_recipe, Instr, Recipe, RecipeOptions, Reg};
use wino_verify::{verify_recipe, RecipeError};

/// Fixture 1: a recipe whose arithmetic is subtly wrong — one
/// coefficient flipped relative to the matrix it claims to implement.
#[test]
fn wrong_coefficient_recipe_is_rejected() {
    // F(2,3) input-transform-style matrix, then corrupt one instr.
    let t = RatMat::parse_rows(&["1 0 -1 0", "0 1 1 0", "0 -1 1 0", "0 1 0 -1"]).unwrap();
    let mut recipe = generate_recipe(&t, &RecipeOptions::minimal());
    let flipped = recipe.instrs.iter_mut().find_map(|ins| match ins {
        Instr::Sub { dst, a, b } => {
            let fixed = Instr::Add {
                dst: *dst,
                a: *a,
                b: *b,
            };
            Some((std::mem::replace(ins, fixed), ()))
        }
        _ => None,
    });
    assert!(flipped.is_some(), "expected a Sub to corrupt");
    let err = verify_recipe(&recipe, &t).unwrap_err();
    assert!(
        matches!(err, RecipeError::RowMismatch { .. }),
        "wrong coefficient must surface as a row mismatch, got: {err}"
    );
}

/// Fixture 2: a structurally valid recipe carrying a dead temporary.
#[test]
fn dead_tmp_recipe_is_rejected() {
    let recipe = Recipe {
        n_in: 2,
        n_out: 1,
        n_tmp: 1,
        instrs: vec![
            Instr::Mul {
                dst: Reg::Tmp(0),
                c: Rational::from_frac(21, 4),
                a: Reg::In(0),
            },
            Instr::Add {
                dst: Reg::Out(0),
                a: Reg::In(0),
                b: Reg::In(1),
            },
        ],
    };
    // The SSA validator accepts it…
    recipe.validate().unwrap();
    // …but verification must not.
    let t = RatMat::parse_rows(&["1 1"]).unwrap();
    let err = verify_recipe(&recipe, &t).unwrap_err();
    assert!(
        matches!(err, RecipeError::DeadStatement { index: 0, tmp: 0 }),
        "dead tmp must be reported, got: {err}"
    );
}

/// Fixture 3: a temporary written twice — an SSA violation.
#[test]
fn double_written_tmp_recipe_is_rejected() {
    let recipe = Recipe {
        n_in: 1,
        n_out: 1,
        n_tmp: 1,
        instrs: vec![
            Instr::Copy {
                dst: Reg::Tmp(0),
                src: Reg::In(0),
            },
            Instr::Neg {
                dst: Reg::Tmp(0),
                src: Reg::In(0),
            },
            Instr::Copy {
                dst: Reg::Out(0),
                src: Reg::Tmp(0),
            },
        ],
    };
    let t = RatMat::parse_rows(&["-1"]).unwrap();
    let err = verify_recipe(&recipe, &t).unwrap_err();
    assert!(
        matches!(&err, RecipeError::Structural(msg) if msg.contains("twice")),
        "double write must be a structural error, got: {err}"
    );
}

/// Fixture 4a: a template referencing a placeholder the substitution
/// map never binds.
#[test]
fn typoed_template_placeholder_is_rejected() {
    let template = "__kernel void k(__global float* %(dst_ptr)) { %(bodyy) }";
    let vars = [
        ("dst_ptr", "out".to_string()),
        ("body", "out[0] = 0.0f;".to_string()),
    ]
    .into_iter()
    .collect();
    let err = render_template_strict(template, &vars).unwrap_err();
    // The typo manifests twice over: `bodyy` is unbound, and the
    // intended `body` binding goes unused. Either diagnosis stops the
    // drift; the renderer reports whichever it hits first.
    assert!(
        matches!(
            &err,
            CodegenError::UnboundPlaceholder(name) if name == "bodyy"
        ) || matches!(
            &err,
            CodegenError::UnusedBinding(name) if name == "body"
        ),
        "typo must surface as unbound placeholder or unused binding, got: {err}"
    );
}

/// Fixture 4b: the complementary direction — every placeholder bound,
/// but the map carries a stale binding nothing consumes.
#[test]
fn stale_template_binding_is_rejected() {
    let template = "kernel: %(name)";
    let vars = [("name", "gemm".to_string()), ("unroll", "4".to_string())]
        .into_iter()
        .collect();
    let err = render_template_strict(template, &vars).unwrap_err();
    assert!(
        matches!(&err, CodegenError::UnusedBinding(name) if name == "unroll"),
        "stale binding must be rejected, got: {err}"
    );
}

/// Fixture 5: malformed placeholder syntax is a parse error, not a
/// silently-emitted hole.
#[test]
fn unterminated_placeholder_is_rejected() {
    let vars = std::collections::BTreeMap::new();
    assert!(render_template_strict("leading %(oops", &vars).is_err());
}
