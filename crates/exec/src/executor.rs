//! Wave-by-wave network execution on the shared runtime pool.
//!
//! Waves run in order; within a wave, independent steps run
//! concurrently via [`Runtime::scope`]. A single-step wave executes
//! inline on the calling thread — that keeps a sequential chain's
//! convolutions on the caller, where the engines' *intra*-conv
//! `parallel_for` can still fan out across the pool (a spawned task
//! runs on a pool worker, where nested parallelism is inlined).
//! Multi-step waves trade intra-conv parallelism for inter-branch
//! parallelism — the Inception-module case the schedule exists for.
//!
//! Convolutions run the full [`GuardedConv`] degradation chain with
//! the plan's warm filters; a fused ReLU is applied during the one
//! copy from the engine output into the arena slab. Pool and concat
//! steps write straight into their slabs. Output is bit-identical to
//! the naive node-by-node reference with the same engine choices at
//! any wave concurrency (engines are thread-count-invariant, and
//! every other op is elementwise or a copy).

use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use wino_guard::{Engine, GuardedConv, GuardrailPolicy};
use wino_runtime::Runtime;
use wino_tensor::Tensor4;

use crate::arena::{Arena, ArenaPool};
use crate::schedule::{CompiledNetwork, Source, Step, StepOp};
use crate::ExecError;

static NETWORKS: wino_probe::Counter = wino_probe::Counter::new("exec.networks_executed");
static WAVES: wino_probe::Counter = wino_probe::Counter::new("exec.waves_executed");
static NODES: wino_probe::Counter = wino_probe::Counter::new("exec.nodes_executed");
static FUSED_WRITES: wino_probe::Counter = wino_probe::Counter::new("exec.fused_writes");
static DEGRADED: wino_probe::Counter = wino_probe::Counter::new("exec.degraded_runs");
static H_NETWORK: wino_probe::Histogram = wino_probe::Histogram::new("exec.network");

/// A completed network inference.
#[derive(Clone, Debug)]
pub struct NetworkOutput {
    /// Output `(N, C_out, H_out, W_out)`.
    pub output: Tensor4<f32>,
    /// Engine that served the final convolution (the deepest node's
    /// effective engine after any demotions; [`Engine::Direct`] for a
    /// conv-free graph).
    pub served_by: Engine,
    /// Total guarded-conv demotions across all conv steps.
    pub demotions: usize,
}

/// What one conv step reports back to the coordinator.
struct StepMeta {
    served_by: Option<Engine>,
    demotions: usize,
}

/// Executes one compiled network against a recycled arena pool.
pub struct NetworkExecutor {
    net: Arc<CompiledNetwork>,
    pool: Arc<ArenaPool>,
    policy: GuardrailPolicy,
}

impl NetworkExecutor {
    /// Executor over `net`, borrowing arenas from `pool`.
    pub fn new(net: Arc<CompiledNetwork>, pool: Arc<ArenaPool>) -> NetworkExecutor {
        NetworkExecutor {
            net,
            pool,
            policy: GuardrailPolicy::full(),
        }
    }

    /// Replaces the guardrail policy applied to every conv step.
    pub fn with_policy(mut self, policy: GuardrailPolicy) -> NetworkExecutor {
        self.policy = policy;
        self
    }

    /// The compiled network this executor runs.
    pub fn network(&self) -> &Arc<CompiledNetwork> {
        &self.net
    }

    /// The arena pool this executor borrows from.
    pub fn arena_pool(&self) -> &Arc<ArenaPool> {
        &self.pool
    }

    /// Runs the network on the global runtime pool.
    ///
    /// # Errors
    /// [`ExecError::Shape`] on input mismatch, [`ExecError::Guard`]
    /// when some conv exhausted its chain.
    pub fn run(&self, input: &Tensor4<f32>) -> Result<NetworkOutput, ExecError> {
        self.run_on(Runtime::global(), input, false)
    }

    /// [`NetworkExecutor::run`] on an explicit runtime, optionally
    /// `degraded`: every conv rides its terminal fallback engine only
    /// (the near-deadline / open-breaker serving mode).
    ///
    /// # Errors
    /// As [`NetworkExecutor::run`].
    pub fn run_on(
        &self,
        rt: &Runtime,
        input: &Tensor4<f32>,
        degraded: bool,
    ) -> Result<NetworkOutput, ExecError> {
        let net = &*self.net;
        let (n, c, h, w) = input.dims();
        if n == 0 || (c, h, w) != net.input_dims {
            return Err(ExecError::Shape(format!(
                "input ({n}, {c}, {h}, {w}) does not match network {:?} expecting (N, {}, {}, {})",
                net.name, net.input_dims.0, net.input_dims.1, net.input_dims.2
            )));
        }
        let batch = n;
        let mut span = wino_probe::span("exec.network");
        span.arg("network", || net.name.clone());
        span.arg("batch", || batch.to_string());
        if degraded {
            DEGRADED.add(1);
        }
        let start = Instant::now();
        let mut arena = self.pool.acquire(batch);
        let result = self.run_waves(rt, input, batch, degraded, &mut arena);
        self.pool.release(arena);
        let out = result?;
        NETWORKS.add(1);
        H_NETWORK.record_duration(start.elapsed());
        Ok(out)
    }

    fn run_waves(
        &self,
        rt: &Runtime,
        input: &Tensor4<f32>,
        batch: usize,
        degraded: bool,
        arena: &mut Arena,
    ) -> Result<NetworkOutput, ExecError> {
        let net = &*self.net;
        let mut values: Vec<Option<Tensor4<f32>>> = Vec::with_capacity(net.values.len());
        values.resize_with(net.values.len(), || None);
        let mut served_by: Option<(usize, Engine)> = None;
        let mut demotions = 0usize;
        for (wave_idx, wave) in net.waves.iter().enumerate() {
            WAVES.add(1);
            // Materialize each step's output tensor from its slab.
            let mut outs: Vec<Option<Tensor4<f32>>> = wave
                .iter()
                .map(|&s| {
                    let v = net.steps[s].value;
                    let (vc, vh, vw) = net.values[v].dims;
                    let buf = arena.take(net.values[v].slab, net.values[v].elems, batch);
                    Some(Tensor4::from_raw(batch, vc, vh, vw, buf))
                })
                .collect();
            if wave.len() == 1 {
                // Inline: keeps intra-conv parallelism on the pool.
                let s = wave[0];
                let mut out = outs[0].take().expect("materialized above");
                let meta = run_step(
                    &net.steps[s],
                    input,
                    &values,
                    &mut out,
                    self.policy,
                    degraded,
                )?;
                finish_step(
                    &net.steps[s],
                    out,
                    meta,
                    &mut values,
                    &mut served_by,
                    &mut demotions,
                );
            } else {
                // Fan the wave out; cells collect each task's verdict.
                let cells: Vec<VerdictCell> = wave.iter().map(|_| Mutex::new(None)).collect();
                {
                    let values_ref = &values;
                    let policy = self.policy;
                    rt.scope(|scope| {
                        for (i, &s) in wave.iter().enumerate() {
                            let mut out = outs[i].take().expect("materialized above");
                            let step = &net.steps[s];
                            let cell = &cells[i];
                            scope.spawn(move || {
                                let verdict =
                                    run_step(step, input, values_ref, &mut out, policy, degraded)
                                        .map(|meta| (out, meta));
                                *cell.lock() = Some(verdict);
                            });
                        }
                    });
                }
                let mut first_err: Option<ExecError> = None;
                for (i, cell) in cells.into_iter().enumerate() {
                    match cell.into_inner() {
                        Some(Ok((out, meta))) => finish_step(
                            &net.steps[wave[i]],
                            out,
                            meta,
                            &mut values,
                            &mut served_by,
                            &mut demotions,
                        ),
                        Some(Err(e)) => first_err = first_err.or(Some(e)),
                        None => {
                            first_err = first_err.or(Some(ExecError::Guard(
                                "wave task produced no verdict".into(),
                            )))
                        }
                    }
                }
                if let Some(e) = first_err {
                    restore_values(net, arena, &mut values);
                    return Err(e);
                }
            }
            // Retire values whose last read was this wave.
            for (v, info) in net.values.iter().enumerate() {
                if info.death == wave_idx && v != net.output {
                    if let Some(t) = values[v].take() {
                        arena.restore_tensor(info.slab, t);
                    }
                }
            }
        }
        let out_value = values[net.output]
            .take()
            .ok_or_else(|| ExecError::Shape("network produced no output value".into()))?;
        // The response must own its data: one per-request allocation,
        // outside the arena's zero-alloc contract.
        let output = out_value.clone();
        arena.restore_tensor(net.values[net.output].slab, out_value);
        restore_values(net, arena, &mut values);
        Ok(NetworkOutput {
            output,
            served_by: served_by.map_or(Engine::Direct, |(_, e)| e),
            demotions,
        })
    }
}

/// A spawned wave task's outcome: the step's output tensor plus its
/// bookkeeping, or the error that stopped it.
type VerdictCell = Mutex<Option<Result<(Tensor4<f32>, StepMeta), ExecError>>>;

/// Books a finished step: stores its value, tracks the deepest conv's
/// effective engine, accumulates demotions.
fn finish_step(
    step: &Step,
    out: Tensor4<f32>,
    meta: StepMeta,
    values: &mut [Option<Tensor4<f32>>],
    served_by: &mut Option<(usize, Engine)>,
    demotions: &mut usize,
) {
    values[step.value] = Some(out);
    *demotions += meta.demotions;
    if let Some(engine) = meta.served_by {
        if served_by.is_none_or(|(node, _)| step.node >= node) {
            *served_by = Some((step.node, engine));
        }
    }
}

/// Returns every still-held value tensor to the arena (normal exit
/// and error cleanup).
fn restore_values(net: &CompiledNetwork, arena: &mut Arena, values: &mut [Option<Tensor4<f32>>]) {
    for (v, slot) in values.iter_mut().enumerate() {
        if let Some(t) = slot.take() {
            arena.restore_tensor(net.values[v].slab, t);
        }
    }
}

/// Executes one step into `out` (an arena-backed tensor of the step's
/// exact output shape at the request batch).
fn run_step(
    step: &Step,
    external: &Tensor4<f32>,
    values: &[Option<Tensor4<f32>>],
    out: &mut Tensor4<f32>,
    policy: GuardrailPolicy,
    degraded: bool,
) -> Result<StepMeta, ExecError> {
    NODES.add(1);
    let srcs: Vec<&Tensor4<f32>> = step
        .inputs
        .iter()
        .map(|src| match src {
            Source::External => external,
            Source::Value(v) => values[*v].as_ref().expect("wave order"),
        })
        .collect();
    let span_name = match &step.op {
        StepOp::Conv { .. } => "exec.node.conv",
        StepOp::Relu => "exec.node.relu",
        StepOp::MaxPool { .. } => "exec.node.max_pool",
        StepOp::Concat => "exec.node.concat",
    };
    let mut span = wino_probe::span(span_name);
    span.arg("node", || step.node.to_string());
    match &step.op {
        StepOp::Conv {
            desc,
            fused_relu,
            plan,
        } => {
            let src = srcs[0];
            let mut desc = *desc;
            desc.batch = src.n();
            let chain = if degraded {
                vec![*plan.chain().last().expect("chains are never empty")]
            } else {
                plan.chain().to_vec()
            };
            let conv = GuardedConv::new(plan.winograd_m())
                .with_chain(chain)
                .with_policy(policy)
                .with_gemm_config(plan.gemm_config());
            let run = conv
                .run_warm(src, plan.weights(), &desc, plan.warm())
                .map_err(|e| ExecError::Guard(format!("{}: {e}", plan.plan_name())))?;
            let engine_out = run.output.data();
            let dst = out.data_mut();
            if *fused_relu {
                // The fused elementwise writes through the arena: one
                // pass applies ReLU during the slab copy, no
                // intermediate slab.
                for (d, s) in dst.iter_mut().zip(engine_out) {
                    *d = s.max(0.0);
                }
                FUSED_WRITES.add(1);
            } else {
                dst.copy_from_slice(engine_out);
            }
            Ok(StepMeta {
                served_by: Some(run.served_by),
                demotions: run.demotions.len(),
            })
        }
        StepOp::Relu => {
            let src = srcs[0].data();
            for (d, s) in out.data_mut().iter_mut().zip(src) {
                *d = s.max(0.0);
            }
            Ok(StepMeta {
                served_by: None,
                demotions: 0,
            })
        }
        StepOp::MaxPool { k, s } => {
            wino_graph::max_pool_into(srcs[0], *k, *s, out);
            Ok(StepMeta {
                served_by: None,
                demotions: 0,
            })
        }
        StepOp::Concat => {
            wino_graph::concat_into(&srcs, out)?;
            Ok(StepMeta {
                served_by: None,
                demotions: 0,
            })
        }
    }
}
