//! # wino-exec — whole-network graph execution
//!
//! The paper's end-to-end claim (§4, Table 4) is about whole networks
//! under the batch-5 streaming scenario, not isolated layers. This
//! crate turns a [`wino_graph::ComputeGraph`] plus per-conv tuned
//! plans into a deployable inference engine:
//!
//! - [`compile`] topologically schedules the graph into **execution
//!   waves**: a node's wave is one past the latest wave among its
//!   producers, so every node in a wave depends only on earlier waves
//!   and independent branches (an Inception module's 1×1/3×3/5×5/proj
//!   paths) land in the *same* wave and run concurrently on the
//!   shared `wino-runtime` pool.
//! - The **arena planner** (also in [`compile`]) computes per-value
//!   liveness at wave granularity, colors values into a minimal set
//!   of reusable slabs (greedy best-fit over the free list), and
//!   reports planned peak memory against the naive
//!   sum-of-activations. [`ArenaPool`] owns recycled per-request
//!   arenas so steady-state execution performs **zero graph-level
//!   allocations** — proved by the `exec.allocs_steady` probe counter.
//! - [`NetworkExecutor`] runs a compiled network: convolutions go
//!   through [`wino_guard::GuardedConv`] with warm filter transforms
//!   (the full degradation chain, so a poisoned engine still serves
//!   via fallback), fused ReLUs are applied during the single copy
//!   from the engine output into the arena slab (no intermediate
//!   slab), and pool/concat nodes write straight into their slabs.
//!
//! Determinism contract: every node's output is computed by the same
//! arithmetic regardless of wave concurrency — engines are
//! bit-identical at any thread count, elementwise/pool/concat ops are
//! per-element — so a network's output is bit-identical across pool
//! sizes and to the naive [`wino_graph::ComputeGraph::execute`]
//! reference with the same engine choices.

#![warn(missing_docs)]

mod arena;
mod executor;
mod schedule;

use std::fmt;
use std::sync::Arc;

use wino_conv::{PrecomputedFilters, WinogradVariant};
use wino_gemm::GemmConfig;
use wino_graph::{EngineChoice, GraphError};
use wino_guard::Engine;
use wino_tensor::{ConvDesc, Tensor4};

pub use arena::{set_steady_phase, steady_phase, Arena, ArenaPool};
pub use executor::{NetworkExecutor, NetworkOutput};
pub use schedule::{compile, CompiledNetwork};

/// Errors from network compilation and execution.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecError {
    /// Graph construction or shape inference failed.
    Graph(GraphError),
    /// A conv node has no resolvable plan (e.g. missing weights).
    MissingPlan(usize),
    /// Input or intermediate shapes do not line up.
    Shape(String),
    /// Every engine in a conv node's degradation chain failed.
    Guard(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Graph(e) => write!(f, "graph error: {e}"),
            ExecError::MissingPlan(node) => write!(f, "conv node {node} has no plan"),
            ExecError::Shape(msg) => write!(f, "shape error: {msg}"),
            ExecError::Guard(msg) => write!(f, "guarded conv exhausted: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<GraphError> for ExecError {
    fn from(e: GraphError) -> Self {
        ExecError::Graph(e)
    }
}

/// A pinned per-conv serving plan: the degradation chain, GEMM
/// blocking, raw weights, and the warm filter transform. Implemented
/// by `wino-serve`'s `LayerPlan` (the registry pins tuned engines) and
/// by [`SimpleConvPlan`] for registry-free use.
pub trait ConvPlan: Send + Sync {
    /// Plan name (diagnostics and probe args).
    fn plan_name(&self) -> &str;
    /// Degradation chain, head engine first.
    fn chain(&self) -> &[Engine];
    /// GEMM blocking for the Winograd multiplication stage.
    fn gemm_config(&self) -> GemmConfig;
    /// Raw filter bank `(K, C, r, r)` for fallback engines and
    /// guardrails.
    fn weights(&self) -> &Tensor4<f32>;
    /// Warm `U = G·g·Gᵀ`, present for Winograd plans.
    fn warm(&self) -> Option<&PrecomputedFilters>;
    /// Output tile size `m` for the guarded runner (the warm bank's
    /// spec when present).
    fn winograd_m(&self) -> usize {
        self.warm().map_or(4, |pre| pre.spec().m)
    }
}

/// Maps an engine choice onto its degradation chain (head first,
/// terminal direct fallback last) — the same chain the serving
/// registry pins per layer.
pub fn chain_for(engine: &EngineChoice) -> Vec<Engine> {
    match engine {
        EngineChoice::Winograd(cfg) => {
            let mut chain = Vec::new();
            if cfg.variant == WinogradVariant::Fused {
                chain.push(Engine::FusedWinograd(cfg.m));
            }
            chain.push(Engine::NonFusedWinograd(cfg.m));
            chain.push(Engine::Im2col);
            chain.push(Engine::Direct);
            chain
        }
        EngineChoice::Im2col => vec![Engine::Im2col, Engine::Direct],
        EngineChoice::Direct => vec![Engine::Direct],
    }
}

/// A self-contained [`ConvPlan`] built from an explicit engine choice
/// — the registry-free path used by tests and benches. The filter
/// transform runs once, at construction.
pub struct SimpleConvPlan {
    name: String,
    chain: Vec<Engine>,
    gemm: GemmConfig,
    weights: Tensor4<f32>,
    warm: Option<PrecomputedFilters>,
}

impl SimpleConvPlan {
    /// Builds the plan for `engine`, precomputing warm filters for
    /// Winograd choices. `desc` is the conv at any batch (canonicalized
    /// to batch 1 internally).
    ///
    /// # Errors
    /// [`ExecError::Shape`] when `weights` do not match `desc` or the
    /// Winograd configuration is unsupported for the shape.
    pub fn from_engine(
        name: impl Into<String>,
        weights: Tensor4<f32>,
        desc: &ConvDesc,
        engine: &EngineChoice,
    ) -> Result<Self, ExecError> {
        let mut canonical = *desc;
        canonical.batch = 1;
        if weights.dims() != (desc.out_ch, desc.in_ch, desc.ksz, desc.ksz) {
            return Err(ExecError::Shape(format!(
                "weights {:?} do not match {desc}",
                weights.dims()
            )));
        }
        let (warm, gemm) = match engine {
            EngineChoice::Winograd(cfg) => {
                let pre = PrecomputedFilters::for_config(&weights, &canonical, cfg)
                    .map_err(|e| ExecError::Shape(e.to_string()))?;
                (Some(pre), cfg.gemm)
            }
            _ => (None, GemmConfig::default()),
        };
        Ok(SimpleConvPlan {
            name: name.into(),
            chain: chain_for(engine),
            gemm,
            weights,
            warm,
        })
    }
}

impl ConvPlan for SimpleConvPlan {
    fn plan_name(&self) -> &str {
        &self.name
    }

    fn chain(&self) -> &[Engine] {
        &self.chain
    }

    fn gemm_config(&self) -> GemmConfig {
        self.gemm
    }

    fn weights(&self) -> &Tensor4<f32> {
        &self.weights
    }

    fn warm(&self) -> Option<&PrecomputedFilters> {
        self.warm.as_ref()
    }
}

/// Compiles a graph whose conv engines are taken from the graph's own
/// `set_engine` choices (default [`EngineChoice::Direct`]), building a
/// [`SimpleConvPlan`] per conv node from its attached weights — the
/// registry-free convenience used by tests and benches.
///
/// # Errors
/// [`ExecError::MissingPlan`] for weightless conv nodes, plus
/// everything [`compile`] reports.
pub fn compile_with_graph_engines(
    name: impl Into<String>,
    graph: &wino_graph::ComputeGraph,
    input: (usize, usize, usize),
) -> Result<CompiledNetwork, ExecError> {
    let name = name.into();
    compile(name.clone(), graph, input, &mut |id, desc| {
        let weights = graph
            .weights(id)
            .ok_or(ExecError::MissingPlan(id.0))?
            .clone();
        let engine = graph.engine(id);
        let plan =
            SimpleConvPlan::from_engine(format!("{name}/node{}", id.0), weights, desc, &engine)?;
        Ok(Arc::new(plan) as Arc<dyn ConvPlan>)
    })
}
