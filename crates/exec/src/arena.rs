//! Registry-owned, recycled per-request arenas.
//!
//! The planner fixes each network's slab capacities at compile time
//! (per image); an [`Arena`] materializes them at a request's batch
//! size, and an [`ArenaPool`] recycles arenas across requests so the
//! steady state allocates nothing at graph level. Accounting:
//!
//! - `exec.arena_allocs` counts every arena materialization event
//!   (fresh arena, regrowth for a larger batch, or refill of a slab
//!   lost to an error path).
//! - `exec.allocs_steady` counts the subset that happens after the
//!   harness flips [`set_steady_phase`] — the serve network smoke
//!   asserts this stays **zero** after warmup.
//! - `exec.arena_bytes_peak` gauges the planned bytes of all arenas
//!   currently out of the pool (its peak is the high-water mark).
//!
//! Scope: the arena eliminates per-node *graph-level* allocations
//! (intermediate activation tensors). Engine-internal scratch and the
//! per-request response tensor are owned by their layers and are out
//! of scope for these counters.

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};

use wino_tensor::Tensor4;

use crate::schedule::CompiledNetwork;

static ARENA_ALLOCS: wino_probe::Counter = wino_probe::Counter::new("exec.arena_allocs");
static ALLOCS_STEADY: wino_probe::Counter = wino_probe::Counter::new("exec.allocs_steady");
static ARENA_BYTES: wino_probe::Gauge = wino_probe::Gauge::new("exec.arena_bytes_peak");

static STEADY: AtomicBool = AtomicBool::new(false);

/// Marks the process as past warmup: subsequent arena allocations
/// count into `exec.allocs_steady` (the counter the network smoke
/// asserts stays zero). Flip after warm requests and pool reservation.
pub fn set_steady_phase(on: bool) {
    STEADY.store(on, Ordering::SeqCst);
}

/// `true` once [`set_steady_phase`] armed steady accounting.
pub fn steady_phase() -> bool {
    STEADY.load(Ordering::SeqCst)
}

fn count_alloc() {
    ARENA_ALLOCS.add(1);
    if steady_phase() {
        ALLOCS_STEADY.add(1);
    }
}

/// One request's working memory: the planned slabs at a concrete
/// batch size. Slots are taken (as [`Tensor4`]s via
/// [`Tensor4::from_raw`]) while their value is live and restored when
/// it dies, so capacity survives across requests.
pub struct Arena {
    /// Batch the slab capacities were sized for (requests at smaller
    /// batches reuse without reallocation).
    batch: usize,
    /// Per-image capacities, mirroring `CompiledNetwork::slab_caps`.
    caps: Vec<usize>,
    slabs: Vec<Option<Vec<f32>>>,
}

impl Arena {
    fn build(caps: &[usize], batch: usize) -> Arena {
        count_alloc();
        let slabs = caps
            .iter()
            .map(|&cap| Some(Vec::with_capacity(cap * batch)))
            .collect();
        Arena {
            batch,
            caps: caps.to_vec(),
            slabs,
        }
    }

    /// Grows slab capacities to cover `batch` images (no-op when the
    /// arena is already large enough).
    fn ensure_batch(&mut self, batch: usize) {
        if batch <= self.batch {
            return;
        }
        count_alloc();
        for (slab, &cap) in self.slabs.iter_mut().zip(&self.caps) {
            if let Some(v) = slab {
                v.reserve((cap * batch).saturating_sub(v.len()));
            }
        }
        self.batch = batch;
    }

    /// Planned bytes of this arena (capacities × batch).
    fn planned_bytes(&self) -> usize {
        self.caps.iter().sum::<usize>() * self.batch * std::mem::size_of::<f32>()
    }

    /// Takes slab `slab` as an uninitialized-content buffer of
    /// `elems * batch` f32s. A slot lost to an earlier error path is
    /// refilled (counted as an allocation).
    pub(crate) fn take(&mut self, slab: usize, elems: usize, batch: usize) -> Vec<f32> {
        let need = elems * batch;
        match self.slabs[slab].take() {
            Some(mut v) => {
                if v.capacity() < need {
                    count_alloc();
                }
                v.resize(need, 0.0);
                v
            }
            None => {
                count_alloc();
                vec![0.0; need]
            }
        }
    }

    /// Restores a slab's buffer after its value died.
    pub(crate) fn restore(&mut self, slab: usize, buf: Vec<f32>) {
        self.slabs[slab] = Some(buf);
    }

    /// Restores a slab from a finished value tensor.
    pub(crate) fn restore_tensor(&mut self, slab: usize, t: Tensor4<f32>) {
        self.restore(slab, t.into_raw());
    }
}

/// Recycles [`Arena`]s for one compiled network. Owned by the plan
/// registry (serving) or the harness (benches): acquire on request
/// entry, release on exit, reserve ahead of load to pin the steady
/// state at zero allocations.
pub struct ArenaPool {
    caps: Vec<usize>,
    free: parking_lot::Mutex<Vec<Arena>>,
    /// Planned bytes of arenas currently out of the pool (drives the
    /// `exec.arena_bytes_peak` gauge).
    outstanding: AtomicI64,
}

impl ArenaPool {
    /// Empty pool for `net`'s slab plan.
    pub fn new(net: &CompiledNetwork) -> ArenaPool {
        ArenaPool {
            caps: net.slab_caps.clone(),
            free: parking_lot::Mutex::new(Vec::new()),
            outstanding: AtomicI64::new(0),
        }
    }

    /// Pre-allocates `count` arenas sized for `batch` images. Because
    /// slab capacity covers every smaller batch, reserving at the
    /// worst-case batch (executors × max coalesced images) pins
    /// steady-state allocations at zero.
    pub fn reserve(&self, batch: usize, count: usize) {
        let mut free = self.free.lock();
        while free.len() < count {
            free.push(Arena::build(&self.caps, batch));
        }
        for arena in free.iter_mut() {
            arena.ensure_batch(batch);
        }
    }

    /// Arenas currently parked in the pool.
    pub fn available(&self) -> usize {
        self.free.lock().len()
    }

    /// Borrows an arena sized for `batch` images, preferring a pooled
    /// one (grown if the batch outsizes it — counted — and built
    /// fresh only when the pool is empty).
    pub(crate) fn acquire(&self, batch: usize) -> Arena {
        let pooled = self.free.lock().pop();
        let mut arena = match pooled {
            Some(arena) => arena,
            None => Arena::build(&self.caps, batch),
        };
        arena.ensure_batch(batch);
        let bytes = arena.planned_bytes() as i64;
        let out = self.outstanding.fetch_add(bytes, Ordering::SeqCst) + bytes;
        ARENA_BYTES.set(out);
        arena
    }

    /// Returns an arena to the pool.
    pub(crate) fn release(&self, arena: Arena) {
        let bytes = arena.planned_bytes() as i64;
        let out = self.outstanding.fetch_sub(bytes, Ordering::SeqCst) - bytes;
        ARENA_BYTES.set(out);
        self.free.lock().push(arena);
    }
}
