//! The plan compiler: graph → waves → colored arena slabs.
//!
//! Compilation runs three passes over a topologically-ordered
//! [`ComputeGraph`]:
//!
//! 1. **Alias resolution.** Pass-through `Input` nodes (the remnants
//!    `fuse_relu` leaves behind, and the graph's external input) do
//!    not produce values; consumers read through them. Every other
//!    node produces exactly one *value*.
//! 2. **Wave scheduling.** A step's wave is one past the latest wave
//!    among its producing steps (zero for steps fed only by the
//!    external input). All steps in a wave are mutually independent,
//!    so the executor may run them concurrently; a wave boundary is a
//!    barrier. Inception branches land in the same wave.
//! 3. **Liveness + slab coloring.** A value is live from its birth
//!    wave through the wave of its last consumer (wave granularity:
//!    values born in the same wave never share a slab, and a value is
//!    reusable only once the wave of its last read has fully
//!    retired). A greedy best-fit scan colors values onto slabs:
//!    prefer the smallest free slab that fits, else grow the largest
//!    free slab, else open a new one. The sum of final slab
//!    capacities is the planned peak; the sum of all value sizes is
//!    the naive sum-of-activations it is measured against.

use std::sync::Arc;

use wino_graph::{ComputeGraph, NodeId, Op};
use wino_tensor::ConvDesc;

use crate::{ConvPlan, ExecError};

static COMPILED: wino_probe::Counter = wino_probe::Counter::new("exec.networks_compiled");

/// Resolver mapping each conv node to its pinned execution plan (the
/// serving registry's pinned-plan lookup, or ad-hoc plan construction
/// in tests and benches).
pub type PlanResolver<'a> =
    dyn FnMut(NodeId, &ConvDesc) -> Result<Arc<dyn ConvPlan>, ExecError> + 'a;

/// Where a step reads one input from.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum Source {
    /// The request's external input tensor.
    External,
    /// The value produced by an earlier step.
    Value(usize),
}

/// A step's operation, with conv nodes carrying their pinned plan.
pub(crate) enum StepOp {
    /// Guarded convolution, optionally writing `max(x, 0)` during the
    /// copy into the arena slab.
    Conv {
        /// Batch-1 descriptor (batch set per request).
        desc: ConvDesc,
        /// Fused ReLU from the graph-level optimizer.
        fused_relu: bool,
        /// Pinned chain + warm filters.
        plan: Arc<dyn ConvPlan>,
    },
    /// Standalone elementwise `max(x, 0)`.
    Relu,
    /// Max pooling.
    MaxPool {
        /// Window size.
        k: usize,
        /// Stride.
        s: usize,
    },
    /// Channel-wise concatenation.
    Concat,
}

/// One schedulable step (a value-producing graph node).
pub(crate) struct Step {
    /// Original graph node index (probe args and diagnostics).
    pub(crate) node: usize,
    /// The operation.
    pub(crate) op: StepOp,
    /// Alias-resolved input sources.
    pub(crate) inputs: Vec<Source>,
    /// The value this step produces.
    pub(crate) value: usize,
    /// Execution wave.
    pub(crate) wave: usize,
}

/// A value's shape, liveness, and slab assignment.
pub(crate) struct ValueInfo {
    /// Per-image `(c, h, w)`.
    pub(crate) dims: (usize, usize, usize),
    /// Per-image element count (`c * h * w`).
    pub(crate) elems: usize,
    /// Wave the producing step runs in.
    pub(crate) birth: usize,
    /// Wave of the last consumer (`waves()` for the network output,
    /// which outlives every wave).
    pub(crate) death: usize,
    /// Assigned slab.
    pub(crate) slab: usize,
}

/// A compiled, schedulable, arena-planned network. Immutable and
/// shareable: per-request state lives in the [`crate::Arena`] the
/// executor borrows from the pool.
pub struct CompiledNetwork {
    pub(crate) name: String,
    pub(crate) steps: Vec<Step>,
    /// Step indices grouped by wave.
    pub(crate) waves: Vec<Vec<usize>>,
    pub(crate) values: Vec<ValueInfo>,
    /// Per-slab capacity in per-image elements.
    pub(crate) slab_caps: Vec<usize>,
    /// Value id of the graph output.
    pub(crate) output: usize,
    /// Per-image input `(c, h, w)`.
    pub(crate) input_dims: (usize, usize, usize),
}

impl CompiledNetwork {
    /// Network name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of execution waves.
    pub fn wave_count(&self) -> usize {
        self.waves.len()
    }

    /// Number of value-producing steps (pass-through nodes excluded).
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }

    /// Number of convolution steps.
    pub fn conv_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s.op, StepOp::Conv { .. }))
            .count()
    }

    /// The widest wave (the degree of inter-layer parallelism the
    /// schedule exposes).
    pub fn max_wave_width(&self) -> usize {
        self.waves.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Number of arena slabs the planner colored values onto.
    pub fn slab_count(&self) -> usize {
        self.slab_caps.len()
    }

    /// Per-image input `(c, h, w)` the network expects.
    pub fn input_dims(&self) -> (usize, usize, usize) {
        self.input_dims
    }

    /// Per-image output `(c, h, w)` the network produces.
    pub fn output_dims(&self) -> (usize, usize, usize) {
        self.values[self.output].dims
    }

    /// Planned peak arena bytes at `batch` images per request: the sum
    /// of slab capacities. This is what one pooled arena allocates.
    pub fn peak_arena_bytes(&self, batch: usize) -> usize {
        self.slab_caps.iter().sum::<usize>() * batch * std::mem::size_of::<f32>()
    }

    /// Naive sum-of-activations at `batch`: one live buffer per value,
    /// never reused — what the naive executor's working set adds up
    /// to, and the planner's comparison baseline.
    pub fn naive_activation_bytes(&self, batch: usize) -> usize {
        self.values.iter().map(|v| v.elems).sum::<usize>() * batch * std::mem::size_of::<f32>()
    }
}

/// Compiles `graph` for per-image input `(c, h, w)`, resolving each
/// conv node's pinned plan through `resolve` (the serving registry, or
/// [`crate::SimpleConvPlan`] construction).
///
/// # Errors
/// [`ExecError::Graph`] on shape-inference failures,
/// [`ExecError::Shape`] on an empty or outputless graph, and whatever
/// `resolve` returns for un-servable conv nodes.
pub fn compile(
    name: impl Into<String>,
    graph: &ComputeGraph,
    input: (usize, usize, usize),
    resolve: &mut PlanResolver<'_>,
) -> Result<CompiledNetwork, ExecError> {
    let name = name.into();
    let mut span = wino_probe::span("exec.compile");
    span.arg("network", || name.clone());
    if graph.is_empty() {
        return Err(ExecError::Shape("empty graph".into()));
    }
    let (c, h, w) = input;
    let shapes = graph.infer_shapes((1, c, h, w))?;

    // Pass 1: alias resolution. sources[i] = where node i's value is
    // read from (External, or a producing step's value).
    let mut sources: Vec<Source> = Vec::with_capacity(graph.len());
    let mut steps: Vec<Step> = Vec::new();
    let mut values: Vec<ValueInfo> = Vec::new();
    for (i, &shape) in shapes.iter().enumerate() {
        let node = graph.node(NodeId(i));
        let source = match &node.op {
            Op::Input => match node.inputs.first() {
                // Pass-through (fused-ReLU remnant): alias its source.
                Some(&src) => sources[src.0],
                None => Source::External,
            },
            op => {
                let inputs: Vec<Source> = node.inputs.iter().map(|src| sources[src.0]).collect();
                let step_op = match op {
                    Op::Conv { desc, fused_relu } => StepOp::Conv {
                        desc: *desc,
                        fused_relu: *fused_relu,
                        plan: resolve(NodeId(i), desc)?,
                    },
                    Op::Relu => StepOp::Relu,
                    Op::MaxPool { k, s } => StepOp::MaxPool { k: *k, s: *s },
                    Op::Concat => StepOp::Concat,
                    Op::Input => unreachable!("handled above"),
                };
                let (_, vc, vh, vw) = shape;
                let value = values.len();
                values.push(ValueInfo {
                    dims: (vc, vh, vw),
                    elems: vc * vh * vw,
                    birth: 0,
                    death: 0,
                    slab: usize::MAX,
                });
                steps.push(Step {
                    node: i,
                    op: step_op,
                    inputs,
                    value,
                    wave: 0,
                });
                Source::Value(value)
            }
        };
        sources.push(source);
    }
    let output = match sources.last() {
        Some(Source::Value(v)) => *v,
        _ => {
            return Err(ExecError::Shape(
                "graph output is the external input (no computed value)".into(),
            ))
        }
    };

    // Pass 2: wave scheduling. Steps are in topological order, so
    // every input value's birth wave is already final.
    let mut value_birth: Vec<usize> = vec![0; values.len()];
    for s in 0..steps.len() {
        let wave = steps[s]
            .inputs
            .iter()
            .map(|src| match src {
                Source::External => 0,
                Source::Value(v) => value_birth[*v] + 1,
            })
            .max()
            .unwrap_or(0);
        steps[s].wave = wave;
        value_birth[steps[s].value] = wave;
        values[steps[s].value].birth = wave;
    }
    let wave_count = steps.iter().map(|s| s.wave).max().unwrap_or(0) + 1;
    let mut waves: Vec<Vec<usize>> = vec![Vec::new(); wave_count];
    for (s, step) in steps.iter().enumerate() {
        waves[step.wave].push(s);
    }

    // Pass 3a: liveness. A value dies at its last consumer's wave; the
    // network output never dies during execution.
    for v in values.iter_mut() {
        v.death = v.birth;
    }
    for step in &steps {
        for src in &step.inputs {
            if let Source::Value(v) = src {
                values[*v].death = values[*v].death.max(step.wave);
            }
        }
    }
    values[output].death = wave_count;

    // Pass 3b: greedy slab coloring over the wave timeline. Free-list
    // policy: best fit (smallest sufficient capacity, lowest id on
    // ties); when nothing fits, grow the largest free slab; when
    // nothing is free, open a new slab. Deterministic by construction
    // — the scan order is the topological step order.
    let mut slab_caps: Vec<usize> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    for (wave, wave_steps) in waves.iter().enumerate() {
        // Values whose last read happened strictly before this wave
        // are reusable now (same-wave values never share: a value
        // read at wave `wave` frees only at `wave + 1`).
        for (v, info) in values.iter().enumerate() {
            if info.death + 1 == wave && !free.contains(&info.slab) {
                debug_assert!(info.slab != usize::MAX, "value {v} colored before death");
                free.push(info.slab);
            }
        }
        for &s in wave_steps {
            let v = steps[s].value;
            let size = values[v].elems;
            let best_fit = free
                .iter()
                .enumerate()
                .filter(|(_, &slab)| slab_caps[slab] >= size)
                .min_by_key(|(_, &slab)| (slab_caps[slab], slab))
                .map(|(pos, _)| pos);
            let slab = match best_fit {
                Some(pos) => free.swap_remove(pos),
                None => match free
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &slab)| (slab_caps[slab], usize::MAX - slab))
                    .map(|(pos, _)| pos)
                {
                    Some(pos) => {
                        let slab = free.swap_remove(pos);
                        slab_caps[slab] = size;
                        slab
                    }
                    None => {
                        slab_caps.push(size);
                        slab_caps.len() - 1
                    }
                },
            };
            values[v].slab = slab;
        }
    }

    COMPILED.add(1);
    Ok(CompiledNetwork {
        name,
        steps,
        waves,
        values,
        slab_caps,
        output,
        input_dims: input,
    })
}
