//! wino-exec == naive `ComputeGraph::execute`, bit for bit.
//!
//! Randomized conv/relu/pool/concat DAGs (including Inception-style
//! branch fan-outs and fused ReLUs) with mixed Direct/Im2col/Winograd
//! engine choices, executed through the wave scheduler + arena at pool
//! sizes 1, 2, and 4 and compared against the naive node-by-node
//! reference with the same engine choices. Exact `f32::to_bits`
//! equality: the determinism contract says wave concurrency and slab
//! recycling are unobservable in the output.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wino_conv::WinogradConfig;
use wino_exec::{compile_with_graph_engines, ArenaPool, NetworkExecutor};
use wino_graph::{ComputeGraph, EngineChoice, NodeId};
use wino_runtime::Runtime;
use wino_tensor::{ConvDesc, Tensor4};

/// Deterministic per-test stream for structural choices (the tensor
/// contents use `Tensor4::random` with the shim rng).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Attaches random weights and a random engine to a fresh conv node.
fn finish_conv(g: &mut ComputeGraph, id: NodeId, desc: &ConvDesc, lcg: &mut Lcg) {
    let mut rng = StdRng::seed_from_u64(lcg.next());
    let w = Tensor4::<f32>::random(
        desc.out_ch,
        desc.in_ch,
        desc.ksz,
        desc.ksz,
        -0.5,
        0.5,
        &mut rng,
    );
    g.set_weights(id, w).unwrap();
    // Winograd only where it is well-formed (3×3, stride 1).
    let engine = if desc.ksz == 3 && desc.stride == 1 {
        match lcg.pick(3) {
            0 => EngineChoice::Direct,
            1 => EngineChoice::Im2col,
            _ => EngineChoice::Winograd(WinogradConfig::new(2)),
        }
    } else {
        match lcg.pick(2) {
            0 => EngineChoice::Direct,
            _ => EngineChoice::Im2col,
        }
    };
    g.set_engine(id, engine);
}

/// Grows a random DAG: sequential conv/relu/pool segments with an
/// occasional multi-branch concat block. Returns the graph and its
/// input `(c, h, w)`.
fn random_graph(seed: u64, segments: usize) -> (ComputeGraph, (usize, usize, usize)) {
    let mut lcg = Lcg(seed | 1);
    let mut g = ComputeGraph::new();
    let mut tip = g.add_input();
    let (mut c, mut h, mut w) = (1 + lcg.pick(3), 12, 12);
    let input_dims = (c, h, w);
    for _ in 0..segments {
        match lcg.pick(5) {
            // 3×3 same-shape conv, sometimes followed by a fusable ReLU.
            0 => {
                let out_ch = 1 + lcg.pick(4);
                let desc = ConvDesc::new(3, 1, 1, out_ch, 1, h, w, c);
                tip = g.add_conv(tip, desc).unwrap();
                finish_conv(&mut g, tip, &desc, &mut lcg);
                c = out_ch;
                if lcg.pick(2) == 0 {
                    tip = g.add_relu(tip).unwrap();
                }
            }
            // 1×1 conv.
            1 => {
                let out_ch = 1 + lcg.pick(4);
                let desc = ConvDesc::new(1, 1, 0, out_ch, 1, h, w, c);
                tip = g.add_conv(tip, desc).unwrap();
                finish_conv(&mut g, tip, &desc, &mut lcg);
                c = out_ch;
            }
            // Standalone ReLU.
            2 => {
                tip = g.add_relu(tip).unwrap();
            }
            // 2×2/2 max-pool while the plane still has room.
            3 if h >= 8 && h % 2 == 0 => {
                tip = g.add_max_pool(tip, 2, 2).unwrap();
                h /= 2;
                w /= 2;
            }
            // Inception-style block: 2–3 branches, concat.
            _ => {
                let branches = 2 + lcg.pick(2);
                let mut outs = Vec::new();
                let mut out_c = 0;
                for _ in 0..branches {
                    let bc = 1 + lcg.pick(3);
                    let (ksz, pad) = if lcg.pick(2) == 0 { (3, 1) } else { (1, 0) };
                    let desc = ConvDesc::new(ksz, 1, pad, bc, 1, h, w, c);
                    let b = g.add_conv(tip, desc).unwrap();
                    finish_conv(&mut g, b, &desc, &mut lcg);
                    let b = if lcg.pick(2) == 0 {
                        g.add_relu(b).unwrap()
                    } else {
                        b
                    };
                    outs.push(b);
                    out_c += bc;
                }
                tip = g.add_concat(&outs).unwrap();
                c = out_c;
            }
        }
    }
    // Some ReLUs fuse into their conv; the rest stay standalone. Both
    // paths must agree either way.
    if lcg.pick(2) == 0 {
        g.fuse_relu();
    }
    (g, input_dims)
}

fn assert_exec_matches_naive(seed: u64, segments: usize, batch: usize) {
    let (g, (c, h, w)) = random_graph(seed, segments);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
    let input = Tensor4::<f32>::random(batch, c, h, w, -1.0, 1.0, &mut rng);
    let reference = g.execute(&input).unwrap();

    let net = std::sync::Arc::new(compile_with_graph_engines("prop", &g, (c, h, w)).unwrap());
    let pool = std::sync::Arc::new(ArenaPool::new(&net));
    let exec = NetworkExecutor::new(net.clone(), pool);
    for threads in [1usize, 2, 4] {
        let rt = Runtime::with_threads(threads);
        // Twice per pool size: the second run rides a recycled arena.
        for round in 0..2 {
            let out = exec.run_on(&rt, &input, false).unwrap();
            assert_eq!(out.output.dims(), reference.dims());
            let exact = out
                .output
                .data()
                .iter()
                .zip(reference.data())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(
                exact,
                "seed {seed}: exec output diverged from naive reference \
                 (threads {threads}, round {round})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn exec_is_bit_identical_to_naive_execute(
        segments in 2usize..6,
        batch in 1usize..3,
        seed in any::<u64>(),
    ) {
        assert_exec_matches_naive(seed, segments, batch);
    }
}

#[test]
fn known_inception_fragment_is_bit_identical() {
    // Deterministic smoke for the branch-heavy case: both Inception
    // modules at once, Winograd on the 3×3s, fused ReLUs on.
    let (mut g, _out) = wino_graph::build_inception_3a_3b().unwrap();
    let mut lcg = Lcg(7);
    for (id, desc) in g.conv_nodes() {
        let mut rng = StdRng::seed_from_u64(lcg.next());
        let w = Tensor4::<f32>::random(
            desc.out_ch,
            desc.in_ch,
            desc.ksz,
            desc.ksz,
            -0.2,
            0.2,
            &mut rng,
        );
        g.set_weights(id, w).unwrap();
        if desc.ksz == 3 {
            g.set_engine(id, EngineChoice::Winograd(WinogradConfig::new(2)));
        } else {
            g.set_engine(id, EngineChoice::Im2col);
        }
    }
    let mut rng = StdRng::seed_from_u64(99);
    let input = Tensor4::<f32>::random(1, 192, 28, 28, -1.0, 1.0, &mut rng);
    let reference = g.execute(&input).unwrap();

    let net = std::sync::Arc::new(
        compile_with_graph_engines("inception-3a-3b", &g, (192, 28, 28)).unwrap(),
    );
    assert!(
        net.max_wave_width() >= 4,
        "inception branches must share a wave"
    );
    let pool = std::sync::Arc::new(ArenaPool::new(&net));
    let exec = NetworkExecutor::new(net, pool);
    let out = exec
        .run_on(&Runtime::with_threads(4), &input, false)
        .unwrap();
    let exact = out
        .output
        .data()
        .iter()
        .zip(reference.data())
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(exact, "inception exec output diverged from naive reference");
}
