//! Schedule and arena-planner invariants on the zoo networks.

use std::sync::Arc;

use wino_exec::{compile_with_graph_engines, ArenaPool, NetworkExecutor};
use wino_graph::{
    build_alexnet_graph, build_inception_3a_3b, build_inception_v1_graph, build_nin_graph,
    ComputeGraph,
};
use wino_runtime::Runtime;
use wino_tensor::Tensor4;

fn seeded(mut g: ComputeGraph, seed: u64) -> ComputeGraph {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    for (id, desc) in g.conv_nodes() {
        let w = Tensor4::<f32>::random(
            desc.out_ch,
            desc.in_ch,
            desc.ksz,
            desc.ksz,
            -0.1,
            0.1,
            &mut rng,
        );
        g.set_weights(id, w).unwrap();
    }
    g
}

#[test]
fn planner_peak_is_strictly_below_naive_on_inception_modules() {
    let (g, _) = build_inception_3a_3b().unwrap();
    let g = seeded(g, 1);
    let net = compile_with_graph_engines("inception-3a-3b", &g, (192, 28, 28)).unwrap();
    let peak = net.peak_arena_bytes(1);
    let naive = net.naive_activation_bytes(1);
    assert!(
        peak < naive,
        "planner peak {peak} not below naive sum-of-activations {naive}"
    );
    // The branches must actually be co-scheduled (4 per module).
    assert!(net.max_wave_width() >= 4);
    // Liveness-driven reuse should do a lot better than "every value
    // gets its own slab": the slab count stays well under the value
    // count.
    assert!(net.slab_count() < net.step_count());
}

#[test]
fn planner_peak_never_exceeds_naive_on_any_zoo_network() {
    let cases = [
        (
            "alexnet",
            build_alexnet_graph().unwrap().0,
            (3usize, 227usize, 227usize),
        ),
        ("nin", build_nin_graph().unwrap().0, (3, 227, 227)),
        (
            "inception-v1",
            build_inception_v1_graph().unwrap().0,
            (64, 56, 56),
        ),
    ];
    for (name, g, input) in cases {
        let g = seeded(g, 2);
        let net = compile_with_graph_engines(name, &g, input).unwrap();
        let peak = net.peak_arena_bytes(1);
        let naive = net.naive_activation_bytes(1);
        assert!(peak <= naive, "{name}: peak {peak} exceeds naive {naive}");
        assert!(net.conv_count() > 0, "{name}: no conv steps");
        assert!(net.wave_count() <= net.step_count());
    }
}

#[test]
fn sequential_chains_schedule_one_step_per_wave() {
    let (g, _) = build_alexnet_graph().unwrap();
    let g = seeded(g, 3);
    let net = compile_with_graph_engines("alexnet", &g, (3, 227, 227)).unwrap();
    assert_eq!(net.max_wave_width(), 1);
    assert_eq!(net.wave_count(), net.step_count());
    // A two-slab ping-pong (plus pool-overlap slack) covers a chain;
    // the planner must find a small constant, not O(depth).
    assert!(
        net.slab_count() <= 3,
        "chain used {} slabs",
        net.slab_count()
    );
}

#[test]
fn output_dims_and_batch_scaling_are_consistent() {
    let (g, _) = build_inception_3a_3b().unwrap();
    let g = seeded(g, 4);
    let net = compile_with_graph_engines("inception-3a-3b", &g, (192, 28, 28)).unwrap();
    assert_eq!(net.input_dims(), (192, 28, 28));
    assert_eq!(net.output_dims(), (480, 28, 28));
    assert_eq!(net.peak_arena_bytes(5), 5 * net.peak_arena_bytes(1));
    assert_eq!(
        net.naive_activation_bytes(5),
        5 * net.naive_activation_bytes(1)
    );
}

#[test]
fn arena_pool_recycles_and_error_free_runs_balance_the_pool() {
    let (g, _) = build_inception_3a_3b().unwrap();
    let g = seeded(g, 5);
    let net = Arc::new(compile_with_graph_engines("inception-3a-3b", &g, (192, 28, 28)).unwrap());
    let pool = Arc::new(ArenaPool::new(&net));
    pool.reserve(2, 2);
    assert_eq!(pool.available(), 2);
    let exec = NetworkExecutor::new(net, pool.clone());
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(6);
    let input = Tensor4::<f32>::random(2, 192, 28, 28, -1.0, 1.0, &mut rng);
    for _ in 0..3 {
        exec.run_on(&Runtime::with_threads(2), &input, false)
            .unwrap();
        // Every run returns its arena.
        assert_eq!(pool.available(), 2);
    }
}

#[test]
fn wrong_input_shape_is_rejected() {
    let (g, _) = build_inception_3a_3b().unwrap();
    let g = seeded(g, 7);
    let net = Arc::new(compile_with_graph_engines("inception-3a-3b", &g, (192, 28, 28)).unwrap());
    let pool = Arc::new(ArenaPool::new(&net));
    let exec = NetworkExecutor::new(net, pool);
    let bad = Tensor4::<f32>::zeros(1, 3, 28, 28);
    assert!(exec.run(&bad).is_err());
}
