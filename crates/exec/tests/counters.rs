//! Probe-counter contracts: zero steady-state allocations and
//! exactly-once warm filter transforms.
//!
//! Counters are process-global, so each contract lives in its own
//! integration-test binary section guarded by a shared lock to keep
//! `wino_probe::reset()` calls from racing.

use std::sync::{Arc, Mutex, OnceLock};

use rand::rngs::StdRng;
use rand::SeedableRng;
use wino_conv::WinogradConfig;
use wino_exec::{compile_with_graph_engines, set_steady_phase, ArenaPool, NetworkExecutor};
use wino_graph::{build_inception_3a_3b, ComputeGraph, EngineChoice};
use wino_runtime::Runtime;
use wino_tensor::Tensor4;

fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

fn winograd_net() -> ComputeGraph {
    let (mut g, _) = build_inception_3a_3b().unwrap();
    let mut rng = StdRng::seed_from_u64(11);
    for (id, desc) in g.conv_nodes() {
        let w = Tensor4::<f32>::random(
            desc.out_ch,
            desc.in_ch,
            desc.ksz,
            desc.ksz,
            -0.1,
            0.1,
            &mut rng,
        );
        g.set_weights(id, w).unwrap();
        if desc.ksz == 3 {
            g.set_engine(id, EngineChoice::Winograd(WinogradConfig::new(2)));
        }
    }
    g
}

#[test]
fn steady_phase_executes_with_zero_graph_level_allocations() {
    let _guard = lock();
    wino_probe::reset();
    wino_probe::set_mode(wino_probe::Mode::Summary);
    set_steady_phase(false);

    let g = winograd_net();
    let net = Arc::new(compile_with_graph_engines("inception-3a-3b", &g, (192, 28, 28)).unwrap());
    let pool = Arc::new(ArenaPool::new(&net));
    let exec = NetworkExecutor::new(net, pool.clone());
    let rt = Runtime::with_threads(2);

    // Warmup: reserve arenas at the worst-case batch and prime once.
    pool.reserve(2, 2);
    let mut rng = StdRng::seed_from_u64(12);
    let big = Tensor4::<f32>::random(2, 192, 28, 28, -1.0, 1.0, &mut rng);
    let small = Tensor4::<f32>::random(1, 192, 28, 28, -1.0, 1.0, &mut rng);
    exec.run_on(&rt, &big, false).unwrap();
    assert!(wino_probe::counter("exec.arena_allocs").get() > 0);

    // Steady state: smaller and equal batches recycle reserved arenas.
    set_steady_phase(true);
    for _ in 0..4 {
        exec.run_on(&rt, &big, false).unwrap();
        exec.run_on(&rt, &small, false).unwrap();
    }
    set_steady_phase(false);
    assert_eq!(
        wino_probe::counter("exec.allocs_steady").get(),
        0,
        "steady-state execution must not allocate at graph level"
    );
    // The gauge saw the in-flight arena bytes.
    assert!(wino_probe::gauge("exec.arena_bytes_peak").peak() > 0);
    wino_probe::set_mode(wino_probe::Mode::Off);
}

#[test]
fn warm_filter_transforms_fire_exactly_once_per_winograd_conv() {
    let _guard = lock();
    wino_probe::reset();
    wino_probe::set_mode(wino_probe::Mode::Summary);

    let g = winograd_net();
    let winograd_layers = g
        .conv_nodes()
        .iter()
        .filter(|(id, _)| matches!(g.engine(*id), EngineChoice::Winograd(_)))
        .count() as u64;
    assert!(winograd_layers > 0);

    // Compilation builds every plan — and with it, every warm bank.
    let net = Arc::new(compile_with_graph_engines("inception-3a-3b", &g, (192, 28, 28)).unwrap());
    let after_compile = wino_probe::counter("conv.filter_transforms").get();
    assert_eq!(
        after_compile, winograd_layers,
        "expected one filter transform per winograd conv at compile time"
    );

    // Serving N requests must not re-transform anything.
    let pool = Arc::new(ArenaPool::new(&net));
    let exec = NetworkExecutor::new(net, pool);
    let mut rng = StdRng::seed_from_u64(13);
    let input = Tensor4::<f32>::random(1, 192, 28, 28, -1.0, 1.0, &mut rng);
    for _ in 0..3 {
        exec.run(&input).unwrap();
    }
    assert_eq!(
        wino_probe::counter("conv.filter_transforms").get(),
        after_compile,
        "steady-state serving re-ran a filter transform"
    );
    wino_probe::set_mode(wino_probe::Mode::Off);
}
