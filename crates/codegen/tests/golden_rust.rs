//! Golden-file tests for the recipe → Rust SoA emitter.
//!
//! The emitted source for a fixed recipe is part of the crate's
//! contract: conv's build script compiles it verbatim into the hot
//! path, so silent drift in emission (operand order, constant
//! encoding, wrapper attributes) must fail loudly here, next to a
//! reviewable diff. Regenerate with `BLESS=1 cargo test -p
//! wino-codegen --test golden_rust` after an intentional change.

use std::path::PathBuf;

use wino_codegen::emit_soa_transform;
use wino_symbolic::{generate_recipe, RecipeOptions};
use wino_transform::{table3_points, toom_cook_matrices, WinogradSpec};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, emitted: &str) {
    let path = golden_path(name);
    if std::env::var("BLESS").is_ok() {
        std::fs::write(&path, emitted).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert_eq!(
        emitted, expected,
        "emitted Rust for {name} drifted from the golden file; \
         if intentional, regenerate with BLESS=1"
    );
}

fn recipes(m: usize, r: usize) -> (wino_symbolic::Recipe, wino_symbolic::Recipe) {
    let spec = WinogradSpec::new(m, r).unwrap();
    let mats = toom_cook_matrices(spec, &table3_points(spec.alpha()).unwrap()).unwrap();
    let opts = RecipeOptions::optimized();
    (
        generate_recipe(&mats.b_t, &opts),
        generate_recipe(&mats.a_t, &opts),
    )
}

#[test]
fn f2x3_input_kernel_matches_golden() {
    let (input, _) = recipes(2, 3);
    let code = emit_soa_transform("f2x3_input", &input, "F(2,3) input transform `Bᵀ·d·B`.");
    check_golden("f2x3_input.rs.golden", &code);
}

#[test]
fn f4x3_output_kernel_matches_golden() {
    let (_, output) = recipes(4, 3);
    let code = emit_soa_transform("f4x3_output", &output, "F(4,3) output transform `Aᵀ·M·A`.");
    check_golden("f4x3_output.rs.golden", &code);
}
