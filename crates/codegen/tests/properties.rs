//! Property tests for the meta-programming layer: the template engine,
//! the unroller, and the backend bridge must be total over their input
//! domains (no panics, structural invariants hold).

use proptest::prelude::*;
use std::collections::BTreeMap;
use wino_codegen::{
    effective_unroll, emit_unrolled_loop, generate_plan, render_template, CodegenOptions,
    PlanVariant, Template, Unroll,
};
use wino_tensor::ConvDesc;

/// Template sources made of literals, escapes and placeholders.
fn arb_template() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            3 => "[a-z {};()=+*/-]{0,12}".prop_map(|s| s),
            1 => Just("%%".to_string()),
            2 => "[a-z_]{1,8}".prop_map(|name| format!("%({name})")),
        ],
        0..12,
    )
    .prop_map(|parts| parts.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Parsing never panics; when it succeeds, rendering with bindings
    /// for every placeholder succeeds and contains every binding value.
    #[test]
    fn template_parse_render_total(src in arb_template(), value in "[a-z0-9]{1,6}") {
        if let Ok(t) = Template::parse(&src) {
            let names: Vec<String> =
                t.placeholders().iter().map(|s| s.to_string()).collect();
            let vars: BTreeMap<&str, String> =
                names.iter().map(|n| (n.as_str(), value.clone())).collect();
            let rendered = t.render(&vars).expect("all placeholders bound");
            if !names.is_empty() {
                prop_assert!(rendered.contains(value.as_str()) || value.is_empty());
            }
        }
    }

    /// Escaped percent signs survive rendering exactly.
    #[test]
    fn template_escapes(n in 1usize..6) {
        let src = "%%".repeat(n);
        let rendered = render_template(&src, &BTreeMap::new()).unwrap();
        prop_assert_eq!(rendered, "%".repeat(n));
    }

    /// The effective unroll factor always divides the trip count or
    /// equals it (full unroll), and never exceeds it.
    #[test]
    fn unroll_divides_or_fully_unrolls(
        iters in 0usize..200,
        factor in 1usize..12,
        full in any::<bool>(),
    ) {
        let requested = if full { Unroll::Full } else { Unroll::Factor(factor) };
        let eff = effective_unroll(iters, requested);
        if iters == 0 {
            prop_assert_eq!(eff, 1);
        } else {
            prop_assert!(eff <= iters.max(1));
            prop_assert!(eff == iters || iters % eff == 0, "eff {eff} for {iters}");
        }
    }

    /// Unrolled emission covers every iteration exactly once: the body
    /// callback is invoked `factor` times per emitted block and the
    /// loop structure covers the full range.
    #[test]
    fn unrolled_loop_covers_range(iters in 1usize..40, factor in 1usize..8) {
        let mut calls = 0usize;
        let code = emit_unrolled_loop("i", iters, Unroll::Factor(factor), |_| {
            calls += 1;
            "body();\n".to_string()
        });
        let eff = effective_unroll(iters, Unroll::Factor(factor));
        if eff == iters {
            prop_assert_eq!(calls, iters);
            prop_assert!(!code.contains("for"));
        } else {
            prop_assert_eq!(calls, eff);
            let step = format!("i += {eff}");
            prop_assert!(code.contains(&step));
        }
    }

    /// Every generatable plan, for any backend and any valid blocking,
    /// produces placeholder-free, brace-balanced source.
    #[test]
    fn plans_always_well_formed(
        mnt_idx in 0usize..4,
        mnb_idx in 0usize..3,
        backend_idx in 0usize..3,
        variant_idx in 0usize..4,
        m in 2usize..7,
    ) {
        use wino_ir::Backend;
        let opts = CodegenOptions {
            backend: [Backend::Cuda, Backend::Vulkan, Backend::OpenCl][backend_idx],
            mnt: [1, 2, 4, 8][mnt_idx],
            mnb: [8, 16, 32][mnb_idx],
            ..Default::default()
        };
        let variant = [
            PlanVariant::Direct,
            PlanVariant::Im2col,
            PlanVariant::WinogradNonFused { m },
            PlanVariant::WinogradFused { m },
        ][variant_idx];
        let desc = ConvDesc::new(3, 1, 1, 16, 1, 14, 14, 8);
        if let Ok(plan) = generate_plan(&desc, variant, &opts) {
            for k in &plan.kernels {
                prop_assert!(!k.source.contains("%("), "{}: unfilled placeholder", k.name);
                prop_assert_eq!(
                    k.source.matches('{').count(),
                    k.source.matches('}').count()
                );
                if opts.backend != Backend::Cuda {
                    prop_assert!(!k.source.contains("__global__"), "{}", k.name);
                    prop_assert!(!k.source.contains("threadIdx"), "{}", k.name);
                }
                k.validate().unwrap();
            }
        }
    }
}
