//! Rendering straight-line recipes into GPU source fragments.

use wino_num::Rational;
use wino_symbolic::{Recipe, Reg};

/// Formats a rational constant as a C float literal. Exact dyadic
/// values print exactly; others print with full f32 precision.
pub fn float_literal(c: &Rational) -> String {
    let v = c.to_f32();
    if v == v.trunc() && v.abs() < 1e7 {
        format!("{v:.1}f")
    } else {
        format!("{v:e}f")
    }
}

/// Renders one application of `recipe` as a braced block: local
/// temporaries are declared inside so unrolled instances never
/// collide. `in_expr`/`out_expr` map element indices to lvalue
/// expressions (e.g. `|i| format!("g[{i}][{j}]")`).
pub fn render_recipe_block(
    recipe: &Recipe,
    in_expr: &dyn Fn(usize) -> String,
    out_expr: &dyn Fn(usize) -> String,
) -> String {
    let mut block = String::from("{\n");
    if recipe.n_tmp > 0 {
        block.push_str("  float ");
        for t in 0..recipe.n_tmp {
            if t > 0 {
                block.push_str(", ");
            }
            block.push_str(&format!("t{t}"));
        }
        block.push_str(";\n");
    }
    let body = recipe.render(
        |reg| match reg {
            Reg::In(i) => in_expr(i),
            Reg::Tmp(t) => format!("t{t}"),
            Reg::Out(o) => out_expr(o),
        },
        float_literal,
    );
    for line in body.lines() {
        block.push_str("  ");
        block.push_str(line);
        block.push('\n');
    }
    block.push_str("}\n");
    block
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_symbolic::{generate_recipe, RecipeOptions};
    use wino_transform::{table3_points, toom_cook_matrices, WinogradSpec};

    #[test]
    fn float_literals() {
        assert_eq!(float_literal(&Rational::from_int(1)), "1.0f");
        assert_eq!(float_literal(&Rational::from_int(-2)), "-2.0f");
        assert_eq!(float_literal(&Rational::from_frac(1, 2)), "5e-1f");
    }

    #[test]
    fn rendered_block_scopes_temporaries() {
        let spec = WinogradSpec::new(2, 3).unwrap();
        let mats = toom_cook_matrices(spec, &table3_points(4).unwrap()).unwrap();
        let recipe = generate_recipe(&mats.g, &RecipeOptions::optimized());
        let code = render_recipe_block(&recipe, &|i| format!("g[{i}][j]"), &|o| {
            format!("T[{o}][j]")
        });
        assert!(code.starts_with("{\n"));
        assert!(code.trim_end().ends_with('}'));
        assert!(code.contains("float t0"));
        assert!(code.contains("g[0][j]"));
        assert!(code.contains("T[1][j]"));
    }

    #[test]
    fn no_temporaries_no_declaration() {
        let spec = WinogradSpec::new(2, 3).unwrap();
        let mats = toom_cook_matrices(spec, &table3_points(4).unwrap()).unwrap();
        let recipe = generate_recipe(&mats.b_t, &RecipeOptions::optimized());
        if recipe.n_tmp == 0 {
            let code = render_recipe_block(&recipe, &|i| format!("d{i}"), &|o| format!("v{o}"));
            assert!(!code.contains("float t"));
        }
    }
}
