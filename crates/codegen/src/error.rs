//! Error type for the code generator.

use std::fmt;

use wino_transform::TransformError;

/// Errors produced during kernel generation.
#[derive(Clone, Debug, PartialEq)]
pub enum CodegenError {
    /// A template referenced a placeholder with no binding.
    UnboundPlaceholder(String),
    /// A substitution map bound a name no placeholder consumes —
    /// generated code silently drifted from its template.
    UnusedBinding(String),
    /// A template placeholder was malformed (unterminated `%(`).
    MalformedTemplate(String),
    /// Recipe/transform generation failed.
    Transform(TransformError),
    /// The requested configuration cannot be generated (e.g. Winograd
    /// for a strided convolution).
    Unsupported(String),
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::UnboundPlaceholder(name) => {
                write!(f, "template placeholder %({name}) has no binding")
            }
            CodegenError::UnusedBinding(name) => {
                write!(f, "binding {name:?} matches no template placeholder")
            }
            CodegenError::MalformedTemplate(msg) => write!(f, "malformed template: {msg}"),
            CodegenError::Transform(e) => write!(f, "transform error: {e}"),
            CodegenError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
        }
    }
}

impl std::error::Error for CodegenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodegenError::Transform(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TransformError> for CodegenError {
    fn from(e: TransformError) -> Self {
        CodegenError::Transform(e)
    }
}
