//! Generation options: the tunable parameters of Table 1 plus the
//! target backend.

use wino_ir::Backend;
use wino_symbolic::RecipeOptions;

use crate::unroll::Unroll;

/// All knobs the auto-tuner explores (Table 1) plus the backend.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CodegenOptions {
    /// Target programming interface.
    pub backend: Backend,
    /// Loop unrolling factor `LU`.
    pub unroll: Unroll,
    /// SGEMM register-blocking edge `MNt` (per-thread tile is
    /// `MNt × MNt`); powers of two.
    pub mnt: usize,
    /// SGEMM/thread blocking edge `MNb` (a block has `MNb²` threads);
    /// powers of two.
    pub mnb: usize,
    /// Emit FMA instructions (§3.2.1 — disabled when the target lacks
    /// them).
    pub fma: bool,
    /// Use naive matrix-multiplication transforms instead of the
    /// symbolic recipes (the paper's "non-optimized" ablation).
    pub naive_transforms: bool,
}

impl Default for CodegenOptions {
    fn default() -> Self {
        CodegenOptions {
            backend: Backend::Cuda,
            unroll: Unroll::Full,
            mnt: 4,
            mnb: 16,
            fma: true,
            naive_transforms: false,
        }
    }
}

impl CodegenOptions {
    /// The recipe-pipeline options implied by these codegen options.
    pub fn recipe_options(&self) -> RecipeOptions {
        if self.naive_transforms {
            RecipeOptions::minimal()
        } else {
            RecipeOptions {
                cse: true,
                factorize: true,
                fma: self.fma,
            }
        }
    }

    /// Threads per block implied by `MNb`.
    pub fn threads_per_block(&self) -> usize {
        (self.mnb * self.mnb).clamp(32, 1024)
    }

    /// Validates parameter ranges (powers of two, sane bounds).
    pub fn validate(&self) -> Result<(), String> {
        if !self.mnt.is_power_of_two() || self.mnt > 16 {
            return Err(format!("MNt must be a power of two ≤ 16, got {}", self.mnt));
        }
        if !self.mnb.is_power_of_two() || !(4..=32).contains(&self.mnb) {
            return Err(format!(
                "MNb must be a power of two in [4, 32], got {}",
                self.mnb
            ));
        }
        Ok(())
    }
}

/// Relative efficiency of the SGEMM micro-kernel as a function of the
/// register-blocking edge `MNt`: small tiles starve the FPU (little
/// reuse, dual-issue stalls); very large tiles spill registers. The
/// shape follows the classic register-blocking curves the paper's
/// SGEMM tuning explores; the GPU cost model divides compute
/// throughput by this factor.
pub fn gemm_micro_efficiency(mnt: usize) -> f64 {
    match mnt {
        0 | 1 => 0.35,
        2 => 0.55,
        4 => 0.80,
        8 => 0.88,
        _ => 0.78, // 16+: register spills
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        CodegenOptions::default().validate().unwrap();
    }

    #[test]
    fn bad_parameters_rejected() {
        let mut o = CodegenOptions {
            mnt: 3,
            ..Default::default()
        };
        assert!(o.validate().is_err());
        o.mnt = 4;
        o.mnb = 64;
        assert!(o.validate().is_err());
        o.mnb = 2;
        assert!(o.validate().is_err());
    }

    #[test]
    fn recipe_options_follow_flags() {
        let o = CodegenOptions {
            naive_transforms: true,
            ..Default::default()
        };
        assert_eq!(o.recipe_options(), RecipeOptions::minimal());
        let o = CodegenOptions {
            fma: false,
            ..Default::default()
        };
        assert!(!o.recipe_options().fma);
        assert!(o.recipe_options().cse);
    }

    #[test]
    fn micro_efficiency_peaks_mid_range() {
        assert!(gemm_micro_efficiency(8) > gemm_micro_efficiency(1));
        assert!(gemm_micro_efficiency(8) > gemm_micro_efficiency(16));
    }

    #[test]
    fn threads_per_block_clamped() {
        let o = CodegenOptions {
            mnb: 4,
            ..Default::default()
        };
        assert_eq!(o.threads_per_block(), 32);
        let o = CodegenOptions {
            mnb: 32,
            ..Default::default()
        };
        assert_eq!(o.threads_per_block(), 1024);
    }
}
