//! Assembling complete per-convolution kernel plans.

use wino_ir::KernelPlan;
use wino_symbolic::RecipeOptions;
use wino_tensor::{tile_counts, ConvDesc};
use wino_transform::{recipe_db, WinogradSpec};

use crate::baseline_kernels::{gen_direct_conv_kernel, gen_im2col_kernels};
use crate::error::CodegenError;
use crate::fused_kernel::gen_fused_winograd_kernel;
use crate::gemm_kernel::{gen_gemm_kernel, GemmDims};
use crate::options::CodegenOptions;
use crate::transform_kernels::{
    gen_filter_transform_kernel, gen_input_transform_kernel, gen_output_transform_kernel,
};

/// Which implementation of the convolution to generate (the variant
/// axis of the tuning space: `WV` plus the baselines).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PlanVariant {
    /// Direct convolution.
    Direct,
    /// im2col + GEMM.
    Im2col,
    /// Non-fused Winograd with output tile size `m`.
    WinogradNonFused {
        /// Output tile size.
        m: usize,
    },
    /// Fused Winograd with output tile size `m`.
    WinogradFused {
        /// Output tile size.
        m: usize,
    },
}

impl PlanVariant {
    /// Human-readable label used in plans and reports.
    pub fn label(&self) -> String {
        match self {
            PlanVariant::Direct => "direct".into(),
            PlanVariant::Im2col => "im2col+gemm".into(),
            PlanVariant::WinogradNonFused { m } => format!("winograd-nonfused m={m}"),
            PlanVariant::WinogradFused { m } => format!("winograd-fused m={m}"),
        }
    }

    /// The Winograd output tile size, if this is a Winograd variant.
    pub fn winograd_m(&self) -> Option<usize> {
        match self {
            PlanVariant::WinogradNonFused { m } | PlanVariant::WinogradFused { m } => Some(*m),
            _ => None,
        }
    }
}

/// Generates the full kernel plan for `desc` under `variant` and
/// `opts`.
///
/// # Errors
/// Unsupported combinations (Winograd with stride ≠ 1, unsupported α)
/// and template failures.
pub fn generate_plan(
    desc: &ConvDesc,
    variant: PlanVariant,
    opts: &CodegenOptions,
) -> Result<KernelPlan, CodegenError> {
    opts.validate().map_err(CodegenError::Unsupported)?;
    let kernels = match variant {
        PlanVariant::Direct => vec![gen_direct_conv_kernel(desc, opts)?],
        PlanVariant::Im2col => gen_im2col_kernels(desc, opts)?,
        PlanVariant::WinogradNonFused { m } => {
            let recipes = winograd_recipes(desc, m, opts)?;
            let spec = recipes.spec;
            let alpha = spec.alpha();
            let (th, tw) = tile_counts(desc.out_h(), desc.out_w(), m);
            let p_total = desc.batch * th * tw;
            vec![
                gen_filter_transform_kernel(desc, &recipes, opts)?,
                gen_input_transform_kernel(desc, &recipes, opts)?,
                gen_gemm_kernel(
                    &GemmDims {
                        batches: alpha * alpha,
                        m: desc.out_ch,
                        k: desc.in_ch,
                        n: p_total,
                    },
                    opts,
                    "wg",
                )?,
                gen_output_transform_kernel(desc, &recipes, opts)?,
            ]
        }
        PlanVariant::WinogradFused { m } => {
            let recipes = winograd_recipes(desc, m, opts)?;
            vec![gen_fused_winograd_kernel(desc, &recipes, opts)?]
        }
    };
    let plan = KernelPlan {
        desc: *desc,
        variant: variant.label(),
        kernels,
    };
    plan.validate().map_err(CodegenError::Unsupported)?;
    Ok(plan)
}

fn winograd_recipes(
    desc: &ConvDesc,
    m: usize,
    opts: &CodegenOptions,
) -> Result<std::sync::Arc<wino_transform::TransformRecipes>, CodegenError> {
    if desc.stride != 1 {
        return Err(CodegenError::Unsupported(format!(
            "Winograd requires stride 1, got {}",
            desc.stride
        )));
    }
    let spec = WinogradSpec::new(m, desc.ksz)?;
    if opts.naive_transforms {
        // The Figure-6 "non-optimized" baseline: dense matrix
        // multiplications for every transform.
        return Ok(recipe_db().get_naive(spec)?);
    }
    let ropts: RecipeOptions = opts.recipe_options();
    Ok(recipe_db().get(spec, ropts)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_ir::KernelKind;

    fn desc() -> ConvDesc {
        ConvDesc::new(3, 1, 1, 16, 1, 14, 14, 8)
    }

    #[test]
    fn nonfused_plan_has_four_kernels() {
        let plan = generate_plan(
            &desc(),
            PlanVariant::WinogradNonFused { m: 4 },
            &Default::default(),
        )
        .unwrap();
        assert_eq!(plan.kernels.len(), 4);
        assert!(matches!(
            plan.kernels[0].kind,
            KernelKind::FilterTransform { .. }
        ));
        assert!(matches!(
            plan.kernels[1].kind,
            KernelKind::InputTransform { .. }
        ));
        assert!(matches!(
            plan.kernels[2].kind,
            KernelKind::BatchedGemm { batches: 36, .. }
        ));
        assert!(matches!(
            plan.kernels[3].kind,
            KernelKind::OutputTransform { .. }
        ));
    }

    #[test]
    fn fused_plan_has_one_kernel() {
        let plan = generate_plan(
            &desc(),
            PlanVariant::WinogradFused { m: 2 },
            &Default::default(),
        )
        .unwrap();
        assert_eq!(plan.kernels.len(), 1);
        assert_eq!(plan.launches(), 1);
    }

    #[test]
    fn baselines_generate() {
        assert_eq!(
            generate_plan(&desc(), PlanVariant::Direct, &Default::default())
                .unwrap()
                .kernels
                .len(),
            1
        );
        assert_eq!(
            generate_plan(&desc(), PlanVariant::Im2col, &Default::default())
                .unwrap()
                .kernels
                .len(),
            2
        );
    }

    #[test]
    fn strided_winograd_rejected() {
        let d = ConvDesc::new(3, 2, 1, 16, 1, 14, 14, 8);
        assert!(matches!(
            generate_plan(
                &d,
                PlanVariant::WinogradNonFused { m: 2 },
                &Default::default()
            ),
            Err(CodegenError::Unsupported(_))
        ));
        // Baselines still work for strided convolutions.
        assert!(generate_plan(&d, PlanVariant::Direct, &Default::default()).is_ok());
    }

    #[test]
    fn unsupported_alpha_propagates() {
        // m=10, r=7 → α=16 is fine; m=11 → α=17 is not.
        let d = ConvDesc::new(7, 1, 3, 8, 1, 28, 28, 4);
        assert!(generate_plan(
            &d,
            PlanVariant::WinogradNonFused { m: 10 },
            &Default::default()
        )
        .is_ok());
        assert!(generate_plan(
            &d,
            PlanVariant::WinogradNonFused { m: 11 },
            &Default::default()
        )
        .is_err());
    }

    #[test]
    fn variant_labels() {
        assert_eq!(
            PlanVariant::WinogradFused { m: 4 }.label(),
            "winograd-fused m=4"
        );
        assert_eq!(PlanVariant::Direct.winograd_m(), None);
        assert_eq!(PlanVariant::WinogradNonFused { m: 6 }.winograd_m(), Some(6));
    }

    #[test]
    fn fused_vs_nonfused_memory_profile() {
        // The fused plan must move fewer global bytes (no U'/V'/M'
        // round-trips) — the paper's stated motivation for fusion.
        let nf = generate_plan(
            &desc(),
            PlanVariant::WinogradNonFused { m: 2 },
            &Default::default(),
        )
        .unwrap();
        let f = generate_plan(
            &desc(),
            PlanVariant::WinogradFused { m: 2 },
            &Default::default(),
        )
        .unwrap();
        assert!(f.total_cost().global_bytes() < nf.total_cost().global_bytes());
        assert!(f.launches() < nf.launches());
    }
}
