//! Generator for the tiled (batched) SGEMM kernel.
//!
//! The multiplication stage of the non-fused variant runs α² batched
//! SGEMMs `M(ξ) = U'(ξ)·V'(ξ)` with `U'` of shape `K×C` and `V'` of
//! shape `C×P` (§3.2.2). The kernel is the classic shared-memory tiled
//! GEMM parameterized by the Table-1 knobs: `MNb` (thread-block edge)
//! and `MNt` (per-thread register tile edge), so each block computes a
//! `(MNb·MNt)²` output tile.

use std::collections::BTreeMap;

use wino_ir::{Backend, CostProfile, Dim3, Kernel, KernelKind, LaunchConfig};

use crate::error::CodegenError;
use crate::options::{gemm_micro_efficiency, CodegenOptions};
use crate::template::render_template_strict;

pub(crate) const GEMM_TEMPLATE: &str = r#"// generated: %(name) — batched tiled SGEMM (MNb=%(MNB), MNt=%(MNT))
// CUCL IN A batch:M:K IN B batch:K:N OUT C batch:M:N
%(qualifier) %(name)(const float* __restrict__ A, const float* __restrict__ B,
                     float* __restrict__ C) {
  const int batch = blockIdx.z;
  const float* Ab = A + batch * %(M) * %(K);
  const float* Bb = B + batch * %(K) * %(N);
  float* Cb = C + batch * %(M) * %(N);
  %(shared_decls)
  const int row0 = blockIdx.y * %(BM) + threadIdx.y * %(MNT);
  const int col0 = blockIdx.x * %(BN) + threadIdx.x * %(MNT);
  float acc[%(MNT)][%(MNT)];
  for (int i = 0; i < %(MNT); ++i)
    for (int j = 0; j < %(MNT); ++j)
      acc[i][j] = 0.0f;
  for (int kk = 0; kk < %(K); kk += %(KC)) {
    %(panel_loads)
    __syncthreads();
    for (int p = 0; p < %(KC); ++p) {
      %(micro_kernel)
    }
    __syncthreads();
  }
  %(store_results)
}
"#;

/// Shape of one batched-GEMM launch.
#[derive(Clone, Copy, Debug)]
pub struct GemmDims {
    /// Independent multiplies (grid.z); 1 for a plain GEMM.
    pub batches: usize,
    /// Rows of A / C.
    pub m: usize,
    /// Inner dimension.
    pub k: usize,
    /// Columns of B / C.
    pub n: usize,
}

const K_CHUNK: usize = 8;

/// Generates the (batched) tiled SGEMM kernel.
///
/// # Errors
/// Template rendering failures or invalid blocking parameters.
pub fn gen_gemm_kernel(
    dims: &GemmDims,
    opts: &CodegenOptions,
    name_suffix: &str,
) -> Result<Kernel, CodegenError> {
    opts.validate().map_err(CodegenError::Unsupported)?;
    let (mnt, mnb) = (opts.mnt, opts.mnb);
    let bm = mnb * mnt; // block tile edge (rows)
    let bn = mnb * mnt; // block tile edge (cols)
    let name = format!("sgemm_{name_suffix}_b{}_t{}", mnb, mnt);

    let shared_decls = format!(
        "{shared} float As[{kc}][{bm}];\n  {shared} float Bs[{kc}][{bn}];",
        shared = opts.backend.shared_qualifier(),
        kc = K_CHUNK,
    );
    let panel_loads = format!(
        "for (int l = threadIdx.y * blockDim.x + threadIdx.x;\n\
              l < {kc} * {bm}; l += blockDim.x * blockDim.y) {{\n\
           const int pr = l / {bm}, pm = l % {bm};\n\
           const int gr = blockIdx.y * {bm} + pm;\n\
           As[pr][pm] = (gr < {m} && kk + pr < {k}) ? Ab[gr * {k} + kk + pr] : 0.0f;\n\
           const int pn = l % {bn};\n\
           const int gc = blockIdx.x * {bn} + pn;\n\
           Bs[pr][pn] = (gc < {n} && kk + pr < {k}) ? Bb[(kk + pr) * {n} + gc] : 0.0f;\n\
         }}",
        kc = K_CHUNK,
        m = dims.m,
        k = dims.k,
        n = dims.n,
    );
    let micro_kernel = format!(
        "float a[{mnt}], b[{mnt}];\n\
         for (int i = 0; i < {mnt}; ++i) a[i] = As[p][threadIdx.y * {mnt} + i];\n\
         for (int j = 0; j < {mnt}; ++j) b[j] = Bs[p][threadIdx.x * {mnt} + j];\n\
         for (int i = 0; i < {mnt}; ++i)\n\
           for (int j = 0; j < {mnt}; ++j)\n\
             acc[i][j] = fmaf(a[i], b[j], acc[i][j]);"
    );
    let store_results = format!(
        "for (int i = 0; i < {mnt}; ++i)\n\
           for (int j = 0; j < {mnt}; ++j)\n\
             if (row0 + i < {m} && col0 + j < {n})\n\
               Cb[(row0 + i) * {n} + col0 + j] = acc[i][j];",
        m = dims.m,
        n = dims.n,
    );

    let mut vars: BTreeMap<&str, String> = BTreeMap::new();
    vars.insert("name", name.clone());
    vars.insert("qualifier", "__global__ void".to_string());
    vars.insert("M", dims.m.to_string());
    vars.insert("K", dims.k.to_string());
    vars.insert("N", dims.n.to_string());
    vars.insert("MNB", mnb.to_string());
    vars.insert("MNT", mnt.to_string());
    vars.insert("BM", bm.to_string());
    vars.insert("BN", bn.to_string());
    vars.insert("KC", K_CHUNK.to_string());
    vars.insert("shared_decls", shared_decls);
    vars.insert("panel_loads", panel_loads);
    vars.insert("micro_kernel", micro_kernel);
    vars.insert("store_results", store_results);
    let source = render_template_strict(GEMM_TEMPLATE, &vars)?;

    let blocks_x = dims.n.div_ceil(bn);
    let blocks_y = dims.m.div_ceil(bm);
    // Padded extents model the divisibility waste the paper observes
    // for awkward tile counts (§4.2).
    let (m_pad, n_pad) = (blocks_y * bm, blocks_x * bn);
    let flops = 2 * dims.batches as u64 * m_pad as u64 * dims.k as u64 * n_pad as u64;
    let panel_bytes =
        dims.batches as u64 * (blocks_x * blocks_y) as u64 * ((bm + bn) * dims.k * 4) as u64;
    let cost = CostProfile {
        flops,
        global_load_bytes: panel_bytes,
        global_store_bytes: dims.batches as u64 * (m_pad * n_pad * 4) as u64,
        shared_bytes: 2 * panel_bytes,
        coalescing: 0.95, // staged through shared memory
        control_overhead: 1.0 / gemm_micro_efficiency(mnt),
    };
    let launch = LaunchConfig {
        grid: Dim3 {
            x: blocks_x,
            y: blocks_y,
            z: dims.batches.max(1),
        },
        block: Dim3::plane(mnb, mnb),
        shared_mem_bytes: K_CHUNK * (bm + bn) * 4,
        regs_per_thread: mnt * mnt + 2 * mnt + 18,
    };
    let source = crate::bridge::bridge_source(&source, opts.backend, &launch);
    Ok(Kernel {
        name,
        backend: opts.backend,
        kind: if dims.batches > 1 {
            KernelKind::BatchedGemm {
                batches: dims.batches,
                m_dim: dims.m,
                n_dim: dims.n,
                k_dim: dims.k,
            }
        } else {
            KernelKind::Gemm {
                m_dim: dims.m,
                n_dim: dims.n,
                k_dim: dims.k,
            }
        },
        launch,
        cost,
        source,
    })
}

/// Convenience: plain (non-batched) GEMM.
///
/// # Errors
/// See [`gen_gemm_kernel`].
pub fn gen_single_gemm_kernel(
    m: usize,
    k: usize,
    n: usize,
    opts: &CodegenOptions,
    name_suffix: &str,
) -> Result<Kernel, CodegenError> {
    gen_gemm_kernel(
        &GemmDims {
            batches: 1,
            m,
            k,
            n,
        },
        opts,
        name_suffix,
    )
}

/// CUDA is irrelevant here — keep the helper for OpenCL flavouring of
/// the synchronization primitive if a backend needs it later.
#[allow(dead_code)]
fn sync_call(backend: Backend) -> &'static str {
    match backend {
        Backend::Cuda => "__syncthreads()",
        Backend::Vulkan => "barrier()",
        Backend::OpenCl => "barrier(CLK_LOCAL_MEM_FENCE)",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_kernel_is_well_formed() {
        let dims = GemmDims {
            batches: 16,
            m: 64,
            k: 32,
            n: 196,
        };
        let k = gen_gemm_kernel(&dims, &CodegenOptions::default(), "wg").unwrap();
        k.validate().unwrap();
        assert!(!k.source.contains("%("));
        assert_eq!(k.source.matches('{').count(), k.source.matches('}').count());
        assert_eq!(k.launch.grid.z, 16);
        assert!(k.source.contains("fmaf"));
    }

    #[test]
    fn flops_account_padding_waste() {
        // 65 rows with block tile 64 → padded to 128 rows.
        let dims = GemmDims {
            batches: 1,
            m: 65,
            k: 8,
            n: 64,
        };
        let k = gen_gemm_kernel(&dims, &CodegenOptions::default(), "pad").unwrap();
        assert_eq!(k.cost.flops, 2 * 128 * 8 * 64);
    }

    #[test]
    fn register_blocking_drives_efficiency() {
        let dims = GemmDims {
            batches: 1,
            m: 256,
            k: 256,
            n: 256,
        };
        let small = gen_gemm_kernel(
            &dims,
            &CodegenOptions {
                mnt: 1,
                ..Default::default()
            },
            "s",
        )
        .unwrap();
        let tuned = gen_gemm_kernel(
            &dims,
            &CodegenOptions {
                mnt: 8,
                mnb: 8,
                ..Default::default()
            },
            "t",
        )
        .unwrap();
        assert!(small.cost.control_overhead > tuned.cost.control_overhead);
        assert!(tuned.launch.regs_per_thread > small.launch.regs_per_thread);
    }

    #[test]
    fn invalid_blocking_rejected() {
        let dims = GemmDims {
            batches: 1,
            m: 8,
            k: 8,
            n: 8,
        };
        let opts = CodegenOptions {
            mnt: 3,
            ..Default::default()
        };
        assert!(matches!(
            gen_gemm_kernel(&dims, &opts, "bad"),
            Err(CodegenError::Unsupported(_))
        ));
    }

    #[test]
    fn single_gemm_kind() {
        let k = gen_single_gemm_kernel(8, 8, 8, &CodegenOptions::default(), "one").unwrap();
        assert!(matches!(k.kind, KernelKind::Gemm { .. }));
        assert_eq!(k.launch.grid.z, 1);
    }
}
