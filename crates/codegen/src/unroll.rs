//! Adaptive loop unrolling (§3.2.1).
//!
//! "We unroll the Winograd transformation loops to eliminate control
//! instructions … The unrolling factor is a tunable parameter. For
//! those loops in which the iteration count is not dividable by the
//! unrolling factor, we find the closest divisor, or if we cannot find
//! one, we fully unroll the loop."

use std::fmt;

/// The `LU` tuning parameter of Table 1: `[1, 2, 4, 6, ∞]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Unroll {
    /// Unroll by a fixed factor (1 = rolled loop).
    Factor(usize),
    /// Fully unroll (the `∞` setting).
    Full,
}

impl Unroll {
    /// The paper's candidate values.
    pub fn table1_values() -> [Unroll; 5] {
        [
            Unroll::Factor(1),
            Unroll::Factor(2),
            Unroll::Factor(4),
            Unroll::Factor(6),
            Unroll::Full,
        ]
    }
}

impl fmt::Display for Unroll {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Unroll::Factor(k) => write!(f, "{k}"),
            Unroll::Full => write!(f, "inf"),
        }
    }
}

/// Resolves the effective unroll factor for a loop of `iters`
/// iterations: the requested factor if it divides `iters`, otherwise
/// the closest smaller divisor, otherwise full unrolling.
pub fn effective_unroll(iters: usize, requested: Unroll) -> usize {
    if iters == 0 {
        return 1;
    }
    match requested {
        Unroll::Full => iters,
        Unroll::Factor(f) => {
            let f = f.clamp(1, iters);
            if iters.is_multiple_of(f) {
                return f;
            }
            match (1..=f).rev().find(|d| iters.is_multiple_of(*d)) {
                Some(1) | None => iters, // no useful divisor: fully unroll
                Some(d) => d,
            }
        }
    }
}

/// Emits a (possibly partially unrolled) `for` loop in C syntax. The
/// body generator receives the index *expression* for each unrolled
/// instance (`"i"`, `"i + 1"`, … or a literal when fully unrolled).
pub fn emit_unrolled_loop(
    var: &str,
    iters: usize,
    requested: Unroll,
    mut body: impl FnMut(&str) -> String,
) -> String {
    let factor = effective_unroll(iters, requested);
    let mut out = String::new();
    if factor == iters {
        // Straight-line: every iteration with a literal index.
        for i in 0..iters {
            out.push_str(&body(&i.to_string()));
        }
        return out;
    }
    out.push_str(&format!(
        "for (int {var} = 0; {var} < {iters}; {var} += {factor}) {{\n"
    ));
    for lane in 0..factor {
        let idx = if lane == 0 {
            var.to_string()
        } else {
            format!("({var} + {lane})")
        };
        out.push_str(&body(&idx));
    }
    out.push_str("}\n");
    out
}

/// Compute-time multiplier modelling residual loop control overhead:
/// roughly two control instructions per loop back-edge, amortized over
/// the unrolled body.
pub fn control_overhead(body_ops: usize, iters: usize, requested: Unroll) -> f64 {
    let factor = effective_unroll(iters, requested);
    if factor >= iters {
        return 1.0;
    }
    1.0 + 2.0 / (body_ops.max(1) as f64 * factor as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_divisor_kept() {
        assert_eq!(effective_unroll(8, Unroll::Factor(4)), 4);
        assert_eq!(effective_unroll(6, Unroll::Factor(6)), 6);
        assert_eq!(effective_unroll(8, Unroll::Factor(1)), 1);
    }

    #[test]
    fn closest_divisor_found() {
        // 6 iterations, requested 4 → closest divisor ≤ 4 is 3.
        assert_eq!(effective_unroll(6, Unroll::Factor(4)), 3);
        // 9 iterations, requested 4 → 3.
        assert_eq!(effective_unroll(9, Unroll::Factor(4)), 3);
    }

    #[test]
    fn prime_iterations_fully_unroll() {
        // 7 iterations, requested 2: only divisor ≤ 2 is 1 → full.
        assert_eq!(effective_unroll(7, Unroll::Factor(2)), 7);
    }

    #[test]
    fn full_unroll() {
        assert_eq!(effective_unroll(5, Unroll::Full), 5);
        assert_eq!(effective_unroll(0, Unroll::Full), 1);
    }

    #[test]
    fn emit_full_unroll_is_straight_line() {
        let code = emit_unrolled_loop("j", 3, Unroll::Full, |i| format!("f({i});\n"));
        assert_eq!(code, "f(0);\nf(1);\nf(2);\n");
        assert!(!code.contains("for"));
    }

    #[test]
    fn emit_partial_unroll() {
        let code = emit_unrolled_loop("j", 8, Unroll::Factor(2), |i| format!("f({i});\n"));
        assert!(code.contains("for (int j = 0; j < 8; j += 2)"));
        assert!(code.contains("f(j);"));
        assert!(code.contains("f((j + 1));"));
    }

    #[test]
    fn overhead_decreases_with_unrolling() {
        let rolled = control_overhead(5, 8, Unroll::Factor(1));
        let partial = control_overhead(5, 8, Unroll::Factor(4));
        let full = control_overhead(5, 8, Unroll::Full);
        assert!(rolled > partial);
        assert!(partial > full);
        assert_eq!(full, 1.0);
    }

    #[test]
    fn table1_values_cover_paper() {
        let vals = Unroll::table1_values();
        assert_eq!(vals.len(), 5);
        assert_eq!(vals[4], Unroll::Full);
    }
}
