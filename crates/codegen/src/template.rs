//! The `%(placeholder)` template engine.
//!
//! Boda's meta-programming layer (§3.2) writes GPU kernels as CUCL
//! templates in which whole loop nests are replaced by placeholders
//! like `%(filts_buf_loads)` or `%(winograd_filt_transform)`; the
//! meta-code then generates the exact instruction sequences for the
//! known-at-generation-time tensor sizes and splices them in. This is
//! that substitution engine.

use std::collections::BTreeMap;

use crate::error::CodegenError;

/// A parsed template: literal segments interleaved with placeholders.
#[derive(Clone, Debug)]
pub struct Template {
    segments: Vec<Segment>,
}

#[derive(Clone, Debug, PartialEq)]
enum Segment {
    Literal(String),
    Placeholder(String),
}

impl Template {
    /// Parses a template. Placeholders are `%(name)`; a literal `%` is
    /// written `%%`.
    ///
    /// # Errors
    /// [`CodegenError::MalformedTemplate`] on an unterminated `%(` or
    /// an empty placeholder name.
    pub fn parse(src: &str) -> Result<Self, CodegenError> {
        let mut segments = Vec::new();
        let mut literal = String::new();
        let mut chars = src.chars().peekable();
        while let Some(ch) = chars.next() {
            if ch != '%' {
                literal.push(ch);
                continue;
            }
            match chars.peek() {
                Some('%') => {
                    chars.next();
                    literal.push('%');
                }
                Some('(') => {
                    chars.next();
                    let mut name = String::new();
                    loop {
                        match chars.next() {
                            Some(')') => break,
                            Some(c) => name.push(c),
                            None => {
                                return Err(CodegenError::MalformedTemplate(format!(
                                    "unterminated placeholder %({name}"
                                )))
                            }
                        }
                    }
                    if name.is_empty() {
                        return Err(CodegenError::MalformedTemplate(
                            "empty placeholder name".into(),
                        ));
                    }
                    if !literal.is_empty() {
                        segments.push(Segment::Literal(std::mem::take(&mut literal)));
                    }
                    segments.push(Segment::Placeholder(name));
                }
                _ => literal.push('%'),
            }
        }
        if !literal.is_empty() {
            segments.push(Segment::Literal(literal));
        }
        Ok(Template { segments })
    }

    /// The distinct placeholder names, in first-appearance order.
    pub fn placeholders(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for seg in &self.segments {
            if let Segment::Placeholder(name) = seg {
                if !seen.contains(&name.as_str()) {
                    seen.push(name);
                }
            }
        }
        seen
    }

    /// Renders the template with the given bindings.
    ///
    /// # Errors
    /// [`CodegenError::UnboundPlaceholder`] if any placeholder lacks a
    /// binding — silent holes in generated kernels are never OK.
    pub fn render(&self, vars: &BTreeMap<&str, String>) -> Result<String, CodegenError> {
        let mut out = String::new();
        for seg in &self.segments {
            match seg {
                Segment::Literal(s) => out.push_str(s),
                Segment::Placeholder(name) => {
                    let value = vars
                        .get(name.as_str())
                        .ok_or_else(|| CodegenError::UnboundPlaceholder(name.clone()))?;
                    out.push_str(value);
                }
            }
        }
        Ok(out)
    }

    /// [`Template::render`], additionally rejecting bindings no
    /// placeholder consumes. A dangling binding means the generator's
    /// substitution map and the template drifted apart (typo'd
    /// placeholder, renamed variable) — the generators use this
    /// variant so the drift is a hard error, not silently dropped
    /// text.
    ///
    /// # Errors
    /// [`CodegenError::UnboundPlaceholder`] or
    /// [`CodegenError::UnusedBinding`].
    pub fn render_strict(&self, vars: &BTreeMap<&str, String>) -> Result<String, CodegenError> {
        let used = self.placeholders();
        for key in vars.keys() {
            if !used.contains(key) {
                return Err(CodegenError::UnusedBinding((*key).to_string()));
            }
        }
        self.render(vars)
    }
}

/// One-shot parse + render.
///
/// # Errors
/// See [`Template::parse`] and [`Template::render`].
pub fn render_template(src: &str, vars: &BTreeMap<&str, String>) -> Result<String, CodegenError> {
    Template::parse(src)?.render(vars)
}

/// One-shot parse + strict render (unused bindings are errors).
///
/// # Errors
/// See [`Template::parse`] and [`Template::render_strict`].
pub fn render_template_strict(
    src: &str,
    vars: &BTreeMap<&str, String>,
) -> Result<String, CodegenError> {
    Template::parse(src)?.render_strict(vars)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(pairs: &[(&'static str, &str)]) -> BTreeMap<&'static str, String> {
        pairs.iter().map(|(k, v)| (*k, v.to_string())).collect()
    }

    #[test]
    fn basic_substitution() {
        let out =
            render_template("KERNEL conv() { %(body) }", &vars(&[("body", "x = 1;")])).unwrap();
        assert_eq!(out, "KERNEL conv() { x = 1; }");
    }

    #[test]
    fn repeated_and_multiple_placeholders() {
        let out = render_template("%(a)+%(b)=%(a)%(b)", &vars(&[("a", "1"), ("b", "2")])).unwrap();
        assert_eq!(out, "1+2=12");
    }

    #[test]
    fn unbound_placeholder_is_an_error() {
        let err = render_template("%(missing)", &vars(&[])).unwrap_err();
        assert!(matches!(err, CodegenError::UnboundPlaceholder(name) if name == "missing"));
    }

    #[test]
    fn escaped_percent() {
        let out = render_template("100%% of %(x)", &vars(&[("x", "cases")])).unwrap();
        assert_eq!(out, "100% of cases");
    }

    #[test]
    fn stray_percent_is_literal() {
        let out = render_template("a % b", &vars(&[])).unwrap();
        assert_eq!(out, "a % b");
    }

    #[test]
    fn malformed_placeholders_rejected() {
        assert!(matches!(
            Template::parse("%(unterminated"),
            Err(CodegenError::MalformedTemplate(_))
        ));
        assert!(matches!(
            Template::parse("%()"),
            Err(CodegenError::MalformedTemplate(_))
        ));
    }

    #[test]
    fn strict_render_rejects_unused_binding() {
        let err = render_template_strict("%(a)", &vars(&[("a", "1"), ("stale", "2")])).unwrap_err();
        assert!(matches!(err, CodegenError::UnusedBinding(name) if name == "stale"));
    }

    #[test]
    fn strict_render_accepts_exact_map() {
        let out = render_template_strict("%(a)-%(b)", &vars(&[("a", "1"), ("b", "2")])).unwrap();
        assert_eq!(out, "1-2");
    }

    #[test]
    fn placeholder_listing() {
        let t = Template::parse("%(a) %(b) %(a)").unwrap();
        assert_eq!(t.placeholders(), vec!["a", "b"]);
    }

    #[test]
    fn multiline_kernel_template() {
        let src = "KERNEL wgconv(in,filts) //CUCL IN img:chan:y:x {\n\
                   %(filts_buf_loads);\n\
                   %(winograd_filt_transform);\n\
                   %(store_results);\n}";
        let t = Template::parse(src).unwrap();
        assert_eq!(
            t.placeholders(),
            vec![
                "filts_buf_loads",
                "winograd_filt_transform",
                "store_results"
            ]
        );
    }
}
