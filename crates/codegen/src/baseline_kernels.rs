//! Generators for the non-Winograd baselines: direct convolution and
//! im2col + GEMM (the "Boda no-Winograd" engines of Figures 7–9).

use std::collections::BTreeMap;

use wino_ir::{CostProfile, Kernel, KernelKind, LaunchConfig};
use wino_tensor::ConvDesc;

use crate::error::CodegenError;
use crate::gemm_kernel::gen_single_gemm_kernel;
use crate::options::CodegenOptions;
use crate::template::render_template_strict;
use crate::unroll::{control_overhead, emit_unrolled_loop};

pub(crate) const DIRECT_TEMPLATE: &str = r#"// generated: %(name) — direct convolution
// CUCL IN in img:chan:y:x IN filts K:C:r:r OUT out img:chan:y:x
%(qualifier) %(name)(const float* __restrict__ in,
                     const float* __restrict__ filts,
                     float* __restrict__ out) {
  const int gid = blockIdx.x * blockDim.x + threadIdx.x;
  if (gid >= %(total)) return;
  const int ox = gid %% %(OW);
  const int oy = (gid / %(OW)) %% %(OH);
  const int k = (gid / (%(OW) * %(OH))) %% %(K);
  const int n = gid / (%(OW) * %(OH) * %(K));
  float acc = 0.0f;
  for (int c = 0; c < %(C); ++c) {
    %(inner_taps)
  }
  out[gid] = acc;
}
"#;

/// Generates the direct-convolution kernel: one thread per output
/// element, filter taps fully laid out by the meta-program.
///
/// # Errors
/// Template rendering failures.
pub fn gen_direct_conv_kernel(
    desc: &ConvDesc,
    opts: &CodegenOptions,
) -> Result<Kernel, CodegenError> {
    let (oh, ow) = (desc.out_h(), desc.out_w());
    let total = desc.batch * desc.out_ch * oh * ow;
    let name = format!("conv_direct_k{}", desc.ksz);
    let r = desc.ksz;

    let taps = emit_unrolled_loop("tap", r * r, opts.unroll, |tap| {
        format!(
            "{{\n  const int fy = ({tap}) / {r}, fx = ({tap}) %% {r};\n\
               const int y = oy * {s} - {p} + fy, x = ox * {s} - {p} + fx;\n\
               if (y >= 0 && y < {ih} && x >= 0 && x < {iw})\n\
                 acc = fmaf(in[((n * {c} + c) * {ih} + y) * {iw} + x],\n\
                            filts[((k * {c} + c) * {r} + fy) * {r} + fx], acc);\n}}\n",
            s = desc.stride,
            p = desc.pad,
            ih = desc.in_h,
            iw = desc.in_w,
            c = desc.in_ch,
        )
    })
    .replace("%%", "%");

    let mut vars: BTreeMap<&str, String> = BTreeMap::new();
    vars.insert("name", name.clone());
    vars.insert("qualifier", "__global__ void".to_string());
    vars.insert("total", total.to_string());
    vars.insert("OW", ow.to_string());
    vars.insert("OH", oh.to_string());
    vars.insert("K", desc.out_ch.to_string());
    vars.insert("C", desc.in_ch.to_string());
    vars.insert("inner_taps", taps);
    let source = render_template_strict(DIRECT_TEMPLATE, &vars)?;

    // Adjacent output threads share most of their receptive fields;
    // caches capture roughly an r-fold reuse of input rows.
    let reuse = (desc.ksz as u64).max(1);
    let cost = CostProfile {
        flops: desc.flops(),
        global_load_bytes: desc.flops() / 2 * 4 / reuse + desc.filter_bytes(),
        global_store_bytes: desc.output_bytes(),
        shared_bytes: 0,
        coalescing: 0.8,
        control_overhead: control_overhead(2, r * r, opts.unroll).max(1.15),
    };
    let mut launch = LaunchConfig::linear(total, opts.threads_per_block());
    launch.regs_per_thread = 24;
    let source = crate::bridge::bridge_source(&source, opts.backend, &launch);
    Ok(Kernel {
        name,
        backend: opts.backend,
        kind: KernelKind::DirectConv,
        launch,
        cost,
        source,
    })
}

pub(crate) const IM2COL_TEMPLATE: &str = r#"// generated: %(name) — im2col patch gather
// CUCL IN in img:chan:y:x OUT cols img:(C*r*r):(OH*OW)
%(qualifier) %(name)(const float* __restrict__ in, float* __restrict__ cols) {
  const int gid = blockIdx.x * blockDim.x + threadIdx.x;
  if (gid >= %(total)) return;
  const int col = gid %% %(ncols);
  const int row = (gid / %(ncols)) %% %(nrows);
  const int n = gid / (%(ncols) * %(nrows));
  const int c = row / %(rr);
  const int fy = (row %% %(rr)) / %(r);
  const int fx = row %% %(r);
  const int oy = col / %(OW);
  const int ox = col %% %(OW);
  const int y = oy * %(S) - %(P) + fy;
  const int x = ox * %(S) - %(P) + fx;
  cols[gid] = (y >= 0 && y < %(IH) && x >= 0 && x < %(IW))
    ? in[((n * %(C) + c) * %(IH) + y) * %(IW) + x] : 0.0f;
}
"#;

/// Generates the im2col + GEMM kernel pair.
///
/// # Errors
/// Template rendering failures.
pub fn gen_im2col_kernels(
    desc: &ConvDesc,
    opts: &CodegenOptions,
) -> Result<Vec<Kernel>, CodegenError> {
    let (oh, ow) = (desc.out_h(), desc.out_w());
    let ncols = oh * ow;
    let nrows = desc.in_ch * desc.ksz * desc.ksz;
    let total = desc.batch * nrows * ncols;
    let name = format!("im2col_k{}", desc.ksz);

    let mut vars: BTreeMap<&str, String> = BTreeMap::new();
    vars.insert("name", name.clone());
    vars.insert("qualifier", "__global__ void".to_string());
    vars.insert("total", total.to_string());
    vars.insert("ncols", ncols.to_string());
    vars.insert("nrows", nrows.to_string());
    vars.insert("rr", (desc.ksz * desc.ksz).to_string());
    vars.insert("r", desc.ksz.to_string());
    vars.insert("OW", ow.to_string());
    vars.insert("S", desc.stride.to_string());
    vars.insert("P", desc.pad.to_string());
    vars.insert("IH", desc.in_h.to_string());
    vars.insert("IW", desc.in_w.to_string());
    vars.insert("C", desc.in_ch.to_string());
    let source = render_template_strict(IM2COL_TEMPLATE, &vars)?;

    let cost = CostProfile {
        flops: total as u64, // index arithmetic only; negligible FP
        global_load_bytes: total as u64 * 4,
        global_store_bytes: total as u64 * 4,
        shared_bytes: 0,
        coalescing: 0.85,
        control_overhead: 1.0,
    };
    let mut launch = LaunchConfig::linear(total, opts.threads_per_block());
    launch.regs_per_thread = 16;
    let source = crate::bridge::bridge_source(&source, opts.backend, &launch);
    let gather = Kernel {
        name,
        backend: opts.backend,
        kind: KernelKind::Im2col,
        launch,
        cost,
        source,
    };
    // One GEMM over all images: (K × C·r²) · (C·r² × B·OH·OW).
    let gemm = gen_single_gemm_kernel(desc.out_ch, nrows, desc.batch * ncols, opts, "im2col")?;
    Ok(vec![gather, gemm])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc() -> ConvDesc {
        ConvDesc::new(3, 1, 1, 8, 2, 14, 14, 4)
    }

    #[test]
    fn direct_kernel_well_formed() {
        let k = gen_direct_conv_kernel(&desc(), &CodegenOptions::default()).unwrap();
        k.validate().unwrap();
        assert!(!k.source.contains("%("));
        assert_eq!(k.source.matches('{').count(), k.source.matches('}').count());
        assert_eq!(k.cost.flops, desc().flops());
        assert!(k.source.contains("fmaf"));
    }

    #[test]
    fn direct_handles_stride_and_pad() {
        let d = ConvDesc::new(5, 2, 2, 4, 1, 27, 27, 3);
        let k = gen_direct_conv_kernel(&d, &CodegenOptions::default()).unwrap();
        assert!(k.source.contains("oy * 2 - 2"));
    }

    #[test]
    fn im2col_pair_well_formed() {
        let ks = gen_im2col_kernels(&desc(), &CodegenOptions::default()).unwrap();
        assert_eq!(ks.len(), 2);
        for k in &ks {
            k.validate().unwrap();
            assert!(!k.source.contains("%("));
        }
        assert!(matches!(ks[0].kind, KernelKind::Im2col));
        assert!(matches!(ks[1].kind, KernelKind::Gemm { .. }));
        // GEMM inner dimension is C·r².
        if let KernelKind::Gemm { k_dim, .. } = ks[1].kind {
            assert_eq!(k_dim, 4 * 9);
        }
    }

    #[test]
    fn im2col_gemm_flops_dominate() {
        let ks = gen_im2col_kernels(&desc(), &CodegenOptions::default()).unwrap();
        assert!(ks[1].cost.flops > ks[0].cost.flops);
        // GEMM flops at least the direct conv flops (padding may add).
        assert!(ks[1].cost.flops >= desc().flops());
    }
}
