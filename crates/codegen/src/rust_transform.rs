//! Recipe → Rust compilation for the CPU engines.
//!
//! The GPU half of this crate splices recipes into CUCL templates; this
//! module is the same meta-programming move aimed at the host: each
//! straight-line recipe that `wino-verify` proves `≡ T·x` is emitted as
//! a specialized, fully-unrolled Rust function applied
//! structure-of-arrays across a batch of `L` tiles. Every recipe
//! statement becomes exactly one vector operation over the lane batch,
//! so the optimized op counts of Figure 5 translate one-to-one into
//! retired vector instructions.
//!
//! Emitted code expects a small prelude of lane-wise helpers
//! ([`soa_prelude`]) in scope and comes in two entry points per
//! kernel: a plain `_scalar` function and an `_avx2` wrapper compiled
//! under `#[target_feature(enable = "avx2,fma")]` so the same body
//! autovectorizes. Per lane the dataflow is identical to the
//! interpreted [`wino_symbolic::CompiledRecipe`] — same operation
//! order, same `mul_add` fusion, constants baked in by f32 bit
//! pattern — so the scalar entry is bit-identical to interpretation.

use wino_num::Rational;
use wino_symbolic::{Instr, Recipe, Reg};

/// Lane-wise helper functions the emitted kernels call. Generated
/// files include this once at the top; keeping it data rather than a
/// crate dependency means the generated file is self-contained apart
/// from `f32` itself.
pub fn soa_prelude() -> &'static str {
    r#"// Lane-wise vector helpers shared by the generated kernels.
// Per lane these are exactly the CompiledRecipe scalar ops, so a
// kernel's output is bit-identical to interpreting its recipe.

#[inline(always)]
fn vneg<const L: usize>(a: [f32; L]) -> [f32; L] {
    let mut o = [0.0f32; L];
    for l in 0..L {
        o[l] = -a[l];
    }
    o
}

#[inline(always)]
fn vadd<const L: usize>(a: [f32; L], b: [f32; L]) -> [f32; L] {
    let mut o = [0.0f32; L];
    for l in 0..L {
        o[l] = a[l] + b[l];
    }
    o
}

#[inline(always)]
fn vsub<const L: usize>(a: [f32; L], b: [f32; L]) -> [f32; L] {
    let mut o = [0.0f32; L];
    for l in 0..L {
        o[l] = a[l] - b[l];
    }
    o
}

#[inline(always)]
fn vmul<const L: usize>(c: f32, a: [f32; L]) -> [f32; L] {
    let mut o = [0.0f32; L];
    for l in 0..L {
        o[l] = c * a[l];
    }
    o
}

#[inline(always)]
fn vfma<const L: usize>(c: f32, a: [f32; L], b: [f32; L]) -> [f32; L] {
    let mut o = [0.0f32; L];
    for l in 0..L {
        o[l] = c.mul_add(a[l], b[l]);
    }
    o
}
"#
}

/// Formats a rational constant as a bit-exact Rust f32 expression.
/// `from_bits` sidesteps decimal round-tripping entirely: the emitted
/// kernel bakes in *the same bits* `CompiledRecipe` computes via
/// [`Rational::to_f32`], which is what the bit-identity contract needs.
pub fn rust_f32_literal(c: &Rational) -> String {
    let v = c.to_f32();
    format!("f32::from_bits(0x{:08x}) /* {c} */", v.to_bits())
}

/// Emits the 2-D structure-of-arrays transform kernel for `recipe`.
///
/// The kernel computes `T · X · Tᵀ` for a batch of `L` tiles held in
/// position-major SoA layout: `src[pos][lane]` with `pos` running over
/// the `n_in × n_in` input tile, `dst[pos][lane]` over the
/// `n_out × n_out` output tile. The 1-D recipe is unrolled once into
/// an inner `pass` function and applied column-wise then row-wise —
/// the paper's column-/row-wise index-based representation, with the
/// element dimension replaced by the lane batch.
///
/// Three items are emitted per kernel: `{name}_scalar`,
/// `{name}_avx2` (x86_64 only, caller checks CPUID), and
/// `{NAME}_FINGERPRINT` pairing the kernel with its source recipe.
pub fn emit_soa_transform(name: &str, recipe: &Recipe, doc: &str) -> String {
    let n_in = recipe.n_in;
    let n_out = recipe.n_out;
    let mut s = String::new();
    let upper = name.to_ascii_uppercase();

    s.push_str(&format!(
        "/// {doc}\n\
         ///\n\
         /// Generated from a verified straight-line recipe \
         (fingerprint below);\n\
         /// {n_in}×{n_in} SoA tile batch in, {n_out}×{n_out} out. \
         Do not edit.\n"
    ));
    s.push_str(&format!(
        "#[inline(always)]\n\
         fn {name}_body<const L: usize>(src: &[[f32; L]], dst: &mut [[f32; L]]) {{\n\
         \x20   debug_assert!(src.len() >= {});\n\
         \x20   debug_assert!(dst.len() >= {});\n",
        n_in * n_in,
        n_out * n_out
    ));

    // The unrolled 1-D recipe: one statement per instruction, each a
    // single lane-batch vector op.
    s.push_str(&format!(
        "    #[inline(always)]\n\
         \x20   fn pass<const L: usize>(x: [[f32; L]; {n_in}]) -> [[f32; L]; {n_out}] {{\n"
    ));
    let reg = |r: Reg| -> String {
        match r {
            Reg::In(i) => format!("x[{i}]"),
            Reg::Tmp(t) => format!("t{t}"),
            Reg::Out(o) => format!("y{o}"),
        }
    };
    for ins in &recipe.instrs {
        let dst = reg(ins.dst());
        let rhs = match ins {
            Instr::Zero { .. } => "[0.0f32; L]".to_string(),
            Instr::Copy { src, .. } => reg(*src),
            Instr::Neg { src, .. } => format!("vneg({})", reg(*src)),
            Instr::Add { a, b, .. } => format!("vadd({}, {})", reg(*a), reg(*b)),
            Instr::Sub { a, b, .. } => format!("vsub({}, {})", reg(*a), reg(*b)),
            Instr::Mul { c, a, .. } => format!("vmul({}, {})", rust_f32_literal(c), reg(*a)),
            Instr::Fma { c, a, b, .. } => {
                format!("vfma({}, {}, {})", rust_f32_literal(c), reg(*a), reg(*b))
            }
        };
        s.push_str(&format!("        let {dst} = {rhs};\n"));
    }
    s.push_str("        [");
    for o in 0..n_out {
        if o > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("y{o}"));
    }
    s.push_str("]\n    }\n");

    // Pass 1: columns of the input tile (stride n_in), then pass 2:
    // rows of the intermediate (contiguous).
    s.push_str(&format!(
        "    let mut mid = [[0.0f32; L]; {}];\n\
         \x20   for j in 0..{n_in} {{\n\
         \x20       let y = pass([",
        n_out * n_in
    ));
    for i in 0..n_in {
        if i > 0 {
            s.push_str(", ");
        }
        if i == 0 {
            s.push_str("src[j]");
        } else {
            s.push_str(&format!("src[{} + j]", i * n_in));
        }
    }
    s.push_str(&format!(
        "]);\n\
         \x20       for (i, v) in y.into_iter().enumerate() {{\n\
         \x20           mid[i * {n_in} + j] = v;\n\
         \x20       }}\n\
         \x20   }}\n\
         \x20   for i in 0..{n_out} {{\n\
         \x20       let y = pass([",
    ));
    for j in 0..n_in {
        if j > 0 {
            s.push_str(", ");
        }
        if j == 0 {
            s.push_str(&format!("mid[i * {n_in}]"));
        } else {
            s.push_str(&format!("mid[i * {n_in} + {j}]"));
        }
    }
    s.push_str(&format!(
        "]);\n\
         \x20       for (j, v) in y.into_iter().enumerate() {{\n\
         \x20           dst[i * {n_out} + j] = v;\n\
         \x20       }}\n\
         \x20   }}\n\
         }}\n\n"
    ));

    // Entry points + fingerprint.
    s.push_str(&format!(
        "/// Portable entry: per lane bit-identical to interpreting the recipe.\n\
         pub fn {name}_scalar<const L: usize>(src: &[[f32; L]], dst: &mut [[f32; L]]) {{\n\
         \x20   {name}_body(src, dst);\n\
         }}\n\n\
         /// AVX2+FMA entry: the same body compiled under target features so the\n\
         /// lane loops vectorize.\n\
         ///\n\
         /// # Safety\n\
         /// The CPU must support `avx2` and `fma` (callers dispatch on CPUID).\n\
         #[cfg(target_arch = \"x86_64\")]\n\
         #[target_feature(enable = \"avx2\", enable = \"fma\")]\n\
         pub unsafe fn {name}_avx2<const L: usize>(src: &[[f32; L]], dst: &mut [[f32; L]]) {{\n\
         \x20   {name}_body(src, dst);\n\
         }}\n\n\
         /// Fingerprint of the recipe this kernel was generated from.\n\
         pub const {upper}_FINGERPRINT: u64 = 0x{:016x};\n",
        recipe.fingerprint()
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_symbolic::{generate_recipe, RecipeOptions};
    use wino_transform::{table3_points, toom_cook_matrices, WinogradSpec};

    fn input_recipe(m: usize, r: usize) -> Recipe {
        let spec = WinogradSpec::new(m, r).unwrap();
        let mats = toom_cook_matrices(spec, &table3_points(spec.alpha()).unwrap()).unwrap();
        generate_recipe(&mats.b_t, &RecipeOptions::optimized())
    }

    #[test]
    fn emitted_kernel_has_expected_structure() {
        let recipe = input_recipe(2, 3);
        let code = emit_soa_transform("f2x3_input", &recipe, "F(2,3) input transform");
        assert!(code.contains("fn f2x3_input_body<const L: usize>"));
        assert!(code.contains("pub fn f2x3_input_scalar<const L: usize>"));
        assert!(code.contains("pub unsafe fn f2x3_input_avx2<const L: usize>"));
        assert!(code.contains("target_feature(enable = \"avx2\", enable = \"fma\")"));
        assert!(code.contains("F2X3_INPUT_FINGERPRINT"));
        assert!(code.contains(&format!("0x{:016x}", recipe.fingerprint())));
        // One emitted statement per recipe instruction in the pass
        // body, plus the two `let y = pass(...)` applications.
        let lets = code.matches("        let ").count();
        assert_eq!(lets, recipe.instrs.len() + 2);
    }

    #[test]
    fn constants_are_bit_exact() {
        assert_eq!(
            rust_f32_literal(&Rational::from_frac(1, 2)),
            "f32::from_bits(0x3f000000) /* 1/2 */"
        );
        let neg = rust_f32_literal(&Rational::from_frac(-2, 3));
        let bits = Rational::from_frac(-2, 3).to_f32().to_bits();
        assert!(neg.contains(&format!("0x{bits:08x}")), "{neg}");
    }
}
