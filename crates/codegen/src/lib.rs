//! # wino-codegen — template meta-programming and kernel generation
//!
//! Implements §3.2 of the paper: GPU kernels are written as CUCL-style
//! templates whose `%(placeholder)`s the meta-program fills with exact
//! instruction sequences generated for the known tensor sizes — spliced
//! transformation recipes, adaptively unrolled loops (`LU`), FMA
//! fusing, and SGEMM register/thread blocking (`MNt`/`MNb`). Every
//! generated [`wino_ir::Kernel`] carries its source text, launch
//! geometry, and a cost profile derived from the same quantities that
//! shaped the source.
//!
//! ```
//! use wino_codegen::{generate_plan, CodegenOptions, PlanVariant};
//! use wino_tensor::ConvDesc;
//!
//! let desc = ConvDesc::new(3, 1, 1, 64, 1, 14, 14, 32);
//! let plan = generate_plan(
//!     &desc,
//!     PlanVariant::WinogradNonFused { m: 4 },
//!     &CodegenOptions::default(),
//! ).unwrap();
//! assert_eq!(plan.kernels.len(), 4); // 3 transforms + batched SGEMM
//! assert!(plan.kernels[0].source.contains("__global__"));
//! ```

#![warn(missing_docs)]

mod baseline_kernels;
mod bridge;
mod error;
mod fused_kernel;
mod gemm_kernel;
mod options;
mod plan;
mod recipe_render;
mod rust_transform;
mod template;
mod transform_kernels;
mod unroll;

pub use baseline_kernels::{gen_direct_conv_kernel, gen_im2col_kernels};
pub use bridge::bridge_source;
pub use error::CodegenError;
pub use fused_kernel::gen_fused_winograd_kernel;
pub use gemm_kernel::{gen_gemm_kernel, gen_single_gemm_kernel, GemmDims};
pub use options::{gemm_micro_efficiency, CodegenOptions};
pub use plan::{generate_plan, PlanVariant};
pub use recipe_render::{float_literal, render_recipe_block};
pub use rust_transform::{emit_soa_transform, rust_f32_literal, soa_prelude};
pub use template::{render_template, render_template_strict, Template};
pub use transform_kernels::{
    gen_filter_transform_kernel, gen_input_transform_kernel, gen_output_transform_kernel,
};
pub use unroll::{control_overhead, effective_unroll, emit_unrolled_loop, Unroll};

/// Every static kernel template shipped by this crate, as
/// `(name, source)` pairs. The wino-verify template linter parses each
/// one, so a malformed placeholder fails CI even on code paths no test
/// happens to generate.
pub fn template_inventory() -> Vec<(&'static str, &'static str)> {
    vec![
        ("FILTER_TEMPLATE", transform_kernels::FILTER_TEMPLATE),
        ("INPUT_TEMPLATE", transform_kernels::INPUT_TEMPLATE),
        ("OUTPUT_TEMPLATE", transform_kernels::OUTPUT_TEMPLATE),
        ("GEMM_TEMPLATE", gemm_kernel::GEMM_TEMPLATE),
        ("FUSED_TEMPLATE", fused_kernel::FUSED_TEMPLATE),
        ("DIRECT_TEMPLATE", baseline_kernels::DIRECT_TEMPLATE),
        ("IM2COL_TEMPLATE", baseline_kernels::IM2COL_TEMPLATE),
    ]
}
