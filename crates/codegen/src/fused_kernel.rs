//! Generator for the fused single-kernel Winograd variant (§3.2.2).
//!
//! One launch does everything: half of each thread block transforms
//! the filter tiles it needs, the other half transforms input tiles
//! (the paper's thread split), the block loops over input channels
//! accumulating the element-wise products in registers, and finally
//! all threads cooperate on the output transform. Intermediates live
//! in shared memory, which is exactly why the variant is preferable
//! for small configurations and infeasible for large ones.

use std::collections::BTreeMap;

use wino_ir::{CostProfile, Dim3, Kernel, KernelKind, LaunchConfig};
use wino_tensor::{tile_counts, ConvDesc};
use wino_transform::TransformRecipes;

use crate::error::CodegenError;
use crate::options::CodegenOptions;
use crate::recipe_render::render_recipe_block;
use crate::template::render_template_strict;
use crate::unroll::control_overhead;

pub(crate) const FUSED_TEMPLATE: &str = r#"// generated: %(name) — fused Winograd convolution F(%(M),%(R))
// CUCL IN in img:chan:y:x IN filts K:C:r:r OUT out img:chan:y:x
// block: %(BK) filters x %(BT) tiles, looping over %(C) channels
%(qualifier) %(name)(const float* __restrict__ in,
                     const float* __restrict__ filts,
                     float* __restrict__ out) {
  %(shared) float Us[%(BK)][%(ALPHA2)];
  %(shared) float Vs[%(BT)][%(ALPHA2)];
  const int kb = blockIdx.y * %(BK);
  const int tb = blockIdx.x * %(BT);
  const int tid = threadIdx.x;
  float acc[%(ACC_PER_THREAD)];
  for (int i = 0; i < %(ACC_PER_THREAD); ++i) acc[i] = 0.0f;
  for (int c = 0; c < %(C); ++c) {
    // First half of the block: filter transforms into shared memory.
    if (tid < %(HALF)) {
      for (int f = tid; f < %(BK); f += %(HALF)) {
        if (kb + f < %(K)) {
          float g[%(R)][%(R)];
          %(filt_loads)
          float Ut[%(ALPHA)][%(ALPHA)];
          %(winograd_filt_transform)
          for (int s = 0; s < %(ALPHA2); ++s)
            Us[f][s] = Ut[s / %(ALPHA)][s %% %(ALPHA)];
        }
      }
    } else {
      // Second half: input-tile transforms.
      for (int t = tid - %(HALF); t < %(BT); t += %(HALF)) {
        if (tb + t < %(P)) {
          float d[%(ALPHA)][%(ALPHA)];
          %(in_tile_loads)
          float Vt[%(ALPHA)][%(ALPHA)];
          %(winograd_in_transform)
          for (int s = 0; s < %(ALPHA2); ++s)
            Vs[t][s] = Vt[s / %(ALPHA)][s %% %(ALPHA)];
        }
      }
    }
    __syncthreads();
    // Element-wise multiply, distributed over all threads.
    %(elementwise_multiply)
    __syncthreads();
  }
  // Output transform + placement, one (filter, tile) pair per thread.
  %(winograd_out_transform_and_store)
}
"#;

/// Per-block extents of the fused kernel: `bk` filters × `bt` tiles.
fn block_extents(opts: &CodegenOptions) -> (usize, usize) {
    let e = (4 * opts.mnt).clamp(4, 32);
    (e, e)
}

/// Generates the fused Winograd kernel.
///
/// # Errors
/// Template failures; [`CodegenError::Unsupported`] for configurations
/// whose per-thread accumulator footprint is plainly ungeneratable
/// (the softer shared-memory/occupancy limits are left to the device
/// model, which is what decides fused-vs-non-fused per platform).
pub fn gen_fused_winograd_kernel(
    desc: &ConvDesc,
    recipes: &TransformRecipes,
    opts: &CodegenOptions,
) -> Result<Kernel, CodegenError> {
    let spec = recipes.spec;
    let (m, r, alpha) = (spec.m, spec.r, spec.alpha());
    let a2 = alpha * alpha;
    let (th, tw) = tile_counts(desc.out_h(), desc.out_w(), m);
    let p_total = desc.batch * th * tw;
    let (kc, cc) = (desc.out_ch, desc.in_ch);
    let (bk, bt) = block_extents(opts);
    let threads = opts.threads_per_block();
    let half = threads / 2;
    // Each thread owns whole (filter, tile) pairs so the accumulators
    // it gathers for the output transform are its own registers.
    let pairs_per_thread = (bk * bt).div_ceil(threads);
    let acc_per_thread = pairs_per_thread * a2;
    if acc_per_thread > 256 {
        return Err(CodegenError::Unsupported(format!(
            "fused F({m},{r}): {acc_per_thread} accumulators per thread cannot be generated"
        )));
    }
    let name = format!("wg_fused_m{m}_r{r}");
    let (ph, pw) = (desc.in_h + 2 * desc.pad, desc.in_w + 2 * desc.pad);

    let filt_loads = format!(
        "for (int l = 0; l < {rr}; ++l)\n\
         g[l / {r}][l %% {r}] = filts[(((kb + f) * {cc} + c) * {r} + l / {r}) * {r} + l %% {r}];",
        rr = r * r,
    );
    let filt_transform = two_pass(&recipes.filter, "g", "Tg", "Ut");
    let in_tile_loads = format!(
        "const int p = tb + t;\n\
         const int n = p / {tpi};\n\
         const int ty = (p %% {tpi}) / {tw};\n\
         const int tx = p %% {tw};\n\
         for (int dy = 0; dy < {alpha}; ++dy)\n\
           for (int dx = 0; dx < {alpha}; ++dx) {{\n\
             const int y = ty * {m} + dy, x = tx * {m} + dx;\n\
             d[dy][dx] = (y < {ph} && x < {pw})\n\
               ? in[((n * {cc} + c) * {ph} + y) * {pw} + x] : 0.0f;\n\
           }}",
        tpi = th * tw,
    );
    let in_transform = two_pass(&recipes.input, "d", "Td", "Vt");
    let elementwise = format!(
        "for (int pair = tid; pair < {bk} * {bt}; pair += {threads}) {{\n\
           const int f = pair / {bt};\n\
           const int t = pair %% {bt};\n\
           const int base = (pair / {threads}) * {a2};\n\
           for (int s = 0; s < {a2}; ++s)\n\
             acc[base + s] = fmaf(Us[f][s], Vs[t][s], acc[base + s]);\n\
         }}"
    );
    let out_transform_body = two_pass(&recipes.output, "Macc", "Ta", "Y");
    let out_store = format!(
        "for (int pair = tid; pair < {bk} * {bt}; pair += {threads}) {{\n\
           const int f = pair / {bt};\n\
           const int t = pair %% {bt};\n\
           if (kb + f >= {kc} || tb + t >= {p_total}) continue;\n\
           float Macc[{alpha}][{alpha}];\n\
           %(gather_acc)\n\
           {out_transform_body}\
           const int p = tb + t;\n\
           const int n = p / {tpi};\n\
           const int ty = (p %% {tpi}) / {tw};\n\
           const int tx = p %% {tw};\n\
           for (int dy = 0; dy < {m}; ++dy)\n\
             for (int dx = 0; dx < {m}; ++dx) {{\n\
               const int y = ty * {m} + dy, x = tx * {m} + dx;\n\
               if (y < {oh} && x < {ow})\n\
                 out[((n * {kc} + kb + f) * {oh} + y) * {ow} + x] = Y[dy][dx];\n\
             }}\n\
         }}",
        tpi = th * tw,
        oh = desc.out_h(),
        ow = desc.out_w(),
    );
    // The accumulator gather is itself a placeholder inside the store
    // fragment — render it first (meta-programming composes).
    let gather = format!(
        "const int base = (pair / {threads}) * {a2};\n\
           for (int s = 0; s < {a2}; ++s)\n\
             Macc[s / {alpha}][s %% {alpha}] = acc[base + s];"
    );
    let mut inner: BTreeMap<&str, String> = BTreeMap::new();
    inner.insert("gather_acc", gather);
    let out_transform_and_store = render_template_strict(&out_store, &inner)?;

    let mut vars: BTreeMap<&str, String> = BTreeMap::new();
    vars.insert("name", name.clone());
    vars.insert("qualifier", "__global__ void".to_string());
    vars.insert("shared", opts.backend.shared_qualifier().to_string());
    vars.insert("M", m.to_string());
    vars.insert("R", r.to_string());
    vars.insert("C", cc.to_string());
    vars.insert("K", kc.to_string());
    vars.insert("P", p_total.to_string());
    vars.insert("BK", bk.to_string());
    vars.insert("BT", bt.to_string());
    vars.insert("ALPHA", alpha.to_string());
    vars.insert("ALPHA2", a2.to_string());
    vars.insert("HALF", half.to_string());
    vars.insert("ACC_PER_THREAD", acc_per_thread.to_string());
    vars.insert("filt_loads", filt_loads);
    vars.insert("winograd_filt_transform", filt_transform);
    vars.insert("in_tile_loads", in_tile_loads);
    vars.insert("winograd_in_transform", in_transform);
    vars.insert("elementwise_multiply", elementwise);
    vars.insert("winograd_out_transform_and_store", out_transform_and_store);
    let source = render_template_strict(FUSED_TEMPLATE, &vars)?.replace("%%", "%");

    // Cost: redundant transforms are the fused trade-off — filter
    // transforms repeat per tile-block, input transforms per
    // filter-block.
    let blocks_x = p_total.div_ceil(bt);
    let blocks_y = kc.div_ceil(bk);
    let filt_ops = recipes.filter.op_count().total_unfused() * (r + alpha);
    let in_ops = recipes.input.op_count().total_unfused() * (2 * alpha);
    let out_ops = recipes.output.op_count().total_unfused() * (alpha + m);
    let transform_flops = (kc * cc * filt_ops) as u64 * blocks_x as u64
        + (p_total * cc * in_ops) as u64 * blocks_y as u64
        + (kc * p_total * out_ops) as u64;
    let elementwise_flops = 2 * (kc * cc) as u64 * p_total as u64 * a2 as u64;
    let flops = transform_flops + elementwise_flops;
    let loads = (kc * cc * r * r * 4) as u64 * blocks_x as u64
        + (p_total * cc * a2 * 4) as u64 * blocks_y as u64;
    let stores = desc.output_bytes();
    let recipe_ops = recipes.input.op_count().total().max(1);
    // The transform portion runs at dependent-scalar-chain rate while
    // the element-wise stage is a well-pipelined FMA loop; weight the
    // overhead factor by each portion's FLOP share.
    let base_overhead = control_overhead(recipe_ops, 2 * alpha, opts.unroll).max(1.05);
    let chain = crate::transform_kernels::SCALAR_CHAIN_FACTOR;
    let weighted =
        (chain * transform_flops as f64 + 1.2 * elementwise_flops as f64) / flops.max(1) as f64;
    let cost = CostProfile {
        flops,
        global_load_bytes: loads,
        global_store_bytes: stores,
        shared_bytes: 2 * loads,
        coalescing: 0.8,
        control_overhead: base_overhead * weighted.max(1.0),
    };
    let launch = LaunchConfig {
        grid: Dim3::plane(blocks_x, blocks_y),
        block: Dim3::linear(threads),
        shared_mem_bytes: (bk + bt) * a2 * 4,
        regs_per_thread: acc_per_thread + 2 * a2 + 16,
    };
    let source = crate::bridge::bridge_source(&source, opts.backend, &launch);
    Ok(Kernel {
        name,
        backend: opts.backend,
        kind: KernelKind::FusedWinograd { m, r },
        launch,
        cost,
        source,
    })
}

fn two_pass(recipe: &wino_symbolic::Recipe, input: &str, mid: &str, out: &str) -> String {
    let q = recipe.n_in;
    let p = recipe.n_out;
    let mut body = format!("float {mid}[{p}][{q}];\n");
    // The fused kernel always fully unrolls: its loops sit inside
    // deeper control flow where dynamic trip counts would defeat the
    // compiler (§3.2: "directly emit a sequence of instructions").
    for j in 0..q {
        body.push_str(&render_recipe_block(
            recipe,
            &|i| format!("{input}[{i}][{j}]"),
            &|o| format!("{mid}[{o}][{j}]"),
        ));
    }
    for i in 0..p {
        body.push_str(&render_recipe_block(
            recipe,
            &|k| format!("{mid}[{i}][{k}]"),
            &|o| format!("{out}[{i}][{o}]"),
        ));
    }
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_symbolic::RecipeOptions;
    use wino_transform::WinogradSpec;

    fn recipes(m: usize, r: usize) -> TransformRecipes {
        TransformRecipes::generate(WinogradSpec::new(m, r).unwrap(), RecipeOptions::optimized())
            .unwrap()
    }

    fn desc() -> ConvDesc {
        ConvDesc::new(3, 1, 1, 16, 1, 14, 14, 8)
    }

    #[test]
    fn fused_kernel_is_well_formed() {
        let k =
            gen_fused_winograd_kernel(&desc(), &recipes(2, 3), &CodegenOptions::default()).unwrap();
        k.validate().unwrap();
        assert!(
            !k.source.contains("%("),
            "unfilled placeholder:\n{}",
            k.source
        );
        assert_eq!(k.source.matches('{').count(), k.source.matches('}').count());
        assert!(k.source.contains("__shared__ float Us"));
        assert!(k.source.contains("__syncthreads()"));
        assert!(k.launch.shared_mem_bytes > 0);
    }

    #[test]
    fn shared_memory_grows_with_alpha() {
        let small =
            gen_fused_winograd_kernel(&desc(), &recipes(2, 3), &CodegenOptions::default()).unwrap();
        let big =
            gen_fused_winograd_kernel(&desc(), &recipes(6, 3), &CodegenOptions::default()).unwrap();
        assert!(big.launch.shared_mem_bytes > small.launch.shared_mem_bytes);
        assert!(big.launch.regs_per_thread > small.launch.regs_per_thread);
    }

    #[test]
    fn fused_writes_only_final_output() {
        let k =
            gen_fused_winograd_kernel(&desc(), &recipes(4, 3), &CodegenOptions::default()).unwrap();
        assert_eq!(k.cost.global_store_bytes, desc().output_bytes());
    }

    #[test]
    fn huge_accumulator_footprint_rejected() {
        // m = 10, r = 7 → α = 16, α² = 256; with tiny blocks the
        // per-thread accumulator count explodes.
        let opts = CodegenOptions {
            mnb: 4,
            mnt: 16,
            ..Default::default()
        };
        let desc = ConvDesc::new(7, 1, 3, 512, 5, 56, 56, 256);
        let r = gen_fused_winograd_kernel(&desc, &recipes(10, 7), &opts);
        assert!(matches!(r, Err(CodegenError::Unsupported(_))));
    }
}
