//! Generators for the three non-fused Winograd transform kernels.
//!
//! Each generator instantiates a CUCL-style template: the matrix
//! multiplications of the transform are replaced by the spliced-in
//! straight-line recipe (§3.2.1), loops are adaptively unrolled, and
//! the kernel descriptor carries launch geometry plus a cost profile
//! derived from the very same recipe op counts.

use std::collections::BTreeMap;

use wino_ir::{CostProfile, Kernel, KernelKind, LaunchConfig};
use wino_symbolic::Recipe;
use wino_tensor::{tile_counts, ConvDesc};
use wino_transform::TransformRecipes;

use crate::error::CodegenError;
use crate::options::CodegenOptions;
use crate::recipe_render::render_recipe_block;
use crate::template::render_template_strict;
use crate::unroll::{control_overhead, emit_unrolled_loop};

/// FLOPs of one 2-D application of a recipe-based transform
/// (FMA = 2 FLOPs, matching device peak conventions).
fn transform_flops_2d(recipe: &Recipe, cols: usize, rows: usize) -> u64 {
    (recipe.op_count().total_unfused() * (cols + rows)) as u64
}

/// Transform kernels are straight-line *dependent scalar chains*: no
/// FMA dual-issue across independent accumulators like a GEMM
/// micro-kernel, so they retire well below device peak. The factor
/// folds that issue-rate gap into the compute-time estimate; it is the
/// reason eliminating transform arithmetic pays off even on devices
/// whose roofline would call these kernels memory-bound.
pub(crate) const SCALAR_CHAIN_FACTOR: f64 = 4.0;

/// Shrinks the thread-block size until the block's register footprint
/// fits a conservative 32 Ki-register budget — the `__launch_bounds__`
/// adjustment every real transform kernel needs once the per-thread
/// tile arrays grow with α.
pub(crate) fn clamp_block_threads(mut tpb: usize, regs_per_thread: usize) -> usize {
    while tpb > 32 && tpb * regs_per_thread > 32 * 1024 {
        tpb /= 2;
    }
    tpb
}

/// Two-pass 2-D transform body: recipe applied per input column, then
/// per intermediate row, through a `mid` buffer.
fn two_pass_body(
    recipe: &Recipe,
    in_name: &str,
    mid_name: &str,
    out_name: &str,
    opts: &CodegenOptions,
) -> String {
    let q = recipe.n_in;
    let p = recipe.n_out;
    let mut body = format!("float {mid_name}[{p}][{q}];\n");
    body.push_str(&emit_unrolled_loop("j", q, opts.unroll, |j| {
        render_recipe_block(recipe, &|i| format!("{in_name}[{i}][{j}]"), &|o| {
            format!("{mid_name}[{o}][{j}]")
        })
    }));
    body.push_str(&emit_unrolled_loop("i", p, opts.unroll, |i| {
        render_recipe_block(recipe, &|k| format!("{mid_name}[{i}][{k}]"), &|o| {
            format!("{out_name}[{i}][{o}]")
        })
    }));
    body
}

pub(crate) const FILTER_TEMPLATE: &str = r#"// generated: %(name) — Winograd filter transform U = G g G^T
// CUCL IN filts K:C:r:r OUT U alpha2:K:C
%(qualifier) %(name)(const float* __restrict__ filts, float* __restrict__ U) {
  const int gid = blockIdx.x * blockDim.x + threadIdx.x;
  if (gid >= %(total)) return;
  const int k = gid / %(C);
  const int c = gid %% %(C);
  float g[%(R)][%(R)];
  %(filts_buf_loads)
  float Ut[%(ALPHA)][%(ALPHA)];
  %(winograd_filt_transform)
  %(store_results)
}
"#;

/// Generates the filter-transform kernel (`U' = G·g·Gᵀ`, scattered to
/// the `(ξ, k, c)` batched-GEMM layout).
///
/// # Errors
/// Template rendering failures.
pub fn gen_filter_transform_kernel(
    desc: &ConvDesc,
    recipes: &TransformRecipes,
    opts: &CodegenOptions,
) -> Result<Kernel, CodegenError> {
    let spec = recipes.spec;
    let (r, alpha) = (spec.r, spec.alpha());
    let (kc, cc) = (desc.out_ch, desc.in_ch);
    let total = kc * cc;
    let name = format!("wg_filt_xform_m{}_r{}", spec.m, r);

    let loads = emit_unrolled_loop("l", r * r, opts.unroll, |l| {
        format!(
            "g[({l}) / {r}][({l}) %% {r}] = filts[gid * {} + ({l})];\n",
            r * r
        )
    })
    .replace("%%", "%");
    let transform = two_pass_body(&recipes.filter, "g", "Tg", "Ut", opts);
    let stores = emit_unrolled_loop("s", alpha * alpha, opts.unroll, |s| {
        format!("U[({s}) * {total} + k * {cc} + c] = Ut[({s}) / {alpha}][({s}) %% {alpha}];\n")
    })
    .replace("%%", "%");

    let mut vars: BTreeMap<&str, String> = BTreeMap::new();
    vars.insert("name", name.clone());
    vars.insert("qualifier", "__global__ void".to_string());
    vars.insert("total", total.to_string());
    vars.insert("C", cc.to_string());
    vars.insert("R", r.to_string());
    vars.insert("ALPHA", alpha.to_string());
    vars.insert("filts_buf_loads", loads);
    vars.insert("winograd_filt_transform", transform);
    vars.insert("store_results", stores);
    let source = render_template_strict(FILTER_TEMPLATE, &vars)?;

    let recipe_ops = recipes.filter.op_count().total().max(1);
    let cost = CostProfile {
        flops: total as u64 * transform_flops_2d(&recipes.filter, r, alpha),
        global_load_bytes: (total * r * r * 4) as u64,
        global_store_bytes: (total * alpha * alpha * 4) as u64,
        shared_bytes: 0,
        // Loads stride by r² across adjacent threads; stores are
        // contiguous in c within each ξ group.
        coalescing: 0.55,
        control_overhead: SCALAR_CHAIN_FACTOR
            * control_overhead(recipe_ops, r + alpha, opts.unroll),
    };
    let regs = recipes.filter.max_live_tmps() + 2 * alpha * alpha + 8;
    let mut launch =
        LaunchConfig::linear(total, clamp_block_threads(opts.threads_per_block(), regs));
    launch.regs_per_thread = regs;
    let source = crate::bridge::bridge_source(&source, opts.backend, &launch);
    Ok(Kernel {
        name,
        backend: opts.backend,
        kind: KernelKind::FilterTransform { m: spec.m, r },
        launch,
        cost,
        source,
    })
}

pub(crate) const INPUT_TEMPLATE: &str = r#"// generated: %(name) — Winograd input transform V = B^T d B
// CUCL IN in img:chan:y:x OUT V alpha2:C:P
%(qualifier) %(name)(const float* __restrict__ in, float* __restrict__ V) {
  const int gid = blockIdx.x * blockDim.x + threadIdx.x;
  if (gid >= %(total)) return;
  const int c = gid / %(P);
  const int p = gid %% %(P);
  float d[%(ALPHA)][%(ALPHA)];
  %(in_tile_loads)
  float Vt[%(ALPHA)][%(ALPHA)];
  %(winograd_in_transform)
  %(store_results)
}
"#;

/// Generates the input-transform kernel (`V' = Bᵀ·d·B`, scattered to
/// the `(ξ, c, p)` layout).
///
/// # Errors
/// Template rendering failures.
pub fn gen_input_transform_kernel(
    desc: &ConvDesc,
    recipes: &TransformRecipes,
    opts: &CodegenOptions,
) -> Result<Kernel, CodegenError> {
    let spec = recipes.spec;
    let (m, alpha) = (spec.m, spec.alpha());
    let (th, tw) = tile_counts(desc.out_h(), desc.out_w(), m);
    let p_total = desc.batch * th * tw;
    let cc = desc.in_ch;
    let total = cc * p_total;
    let name = format!("wg_in_xform_m{}_r{}", spec.m, spec.r);
    let (ph, pw) = (desc.in_h + 2 * desc.pad, desc.in_w + 2 * desc.pad);

    // Tile loads with border guards (ragged tiles read zeros).
    let loads = format!(
        "const int n = p / {tpi};\n\
         const int ty = (p %% {tpi}) / {tw};\n\
         const int tx = p %% {tw};\n\
         for (int dy = 0; dy < {alpha}; ++dy)\n\
           for (int dx = 0; dx < {alpha}; ++dx) {{\n\
             const int y = ty * {m} + dy, x = tx * {m} + dx;\n\
             d[dy][dx] = (y < {ph} && x < {pw})\n\
               ? in[((n * {cc} + c) * {ph} + y) * {pw} + x] : 0.0f;\n\
           }}\n",
        tpi = th * tw,
    )
    .replace("%%", "%");
    let transform = two_pass_body(&recipes.input, "d", "Td", "Vt", opts);
    let stores = emit_unrolled_loop("s", alpha * alpha, opts.unroll, |s| {
        format!("V[(({s}) * {cc} + c) * {p_total} + p] = Vt[({s}) / {alpha}][({s}) %% {alpha}];\n")
    })
    .replace("%%", "%");

    let mut vars: BTreeMap<&str, String> = BTreeMap::new();
    vars.insert("name", name.clone());
    vars.insert("qualifier", "__global__ void".to_string());
    vars.insert("total", total.to_string());
    vars.insert("P", p_total.to_string());
    vars.insert("ALPHA", alpha.to_string());
    vars.insert("in_tile_loads", loads);
    vars.insert("winograd_in_transform", transform);
    vars.insert("store_results", stores);
    let source = render_template_strict(INPUT_TEMPLATE, &vars)?;

    let recipe_ops = recipes.input.op_count().total().max(1);
    let cost = CostProfile {
        flops: total as u64 * transform_flops_2d(&recipes.input, alpha, alpha),
        global_load_bytes: (total * alpha * alpha * 4) as u64,
        global_store_bytes: (total * alpha * alpha * 4) as u64,
        shared_bytes: 0,
        // Row-contiguous tile loads; stores contiguous in p.
        coalescing: 0.7,
        control_overhead: SCALAR_CHAIN_FACTOR
            * control_overhead(recipe_ops, 2 * alpha, opts.unroll),
    };
    let regs = recipes.input.max_live_tmps() + 2 * alpha * alpha + 10;
    let mut launch =
        LaunchConfig::linear(total, clamp_block_threads(opts.threads_per_block(), regs));
    launch.regs_per_thread = regs;
    let source = crate::bridge::bridge_source(&source, opts.backend, &launch);
    Ok(Kernel {
        name,
        backend: opts.backend,
        kind: KernelKind::InputTransform {
            m: spec.m,
            r: spec.r,
        },
        launch,
        cost,
        source,
    })
}

pub(crate) const OUTPUT_TEMPLATE: &str = r#"// generated: %(name) — Winograd output transform Y = A^T M A
// CUCL IN M alpha2:K:P OUT out img:chan:y:x
%(qualifier) %(name)(const float* __restrict__ M, float* __restrict__ out) {
  const int gid = blockIdx.x * blockDim.x + threadIdx.x;
  if (gid >= %(total)) return;
  const int k = gid / %(P);
  const int p = gid %% %(P);
  float acc[%(ALPHA)][%(ALPHA)];
  %(m_tile_loads)
  float Y[%(M)][%(M)];
  %(winograd_out_transform)
  %(store_results)
}
"#;

/// Generates the output-transform kernel (`Y = Aᵀ·M·A` + placement).
///
/// # Errors
/// Template rendering failures.
pub fn gen_output_transform_kernel(
    desc: &ConvDesc,
    recipes: &TransformRecipes,
    opts: &CodegenOptions,
) -> Result<Kernel, CodegenError> {
    let spec = recipes.spec;
    let (m, alpha) = (spec.m, spec.alpha());
    let (th, tw) = tile_counts(desc.out_h(), desc.out_w(), m);
    let p_total = desc.batch * th * tw;
    let kc = desc.out_ch;
    let total = kc * p_total;
    let name = format!("wg_out_xform_m{}_r{}", spec.m, spec.r);
    let (oh, ow) = (desc.out_h(), desc.out_w());

    let loads = emit_unrolled_loop("s", alpha * alpha, opts.unroll, |s| {
        format!("acc[({s}) / {alpha}][({s}) %% {alpha}] = M[(({s}) * {kc} + k) * {p_total} + p];\n")
    })
    .replace("%%", "%");
    let transform = two_pass_body(&recipes.output, "acc", "Ta", "Y", opts);
    let stores = format!(
        "const int n = p / {tpi};\n\
         const int ty = (p %% {tpi}) / {tw};\n\
         const int tx = p %% {tw};\n\
         for (int dy = 0; dy < {m}; ++dy)\n\
           for (int dx = 0; dx < {m}; ++dx) {{\n\
             const int y = ty * {m} + dy, x = tx * {m} + dx;\n\
             if (y < {oh} && x < {ow})\n\
               out[((n * {kc} + k) * {oh} + y) * {ow} + x] = Y[dy][dx];\n\
           }}\n",
        tpi = th * tw,
    )
    .replace("%%", "%");

    let mut vars: BTreeMap<&str, String> = BTreeMap::new();
    vars.insert("name", name.clone());
    vars.insert("qualifier", "__global__ void".to_string());
    vars.insert("total", total.to_string());
    vars.insert("P", p_total.to_string());
    vars.insert("ALPHA", alpha.to_string());
    vars.insert("M", m.to_string());
    vars.insert("m_tile_loads", loads);
    vars.insert("winograd_out_transform", transform);
    vars.insert("store_results", stores);
    let source = render_template_strict(OUTPUT_TEMPLATE, &vars)?;

    let recipe_ops = recipes.output.op_count().total().max(1);
    let cost = CostProfile {
        flops: total as u64 * transform_flops_2d(&recipes.output, alpha, m),
        global_load_bytes: (total * alpha * alpha * 4) as u64,
        global_store_bytes: (total * m * m * 4) as u64,
        shared_bytes: 0,
        coalescing: 0.65,
        control_overhead: SCALAR_CHAIN_FACTOR
            * control_overhead(recipe_ops, alpha + m, opts.unroll),
    };
    let regs = recipes.output.max_live_tmps() + alpha * alpha + m * m + 10;
    let mut launch =
        LaunchConfig::linear(total, clamp_block_threads(opts.threads_per_block(), regs));
    launch.regs_per_thread = regs;
    let source = crate::bridge::bridge_source(&source, opts.backend, &launch);
    Ok(Kernel {
        name,
        backend: opts.backend,
        kind: KernelKind::OutputTransform {
            m: spec.m,
            r: spec.r,
        },
        launch,
        cost,
        source,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_symbolic::RecipeOptions;
    use wino_transform::WinogradSpec;

    fn recipes(m: usize, r: usize) -> TransformRecipes {
        TransformRecipes::generate(WinogradSpec::new(m, r).unwrap(), RecipeOptions::optimized())
            .unwrap()
    }

    fn desc() -> ConvDesc {
        ConvDesc::new(3, 1, 1, 8, 1, 14, 14, 4)
    }

    #[test]
    fn filter_kernel_generates_valid_descriptor() {
        let k = gen_filter_transform_kernel(&desc(), &recipes(2, 3), &CodegenOptions::default())
            .unwrap();
        k.validate().unwrap();
        assert!(k.source.contains("__global__ void wg_filt_xform_m2_r3"));
        assert!(
            !k.source.contains("%("),
            "unfilled placeholder:\n{}",
            k.source
        );
        // 8 filters × 4 channels threads.
        assert!(k.launch.total_threads() >= 32);
        assert!(k.cost.flops > 0);
    }

    #[test]
    fn input_kernel_handles_tiling() {
        let k = gen_input_transform_kernel(&desc(), &recipes(2, 3), &CodegenOptions::default())
            .unwrap();
        k.validate().unwrap();
        // 14×14 output, m=2 → 49 tiles × 4 channels.
        assert!(k.launch.total_threads() >= 196);
        assert!(k.source.contains("V[(("));
        assert!(!k.source.contains("%("));
    }

    #[test]
    fn output_kernel_clips_ragged_tiles() {
        let k = gen_output_transform_kernel(&desc(), &recipes(4, 3), &CodegenOptions::default())
            .unwrap();
        k.validate().unwrap();
        assert!(k.source.contains("if (y < 14 && x < 14)"));
    }

    #[test]
    fn braces_balance_in_all_sources() {
        for gen in [
            gen_filter_transform_kernel,
            gen_input_transform_kernel,
            gen_output_transform_kernel,
        ] {
            let k = gen(&desc(), &recipes(4, 3), &CodegenOptions::default()).unwrap();
            let opens = k.source.matches('{').count();
            let closes = k.source.matches('}').count();
            assert_eq!(
                opens, closes,
                "unbalanced braces in {}:\n{}",
                k.name, k.source
            );
        }
    }

    #[test]
    fn unrolling_changes_source_shape() {
        use crate::unroll::Unroll;
        let full = gen_filter_transform_kernel(
            &desc(),
            &recipes(2, 3),
            &CodegenOptions {
                unroll: Unroll::Full,
                ..Default::default()
            },
        )
        .unwrap();
        let rolled = gen_filter_transform_kernel(
            &desc(),
            &recipes(2, 3),
            &CodegenOptions {
                unroll: Unroll::Factor(1),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(rolled.source.matches("for (").count() > full.source.matches("for (").count());
        assert!(rolled.cost.control_overhead > full.cost.control_overhead);
        assert_eq!(rolled.cost.flops, full.cost.flops);
    }

    #[test]
    fn vulkan_backend_changes_qualifier() {
        use wino_ir::Backend;
        let k = gen_filter_transform_kernel(
            &desc(),
            &recipes(2, 3),
            &CodegenOptions {
                backend: Backend::OpenCl,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(k.source.contains("__kernel void"));
    }

    #[test]
    fn naive_transforms_cost_more_flops() {
        let opt = gen_filter_transform_kernel(&desc(), &recipes(4, 3), &CodegenOptions::default())
            .unwrap();
        let naive_recipes =
            TransformRecipes::generate(WinogradSpec::new(4, 3).unwrap(), RecipeOptions::minimal())
                .unwrap();
        let naive =
            gen_filter_transform_kernel(&desc(), &naive_recipes, &CodegenOptions::default())
                .unwrap();
        assert!(naive.cost.flops > opt.cost.flops);
    }
}
