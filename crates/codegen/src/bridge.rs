//! Backend bridging: one meta-code, many GPU dialects.
//!
//! §3.2 of the paper: "CUDA and Vulkan programming interfaces are
//! considerably different. Thus, generating a GPU kernel out of a
//! single code template might seem implausible at first sight.
//! Nevertheless, … we extended the Boda framework by adding a
//! high-level GPU interface capable of bridging syntactic
//! incompatibilities." The kernel generators emit a single CUDA-C
//! form; this module rewrites it into GLSL compute (Vulkan) or
//! OpenCL C, translating qualifiers, thread-index builtins,
//! synchronization primitives and buffer declarations.

use wino_ir::{Backend, LaunchConfig};

/// Rewrites CUDA-C kernel source for the requested backend. CUDA
/// input passes through untouched.
pub fn bridge_source(cuda_src: &str, backend: Backend, launch: &LaunchConfig) -> String {
    match backend {
        Backend::Cuda => cuda_src.to_string(),
        Backend::OpenCl => to_opencl(cuda_src),
        Backend::Vulkan => to_glsl(cuda_src, launch),
    }
}

/// CUDA → OpenCL C: qualifier and builtin renames plus address-space
/// annotations on the kernel parameters.
fn to_opencl(src: &str) -> String {
    let mut out = src.to_string();
    out = out.replace("__global__ void", "__kernel void");
    out = out.replace("__shared__", "__local");
    out = out.replace("__syncthreads()", "barrier(CLK_LOCAL_MEM_FENCE)");
    out = out.replace("__restrict__", "restrict");
    // Two-step rewrite: protect const pointers first so the bare
    // `float*` pattern cannot re-match inside them.
    out = out.replace("const float*", "\u{1}CONST_BUF\u{1}");
    out = out.replace("float* restrict", "__global float* restrict");
    out = out.replace("\u{1}CONST_BUF\u{1}", "__global const float*");
    out = out.replace("blockIdx.x * blockDim.x + threadIdx.x", "get_global_id(0)");
    for (cuda, ocl) in [
        ("blockIdx.x", "get_group_id(0)"),
        ("blockIdx.y", "get_group_id(1)"),
        ("blockIdx.z", "get_group_id(2)"),
        ("threadIdx.x", "get_local_id(0)"),
        ("threadIdx.y", "get_local_id(1)"),
        ("threadIdx.z", "get_local_id(2)"),
        ("blockDim.x", "get_local_size(0)"),
        ("blockDim.y", "get_local_size(1)"),
        ("fmaf(", "fma("),
    ] {
        out = out.replace(cuda, ocl);
    }
    out
}

/// CUDA → GLSL compute shader: version/layout header, storage-buffer
/// declarations derived from the kernel signature, `main()` body.
fn to_glsl(src: &str, launch: &LaunchConfig) -> String {
    let (header_comments, signature, body) = split_kernel(src);
    let (name, params) = parse_signature(signature);

    let mut out = String::new();
    out.push_str(&header_comments);
    out.push_str("#version 450\n");
    out.push_str(&format!(
        "layout(local_size_x = {}, local_size_y = {}, local_size_z = {}) in;\n",
        launch.block.x, launch.block.y, launch.block.z
    ));
    out.push_str(&format!("// kernel: {name}\n"));
    for (i, (is_const, pname)) in params.iter().enumerate() {
        let access = if *is_const { "readonly" } else { "writeonly" };
        out.push_str(&format!(
            "layout(std430, binding = {i}) {access} buffer Buf{i} {{ float {pname}[]; }};\n"
        ));
    }
    out.push_str("\nvoid main() {\n");

    let mut translated = body.to_string();
    translated = translated
        .replace(
            "blockIdx.x * blockDim.x + threadIdx.x",
            "int(gl_GlobalInvocationID.x)",
        )
        .replace("blockIdx.x", "int(gl_WorkGroupID.x)")
        .replace("blockIdx.y", "int(gl_WorkGroupID.y)")
        .replace("blockIdx.z", "int(gl_WorkGroupID.z)")
        .replace("threadIdx.x", "int(gl_LocalInvocationID.x)")
        .replace("threadIdx.y", "int(gl_LocalInvocationID.y)")
        .replace("threadIdx.z", "int(gl_LocalInvocationID.z)")
        .replace("blockDim.x", "int(gl_WorkGroupSize.x)")
        .replace("blockDim.y", "int(gl_WorkGroupSize.y)")
        .replace("__syncthreads()", "barrier()")
        .replace("__shared__", "shared")
        .replace("fmaf(", "fma(");
    // GLSL allows early return in main, so `return;` passes through.
    // GLSL has no pointers: buffer-base offsets like
    // `const float* Ab = A + k;` become index offsets. The generated
    // kernels only ever form `base + offset` pointers, so rewrite the
    // declaration to an int offset and uses stay `name[i]` → handled
    // by declaring A as the flat buffer (indexing is unchanged).
    translated = translated.replace("const float* ", "/* base-offset */ const int ");
    translated = translated.replace("float* ", "/* base-offset */ const int ");
    for line in translated.lines() {
        out.push_str("  ");
        out.push_str(line);
        out.push('\n');
    }
    out.push_str("}\n");
    out
}

/// Splits CUDA source into (leading comment lines, signature line,
/// body without the outer braces).
fn split_kernel(src: &str) -> (String, &str, &str) {
    let sig_start = src.find("__global__ void").unwrap_or(0);
    let comments = &src[..sig_start];
    let rest = &src[sig_start..];
    let body_open = rest.find('{').map(|i| i + 1).unwrap_or(rest.len());
    let signature = &rest[..body_open.saturating_sub(1)];
    let body_end = rest.rfind('}').unwrap_or(rest.len());
    (comments.to_string(), signature, &rest[body_open..body_end])
}

/// Extracts `(name, [(is_const, param_name)])` from a CUDA kernel
/// signature.
fn parse_signature(signature: &str) -> (String, Vec<(bool, String)>) {
    let after_void = signature
        .split("__global__ void")
        .nth(1)
        .unwrap_or(signature)
        .trim();
    let name = after_void
        .split('(')
        .next()
        .unwrap_or("kernel")
        .trim()
        .to_string();
    let params_str = after_void
        .split_once('(')
        .map(|(_, rest)| rest.rsplit_once(')').map(|(p, _)| p).unwrap_or(rest))
        .unwrap_or("");
    let params = params_str
        .split(',')
        .filter(|p| !p.trim().is_empty())
        .map(|p| {
            let is_const = p.contains("const");
            let pname = p
                .trim()
                .rsplit([' ', '*'])
                .next()
                .unwrap_or("buf")
                .to_string();
            (is_const, pname)
        })
        .collect();
    (name, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::CodegenOptions;
    use crate::transform_kernels::gen_filter_transform_kernel;
    use wino_symbolic::RecipeOptions;
    use wino_tensor::ConvDesc;
    use wino_transform::{TransformRecipes, WinogradSpec};

    const SAMPLE: &str = "// generated: k\n\
        __global__ void k(const float* __restrict__ in, float* __restrict__ out) {\n\
          const int gid = blockIdx.x * blockDim.x + threadIdx.x;\n\
          if (gid >= 64) return;\n\
          __shared__ float buf[32];\n\
          __syncthreads();\n\
          out[gid] = fmaf(2.0f, in[gid], 1.0f);\n\
        }\n";

    fn launch() -> LaunchConfig {
        LaunchConfig::linear(64, 32)
    }

    #[test]
    fn cuda_passes_through() {
        assert_eq!(bridge_source(SAMPLE, Backend::Cuda, &launch()), SAMPLE);
    }

    #[test]
    fn opencl_translation() {
        let ocl = bridge_source(SAMPLE, Backend::OpenCl, &launch());
        assert!(ocl.contains("__kernel void k"));
        assert!(ocl.contains("get_global_id(0)"));
        assert!(ocl.contains("barrier(CLK_LOCAL_MEM_FENCE)"));
        assert!(ocl.contains("__local float buf"));
        assert!(ocl.contains("__global const float*"));
        assert!(!ocl.contains("__global__"));
        assert!(!ocl.contains("threadIdx"));
        assert!(!ocl.contains("fmaf("));
    }

    #[test]
    fn glsl_translation() {
        let glsl = bridge_source(SAMPLE, Backend::Vulkan, &launch());
        assert!(glsl.starts_with("// generated: k\n#version 450"));
        assert!(glsl.contains("layout(local_size_x = 32, local_size_y = 1, local_size_z = 1) in;"));
        assert!(glsl.contains("layout(std430, binding = 0) readonly buffer Buf0 { float in[]; }"));
        assert!(glsl.contains("layout(std430, binding = 1) writeonly buffer Buf1 { float out[]; }"));
        assert!(glsl.contains("void main()"));
        assert!(glsl.contains("int(gl_GlobalInvocationID.x)"));
        assert!(glsl.contains("barrier();"));
        assert!(glsl.contains("shared float buf"));
        assert!(!glsl.contains("__global__"));
        assert!(!glsl.contains("blockIdx"));
        assert!(!glsl.contains("__syncthreads"));
    }

    #[test]
    fn real_kernel_bridges_cleanly() {
        let recipes = TransformRecipes::generate(
            WinogradSpec::new(2, 3).unwrap(),
            RecipeOptions::optimized(),
        )
        .unwrap();
        let desc = ConvDesc::new(3, 1, 1, 8, 1, 8, 8, 4);
        for backend in [Backend::Vulkan, Backend::OpenCl] {
            let opts = CodegenOptions {
                backend,
                ..Default::default()
            };
            let k = gen_filter_transform_kernel(&desc, &recipes, &opts).unwrap();
            assert!(!k.source.contains("__global__"), "{backend}: {}", k.source);
            assert!(!k.source.contains("threadIdx"), "{backend}");
            assert_eq!(
                k.source.matches('{').count(),
                k.source.matches('}').count(),
                "{backend}: unbalanced braces"
            );
        }
    }
}
