//! # wino-num — exact arithmetic for Winograd transform generation
//!
//! From-scratch arbitrary-precision integers ([`BigInt`]), exact
//! rationals ([`Rational`]), dense matrices over ℚ ([`RatMat`]) and
//! univariate polynomials ([`Poly`]).
//!
//! The paper generates Winograd transformation matrices with the
//! modified Toom-Cook method **over rational numbers** so that no
//! floating-point rounding contaminates the construction (§3.1.2).
//! Rust has no standard arbitrary-precision arithmetic, so this crate
//! provides the minimum exact-math substrate the rest of the workspace
//! builds on.
//!
//! ```
//! use wino_num::{Rational, RatMat};
//!
//! let g = RatMat::parse_rows(&[
//!     "1 0 0",
//!     "1/2 1/2 1/2",
//!     "1/2 -1/2 1/2",
//!     "0 0 1",
//! ]).unwrap();
//! assert_eq!(g[(1, 2)], Rational::from_frac(1, 2));
//! ```

#![warn(missing_docs)]

mod bigint;
mod error;
mod matrix;
mod poly;
mod rational;

pub use bigint::{BigInt, Sign};
pub use error::NumError;
pub use matrix::RatMat;
pub use poly::Poly;
pub use rational::Rational;
