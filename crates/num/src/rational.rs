//! Exact rational numbers over [`BigInt`].
//!
//! Winograd transformation matrices are generated over ℚ so that no
//! floating-point rounding enters the *construction* of the algorithm
//! (§3.1.2 of the paper: "we use rational numbers instead of real
//! floating-point numbers to avoid rounding errors"). Values are kept
//! normalized: the denominator is strictly positive and
//! `gcd(num, den) == 1`; zero is canonically `0/1`.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

use crate::bigint::BigInt;
use crate::error::NumError;

/// An exact rational number `num / den` with `den > 0` and the fraction
/// fully reduced.
#[derive(Clone, PartialEq, Eq)]
pub struct Rational {
    num: BigInt,
    den: BigInt,
}

impl Rational {
    /// The rational 0.
    pub fn zero() -> Self {
        Rational {
            num: BigInt::zero(),
            den: BigInt::one(),
        }
    }

    /// The rational 1.
    pub fn one() -> Self {
        Rational {
            num: BigInt::one(),
            den: BigInt::one(),
        }
    }

    /// Builds `num / den`, reducing to canonical form.
    ///
    /// # Errors
    /// Returns [`NumError::DivisionByZero`] if `den` is zero.
    pub fn new(num: BigInt, den: BigInt) -> Result<Self, NumError> {
        if den.is_zero() {
            return Err(NumError::DivisionByZero);
        }
        let mut r = Rational { num, den };
        r.reduce();
        Ok(r)
    }

    /// Builds `a / b` from machine integers. Panics if `b == 0`; use
    /// [`Rational::new`] for a fallible constructor.
    pub fn from_frac(a: i64, b: i64) -> Self {
        Rational::new(BigInt::from(a), BigInt::from(b)).expect("non-zero denominator")
    }

    /// Builds the integer `a`.
    pub fn from_int(a: i64) -> Self {
        Rational {
            num: BigInt::from(a),
            den: BigInt::one(),
        }
    }

    /// The (reduced) numerator.
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// The (reduced, strictly positive) denominator.
    pub fn denom(&self) -> &BigInt {
        &self.den
    }

    /// Returns `true` if the value is 0.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Returns `true` if the value is 1.
    pub fn is_one(&self) -> bool {
        self.num.is_one() && self.den.is_one()
    }

    /// Returns `true` if the value is -1.
    pub fn is_neg_one(&self) -> bool {
        self.den.is_one() && (-&self.num).is_one()
    }

    /// Returns `true` if the value is a (positive or negative) integer.
    pub fn is_integer(&self) -> bool {
        self.den.is_one()
    }

    /// Returns `true` if the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    fn reduce(&mut self) {
        if self.num.is_zero() {
            self.den = BigInt::one();
            return;
        }
        if self.den.is_negative() {
            self.num = -self.num.clone();
            self.den = -self.den.clone();
        }
        let g = self.num.gcd(&self.den);
        if !g.is_one() {
            self.num = &self.num / &g;
            self.den = &self.den / &g;
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Errors
    /// Returns [`NumError::DivisionByZero`] for zero.
    pub fn recip(&self) -> Result<Rational, NumError> {
        Rational::new(self.den.clone(), self.num.clone())
    }

    /// Integer power; negative exponents invert the base.
    ///
    /// # Errors
    /// Returns [`NumError::DivisionByZero`] when raising zero to a
    /// negative power.
    pub fn pow(&self, exp: i32) -> Result<Rational, NumError> {
        if exp >= 0 {
            Ok(Rational {
                num: self.num.pow(exp as u32),
                den: self.den.pow(exp as u32),
            })
        } else {
            self.recip()?.pow(-exp)
        }
    }

    /// Nearest `f64` value.
    pub fn to_f64(&self) -> f64 {
        // Scale both magnitudes into f64 range before dividing so that
        // huge intermediates do not saturate to infinity.
        let nb = self.num.bit_len() as i64;
        let db = self.den.bit_len() as i64;
        if nb < 900 && db < 900 {
            return self.num.to_f64() / self.den.to_f64();
        }
        let num = self.num.to_f64();
        let den = self.den.to_f64();
        if num.is_finite() && den.is_finite() && den != 0.0 {
            num / den
        } else {
            // Fall back to an exponent-adjusted estimate.
            let exp = (nb - db) as f64 * std::f64::consts::LN_2;
            exp.exp() * if self.num.is_negative() { -1.0 } else { 1.0 }
        }
    }

    /// Nearest `f32` value.
    pub fn to_f32(&self) -> f32 {
        self.to_f64() as f32
    }

    /// The *exact* rational value of a finite `f32`. Every finite
    /// float is a dyadic rational `±m · 2^e`, so this conversion is
    /// lossless: `Rational::from_f32_exact(v).unwrap().to_f32() == v`.
    ///
    /// This is the bridge the compiled-kernel verifier uses to reason
    /// about generated code: the `f32::from_bits` constants baked into
    /// emitted kernels are lifted back into ℚ without introducing any
    /// rounding of their own, so the abstract interpretation of the
    /// kernel text is exact. Returns `None` for NaN or infinities.
    pub fn from_f32_exact(v: f32) -> Option<Rational> {
        if !v.is_finite() {
            return None;
        }
        if v == 0.0 {
            return Some(Rational::zero());
        }
        let bits = v.to_bits();
        let negative = bits >> 31 == 1;
        let raw_exp = ((bits >> 23) & 0xff) as i32;
        let frac = (bits & 0x7f_ffff) as i64;
        // Normal numbers carry an implicit leading mantissa bit and an
        // exponent bias of 127 over a 23-bit fraction; subnormals have
        // no implicit bit and a fixed exponent of -149.
        let (mantissa, exp) = if raw_exp == 0 {
            (frac, -149)
        } else {
            (frac | (1 << 23), raw_exp - 150)
        };
        let mantissa = BigInt::from(if negative { -mantissa } else { mantissa });
        let scale = BigInt::from(2).pow(exp.unsigned_abs());
        let value = if exp >= 0 {
            Rational::new(&mantissa * &scale, BigInt::one())
        } else {
            Rational::new(mantissa, scale)
        };
        Some(value.expect("power-of-two denominator is non-zero"))
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::zero()
    }
}

impl Hash for Rational {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Canonical form makes (num, den) a sound hash key.
        self.num.to_string().hash(state);
        self.den.to_string().hash(state);
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Self {
        Rational::from_int(v)
    }
}

impl From<i32> for Rational {
    fn from(v: i32) -> Self {
        Rational::from_int(v as i64)
    }
}

impl FromStr for Rational {
    type Err = NumError;

    /// Parses `"a"` or `"a/b"` with optional sign.
    fn from_str(s: &str) -> Result<Self, NumError> {
        match s.split_once('/') {
            Some((n, d)) => Rational::new(n.trim().parse()?, d.trim().parse()?),
            None => Ok(Rational {
                num: s.trim().parse()?,
                den: BigInt::one(),
            }),
        }
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rational({self})")
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d  <=>  a*d vs c*b   (b, d > 0)
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -&self.num,
            den: self.den.clone(),
        }
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl Add for &Rational {
    type Output = Rational;
    fn add(self, rhs: &Rational) -> Rational {
        let num = &(&self.num * &rhs.den) + &(&rhs.num * &self.den);
        let den = &self.den * &rhs.den;
        Rational::new(num, den).expect("product of non-zero denominators")
    }
}

impl Sub for &Rational {
    type Output = Rational;
    fn sub(self, rhs: &Rational) -> Rational {
        self + &(-rhs)
    }
}

impl Mul for &Rational {
    type Output = Rational;
    fn mul(self, rhs: &Rational) -> Rational {
        Rational::new(&self.num * &rhs.num, &self.den * &rhs.den)
            .expect("product of non-zero denominators")
    }
}

impl Div for &Rational {
    type Output = Rational;
    /// Panics on division by zero; use [`Rational::recip`] plus
    /// multiplication for a fallible path.
    #[allow(clippy::suspicious_arithmetic_impl)] // division *is* multiply-by-reciprocal
    fn div(self, rhs: &Rational) -> Rational {
        self * &rhs.recip().expect("Rational division by zero")
    }
}

macro_rules! forward_binop_owned {
    ($trait:ident, $method:ident) => {
        impl $trait for Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&Rational> for Rational {
            type Output = Rational;
            fn $method(self, rhs: &Rational) -> Rational {
                (&self).$method(rhs)
            }
        }
    };
}

forward_binop_owned!(Add, add);
forward_binop_owned!(Sub, sub);
forward_binop_owned!(Mul, mul);
forward_binop_owned!(Div, div);

impl AddAssign<&Rational> for Rational {
    fn add_assign(&mut self, rhs: &Rational) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&Rational> for Rational {
    fn sub_assign(&mut self, rhs: &Rational) {
        *self = &*self - rhs;
    }
}

impl MulAssign<&Rational> for Rational {
    fn mul_assign(&mut self, rhs: &Rational) {
        *self = &*self * rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(a: i64, b: i64) -> Rational {
        Rational::from_frac(a, b)
    }

    #[test]
    fn canonical_form() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, 5), Rational::zero());
        assert_eq!(r(0, -5).to_string(), "0");
    }

    #[test]
    fn arithmetic() {
        assert_eq!(&r(1, 2) + &r(1, 3), r(5, 6));
        assert_eq!(&r(1, 2) - &r(1, 3), r(1, 6));
        assert_eq!(&r(2, 3) * &r(3, 4), r(1, 2));
        assert_eq!(&r(2, 3) / &r(4, 3), r(1, 2));
    }

    #[test]
    fn pow_and_recip() {
        assert_eq!(r(2, 3).pow(2).unwrap(), r(4, 9));
        assert_eq!(r(2, 3).pow(-2).unwrap(), r(9, 4));
        assert_eq!(r(2, 3).pow(0).unwrap(), Rational::one());
        assert_eq!(Rational::zero().pow(3).unwrap(), Rational::zero());
        assert!(Rational::zero().pow(-1).is_err());
        assert!(Rational::zero().recip().is_err());
    }

    #[test]
    fn zero_denominator_rejected() {
        assert!(Rational::new(BigInt::one(), BigInt::zero()).is_err());
    }

    #[test]
    fn parse() {
        assert_eq!("1/2".parse::<Rational>().unwrap(), r(1, 2));
        assert_eq!("-9/7".parse::<Rational>().unwrap(), r(-9, 7));
        assert_eq!("4".parse::<Rational>().unwrap(), r(4, 1));
        assert_eq!(" 3 / 6 ".parse::<Rational>().unwrap(), r(1, 2));
        assert!("1/0".parse::<Rational>().is_err());
        assert!("x/2".parse::<Rational>().is_err());
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(7, 1) > r(13, 2));
    }

    #[test]
    fn conversions() {
        assert_eq!(r(1, 2).to_f64(), 0.5);
        assert_eq!(r(-7, 4).to_f32(), -1.75);
        assert_eq!(r(1, 3).to_f64(), 1.0 / 3.0);
    }

    #[test]
    fn from_f32_exact_is_lossless() {
        // Dyadic values convert to the obvious fractions.
        assert_eq!(Rational::from_f32_exact(0.5).unwrap(), r(1, 2));
        assert_eq!(Rational::from_f32_exact(-1.75).unwrap(), r(-7, 4));
        assert_eq!(Rational::from_f32_exact(0.0).unwrap(), r(0, 1));
        assert_eq!(Rational::from_f32_exact(3.0).unwrap(), r(3, 1));
        // Non-dyadic rationals round on the way *into* f32; lifting
        // back must reproduce the rounded bits exactly, not 1/3.
        let third = Rational::from_f32_exact(1.0f32 / 3.0).unwrap();
        assert_ne!(third, r(1, 3));
        assert_eq!(third.to_f32(), 1.0f32 / 3.0);
        // Round-trips over a spread of magnitudes, including a
        // subnormal and the extremes of the normal range.
        for v in [
            1.0e-40f32,
            f32::MIN_POSITIVE,
            f32::MAX,
            -f32::MAX,
            2.0f32 / 3.0,
            1.234567e-12,
            -9.8765e33,
        ] {
            let exact = Rational::from_f32_exact(v).unwrap();
            assert_eq!(exact.to_f32(), v, "round-trip of {v}");
        }
        assert!(Rational::from_f32_exact(f32::NAN).is_none());
        assert!(Rational::from_f32_exact(f32::INFINITY).is_none());
    }

    #[test]
    fn classification() {
        assert!(r(1, 1).is_one());
        assert!(r(-1, 1).is_neg_one());
        assert!(r(5, 1).is_integer());
        assert!(!r(5, 2).is_integer());
        assert!(r(-5, 2).is_negative());
    }
}
