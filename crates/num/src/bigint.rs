//! Arbitrary-precision signed integers.
//!
//! The Toom-Cook matrix construction multiplies chains of rational
//! point differences and inverts Vandermonde-like systems; intermediate
//! numerators and denominators routinely overflow `i128` for large
//! internal tile sizes. This module provides a compact sign-magnitude
//! big integer sufficient for exact linear algebra over the rationals.
//!
//! Representation: little-endian `u32` limbs, normalized so that the
//! most significant limb is non-zero and zero is the empty limb vector
//! with positive sign. `u32` limbs keep the schoolbook division
//! (Knuth's Algorithm D) simple because every intermediate fits in
//! `u64`.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Rem, Sub, SubAssign};
use std::str::FromStr;

use crate::error::NumError;

/// Sign of a [`BigInt`]. Zero is canonically [`Sign::Plus`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sign {
    /// Non-negative.
    Plus,
    /// Strictly negative.
    Minus,
}

impl Sign {
    fn flip(self) -> Sign {
        match self {
            Sign::Plus => Sign::Minus,
            Sign::Minus => Sign::Plus,
        }
    }
}

/// Arbitrary-precision signed integer.
#[derive(Clone, PartialEq, Eq)]
pub struct BigInt {
    sign: Sign,
    /// Little-endian base-2³² magnitude; empty means zero.
    limbs: Vec<u32>,
}

impl BigInt {
    /// The integer 0.
    pub fn zero() -> Self {
        BigInt {
            sign: Sign::Plus,
            limbs: Vec::new(),
        }
    }

    /// The integer 1.
    pub fn one() -> Self {
        BigInt::from(1i64)
    }

    /// Returns `true` if `self == 0`.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` if `self == 1`.
    pub fn is_one(&self) -> bool {
        self.sign == Sign::Plus && self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Returns `true` if `self < 0`.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Minus
    }

    /// The sign of the value.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// Absolute value.
    pub fn abs(&self) -> BigInt {
        BigInt {
            sign: Sign::Plus,
            limbs: self.limbs.clone(),
        }
    }

    /// Number of significant bits in the magnitude (0 for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => 32 * (self.limbs.len() - 1) + (32 - top.leading_zeros() as usize),
        }
    }

    fn from_limbs(sign: Sign, mut limbs: Vec<u32>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        if limbs.is_empty() {
            return BigInt::zero();
        }
        BigInt { sign, limbs }
    }

    /// Magnitude comparison, ignoring sign.
    fn cmp_mag(a: &[u32], b: &[u32]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for i in (0..a.len()).rev() {
            if a[i] != b[i] {
                return a[i].cmp(&b[i]);
            }
        }
        Ordering::Equal
    }

    fn add_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &l) in long.iter().enumerate() {
            let s = l as u64 + short.get(i).copied().unwrap_or(0) as u64 + carry;
            out.push(s as u32);
            carry = s >> 32;
        }
        if carry != 0 {
            out.push(carry as u32);
        }
        out
    }

    /// Computes `a - b`; requires `a >= b` in magnitude.
    fn sub_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
        debug_assert!(Self::cmp_mag(a, b) != Ordering::Less);
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0i64;
        for (i, &ai) in a.iter().enumerate() {
            let d = ai as i64 - b.get(i).copied().unwrap_or(0) as i64 - borrow;
            if d < 0 {
                out.push((d + (1i64 << 32)) as u32);
                borrow = 1;
            } else {
                out.push(d as u32);
                borrow = 0;
            }
        }
        debug_assert_eq!(borrow, 0);
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    fn mul_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u32; a.len() + b.len()];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            let mut carry = 0u64;
            for (j, &bj) in b.iter().enumerate() {
                let t = ai as u64 * bj as u64 + out[i + j] as u64 + carry;
                out[i + j] = t as u32;
                carry = t >> 32;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let t = out[k] as u64 + carry;
                out[k] = t as u32;
                carry = t >> 32;
                k += 1;
            }
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    /// Divide magnitude by a single limb; returns (quotient, remainder).
    fn divrem_mag_single(a: &[u32], d: u32) -> (Vec<u32>, u32) {
        debug_assert!(d != 0);
        let mut q = vec![0u32; a.len()];
        let mut rem = 0u64;
        for i in (0..a.len()).rev() {
            let cur = (rem << 32) | a[i] as u64;
            q[i] = (cur / d as u64) as u32;
            rem = cur % d as u64;
        }
        while q.last() == Some(&0) {
            q.pop();
        }
        (q, rem as u32)
    }

    /// Knuth Algorithm D long division on magnitudes.
    /// Requires `d.len() >= 2` and returns (quotient, remainder).
    fn divrem_mag_knuth(a: &[u32], d: &[u32]) -> (Vec<u32>, Vec<u32>) {
        let n = d.len();
        let m = a.len() - n; // a.len() >= n guaranteed by caller
                             // D1: normalize so the divisor's top limb has its high bit set.
        let shift = d[n - 1].leading_zeros();
        let mut v = shl_bits(d, shift);
        let mut u = shl_bits(a, shift);
        u.resize(a.len() + 1, 0); // one extra limb for the top
        debug_assert_eq!(v.len(), n);
        let vtop = v[n - 1] as u64;
        let vsec = v[n - 2] as u64;
        let mut q = vec![0u32; m + 1];
        // D2-D7: main loop.
        for j in (0..=m).rev() {
            let numer = ((u[j + n] as u64) << 32) | u[j + n - 1] as u64;
            let mut qhat = numer / vtop;
            let mut rhat = numer % vtop;
            // Correct qhat down (at most twice).
            while qhat >= 1u64 << 32 || qhat * vsec > ((rhat << 32) | u[j + n - 2] as u64) {
                qhat -= 1;
                rhat += vtop;
                if rhat >= 1u64 << 32 {
                    break;
                }
            }
            // D4: multiply and subtract u[j..j+n] -= qhat * v.
            let mut borrow = 0i64;
            let mut carry = 0u64;
            for i in 0..n {
                let p = qhat * v[i] as u64 + carry;
                carry = p >> 32;
                let t = u[j + i] as i64 - (p as u32) as i64 - borrow;
                if t < 0 {
                    u[j + i] = (t + (1i64 << 32)) as u32;
                    borrow = 1;
                } else {
                    u[j + i] = t as u32;
                    borrow = 0;
                }
            }
            let t = u[j + n] as i64 - carry as i64 - borrow;
            if t < 0 {
                // D6: qhat was one too large; add back.
                u[j + n] = (t + (1i64 << 32)) as u32;
                qhat -= 1;
                let mut carry2 = 0u64;
                for i in 0..n {
                    let s = u[j + i] as u64 + v[i] as u64 + carry2;
                    u[j + i] = s as u32;
                    carry2 = s >> 32;
                }
                u[j + n] = (u[j + n] as u64 + carry2) as u32;
            } else {
                u[j + n] = t as u32;
            }
            q[j] = qhat as u32;
        }
        while q.last() == Some(&0) {
            q.pop();
        }
        // D8: denormalize the remainder.
        u.truncate(n);
        v.clear();
        let rem = shr_bits(&u, shift);
        (q, rem)
    }

    /// Euclidean division of magnitudes: returns (quotient, remainder).
    fn divrem_mag(a: &[u32], d: &[u32]) -> (Vec<u32>, Vec<u32>) {
        debug_assert!(!d.is_empty(), "division by zero magnitude");
        match Self::cmp_mag(a, d) {
            Ordering::Less => return (Vec::new(), a.to_vec()),
            Ordering::Equal => return (vec![1], Vec::new()),
            Ordering::Greater => {}
        }
        if d.len() == 1 {
            let (q, r) = Self::divrem_mag_single(a, d[0]);
            let rem = if r == 0 { Vec::new() } else { vec![r] };
            return (q, rem);
        }
        Self::divrem_mag_knuth(a, d)
    }

    /// Truncated division with remainder: `self = q * rhs + r`, with
    /// `|r| < |rhs|` and `r` carrying the sign of `self` (like Rust's
    /// `i64` division).
    ///
    /// # Errors
    /// Returns [`NumError::DivisionByZero`] if `rhs` is zero.
    pub fn div_rem(&self, rhs: &BigInt) -> Result<(BigInt, BigInt), NumError> {
        if rhs.is_zero() {
            return Err(NumError::DivisionByZero);
        }
        let (qm, rm) = Self::divrem_mag(&self.limbs, &rhs.limbs);
        let qsign = if self.sign == rhs.sign {
            Sign::Plus
        } else {
            Sign::Minus
        };
        Ok((
            BigInt::from_limbs(qsign, qm),
            BigInt::from_limbs(self.sign, rm),
        ))
    }

    /// Greatest common divisor of the magnitudes; `gcd(0, x) = |x|`.
    pub fn gcd(&self, other: &BigInt) -> BigInt {
        let mut a = self.abs();
        let mut b = other.abs();
        while !b.is_zero() {
            let (_, r) = a.div_rem(&b).expect("non-zero divisor");
            a = b;
            b = r.abs();
        }
        a
    }

    /// Raises `self` to a non-negative integer power.
    pub fn pow(&self, mut exp: u32) -> BigInt {
        let mut base = self.clone();
        let mut acc = BigInt::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            base = &base * &base;
            exp >>= 1;
        }
        acc
    }

    /// Lossy conversion to `f64`, correctly scaled for magnitudes that
    /// exceed the `f64` range of exact integers.
    pub fn to_f64(&self) -> f64 {
        let bits = self.bit_len();
        let mut v = 0.0f64;
        // Fold limbs from most to least significant; past 96 bits the
        // tail cannot affect the 53-bit mantissa.
        let top = self.limbs.len();
        let lo = top.saturating_sub(3);
        for i in (lo..top).rev() {
            v = v * 4294967296.0 + self.limbs[i] as f64;
        }
        v *= 2f64.powi((lo * 32) as i32);
        let _ = bits;
        if self.sign == Sign::Minus {
            -v
        } else {
            v
        }
    }

    /// Exact conversion to `i64` when the value fits.
    pub fn to_i64(&self) -> Option<i64> {
        if self.limbs.len() > 2 {
            return None;
        }
        let mag = self.limbs.first().copied().unwrap_or(0) as u128
            | (self.limbs.get(1).copied().unwrap_or(0) as u128) << 32;
        match self.sign {
            Sign::Plus if mag <= i64::MAX as u128 => Some(mag as i64),
            Sign::Minus if mag <= i64::MAX as u128 + 1 => Some((mag as i128).wrapping_neg() as i64),
            _ => None,
        }
    }
}

/// Shift a magnitude left by `shift < 32` bits.
fn shl_bits(a: &[u32], shift: u32) -> Vec<u32> {
    debug_assert!(shift < 32);
    if shift == 0 {
        return a.to_vec();
    }
    let mut out = Vec::with_capacity(a.len() + 1);
    let mut carry = 0u32;
    for &w in a {
        out.push((w << shift) | carry);
        carry = w >> (32 - shift);
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

/// Shift a magnitude right by `shift < 32` bits.
fn shr_bits(a: &[u32], shift: u32) -> Vec<u32> {
    debug_assert!(shift < 32);
    let mut out = a.to_vec();
    if shift != 0 {
        for i in 0..out.len() {
            let hi = if i + 1 < a.len() { a[i + 1] } else { 0 };
            out[i] = (a[i] >> shift) | (hi << (32 - shift));
        }
    }
    while out.last() == Some(&0) {
        out.pop();
    }
    out
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        BigInt::from(v as i128)
    }
}

impl From<u64> for BigInt {
    fn from(v: u64) -> Self {
        BigInt::from_limbs(Sign::Plus, vec![v as u32, (v >> 32) as u32])
    }
}

impl From<i32> for BigInt {
    fn from(v: i32) -> Self {
        BigInt::from(v as i128)
    }
}

impl From<i128> for BigInt {
    fn from(v: i128) -> Self {
        let sign = if v < 0 { Sign::Minus } else { Sign::Plus };
        let mag = v.unsigned_abs();
        BigInt::from_limbs(
            sign,
            vec![
                mag as u32,
                (mag >> 32) as u32,
                (mag >> 64) as u32,
                (mag >> 96) as u32,
            ],
        )
    }
}

impl FromStr for BigInt {
    type Err = NumError;

    fn from_str(s: &str) -> Result<Self, NumError> {
        let (sign, digits) = match s.strip_prefix('-') {
            Some(rest) => (Sign::Minus, rest),
            None => (Sign::Plus, s.strip_prefix('+').unwrap_or(s)),
        };
        if digits.is_empty() {
            return Err(NumError::Parse(s.to_string()));
        }
        let mut acc = BigInt::zero();
        let ten = BigInt::from(10i64);
        for ch in digits.chars() {
            let d = ch
                .to_digit(10)
                .ok_or_else(|| NumError::Parse(s.to_string()))?;
            acc = &(&acc * &ten) + &BigInt::from(d as i64);
        }
        acc.sign = if acc.is_zero() { Sign::Plus } else { sign };
        Ok(acc)
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut digits = Vec::new();
        let mut mag = self.limbs.clone();
        while !mag.is_empty() {
            let (q, r) = BigInt::divrem_mag_single(&mag, 1_000_000_000);
            mag = q;
            digits.push(r);
        }
        if self.sign == Sign::Minus {
            write!(f, "-")?;
        }
        let mut it = digits.iter().rev();
        if let Some(first) = it.next() {
            write!(f, "{first}")?;
        }
        for chunk in it {
            write!(f, "{chunk:09}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.sign, other.sign) {
            (Sign::Plus, Sign::Minus) => Ordering::Greater,
            (Sign::Minus, Sign::Plus) => Ordering::Less,
            (Sign::Plus, Sign::Plus) => Self::cmp_mag(&self.limbs, &other.limbs),
            (Sign::Minus, Sign::Minus) => Self::cmp_mag(&other.limbs, &self.limbs),
        }
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        if self.is_zero() {
            return BigInt::zero();
        }
        BigInt {
            sign: self.sign.flip(),
            limbs: self.limbs.clone(),
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(mut self) -> BigInt {
        if !self.is_zero() {
            self.sign = self.sign.flip();
        }
        self
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        if self.sign == rhs.sign {
            return BigInt::from_limbs(self.sign, BigInt::add_mag(&self.limbs, &rhs.limbs));
        }
        match BigInt::cmp_mag(&self.limbs, &rhs.limbs) {
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => {
                BigInt::from_limbs(self.sign, BigInt::sub_mag(&self.limbs, &rhs.limbs))
            }
            Ordering::Less => {
                BigInt::from_limbs(rhs.sign, BigInt::sub_mag(&rhs.limbs, &self.limbs))
            }
        }
    }
}

impl Sub for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        self + &(-rhs)
    }
}

impl Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        let sign = if self.sign == rhs.sign {
            Sign::Plus
        } else {
            Sign::Minus
        };
        BigInt::from_limbs(sign, BigInt::mul_mag(&self.limbs, &rhs.limbs))
    }
}

impl Div for &BigInt {
    type Output = BigInt;
    /// Truncated division. Panics on division by zero; use
    /// [`BigInt::div_rem`] for a fallible version.
    fn div(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).expect("BigInt division by zero").0
    }
}

impl Rem for &BigInt {
    type Output = BigInt;
    fn rem(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).expect("BigInt remainder by zero").1
    }
}

macro_rules! forward_binop_owned {
    ($trait:ident, $method:ident) => {
        impl $trait for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: &BigInt) -> BigInt {
                (&self).$method(rhs)
            }
        }
    };
}

forward_binop_owned!(Add, add);
forward_binop_owned!(Sub, sub);
forward_binop_owned!(Mul, mul);
forward_binop_owned!(Div, div);
forward_binop_owned!(Rem, rem);

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, rhs: &BigInt) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&BigInt> for BigInt {
    fn sub_assign(&mut self, rhs: &BigInt) {
        *self = &*self - rhs;
    }
}

impl MulAssign<&BigInt> for BigInt {
    fn mul_assign(&mut self, rhs: &BigInt) {
        *self = &*self * rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: i128) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn small_arithmetic() {
        assert_eq!(&b(2) + &b(3), b(5));
        assert_eq!(&b(2) - &b(3), b(-1));
        assert_eq!(&b(-4) * &b(5), b(-20));
        assert_eq!(&b(17) / &b(5), b(3));
        assert_eq!(&b(17) % &b(5), b(2));
        assert_eq!(&b(-17) / &b(5), b(-3));
        assert_eq!(&b(-17) % &b(5), b(-2));
    }

    #[test]
    fn zero_identities() {
        assert!(b(0).is_zero());
        assert_eq!(&b(0) + &b(0), b(0));
        assert_eq!(&b(7) + &b(-7), b(0));
        assert_eq!(-b(0), b(0));
        assert_eq!(b(0).to_i64(), Some(0));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        assert_eq!(b(1).div_rem(&b(0)), Err(NumError::DivisionByZero));
    }

    #[test]
    fn large_multiplication_and_division() {
        let a = BigInt::from_str("123456789012345678901234567890").unwrap();
        let c = BigInt::from_str("987654321098765432109876543210").unwrap();
        let p = &a * &c;
        assert_eq!(
            p.to_string(),
            "121932631137021795226185032733622923332237463801111263526900"
        );
        let (q, r) = p.div_rem(&a).unwrap();
        assert_eq!(q, c);
        assert!(r.is_zero());
    }

    #[test]
    fn knuth_division_addback_path() {
        // Crafted so the trial quotient needs correction.
        let a = BigInt::from_str("340282366920938463463374607431768211455").unwrap(); // 2^128-1
        let d = BigInt::from_str("18446744073709551617").unwrap(); // 2^64+1
        let (q, r) = a.div_rem(&d).unwrap();
        assert_eq!((&q * &d) + &r, a);
        assert!(r.abs() < d.abs());
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(b(12).gcd(&b(18)), b(6));
        assert_eq!(b(-12).gcd(&b(18)), b(6));
        assert_eq!(b(0).gcd(&b(5)), b(5));
        assert_eq!(b(5).gcd(&b(0)), b(5));
        assert_eq!(b(1).gcd(&b(999)), b(1));
    }

    #[test]
    fn pow() {
        assert_eq!(b(2).pow(10), b(1024));
        assert_eq!(b(-3).pow(3), b(-27));
        assert_eq!(b(7).pow(0), b(1));
        assert_eq!(b(10).pow(30).to_string(), format!("1{}", "0".repeat(30)));
    }

    #[test]
    fn display_round_trip() {
        for s in ["0", "-1", "42", "-123456789012345678901234567890"] {
            assert_eq!(BigInt::from_str(s).unwrap().to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(BigInt::from_str("").is_err());
        assert!(BigInt::from_str("-").is_err());
        assert!(BigInt::from_str("12a3").is_err());
    }

    #[test]
    fn ordering() {
        assert!(b(-2) < b(1));
        assert!(b(3) > b(2));
        assert!(b(-3) < b(-2));
        let big = BigInt::from_str("99999999999999999999999").unwrap();
        assert!(big > b(i64::MAX as i128));
    }

    #[test]
    fn to_f64_accuracy() {
        assert_eq!(b(12345).to_f64(), 12345.0);
        assert_eq!(b(-7).to_f64(), -7.0);
        let big = b(2).pow(100);
        let rel = (big.to_f64() - 2f64.powi(100)).abs() / 2f64.powi(100);
        assert!(rel < 1e-12);
    }

    #[test]
    fn to_i64_bounds() {
        assert_eq!(b(i64::MAX as i128).to_i64(), Some(i64::MAX));
        assert_eq!(b(i64::MIN as i128).to_i64(), Some(i64::MIN));
        assert_eq!(b(i64::MAX as i128 + 1).to_i64(), None);
        assert_eq!(b(i64::MIN as i128 - 1).to_i64(), None);
    }

    #[test]
    fn bit_len() {
        assert_eq!(b(0).bit_len(), 0);
        assert_eq!(b(1).bit_len(), 1);
        assert_eq!(b(255).bit_len(), 8);
        assert_eq!(b(256).bit_len(), 9);
        assert_eq!(b(2).pow(200).bit_len(), 201);
    }
}
