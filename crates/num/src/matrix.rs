//! Dense matrices over exact rationals.
//!
//! Sizes are tiny (α ≤ 16 for every Winograd configuration in the
//! paper), so a straightforward row-major dense layout with
//! Gauss-Jordan elimination is both simple and exact.

use std::fmt;
use std::ops::{Index, IndexMut, Mul};

use crate::error::NumError;
use crate::rational::Rational;

/// A dense `rows × cols` matrix of [`Rational`] values.
#[derive(Clone, PartialEq, Eq)]
pub struct RatMat {
    rows: usize,
    cols: usize,
    data: Vec<Rational>,
}

impl RatMat {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        RatMat {
            rows,
            cols,
            data: vec![Rational::zero(); rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = RatMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Rational::one();
        }
        m
    }

    /// Builds a matrix from a generator function over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Rational) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        RatMat { rows, cols, data }
    }

    /// Builds a matrix from integer literals, row by row. Panics if the
    /// rows are ragged; intended for tests and fixed tables.
    pub fn from_i64_rows(rows: &[&[i64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        RatMat::from_fn(r, c, |i, j| Rational::from_int(rows[i][j]))
    }

    /// Parses a matrix from rows of whitespace-separated rationals,
    /// e.g. `&["1 0 -1", "1/2 1/2 1/2"]`.
    ///
    /// # Errors
    /// Propagates parse failures and rejects ragged rows.
    pub fn parse_rows(rows: &[&str]) -> Result<Self, NumError> {
        let mut data = Vec::new();
        let mut cols = None;
        for row in rows {
            let vals: Result<Vec<Rational>, NumError> =
                row.split_whitespace().map(|t| t.parse()).collect();
            let vals = vals?;
            match cols {
                None => cols = Some(vals.len()),
                Some(c) if c != vals.len() => {
                    return Err(NumError::ShapeMismatch(format!(
                        "row has {} entries, expected {c}",
                        vals.len()
                    )))
                }
                _ => {}
            }
            data.extend(vals);
        }
        let cols = cols.unwrap_or(0);
        Ok(RatMat {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Transposed copy.
    pub fn transpose(&self) -> RatMat {
        RatMat::from_fn(self.cols, self.rows, |i, j| self[(j, i)].clone())
    }

    /// Matrix product.
    ///
    /// # Errors
    /// Returns [`NumError::ShapeMismatch`] if the inner dimensions
    /// disagree.
    pub fn matmul(&self, rhs: &RatMat) -> Result<RatMat, NumError> {
        if self.cols != rhs.rows {
            return Err(NumError::ShapeMismatch(format!(
                "{}x{} * {}x{}",
                self.rows, self.cols, rhs.rows, rhs.cols
            )));
        }
        let mut out = RatMat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = &self[(i, k)];
                if a.is_zero() {
                    continue;
                }
                for j in 0..rhs.cols {
                    let term = a * &rhs[(k, j)];
                    let cur = &out[(i, j)] + &term;
                    out[(i, j)] = cur;
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product.
    ///
    /// # Errors
    /// Returns [`NumError::ShapeMismatch`] if `v.len() != cols`.
    pub fn matvec(&self, v: &[Rational]) -> Result<Vec<Rational>, NumError> {
        if v.len() != self.cols {
            return Err(NumError::ShapeMismatch(format!(
                "{}x{} * vec{}",
                self.rows,
                self.cols,
                v.len()
            )));
        }
        let mut out = vec![Rational::zero(); self.rows];
        for i in 0..self.rows {
            let mut acc = Rational::zero();
            for j in 0..self.cols {
                if !self[(i, j)].is_zero() {
                    acc += &(&self[(i, j)] * &v[j]);
                }
            }
            out[i] = acc;
        }
        Ok(out)
    }

    /// Exact inverse via Gauss-Jordan elimination with partial
    /// (first-non-zero) pivoting.
    ///
    /// # Errors
    /// [`NumError::ShapeMismatch`] if not square,
    /// [`NumError::SingularMatrix`] if no inverse exists.
    pub fn inverse(&self) -> Result<RatMat, NumError> {
        if self.rows != self.cols {
            return Err(NumError::ShapeMismatch(format!(
                "inverse of {}x{}",
                self.rows, self.cols
            )));
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = RatMat::identity(n);
        for col in 0..n {
            let pivot = (col..n)
                .find(|&r| !a[(r, col)].is_zero())
                .ok_or(NumError::SingularMatrix)?;
            if pivot != col {
                a.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            let p = a[(col, col)].clone();
            let pinv = p.recip().expect("pivot is non-zero");
            for j in 0..n {
                a[(col, j)] = &a[(col, j)] * &pinv;
                inv[(col, j)] = &inv[(col, j)] * &pinv;
            }
            for r in 0..n {
                if r == col || a[(r, col)].is_zero() {
                    continue;
                }
                let f = a[(r, col)].clone();
                for j in 0..n {
                    let t = &a[(col, j)] * &f;
                    a[(r, j)] = &a[(r, j)] - &t;
                    let t = &inv[(col, j)] * &f;
                    inv[(r, j)] = &inv[(r, j)] - &t;
                }
            }
        }
        Ok(inv)
    }

    /// Exact determinant via fraction-free-ish Gaussian elimination
    /// (plain rational elimination; sizes are tiny).
    ///
    /// # Errors
    /// [`NumError::ShapeMismatch`] if not square.
    pub fn determinant(&self) -> Result<Rational, NumError> {
        if self.rows != self.cols {
            return Err(NumError::ShapeMismatch(format!(
                "determinant of {}x{}",
                self.rows, self.cols
            )));
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut det = Rational::one();
        for col in 0..n {
            let pivot = match (col..n).find(|&r| !a[(r, col)].is_zero()) {
                Some(p) => p,
                None => return Ok(Rational::zero()),
            };
            if pivot != col {
                a.swap_rows(pivot, col);
                det = -det;
            }
            let p = a[(col, col)].clone();
            det *= &p;
            let pinv = p.recip().expect("pivot is non-zero");
            for r in col + 1..n {
                if a[(r, col)].is_zero() {
                    continue;
                }
                let f = &a[(r, col)] * &pinv;
                for j in col..n {
                    let t = &a[(col, j)] * &f;
                    a[(r, j)] = &a[(r, j)] - &t;
                }
            }
        }
        Ok(det)
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        for j in 0..self.cols {
            self.data.swap(a * self.cols + j, b * self.cols + j);
        }
    }

    /// Row-major `f32` rendering of the matrix.
    pub fn to_f32_vec(&self) -> Vec<f32> {
        self.data.iter().map(Rational::to_f32).collect()
    }

    /// Row-major `f64` rendering of the matrix.
    pub fn to_f64_vec(&self) -> Vec<f64> {
        self.data.iter().map(Rational::to_f64).collect()
    }

    /// Iterates over `(row, col, value)` of all non-zero entries.
    pub fn non_zero_entries(&self) -> impl Iterator<Item = (usize, usize, &Rational)> {
        self.data.iter().enumerate().filter_map(move |(idx, v)| {
            if v.is_zero() {
                None
            } else {
                Some((idx / self.cols, idx % self.cols, v))
            }
        })
    }
}

impl Index<(usize, usize)> for RatMat {
    type Output = Rational;
    fn index(&self, (i, j): (usize, usize)) -> &Rational {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for RatMat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Rational {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl Mul for &RatMat {
    type Output = RatMat;
    /// Panics on shape mismatch; use [`RatMat::matmul`] for a fallible
    /// version.
    fn mul(self, rhs: &RatMat) -> RatMat {
        self.matmul(rhs).expect("matrix shape mismatch")
    }
}

impl fmt::Display for RatMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Column-aligned, human-readable layout for docs and debugging.
        let strings: Vec<String> = self.data.iter().map(|v| v.to_string()).collect();
        let width = strings.iter().map(String::len).max().unwrap_or(1);
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>width$}", strings[i * self.cols + j])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

impl fmt::Debug for RatMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RatMat {}x{}:\n{}", self.rows, self.cols, self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_multiplicative_unit() {
        let a = RatMat::from_i64_rows(&[&[1, 2], &[3, 4]]);
        let i = RatMat::identity(2);
        assert_eq!(&a * &i, a);
        assert_eq!(&i * &a, a);
    }

    #[test]
    fn matmul_known_product() {
        let a = RatMat::from_i64_rows(&[&[1, 2], &[3, 4]]);
        let b = RatMat::from_i64_rows(&[&[5, 6], &[7, 8]]);
        assert_eq!(&a * &b, RatMat::from_i64_rows(&[&[19, 22], &[43, 50]]));
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = RatMat::zeros(2, 3);
        let b = RatMat::zeros(2, 3);
        assert!(matches!(a.matmul(&b), Err(NumError::ShapeMismatch(_))));
    }

    #[test]
    fn transpose() {
        let a = RatMat::from_i64_rows(&[&[1, 2, 3], &[4, 5, 6]]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t[(2, 1)], Rational::from_int(6));
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn inverse_round_trip() {
        let a = RatMat::from_i64_rows(&[&[2, 1, 0], &[1, 3, 1], &[0, 1, 4]]);
        let inv = a.inverse().unwrap();
        assert_eq!(&a * &inv, RatMat::identity(3));
        assert_eq!(&inv * &a, RatMat::identity(3));
    }

    #[test]
    fn inverse_requires_pivoting() {
        let a = RatMat::from_i64_rows(&[&[0, 1], &[1, 0]]);
        let inv = a.inverse().unwrap();
        assert_eq!(&a * &inv, RatMat::identity(2));
    }

    #[test]
    fn singular_matrix_detected() {
        let a = RatMat::from_i64_rows(&[&[1, 2], &[2, 4]]);
        assert_eq!(a.inverse(), Err(NumError::SingularMatrix));
        assert_eq!(a.determinant().unwrap(), Rational::zero());
    }

    #[test]
    fn determinant_known_values() {
        let a = RatMat::from_i64_rows(&[&[1, 2], &[3, 4]]);
        assert_eq!(a.determinant().unwrap(), Rational::from_int(-2));
        assert_eq!(RatMat::identity(5).determinant().unwrap(), Rational::one());
    }

    #[test]
    fn parse_rows() {
        let m = RatMat::parse_rows(&["1 0 -1", "1/2 1/2 1/2"]).unwrap();
        assert_eq!(m[(1, 0)], Rational::from_frac(1, 2));
        assert_eq!(m[(0, 2)], Rational::from_int(-1));
        assert!(RatMat::parse_rows(&["1 2", "3"]).is_err());
    }

    #[test]
    fn matvec() {
        let a = RatMat::from_i64_rows(&[&[1, 2], &[3, 4]]);
        let v = vec![Rational::from_int(5), Rational::from_int(6)];
        let out = a.matvec(&v).unwrap();
        assert_eq!(out, vec![Rational::from_int(17), Rational::from_int(39)]);
        assert!(a.matvec(&v[..1]).is_err());
    }

    #[test]
    fn non_zero_entries() {
        let m = RatMat::from_i64_rows(&[&[0, 1], &[2, 0]]);
        let nz: Vec<_> = m.non_zero_entries().map(|(i, j, _)| (i, j)).collect();
        assert_eq!(nz, vec![(0, 1), (1, 0)]);
    }
}
