//! Error type shared by the exact-arithmetic primitives.

use std::fmt;

/// Errors produced by exact arithmetic and linear algebra.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NumError {
    /// Division (or inversion) by zero.
    DivisionByZero,
    /// Matrix inversion attempted on a singular matrix.
    SingularMatrix,
    /// Operand shapes are incompatible (e.g. matrix product `a×b · c×d`
    /// with `b != c`). Carries a human-readable description.
    ShapeMismatch(String),
    /// String parsing failed; carries the offending input.
    Parse(String),
    /// A set of interpolation points contained a duplicate, which makes
    /// the Toom-Cook system singular.
    DuplicatePoint(String),
}

impl fmt::Display for NumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumError::DivisionByZero => write!(f, "division by zero"),
            NumError::SingularMatrix => write!(f, "matrix is singular"),
            NumError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            NumError::Parse(s) => write!(f, "cannot parse {s:?} as an exact number"),
            NumError::DuplicatePoint(p) => write!(f, "duplicate interpolation point {p}"),
        }
    }
}

impl std::error::Error for NumError {}
