//! Dense univariate polynomials over exact rationals.
//!
//! The modified Toom-Cook construction needs the master polynomial
//! `M(x) = Π (x - pᵢ)` and its single-root quotients `M(x)/(x - pᵢ)`;
//! both are computed exactly here.

use std::fmt;

use crate::error::NumError;
use crate::rational::Rational;

/// A polynomial `c₀ + c₁x + … + cₙxⁿ`, stored low-degree first and
/// normalized so the leading coefficient is non-zero (the zero
/// polynomial is the empty coefficient vector).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Poly {
    coeffs: Vec<Rational>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Poly { coeffs: Vec::new() }
    }

    /// The constant polynomial 1.
    pub fn one() -> Self {
        Poly {
            coeffs: vec![Rational::one()],
        }
    }

    /// Builds from low-degree-first coefficients, trimming leading
    /// zeros.
    pub fn from_coeffs(mut coeffs: Vec<Rational>) -> Self {
        while coeffs.last().is_some_and(Rational::is_zero) {
            coeffs.pop();
        }
        Poly { coeffs }
    }

    /// The monomial `x - a`.
    pub fn linear_root(a: &Rational) -> Self {
        Poly {
            coeffs: vec![-a, Rational::one()],
        }
    }

    /// `Π (x - pᵢ)` over the given roots.
    pub fn from_roots(roots: &[Rational]) -> Self {
        roots
            .iter()
            .fold(Poly::one(), |acc, p| acc.mul(&Poly::linear_root(p)))
    }

    /// Degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// Returns `true` for the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Coefficient of `xᵏ` (zero beyond the degree).
    pub fn coeff(&self, k: usize) -> Rational {
        self.coeffs.get(k).cloned().unwrap_or_default()
    }

    /// Low-degree-first coefficient slice.
    pub fn coeffs(&self) -> &[Rational] {
        &self.coeffs
    }

    /// Polynomial sum.
    pub fn add(&self, rhs: &Poly) -> Poly {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let mut out = Vec::with_capacity(n);
        for k in 0..n {
            out.push(&self.coeff(k) + &rhs.coeff(k));
        }
        Poly::from_coeffs(out)
    }

    /// Polynomial product.
    pub fn mul(&self, rhs: &Poly) -> Poly {
        if self.is_zero() || rhs.is_zero() {
            return Poly::zero();
        }
        let mut out = vec![Rational::zero(); self.coeffs.len() + rhs.coeffs.len() - 1];
        for (i, a) in self.coeffs.iter().enumerate() {
            if a.is_zero() {
                continue;
            }
            for (j, b) in rhs.coeffs.iter().enumerate() {
                out[i + j] += &(a * b);
            }
        }
        Poly::from_coeffs(out)
    }

    /// Scales every coefficient.
    pub fn scale(&self, f: &Rational) -> Poly {
        Poly::from_coeffs(self.coeffs.iter().map(|c| c * f).collect())
    }

    /// Evaluates at `x` via Horner's scheme.
    pub fn eval(&self, x: &Rational) -> Rational {
        let mut acc = Rational::zero();
        for c in self.coeffs.iter().rev() {
            acc = &(&acc * x) + c;
        }
        acc
    }

    /// Exact synthetic division by `(x - a)`.
    ///
    /// # Errors
    /// Returns [`NumError::DivisionByZero`] if `a` is not a root (the
    /// division leaves a remainder), since every caller in the
    /// Toom-Cook pipeline expects an exact quotient.
    pub fn div_by_root(&self, a: &Rational) -> Result<Poly, NumError> {
        if self.is_zero() {
            return Ok(Poly::zero());
        }
        let n = self.coeffs.len();
        let mut q = vec![Rational::zero(); n - 1];
        let mut carry = Rational::zero();
        for k in (0..n).rev() {
            let cur = &self.coeffs[k] + &(&carry * a);
            if k == 0 {
                if !cur.is_zero() {
                    return Err(NumError::DivisionByZero);
                }
            } else {
                q[k - 1] = cur.clone();
                carry = cur;
            }
        }
        Ok(Poly::from_coeffs(q))
    }

    /// Lagrange interpolation: the unique polynomial of degree
    /// `< points.len()` through the given `(x, y)` pairs. This is the
    /// theorem the modified Toom-Cook method rests on (§3.1.1 of the
    /// paper, after Barabasz et al.).
    ///
    /// # Errors
    /// [`NumError::DuplicatePoint`] when two abscissae coincide.
    pub fn interpolate(points: &[(Rational, Rational)]) -> Result<Poly, NumError> {
        let mut acc = Poly::zero();
        for (i, (xi, yi)) in points.iter().enumerate() {
            // Numerator Π_{j≠i} (x − xj), denominator Π_{j≠i} (xi − xj).
            let mut numer = Poly::one();
            let mut denom = Rational::one();
            for (j, (xj, _)) in points.iter().enumerate() {
                if i == j {
                    continue;
                }
                let diff = xi - xj;
                if diff.is_zero() {
                    return Err(NumError::DuplicatePoint(xi.to_string()));
                }
                numer = numer.mul(&Poly::linear_root(xj));
                denom *= &diff;
            }
            let coeff = yi / &denom;
            acc = acc.add(&numer.scale(&coeff));
        }
        Ok(acc)
    }

    /// Formal derivative.
    pub fn derivative(&self) -> Poly {
        let coeffs = self
            .coeffs
            .iter()
            .enumerate()
            .skip(1)
            .map(|(k, c)| c * &Rational::from_int(k as i64))
            .collect();
        Poly::from_coeffs(coeffs)
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        for (k, c) in self.coeffs.iter().enumerate().rev() {
            if c.is_zero() {
                continue;
            }
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            match k {
                0 => write!(f, "{c}")?,
                1 if c.is_one() => write!(f, "x")?,
                1 => write!(f, "({c})x")?,
                _ if c.is_one() => write!(f, "x^{k}")?,
                _ => write!(f, "({c})x^{k}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(a: i64, b: i64) -> Rational {
        Rational::from_frac(a, b)
    }

    #[test]
    fn from_roots_expands_correctly() {
        // (x)(x-1)(x+1) = x^3 - x
        let roots = vec![r(0, 1), r(1, 1), r(-1, 1)];
        let m = Poly::from_roots(&roots);
        assert_eq!(m.coeffs(), &[r(0, 1), r(-1, 1), r(0, 1), r(1, 1)]);
    }

    #[test]
    fn eval_horner() {
        let p = Poly::from_coeffs(vec![r(1, 1), r(2, 1), r(3, 1)]); // 1 + 2x + 3x^2
        assert_eq!(p.eval(&r(2, 1)), r(17, 1));
        assert_eq!(p.eval(&r(1, 2)), r(11, 4));
        assert_eq!(Poly::zero().eval(&r(9, 1)), Rational::zero());
    }

    #[test]
    fn roots_evaluate_to_zero() {
        let roots = vec![r(1, 2), r(-2, 1), r(2, 1)];
        let m = Poly::from_roots(&roots);
        for root in &roots {
            assert!(m.eval(root).is_zero());
        }
        assert!(!m.eval(&r(3, 1)).is_zero());
    }

    #[test]
    fn div_by_root_exact() {
        let roots = vec![r(0, 1), r(1, 1), r(-1, 1)];
        let m = Poly::from_roots(&roots);
        let q = m.div_by_root(&r(1, 1)).unwrap();
        // x^3 - x = (x-1) * (x^2 + x)
        assert_eq!(q.coeffs(), &[r(0, 1), r(1, 1), r(1, 1)]);
        assert_eq!(q.mul(&Poly::linear_root(&r(1, 1))), m);
    }

    #[test]
    fn div_by_non_root_errors() {
        let m = Poly::from_roots(&[r(1, 1)]);
        assert!(m.div_by_root(&r(2, 1)).is_err());
    }

    #[test]
    fn degree_and_trim() {
        let p = Poly::from_coeffs(vec![r(1, 1), r(0, 1), r(0, 1)]);
        assert_eq!(p.degree(), Some(0));
        assert!(Poly::zero().degree().is_none());
        assert_eq!(Poly::from_roots(&[]).degree(), Some(0));
    }

    #[test]
    fn mul_add_scale() {
        let a = Poly::from_coeffs(vec![r(1, 1), r(1, 1)]); // 1 + x
        let b = Poly::from_coeffs(vec![r(-1, 1), r(1, 1)]); // -1 + x
        let prod = a.mul(&b); // x^2 - 1
        assert_eq!(prod.coeffs(), &[r(-1, 1), r(0, 1), r(1, 1)]);
        let sum = a.add(&b); // 2x
        assert_eq!(sum.coeffs(), &[r(0, 1), r(2, 1)]);
        let scaled = a.scale(&r(1, 2));
        assert_eq!(scaled.coeffs(), &[r(1, 2), r(1, 2)]);
    }

    #[test]
    fn interpolation_recovers_polynomials() {
        // Sample 2x^2 - 3x + 1/2 at four points and recover it.
        let p = Poly::from_coeffs(vec![r(1, 2), r(-3, 1), r(2, 1)]);
        let points: Vec<(Rational, Rational)> = [r(0, 1), r(1, 1), r(-1, 1), r(2, 1)]
            .into_iter()
            .map(|x| {
                let y = p.eval(&x);
                (x, y)
            })
            .collect();
        let q = Poly::interpolate(&points).unwrap();
        assert_eq!(q, p);
    }

    #[test]
    fn interpolation_through_arbitrary_values() {
        let points = vec![(r(0, 1), r(7, 1)), (r(1, 2), r(-1, 3)), (r(-2, 1), r(5, 9))];
        let q = Poly::interpolate(&points).unwrap();
        assert!(q.degree().unwrap_or(0) <= 2);
        for (x, y) in &points {
            assert_eq!(&q.eval(x), y);
        }
    }

    #[test]
    fn interpolation_rejects_duplicate_abscissae() {
        let points = vec![(r(1, 1), r(2, 1)), (r(1, 1), r(3, 1))];
        assert!(matches!(
            Poly::interpolate(&points),
            Err(NumError::DuplicatePoint(_))
        ));
    }

    #[test]
    fn derivative() {
        let p = Poly::from_coeffs(vec![r(5, 1), r(3, 1), r(2, 1)]); // 5 + 3x + 2x^2
        assert_eq!(p.derivative().coeffs(), &[r(3, 1), r(4, 1)]);
        assert!(Poly::zero().derivative().is_zero());
    }

    #[test]
    fn display() {
        let p = Poly::from_coeffs(vec![r(0, 1), r(-1, 1), r(0, 1), r(1, 1)]);
        assert_eq!(p.to_string(), "x^3 + (-1)x");
    }
}
