//! Property-based tests for the exact-arithmetic substrate.
//!
//! These check the algebraic laws the rest of the workspace silently
//! relies on: ring axioms, Euclidean division invariants, gcd
//! correctness, matrix inverse round-trips, and polynomial identities.

use proptest::prelude::*;
use std::str::FromStr;
use wino_num::{BigInt, Poly, RatMat, Rational};

/// Arbitrary BigInt spanning several limb counts (up to ~128 bits).
fn arb_bigint() -> impl Strategy<Value = BigInt> {
    any::<i128>().prop_map(BigInt::from)
}

/// BigInt with magnitude that definitely exceeds one u32 limb.
fn arb_wide_bigint() -> impl Strategy<Value = BigInt> {
    (any::<i128>(), any::<u64>()).prop_map(|(a, b)| {
        let hi = BigInt::from(a);
        let lo = BigInt::from(b);
        &(&hi * &BigInt::from_str("18446744073709551616").unwrap()) + &lo
    })
}

fn arb_rational() -> impl Strategy<Value = Rational> {
    (any::<i64>(), 1i64..=1_000_000).prop_map(|(n, d)| Rational::from_frac(n, d))
}

/// Small rationals that keep matrix entries numerically tame.
fn arb_small_rational() -> impl Strategy<Value = Rational> {
    (-30i64..=30, 1i64..=9).prop_map(|(n, d)| Rational::from_frac(n, d))
}

proptest! {
    #[test]
    fn bigint_add_commutes(a in arb_bigint(), b in arb_bigint()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn bigint_add_associates(a in arb_bigint(), b in arb_bigint(), c in arb_bigint()) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn bigint_mul_commutes(a in arb_wide_bigint(), b in arb_wide_bigint()) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn bigint_distributes(a in arb_bigint(), b in arb_bigint(), c in arb_bigint()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn bigint_sub_is_add_neg(a in arb_bigint(), b in arb_bigint()) {
        prop_assert_eq!(&a - &b, &a + &(-&b));
    }

    #[test]
    fn bigint_divrem_invariant(a in arb_wide_bigint(), b in arb_wide_bigint()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b).unwrap();
        prop_assert_eq!(&(&q * &b) + &r, a.clone());
        prop_assert!(r.abs() < b.abs());
        // Remainder carries the dividend's sign (or is zero).
        if !r.is_zero() {
            prop_assert_eq!(r.is_negative(), a.is_negative());
        }
    }

    #[test]
    fn bigint_gcd_divides_both(a in arb_bigint(), b in arb_bigint()) {
        let g = a.gcd(&b);
        if g.is_zero() {
            prop_assert!(a.is_zero() && b.is_zero());
        } else {
            prop_assert!((&a % &g).is_zero());
            prop_assert!((&b % &g).is_zero());
        }
    }

    #[test]
    fn bigint_display_parse_round_trip(a in arb_wide_bigint()) {
        let s = a.to_string();
        prop_assert_eq!(BigInt::from_str(&s).unwrap(), a);
    }

    #[test]
    fn bigint_to_f64_tracks_i64(v in any::<i64>()) {
        prop_assert_eq!(BigInt::from(v).to_f64(), v as f64);
    }

    #[test]
    fn bigint_to_i64_round_trip(v in any::<i64>()) {
        prop_assert_eq!(BigInt::from(v).to_i64(), Some(v));
    }

    #[test]
    fn rational_field_laws(a in arb_rational(), b in arb_rational(), c in arb_rational()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn rational_recip_is_involution(a in arb_rational()) {
        prop_assume!(!a.is_zero());
        prop_assert_eq!(a.recip().unwrap().recip().unwrap(), a.clone());
        prop_assert_eq!(&a * &a.recip().unwrap(), Rational::one());
    }

    #[test]
    fn rational_sub_add_cancel(a in arb_rational(), b in arb_rational()) {
        prop_assert_eq!(&(&a - &b) + &b, a.clone());
    }

    #[test]
    fn rational_ordering_consistent_with_f64(a in arb_rational(), b in arb_rational()) {
        // f64 comparison can tie due to rounding, but must never
        // disagree strictly.
        let (fa, fb) = (a.to_f64(), b.to_f64());
        if a < b {
            prop_assert!(fa <= fb);
        } else if a > b {
            prop_assert!(fa >= fb);
        }
    }

    #[test]
    fn rational_pow_matches_repeated_mul(a in arb_small_rational(), e in 0i32..6) {
        let mut expect = Rational::one();
        for _ in 0..e {
            expect = &expect * &a;
        }
        prop_assert_eq!(a.pow(e).unwrap(), expect);
    }

    #[test]
    fn rational_parse_display_round_trip(a in arb_rational()) {
        let s = a.to_string();
        prop_assert_eq!(s.parse::<Rational>().unwrap(), a);
    }

    #[test]
    fn matrix_inverse_round_trip(vals in proptest::collection::vec(arb_small_rational(), 16)) {
        let m = RatMat::from_fn(4, 4, |i, j| vals[i * 4 + j].clone());
        if let Ok(inv) = m.inverse() {
            prop_assert_eq!(m.matmul(&inv).unwrap(), RatMat::identity(4));
            prop_assert_eq!(inv.matmul(&m).unwrap(), RatMat::identity(4));
        } else {
            prop_assert_eq!(m.determinant().unwrap(), Rational::zero());
        }
    }

    #[test]
    fn matrix_transpose_of_product(
        a in proptest::collection::vec(arb_small_rational(), 6),
        b in proptest::collection::vec(arb_small_rational(), 6),
    ) {
        let ma = RatMat::from_fn(2, 3, |i, j| a[i * 3 + j].clone());
        let mb = RatMat::from_fn(3, 2, |i, j| b[i * 2 + j].clone());
        // (AB)^T = B^T A^T
        let lhs = ma.matmul(&mb).unwrap().transpose();
        let rhs = mb.transpose().matmul(&ma.transpose()).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn determinant_multiplicative(
        a in proptest::collection::vec(arb_small_rational(), 9),
        b in proptest::collection::vec(arb_small_rational(), 9),
    ) {
        let ma = RatMat::from_fn(3, 3, |i, j| a[i * 3 + j].clone());
        let mb = RatMat::from_fn(3, 3, |i, j| b[i * 3 + j].clone());
        let dab = ma.matmul(&mb).unwrap().determinant().unwrap();
        let da = ma.determinant().unwrap();
        let db = mb.determinant().unwrap();
        prop_assert_eq!(dab, &da * &db);
    }

    #[test]
    fn poly_roots_are_roots(roots in proptest::collection::vec(arb_small_rational(), 1..6)) {
        let m = Poly::from_roots(&roots);
        prop_assert_eq!(m.degree(), Some(roots.len()));
        for root in &roots {
            prop_assert!(m.eval(root).is_zero());
        }
    }

    #[test]
    fn poly_div_by_root_inverts_mul(roots in proptest::collection::vec(arb_small_rational(), 2..6)) {
        let m = Poly::from_roots(&roots);
        let q = m.div_by_root(&roots[0]).unwrap();
        prop_assert_eq!(q.mul(&Poly::linear_root(&roots[0])), m);
    }

    #[test]
    fn interpolation_inverts_evaluation(
        coeffs in proptest::collection::vec(arb_small_rational(), 1..5),
    ) {
        // Evaluate a random polynomial at distinct points, interpolate,
        // and recover it exactly.
        let p = Poly::from_coeffs(coeffs);
        let xs: Vec<Rational> = (0..5).map(|k| Rational::from_int(k as i64 - 2)).collect();
        let pts: Vec<(Rational, Rational)> =
            xs.iter().map(|x| (x.clone(), p.eval(x))).collect();
        let q = Poly::interpolate(&pts).unwrap();
        for x in &xs {
            prop_assert_eq!(q.eval(x), p.eval(x));
        }
        // Degree < #points implies exact recovery when p is small.
        if p.degree().unwrap_or(0) < pts.len() {
            prop_assert_eq!(q, p);
        }
    }

    #[test]
    fn poly_eval_is_ring_hom(
        a in proptest::collection::vec(arb_small_rational(), 1..5),
        b in proptest::collection::vec(arb_small_rational(), 1..5),
        x in arb_small_rational(),
    ) {
        let pa = Poly::from_coeffs(a);
        let pb = Poly::from_coeffs(b);
        prop_assert_eq!(pa.add(&pb).eval(&x), &pa.eval(&x) + &pb.eval(&x));
        prop_assert_eq!(pa.mul(&pb).eval(&x), &pa.eval(&x) * &pb.eval(&x));
    }
}
