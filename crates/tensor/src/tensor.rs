//! The dense NCHW tensor type.

use std::fmt;
use std::ops::{Index, IndexMut};

use rand::distributions::uniform::SampleUniform;
use rand::Rng;

/// A dense 4-D tensor in `N × C × H × W` (row-major, `W` innermost)
/// layout — the layout Boda's CUCL kernels use (`img:chan:y:x`).
#[derive(Clone, PartialEq)]
pub struct Tensor4<T> {
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    data: Vec<T>,
}

impl<T: Copy + Default> Tensor4<T> {
    /// All-zeros (default-valued) tensor.
    pub fn zeros(n: usize, c: usize, h: usize, w: usize) -> Self {
        Tensor4 {
            n,
            c,
            h,
            w,
            data: vec![T::default(); n * c * h * w],
        }
    }

    /// Builds a tensor from a generator over `(n, c, y, x)`.
    pub fn from_fn(
        n: usize,
        c: usize,
        h: usize,
        w: usize,
        mut f: impl FnMut(usize, usize, usize, usize) -> T,
    ) -> Self {
        let mut t = Tensor4::zeros(n, c, h, w);
        for in_ in 0..n {
            for ic in 0..c {
                for y in 0..h {
                    for x in 0..w {
                        t[(in_, ic, y, x)] = f(in_, ic, y, x);
                    }
                }
            }
        }
        t
    }

    /// Batch size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Channel count.
    pub fn c(&self) -> usize {
        self.c
    }

    /// Height.
    pub fn h(&self) -> usize {
        self.h
    }

    /// Width.
    pub fn w(&self) -> usize {
        self.w
    }

    /// `(n, c, h, w)` tuple.
    pub fn dims(&self) -> (usize, usize, usize, usize) {
        (self.n, self.c, self.h, self.w)
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` for zero-element tensors.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major data.
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Mutable flat data.
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Wraps an existing flat buffer as an `N × C × H × W` tensor
    /// without copying. The buffer's spare capacity is preserved, so a
    /// slab recycled through [`Tensor4::into_raw`] round-trips with no
    /// reallocation as long as its capacity covers the new shape.
    ///
    /// # Panics
    /// When `data.len() != n * c * h * w`.
    pub fn from_raw(n: usize, c: usize, h: usize, w: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            n * c * h * w,
            "raw buffer length must equal n*c*h*w"
        );
        Tensor4 { n, c, h, w, data }
    }

    /// Consumes the tensor, returning its flat buffer (capacity
    /// intact) for reuse via [`Tensor4::from_raw`].
    pub fn into_raw(self) -> Vec<T> {
        self.data
    }

    /// Flat index of `(n, c, y, x)`.
    #[inline]
    pub fn offset(&self, n: usize, c: usize, y: usize, x: usize) -> usize {
        ((n * self.c + c) * self.h + y) * self.w + x
    }

    /// Borrow of the contiguous `(n, c)` plane (`h*w` elements).
    pub fn plane(&self, n: usize, c: usize) -> &[T] {
        let start = self.offset(n, c, 0, 0);
        &self.data[start..start + self.h * self.w]
    }

    /// Mutable borrow of the contiguous `(n, c)` plane.
    pub fn plane_mut(&mut self, n: usize, c: usize) -> &mut [T] {
        let start = self.offset(n, c, 0, 0);
        let len = self.h * self.w;
        &mut self.data[start..start + len]
    }

    /// Element-wise map into a (possibly different) scalar type.
    pub fn map<U: Copy + Default>(&self, f: impl Fn(T) -> U) -> Tensor4<U> {
        Tensor4 {
            n: self.n,
            c: self.c,
            h: self.h,
            w: self.w,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Spatially zero-pads by `pad` on every side of H and W.
    pub fn pad_spatial(&self, pad: usize) -> Tensor4<T> {
        let mut out = Tensor4::zeros(self.n, self.c, self.h + 2 * pad, self.w + 2 * pad);
        for n in 0..self.n {
            for c in 0..self.c {
                for y in 0..self.h {
                    for x in 0..self.w {
                        out[(n, c, y + pad, x + pad)] = self[(n, c, y, x)];
                    }
                }
            }
        }
        out
    }
}

impl<T: Copy + Default + SampleUniform + PartialOrd> Tensor4<T> {
    /// Fills with uniform random values in `[lo, hi)` — the paper's
    /// protocol uses the range (−1, 1).
    pub fn random(
        n: usize,
        c: usize,
        h: usize,
        w: usize,
        lo: T,
        hi: T,
        rng: &mut impl Rng,
    ) -> Self {
        let mut t = Tensor4::zeros(n, c, h, w);
        for v in t.data.iter_mut() {
            *v = rng.gen_range(lo..hi);
        }
        t
    }
}

impl Tensor4<f32> {
    /// Widens to f64 (for FP64 reference computations).
    pub fn to_f64(&self) -> Tensor4<f64> {
        self.map(|v| v as f64)
    }
}

impl Tensor4<f64> {
    /// Narrows to f32.
    pub fn to_f32(&self) -> Tensor4<f32> {
        self.map(|v| v as f32)
    }
}

impl<T> Index<(usize, usize, usize, usize)> for Tensor4<T> {
    type Output = T;
    #[inline]
    fn index(&self, (n, c, y, x): (usize, usize, usize, usize)) -> &T {
        debug_assert!(n < self.n && c < self.c && y < self.h && x < self.w);
        &self.data[((n * self.c + c) * self.h + y) * self.w + x]
    }
}

impl<T> IndexMut<(usize, usize, usize, usize)> for Tensor4<T> {
    #[inline]
    fn index_mut(&mut self, (n, c, y, x): (usize, usize, usize, usize)) -> &mut T {
        debug_assert!(n < self.n && c < self.c && y < self.h && x < self.w);
        &mut self.data[((n * self.c + c) * self.h + y) * self.w + x]
    }
}

impl<T: fmt::Debug> fmt::Debug for Tensor4<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor4<{}x{}x{}x{}>", self.n, self.c, self.h, self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn layout_is_nchw_row_major() {
        let t = Tensor4::<f32>::from_fn(2, 3, 4, 5, |n, c, y, x| {
            (n * 1000 + c * 100 + y * 10 + x) as f32
        });
        assert_eq!(t.offset(1, 2, 3, 4), ((3 + 2) * 4 + 3) * 5 + 4);
        assert_eq!(t[(1, 2, 3, 4)], 1234.0);
        assert_eq!(t.data()[t.offset(0, 1, 2, 3)], 123.0);
    }

    #[test]
    fn plane_is_contiguous() {
        let t =
            Tensor4::<f32>::from_fn(2, 2, 2, 2, |n, c, y, x| (n * 8 + c * 4 + y * 2 + x) as f32);
        assert_eq!(t.plane(1, 0), &[8.0, 9.0, 10.0, 11.0]);
    }

    #[test]
    fn pad_spatial_centers_content() {
        let t = Tensor4::<f32>::from_fn(1, 1, 2, 2, |_, _, y, x| (y * 2 + x + 1) as f32);
        let p = t.pad_spatial(1);
        assert_eq!(p.dims(), (1, 1, 4, 4));
        assert_eq!(p[(0, 0, 0, 0)], 0.0);
        assert_eq!(p[(0, 0, 1, 1)], 1.0);
        assert_eq!(p[(0, 0, 2, 2)], 4.0);
        assert_eq!(p[(0, 0, 3, 3)], 0.0);
    }

    #[test]
    fn random_respects_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Tensor4::<f32>::random(1, 2, 8, 8, -1.0, 1.0, &mut rng);
        assert!(t.data().iter().all(|&v| (-1.0..1.0).contains(&v)));
        // A 128-element uniform sample is essentially never constant.
        assert!(t.data().iter().any(|&v| v != t.data()[0]));
    }

    #[test]
    fn widen_narrow_round_trip() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = Tensor4::<f32>::random(1, 1, 4, 4, -1.0, 1.0, &mut rng);
        assert_eq!(t.to_f64().to_f32(), t);
    }

    #[test]
    fn map_changes_type() {
        let t = Tensor4::<f32>::from_fn(1, 1, 1, 3, |_, _, _, x| x as f32);
        let d = t.map(|v| (v * 2.0) as f64);
        assert_eq!(d[(0, 0, 0, 2)], 4.0);
    }
}
