//! Convolution shape descriptors and FLOP accounting.

use std::fmt;

/// Full description of one 2-D convolution operation, matching the
/// columns of Table 4 in the paper (KSZ, S, P, OC, B, in).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ConvDesc {
    /// Batch size `B`.
    pub batch: usize,
    /// Input channels `C`.
    pub in_ch: usize,
    /// Output channels `OC` (filter count `K`).
    pub out_ch: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Square kernel size `KSZ` (`r`).
    pub ksz: usize,
    /// Stride `S`.
    pub stride: usize,
    /// Symmetric zero padding `P`.
    pub pad: usize,
}

impl ConvDesc {
    /// Convenience constructor in Table-4 column order:
    /// `(ksz, stride, pad, out_ch, batch, in_h, in_w, in_ch)`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        ksz: usize,
        stride: usize,
        pad: usize,
        out_ch: usize,
        batch: usize,
        in_h: usize,
        in_w: usize,
        in_ch: usize,
    ) -> Self {
        ConvDesc {
            batch,
            in_ch,
            out_ch,
            in_h,
            in_w,
            ksz,
            stride,
            pad,
        }
    }

    /// Output height `⌊(H + 2P − KSZ)/S⌋ + 1`.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.pad - self.ksz) / self.stride + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.pad - self.ksz) / self.stride + 1
    }

    /// FLOP count (each multiply-accumulate = 2 FLOPs), the metric the
    /// paper sorts its 31 benchmark convolutions by.
    pub fn flops(&self) -> u64 {
        2 * self.batch as u64
            * self.out_ch as u64
            * self.out_h() as u64
            * self.out_w() as u64
            * self.in_ch as u64
            * (self.ksz * self.ksz) as u64
    }

    /// Returns `true` when a Winograd convolution is applicable:
    /// unit stride (tiles would not overlap consistently otherwise).
    pub fn winograd_applicable(&self) -> bool {
        self.stride == 1 && self.ksz >= 2
    }

    /// Bytes of one f32 input tensor.
    pub fn input_bytes(&self) -> u64 {
        4 * (self.batch * self.in_ch * self.in_h * self.in_w) as u64
    }

    /// Bytes of the f32 filter tensor.
    pub fn filter_bytes(&self) -> u64 {
        4 * (self.out_ch * self.in_ch * self.ksz * self.ksz) as u64
    }

    /// Bytes of the f32 output tensor.
    pub fn output_bytes(&self) -> u64 {
        4 * (self.batch * self.out_ch * self.out_h() * self.out_w()) as u64
    }
}

impl fmt::Display for ConvDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "conv{}x{} s{} p{} {}x{}x{}→{} B{}",
            self.ksz,
            self.ksz,
            self.stride,
            self.pad,
            self.in_h,
            self.in_w,
            self.in_ch,
            self.out_ch,
            self.batch
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_dims_same_padding() {
        // 3×3, stride 1, pad 1 preserves spatial dims.
        let d = ConvDesc::new(3, 1, 1, 256, 1, 14, 14, 128);
        assert_eq!(d.out_h(), 14);
        assert_eq!(d.out_w(), 14);
    }

    #[test]
    fn flops_match_table4_first_rows() {
        // Table 4 row: 1.16e+08 | 3 1 1 | 256 | 1 | 14×14×128
        let d = ConvDesc::new(3, 1, 1, 256, 1, 14, 14, 128);
        assert_eq!(d.flops(), 115_605_504); // rounds to 1.16e8
                                            // Table 4 row: 1e+08 | 5 1 2 | 32 | 5 | 28×28×16
        let d = ConvDesc::new(5, 1, 2, 32, 5, 28, 28, 16);
        assert!((d.flops() as f64 - 1.0e8).abs() / 1.0e8 < 0.01);
    }

    #[test]
    fn strided_output() {
        let d = ConvDesc::new(3, 2, 1, 8, 1, 15, 15, 4);
        assert_eq!(d.out_h(), 8);
        assert!(!d.winograd_applicable());
    }

    #[test]
    fn byte_accounting() {
        let d = ConvDesc::new(3, 1, 1, 2, 1, 4, 4, 3);
        assert_eq!(d.input_bytes(), 4 * 48);
        assert_eq!(d.filter_bytes(), 4 * 54);
        assert_eq!(d.output_bytes(), 4 * 32);
    }
}
