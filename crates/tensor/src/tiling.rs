//! Winograd tiling: overlapping input tiles and output tile placement.
//!
//! §2.1.1 of the paper: "the input is decomposed into α × α tiles with
//! the vertical and horizontal stride of α − r + 1 (= m). This stride
//! causes neighboring tiles to overlap by r − 1 elements." Tiles that
//! extend past the image border are zero-padded, which is also why
//! output dimensions not divisible by `m` cost extra work (§4.2).

use crate::tensor::Tensor4;

/// Number of tiles along H and W for an output of size `out_h × out_w`
/// with output tile size `m`: `⌈out/m⌉` per axis (the paper's
/// `P = N ⌈H/m⌉ ⌈W/m⌉` divided by N).
pub fn tile_counts(out_h: usize, out_w: usize, m: usize) -> (usize, usize) {
    (out_h.div_ceil(m), out_w.div_ceil(m))
}

/// Extracts the `α × α` input tile at tile coordinates
/// `(tile_y, tile_x)` from the (already padded) input plane of image
/// `n`, channel `c`, writing into `out` (length ≥ `α²`). Out-of-bounds
/// reads produce zeros.
#[allow(clippy::too_many_arguments)] // tile geometry is irreducibly 6-coordinate
pub fn extract_input_tile(
    input: &Tensor4<f32>,
    n: usize,
    c: usize,
    tile_y: usize,
    tile_x: usize,
    m: usize,
    alpha: usize,
    out: &mut [f32],
) {
    debug_assert!(alpha >= m, "alpha {alpha} must be >= tile stride m {m}");
    debug_assert!(
        out.len() >= alpha * alpha,
        "tile buffer too short: {} < {}",
        out.len(),
        alpha * alpha
    );
    debug_assert!(
        n < input.n() && c < input.c(),
        "plane ({n}, {c}) out of range"
    );
    let y0 = tile_y * m;
    let x0 = tile_x * m;
    let (h, w) = (input.h(), input.w());
    debug_assert!(
        tile_y * m < h + alpha && tile_x * m < w + alpha,
        "tile ({tile_y}, {tile_x}) lies entirely outside the padded input"
    );
    let plane = input.plane(n, c);
    for dy in 0..alpha {
        let y = y0 + dy;
        for dx in 0..alpha {
            let x = x0 + dx;
            out[dy * alpha + dx] = if y < h && x < w {
                plane[y * w + x]
            } else {
                0.0
            };
        }
    }
}

/// Places an `m × m` output tile at tile coordinates
/// `(tile_y, tile_x)` into the output plane of image `n`, channel `k`,
/// clipping the ragged last row/column of tiles.
pub fn place_output_tile(
    output: &mut Tensor4<f32>,
    n: usize,
    k: usize,
    tile_y: usize,
    tile_x: usize,
    m: usize,
    tile: &[f32],
) {
    debug_assert!(
        n < output.n() && k < output.c(),
        "plane ({n}, {k}) out of range"
    );
    let (h, w) = (output.h(), output.w());
    let plane = output.plane_mut(n, k);
    place_output_tile_into(plane, h, w, tile_y, tile_x, m, tile);
}

/// [`place_output_tile`] on a raw `h × w` output plane slice; the
/// building block the parallel engines use with per-task plane views.
pub fn place_output_tile_into(
    plane: &mut [f32],
    h: usize,
    w: usize,
    tile_y: usize,
    tile_x: usize,
    m: usize,
    tile: &[f32],
) {
    debug_assert!(
        plane.len() >= h * w,
        "plane too short: {} < {}",
        plane.len(),
        h * w
    );
    debug_assert!(
        tile.len() >= m * m,
        "output tile too short: {} < {}",
        tile.len(),
        m * m
    );
    debug_assert!(
        tile_y * m < h && tile_x * m < w,
        "tile ({tile_y}, {tile_x}) lies entirely outside the {h}x{w} output"
    );
    let y0 = tile_y * m;
    let x0 = tile_x * m;
    for dy in 0..m {
        let y = y0 + dy;
        if y >= h {
            break;
        }
        for dx in 0..m {
            let x = x0 + dx;
            if x >= w {
                break;
            }
            plane[y * w + x] = tile[dy * m + dx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_counts_round_up() {
        assert_eq!(tile_counts(4, 4, 2), (2, 2));
        assert_eq!(tile_counts(5, 4, 2), (3, 2));
        assert_eq!(tile_counts(14, 14, 6), (3, 3));
        assert_eq!(tile_counts(1, 1, 4), (1, 1));
    }

    #[test]
    fn extract_interior_tile() {
        // 6×6 ramp, F(2,3): α = 4, stride m = 2.
        let t = Tensor4::<f32>::from_fn(1, 1, 6, 6, |_, _, y, x| (y * 6 + x) as f32);
        let mut tile = vec![0.0f32; 16];
        extract_input_tile(&t, 0, 0, 1, 1, 2, 4, &mut tile);
        // Tile origin at (2, 2).
        assert_eq!(tile[0], 14.0);
        assert_eq!(tile[5], 21.0); // (3, 3)
        assert_eq!(tile[15], 35.0); // (5, 5)
    }

    #[test]
    fn neighbouring_tiles_overlap_by_r_minus_1() {
        let t = Tensor4::<f32>::from_fn(1, 1, 6, 6, |_, _, y, x| (y * 6 + x) as f32);
        let (m, alpha) = (2, 4);
        let mut a = vec![0.0f32; 16];
        let mut b = vec![0.0f32; 16];
        extract_input_tile(&t, 0, 0, 0, 0, m, alpha, &mut a);
        extract_input_tile(&t, 0, 0, 0, 1, m, alpha, &mut b);
        // Tile b starts at x = 2; columns 2..4 of a equal columns 0..2
        // of b: overlap of r − 1 = 2 columns.
        for y in 0..alpha {
            assert_eq!(a[y * alpha + 2], b[y * alpha]);
            assert_eq!(a[y * alpha + 3], b[y * alpha + 1]);
        }
    }

    #[test]
    fn border_tiles_are_zero_padded() {
        let t = Tensor4::<f32>::from_fn(1, 1, 5, 5, |_, _, y, x| (y * 5 + x + 1) as f32);
        let mut tile = vec![9.0f32; 16];
        extract_input_tile(&t, 0, 0, 2, 2, 2, 4, &mut tile);
        // Origin (4,4): only element (0,0) is in-bounds.
        assert_eq!(tile[0], 25.0);
        assert!(tile[1..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn place_clips_ragged_edge() {
        let mut out = Tensor4::<f32>::zeros(1, 1, 3, 3);
        let tile = vec![1.0, 2.0, 3.0, 4.0];
        place_output_tile(&mut out, 0, 0, 1, 1, 2, &tile);
        // Origin (2, 2): only (0,0) of the tile lands in-bounds.
        assert_eq!(out[(0, 0, 2, 2)], 1.0);
        assert_eq!(out.data().iter().filter(|&&v| v != 0.0).count(), 1);
    }

    #[test]
    fn extract_place_round_trip() {
        let src = Tensor4::<f32>::from_fn(1, 1, 4, 4, |_, _, y, x| (y * 4 + x) as f32);
        let mut dst = Tensor4::<f32>::zeros(1, 1, 4, 4);
        let (m, alpha) = (2, 4);
        for ty in 0..2 {
            for tx in 0..2 {
                let mut tile = vec![0.0f32; alpha * alpha];
                extract_input_tile(&src, 0, 0, ty, tx, m, alpha, &mut tile);
                // The top-left m×m of each α×α input tile is exactly
                // the data at the tile origin.
                let mtile: Vec<f32> = (0..m)
                    .flat_map(|y| (0..m).map(move |x| (y, x)))
                    .map(|(y, x)| tile[y * alpha + x])
                    .collect();
                place_output_tile(&mut dst, 0, 0, ty, tx, m, &mtile);
            }
        }
        assert_eq!(dst, src);
    }
}
