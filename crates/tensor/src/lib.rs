//! # wino-tensor — NCHW tensors for the convolution engines
//!
//! A minimal dense 4-D tensor in the `N × C × H × W` layout every
//! engine in this workspace uses, plus the tiling, padding and norm
//! helpers the Winograd pipeline needs: input tiles of size `α × α`
//! are extracted with stride `m` (neighbouring tiles overlap by
//! `r − 1` elements, §2.1.1 of the paper), and accuracy is reported
//! with the paper's L1 matrix norm.

#![warn(missing_docs)]

mod shape;
mod tensor;
mod tiling;

pub use shape::ConvDesc;
pub use tensor::Tensor4;
pub use tiling::{extract_input_tile, place_output_tile, place_output_tile_into, tile_counts};

/// The paper's L1 matrix norm — maximum absolute column sum — extended
/// to NCHW tensors by treating every `(n, c)` plane as an `H × W`
/// matrix and taking the maximum over all planes.
pub fn l1_norm_nchw(t: &Tensor4<f64>) -> f64 {
    let mut best = 0.0f64;
    for n in 0..t.n() {
        for c in 0..t.c() {
            for x in 0..t.w() {
                let mut col = 0.0;
                for y in 0..t.h() {
                    col += t[(n, c, y, x)].abs();
                }
                best = best.max(col);
            }
        }
    }
    best
}

/// Relative error `‖a − b‖₁ / ‖b‖₁` between two same-shaped tensors
/// (`b` is the reference). Returns 0 when the reference is identically
/// zero and the difference is too; +∞ when only the reference is zero.
pub fn relative_error_l1(a: &Tensor4<f64>, b: &Tensor4<f64>) -> f64 {
    assert_eq!(a.dims(), b.dims(), "relative error requires equal shapes");
    let mut diff = Tensor4::<f64>::zeros(a.n(), a.c(), a.h(), a.w());
    for i in 0..a.len() {
        diff.data_mut()[i] = a.data()[i] - b.data()[i];
    }
    let denom = l1_norm_nchw(b);
    let numer = l1_norm_nchw(&diff);
    if denom == 0.0 {
        if numer == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        numer / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_norm_single_plane() {
        let mut t = Tensor4::<f64>::zeros(1, 1, 2, 2);
        t[(0, 0, 0, 0)] = 1.0;
        t[(0, 0, 1, 0)] = -3.0;
        t[(0, 0, 0, 1)] = 2.0;
        t[(0, 0, 1, 1)] = 1.0;
        assert_eq!(l1_norm_nchw(&t), 4.0); // column 0: |1| + |−3|
    }

    #[test]
    fn l1_norm_takes_max_over_planes() {
        let mut t = Tensor4::<f64>::zeros(2, 1, 1, 1);
        t[(0, 0, 0, 0)] = 2.0;
        t[(1, 0, 0, 0)] = -7.0;
        assert_eq!(l1_norm_nchw(&t), 7.0);
    }

    #[test]
    fn relative_error_basics() {
        let mut a = Tensor4::<f64>::zeros(1, 1, 1, 2);
        let mut b = Tensor4::<f64>::zeros(1, 1, 1, 2);
        b[(0, 0, 0, 0)] = 2.0;
        b[(0, 0, 0, 1)] = 4.0;
        a[(0, 0, 0, 0)] = 2.0;
        a[(0, 0, 0, 1)] = 4.4;
        let err = relative_error_l1(&a, &b);
        assert!((err - 0.1).abs() < 1e-12);
        assert_eq!(relative_error_l1(&b, &b), 0.0);
    }

    #[test]
    fn relative_error_zero_reference() {
        let z = Tensor4::<f64>::zeros(1, 1, 1, 1);
        let mut a = Tensor4::<f64>::zeros(1, 1, 1, 1);
        assert_eq!(relative_error_l1(&a, &z), 0.0);
        a[(0, 0, 0, 0)] = 1.0;
        assert_eq!(relative_error_l1(&a, &z), f64::INFINITY);
    }
}
