//! Property tests for the tensor substrate: layout, tiling overlap,
//! padding, norm axioms, and convolution-shape arithmetic.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wino_tensor::{
    extract_input_tile, l1_norm_nchw, place_output_tile, relative_error_l1, tile_counts, ConvDesc,
    Tensor4,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Flat offsets are a bijection consistent with indexing.
    #[test]
    fn offsets_are_consistent(
        n in 1usize..3, c in 1usize..4, h in 1usize..6, w in 1usize..6,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Tensor4::<f32>::random(n, c, h, w, -1.0, 1.0, &mut rng);
        for ni in 0..n {
            for ci in 0..c {
                for y in 0..h {
                    for x in 0..w {
                        prop_assert_eq!(
                            t.data()[t.offset(ni, ci, y, x)],
                            t[(ni, ci, y, x)]
                        );
                    }
                }
            }
        }
    }

    /// Padding preserves content and pads with exact zeros.
    #[test]
    fn pad_preserves_content(
        h in 1usize..6, w in 1usize..6, pad in 0usize..4, seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Tensor4::<f32>::random(1, 2, h, w, -1.0, 1.0, &mut rng);
        let p = t.pad_spatial(pad);
        prop_assert_eq!(p.dims(), (1, 2, h + 2 * pad, w + 2 * pad));
        let mut interior_sum = 0.0f64;
        for c in 0..2 {
            for y in 0..h {
                for x in 0..w {
                    prop_assert_eq!(p[(0, c, y + pad, x + pad)], t[(0, c, y, x)]);
                    interior_sum += t[(0, c, y, x)].abs() as f64;
                }
            }
        }
        let total: f64 = p.data().iter().map(|v| v.abs() as f64).sum();
        prop_assert!((total - interior_sum).abs() < 1e-6, "padding is not zero");
    }

    /// Adjacent Winograd tiles overlap by exactly α − m elements.
    #[test]
    fn tiles_overlap_correctly(
        m in 1usize..6, r in 2usize..6, seed in any::<u64>(),
    ) {
        let alpha = m + r - 1;
        let size = alpha + 2 * m; // room for 3 tiles per axis
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Tensor4::<f32>::random(1, 1, size, size, -1.0, 1.0, &mut rng);
        let mut a = vec![0.0f32; alpha * alpha];
        let mut b = vec![0.0f32; alpha * alpha];
        extract_input_tile(&t, 0, 0, 0, 0, m, alpha, &mut a);
        extract_input_tile(&t, 0, 0, 0, 1, m, alpha, &mut b);
        let overlap = alpha - m; // = r − 1
        for y in 0..alpha {
            for k in 0..overlap {
                prop_assert_eq!(a[y * alpha + m + k], b[y * alpha + k]);
            }
        }
    }

    /// Placing tiles back covers the output exactly once (the m×m
    /// top-left of each α tile reassembles the image).
    #[test]
    fn tiling_partitions_the_image(
        m in 1usize..5, extra in 0usize..3, seed in any::<u64>(),
    ) {
        let alpha = m + 2; // arbitrary r = 3
        let size = 2 * m + extra; // possibly ragged
        prop_assume!(size >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let src = Tensor4::<f32>::random(1, 1, size, size, -1.0, 1.0, &mut rng);
        let (th, tw) = tile_counts(size, size, m);
        let mut dst = Tensor4::<f32>::zeros(1, 1, size, size);
        let mut tile = vec![0.0f32; alpha * alpha];
        for ty in 0..th {
            for tx in 0..tw {
                extract_input_tile(&src, 0, 0, ty, tx, m, alpha, &mut tile);
                let m_tile: Vec<f32> = (0..m * m)
                    .map(|i| tile[(i / m) * alpha + i % m])
                    .collect();
                place_output_tile(&mut dst, 0, 0, ty, tx, m, &m_tile);
            }
        }
        prop_assert_eq!(dst, src);
    }

    /// Norm axioms: non-negativity, homogeneity, triangle inequality.
    #[test]
    fn l1_norm_axioms(h in 1usize..5, w in 1usize..5, k in -3.0f64..3.0, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor4::<f32>::random(1, 2, h, w, -1.0, 1.0, &mut rng).to_f64();
        let b = Tensor4::<f32>::random(1, 2, h, w, -1.0, 1.0, &mut rng).to_f64();
        prop_assert!(l1_norm_nchw(&a) >= 0.0);
        let scaled = a.map(|v| v * k);
        prop_assert!((l1_norm_nchw(&scaled) - k.abs() * l1_norm_nchw(&a)).abs() < 1e-9);
        let mut sum = Tensor4::<f64>::zeros(1, 2, h, w);
        for i in 0..sum.len() {
            sum.data_mut()[i] = a.data()[i] + b.data()[i];
        }
        prop_assert!(l1_norm_nchw(&sum) <= l1_norm_nchw(&a) + l1_norm_nchw(&b) + 1e-9);
    }

    /// Relative error is zero iff tensors are equal (for non-zero
    /// references) and symmetric in scale.
    #[test]
    fn relative_error_basics(h in 1usize..5, w in 1usize..5, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor4::<f32>::random(1, 1, h, w, 0.5, 1.0, &mut rng).to_f64();
        prop_assert_eq!(relative_error_l1(&a, &a), 0.0);
        let perturbed = a.map(|v| v * 1.01);
        let err = relative_error_l1(&perturbed, &a);
        prop_assert!(err > 0.0 && err < 0.02, "err = {err}");
    }

    /// Conv output shapes are consistent with a manual sliding-window
    /// count.
    #[test]
    fn conv_shape_arithmetic(
        ih in 1usize..20, ksz in 1usize..6, stride in 1usize..4, pad in 0usize..3,
    ) {
        prop_assume!(ih + 2 * pad >= ksz);
        let d = ConvDesc::new(ksz, stride, pad, 1, 1, ih, ih, 1);
        // Count positions the window fits.
        let mut count = 0;
        let padded = ih + 2 * pad;
        let mut pos = 0;
        while pos + ksz <= padded {
            count += 1;
            pos += stride;
        }
        prop_assert_eq!(d.out_h(), count);
    }
}
