//! Telemetry-substrate tests: histogram exactness under concurrency,
//! quantile error bounds against ground truth, disabled-mode silence,
//! the gauge reset-race regression, and the flight recorder's ring
//! bound and dump format.
//!
//! Probe state is process-global, so every test serializes on one
//! mutex and starts from `reset()`. This file is its own test binary,
//! i.e. its own process: flipping telemetry here cannot race the
//! property tests in `properties.rs`.

use parking_lot::Mutex;
use proptest::prelude::*;
use serde::Value;
use wino_probe::{self as probe, flight, hist, HistogramSnapshot, Mode};

static LOCK: Mutex<()> = Mutex::new(());

/// Exact nearest-rank percentile: the `⌈q·n⌉`-th smallest value, the
/// rank convention `HistogramSnapshot::quantile` estimates.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Concurrent recording into one interned histogram loses nothing:
    /// count, sum, and max match the serial union exactly (bucket
    /// increments are single atomic adds).
    #[test]
    fn concurrent_records_merge_exactly(
        per_thread in proptest::collection::vec(
            proptest::collection::vec(0u64..1 << 40, 1..50), 1..5),
    ) {
        let _guard = LOCK.lock();
        probe::set_mode(Mode::Summary);
        probe::reset();
        let h = probe::histogram("telem.prop.merge");
        std::thread::scope(|scope| {
            for values in &per_thread {
                scope.spawn(move || {
                    for &v in values {
                        h.record(v);
                    }
                });
            }
        });
        probe::set_mode(Mode::Off);

        let all: Vec<u64> = per_thread.iter().flatten().copied().collect();
        let snap = h.snapshot();
        probe::reset();
        prop_assert_eq!(snap.count, all.len() as u64);
        prop_assert_eq!(snap.sum, all.iter().sum::<u64>());
        prop_assert_eq!(snap.max, all.iter().copied().max().unwrap_or(0));
        let mut expected = HistogramSnapshot::named("expected");
        for v in all {
            expected.observe(v);
        }
        prop_assert_eq!(snap.buckets, expected.buckets);
    }

    /// The estimated quantile always lands in the same log2 bucket as
    /// the exact nearest-rank statistic — the histogram's documented
    /// error bound — and never exceeds the exact maximum.
    #[test]
    fn quantile_within_one_bucket_of_truth(
        mut values in proptest::collection::vec(0u64..1 << 48, 1..200),
        q in 0.01f64..1.0,
    ) {
        let mut h = HistogramSnapshot::named("telem.prop.quantile");
        for &v in &values {
            h.observe(v);
        }
        values.sort_unstable();
        let truth = exact_quantile(&values, q);
        let est = h.quantile(q);
        prop_assert_eq!(
            hist::bucket_index(est), hist::bucket_index(truth),
            "q={}: est {} vs truth {}", q, est, truth
        );
        prop_assert!(est <= h.max);
    }

    /// With tracing *and* telemetry off, recording is a no-op: the
    /// histogram stays empty no matter what is thrown at it.
    #[test]
    fn disabled_mode_records_nothing(values in proptest::collection::vec(0u64..1 << 40, 1..60)) {
        let _guard = LOCK.lock();
        probe::set_mode(Mode::Off);
        probe::set_telemetry(false);
        probe::reset();
        static H: probe::Histogram = probe::Histogram::new("telem.prop.off");
        for &v in &values {
            H.record(v);
        }
        let snap = H.snapshot();
        prop_assert_eq!(snap.count, 0);
        prop_assert_eq!(snap.sum, 0);
        prop_assert_eq!(snap.max, 0);
    }
}

/// Telemetry alone (tracing off) is enough to make histograms record:
/// the serving configuration, where `WINO_METRICS` is armed but spans
/// are not being buffered.
#[test]
fn telemetry_arms_recording_without_tracing() {
    let _guard = LOCK.lock();
    probe::set_mode(Mode::Off);
    probe::reset();
    static H: probe::Histogram = probe::Histogram::new("telem.armed");
    probe::set_telemetry(true);
    H.record(100);
    H.record(200);
    probe::set_telemetry(false);
    let snap = H.snapshot();
    probe::reset();
    assert_eq!(snap.count, 2);
    assert_eq!(snap.sum, 300);
    // And no spans leaked into the trace buffers while only telemetry
    // was on.
    assert!(probe::take_events().is_empty());
}

/// Regression test for the reset race: concurrent `Gauge::set` against
/// `reset()` must never leave `current > peak`, which the old partial
/// reset (clearing peak while another thread stored current) allowed.
#[test]
fn gauge_reset_race_keeps_current_below_peak() {
    let _guard = LOCK.lock();
    probe::set_mode(Mode::Summary);
    probe::reset();
    static G: probe::Gauge = probe::Gauge::new("telem.reset_race");
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..2 {
            scope.spawn(|| {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    G.set(7);
                }
            });
        }
        for _ in 0..200 {
            probe::reset();
            let (current, peak) = (G.get(), G.peak());
            assert!(
                current <= peak,
                "reset exposed current={current} > peak={peak}"
            );
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });
    probe::set_mode(Mode::Off);
    probe::reset();
}

/// The flight ring keeps at most `RING_CAP` events per thread,
/// overwriting the oldest, and a dump is valid JSON carrying the
/// schema, the reason, and the retained events.
#[test]
fn flight_ring_is_bounded_and_dump_parses() {
    let _guard = LOCK.lock();
    probe::set_mode(Mode::Off);
    probe::reset();
    flight::set_enabled(true);
    for _ in 0..flight::RING_CAP + 50 {
        drop(probe::span("telem.flight.spin"));
    }
    drop(probe::span("telem.flight.last"));
    let events = flight::snapshot();
    assert!(
        events.len() <= flight::RING_CAP,
        "ring exceeded cap: {}",
        events.len()
    );
    assert!(!events.is_empty());

    let dir = std::env::temp_dir().join(format!("wino_flight_test_{}", std::process::id()));
    let path = flight::dump_incident_to(dir.to_str().unwrap(), "unit test: demotion?!")
        .expect("armed recorder dumps");
    let text = std::fs::read_to_string(&path).expect("dump readable");
    let root: Value = serde_json::from_str(&text).expect("dump parses");
    assert_eq!(root.get("schema"), Some(&Value::Str(flight::SCHEMA.into())));
    assert_eq!(
        root.get("reason"),
        Some(&Value::Str("unit test: demotion?!".into()))
    );
    let Some(Value::Array(dumped)) = root.get("events") else {
        panic!("events array missing");
    };
    assert_eq!(dumped.len(), events.len());
    assert!(
        text.contains("telem.flight.last"),
        "most recent span survives in the dump"
    );
    // The filename slug keeps only safe characters.
    let name = path.file_name().unwrap().to_str().unwrap();
    assert!(name.starts_with("flight-") && name.ends_with("-unit-test--demotion--.json"));

    flight::set_enabled(false);
    let _ = std::fs::remove_dir_all(&dir);
    probe::reset();
    assert!(
        flight::dump_incident_to("/nonexistent", "disarmed").is_none(),
        "disarmed recorder must not dump"
    );
}

/// Disarmed flight recorder feeds nothing: spinning spans with the
/// recorder off leaves the snapshot empty.
#[test]
fn flight_disarmed_records_nothing() {
    let _guard = LOCK.lock();
    probe::set_mode(Mode::Off);
    probe::reset();
    flight::set_enabled(false);
    for _ in 0..32 {
        drop(probe::span("telem.flight.silent"));
    }
    assert!(flight::snapshot().is_empty());
}
