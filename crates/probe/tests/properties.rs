//! Property tests for wino-probe: the chrome exporter must emit
//! well-formed, properly bracketed traces no matter how
//! `parallel_for` interleaves span-recording workers, counters must
//! sum exactly across threads, and disabled mode must record nothing.
//!
//! Probe state is process-global, so every test serializes on one
//! mutex and starts from `reset()`.

use parking_lot::Mutex;
use proptest::prelude::*;
use serde::Value;
use wino_probe::{self as probe, Mode, SpanEvent};
use wino_runtime::Runtime;

static LOCK: Mutex<()> = Mutex::new(());

/// Spawns `tasks` probe-recording tasks on a `threads`-lane runtime;
/// each task opens a nested span pair and bumps a shared counter by
/// its index weight.
fn run_workload(threads: usize, tasks: usize, counter_name: &str) {
    let rt = Runtime::with_threads(threads);
    let handle = probe::counter(counter_name);
    rt.parallel_for(0..tasks, |i| {
        let mut outer = probe::span("prop.task");
        outer.arg("index", || i.to_string());
        {
            let _inner = probe::span("prop.task.inner");
            handle.add(i as u64 + 1);
        }
    });
}

/// Checks per-thread proper bracketing: on one thread, any two spans
/// either nest (by depth and interval containment) or are disjoint.
fn assert_bracketed(events: &[SpanEvent]) -> Result<(), String> {
    let mut tids: Vec<usize> = events.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        let thread_events: Vec<&SpanEvent> = events.iter().filter(|e| e.tid == tid).collect();
        for a in &thread_events {
            for b in &thread_events {
                if std::ptr::eq(*a, *b) {
                    continue;
                }
                let disjoint = a.end_ns() <= b.start_ns || b.end_ns() <= a.start_ns;
                let a_in_b = b.start_ns <= a.start_ns && a.end_ns() <= b.end_ns();
                let b_in_a = a.start_ns <= b.start_ns && b.end_ns() <= a.end_ns();
                if !(disjoint || a_in_b || b_in_a) {
                    return Err(format!(
                        "spans overlap without nesting on tid {tid}: \
                         {}@[{},{}] vs {}@[{},{}]",
                        a.name,
                        a.start_ns,
                        a.end_ns(),
                        b.name,
                        b.start_ns,
                        b.end_ns()
                    ));
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Under arbitrary thread counts and task counts, the recorded
    /// spans are complete (two per task), bracketed per thread, and
    /// the chrome trace they render parses back as JSON with
    /// non-negative monotonically usable timestamps.
    #[test]
    fn chrome_trace_well_formed(threads in 1usize..5, tasks in 1usize..40) {
        let _guard = LOCK.lock();
        probe::set_mode(Mode::Summary);
        probe::reset();
        run_workload(threads, tasks, "prop.counter.wf");
        probe::set_mode(Mode::Off);

        let data = probe::collect();
        prop_assert_eq!(data.events.len(), tasks * 2);
        prop_assert!(assert_bracketed(&data.events).is_ok(),
            "{}", assert_bracketed(&data.events).unwrap_err());
        // take_events sorts by start time.
        for pair in data.events.windows(2) {
            prop_assert!(pair[0].start_ns <= pair[1].start_ns);
        }

        let json = data.chrome_trace().to_json();
        let value: Value = serde_json::from_str(&json)
            .map_err(|e| TestCaseError::fail(format!("trace must parse: {e:?}")))?;
        let Some(Value::Array(trace_events)) = value.get("traceEvents") else {
            return Err(TestCaseError::fail("traceEvents missing"));
        };
        let mut span_events = 0usize;
        for ev in trace_events {
            let ph = ev.get("ph");
            if ph == Some(&Value::Str("X".into())) {
                span_events += 1;
                let ts = match ev.get("ts") {
                    Some(Value::Float(f)) => *f,
                    Some(Value::UInt(u)) => *u as f64,
                    Some(Value::Int(i)) => *i as f64,
                    other => return Err(TestCaseError::fail(format!("bad ts: {other:?}"))),
                };
                let dur = match ev.get("dur") {
                    Some(Value::Float(f)) => *f,
                    Some(Value::UInt(u)) => *u as f64,
                    Some(Value::Int(i)) => *i as f64,
                    other => return Err(TestCaseError::fail(format!("bad dur: {other:?}"))),
                };
                prop_assert!(ts >= 0.0 && dur >= 0.0, "ts/dur must be non-negative");
            }
        }
        prop_assert_eq!(span_events, tasks * 2);
    }

    /// A counter bumped from every worker ends up with exactly the
    /// serial sum, regardless of interleaving.
    #[test]
    fn counters_sum_across_threads(threads in 1usize..5, tasks in 1usize..60) {
        let _guard = LOCK.lock();
        probe::set_mode(Mode::Summary);
        probe::reset();
        run_workload(threads, tasks, "prop.counter.sum");
        probe::set_mode(Mode::Off);
        let expected: u64 = (1..=tasks as u64).sum();
        let value = probe::counter_values()
            .into_iter()
            .find(|(name, _)| name == "prop.counter.sum")
            .map(|(_, v)| v);
        probe::reset();
        prop_assert_eq!(value, Some(expected));
    }

    /// With the probe off, the identical workload records no spans
    /// and moves no counters.
    #[test]
    fn disabled_mode_emits_nothing(threads in 1usize..5, tasks in 1usize..40) {
        let _guard = LOCK.lock();
        probe::set_mode(Mode::Off);
        probe::reset();
        run_workload(threads, tasks, "prop.counter.off");
        let data = probe::collect();
        prop_assert!(data.events.is_empty(), "disabled mode must record no spans");
        for (name, value) in &data.counters {
            prop_assert_eq!(*value, 0u64, "counter {} moved while disabled", name);
        }
    }
}
