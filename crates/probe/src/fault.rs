//! Deterministic fault injection (`WINO_FAULT`).
//!
//! The guard layer (`wino-guard`) promises that every recovery path —
//! tuner quarantine, guardrail demotion, cache rebuild — actually
//! fires. Proving that requires *causing* the faults on demand, at the
//! exact sites where real failures originate: the transform output of
//! a tile, the GEMM kernel, the body of a tuner candidate, cache
//! deserialization, and — one layer up — the serve executor,
//! scheduler, and response-delivery paths. This module is that
//! facility.
//!
//! It lives in `wino-probe` (the instrumentation substrate every crate
//! already depends on) rather than in `wino-guard` itself, because the
//! injection *hooks* sit in low-level crates (`wino-conv`,
//! `wino-gemm`, `wino-tuner`) that the guard crate builds on top of —
//! hooks at the bottom, policy at the top. `wino-guard` re-exports
//! this module as its public fault API.
//!
//! ## Determinism contract
//!
//! Nothing here reads a clock or a random source. A fault spec is
//! `site:trigger[:n]`; without `:n` the fault fires on **every** check
//! of the site, with `:n` it fires exactly once, on the `n`-th check
//! (1-based, counted by a per-site atomic). Two runs with the same
//! spec and workload inject at identical points.
//!
//! ## Overhead contract
//!
//! When no fault is armed, every hook reduces to one relaxed atomic
//! load and a branch ([`armed`]), exactly like the probe's span and
//! counter gates — hot loops pay nothing else.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::MutexGuard;

use parking_lot::Mutex;

/// Injection sites — the places real failures originate: four in the
/// engine stack and three in the serving layer above it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Site {
    /// Output of a Winograd tile transform (`TileTransformer`).
    Transform,
    /// The blocked SGEMM kernel (covers plain, batched, im2col use).
    Gemm,
    /// Body of one tuner candidate evaluation.
    TunerCandidate,
    /// Tuning-cache deserialization.
    CacheDeser,
    /// Serve executor, checked once per dequeued batch (a `Panic`
    /// kills the executor thread — the supervisor-respawn drill).
    ServeExec,
    /// Serve scheduler loop (a `Panic` kills the scheduler; a `Stall`
    /// delays dispatch while the queue backs up).
    ServeSched,
    /// Serve response delivery (a `Drop` discards the response so the
    /// waiter sees a closed channel; a `Panic` unwinds mid-send).
    ServeResp,
}

/// All sites, for matrix-style iteration in tests and CI.
pub const SITES: [Site; 7] = [
    Site::Transform,
    Site::Gemm,
    Site::TunerCandidate,
    Site::CacheDeser,
    Site::ServeExec,
    Site::ServeSched,
    Site::ServeResp,
];

impl Site {
    fn bit(self) -> u8 {
        match self {
            Site::Transform => 1,
            Site::Gemm => 2,
            Site::TunerCandidate => 4,
            Site::CacheDeser => 8,
            Site::ServeExec => 16,
            Site::ServeSched => 32,
            Site::ServeResp => 64,
        }
    }

    fn index(self) -> usize {
        match self {
            Site::Transform => 0,
            Site::Gemm => 1,
            Site::TunerCandidate => 2,
            Site::CacheDeser => 3,
            Site::ServeExec => 4,
            Site::ServeSched => 5,
            Site::ServeResp => 6,
        }
    }

    /// Spec-string name of the site.
    pub fn as_str(self) -> &'static str {
        match self {
            Site::Transform => "transform",
            Site::Gemm => "gemm",
            Site::TunerCandidate => "tuner",
            Site::CacheDeser => "cache",
            Site::ServeExec => "serve_exec",
            Site::ServeSched => "serve_sched",
            Site::ServeResp => "serve_resp",
        }
    }

    fn parse(s: &str) -> Option<Site> {
        Some(match s {
            "transform" => Site::Transform,
            "gemm" => Site::Gemm,
            "tuner" => Site::TunerCandidate,
            "cache" => Site::CacheDeser,
            "serve_exec" => Site::ServeExec,
            "serve_sched" => Site::ServeSched,
            "serve_resp" => Site::ServeResp,
            _ => return None,
        })
    }
}

impl std::fmt::Display for Site {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What an armed fault does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trigger {
    /// Panic at the site (`panic!` with a recognizable message).
    Panic,
    /// Poison a float output with NaN.
    Nan,
    /// Poison a float output with +∞.
    Inf,
    /// Mark the enclosing sandbox's watchdog as expired (no sleeping —
    /// virtual time only, so tests stay wall-clock free).
    Timeout,
    /// Corrupt serialized bytes before deserialization.
    Corrupt,
    /// Delay the site by a short, bounded sleep. The firing decision
    /// stays clock-free (the sleep happens at the hook site, after the
    /// decision), so runs with the same spec still inject at identical
    /// points.
    Stall,
    /// Discard the value the site was about to deliver (serve response
    /// delivery — the waiter observes a closed channel, never a hang).
    Drop,
}

impl Trigger {
    /// Spec-string name of the trigger.
    pub fn as_str(self) -> &'static str {
        match self {
            Trigger::Panic => "panic",
            Trigger::Nan => "nan",
            Trigger::Inf => "inf",
            Trigger::Timeout => "timeout",
            Trigger::Corrupt => "corrupt",
            Trigger::Stall => "stall",
            Trigger::Drop => "drop",
        }
    }

    fn parse(s: &str) -> Option<Trigger> {
        Some(match s {
            "panic" => Trigger::Panic,
            "nan" => Trigger::Nan,
            "inf" => Trigger::Inf,
            "timeout" => Trigger::Timeout,
            "corrupt" => Trigger::Corrupt,
            "stall" => Trigger::Stall,
            "drop" => Trigger::Drop,
            _ => return None,
        })
    }
}

impl std::fmt::Display for Trigger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A parsed fault specification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// Where to inject.
    pub site: Site,
    /// What to do there.
    pub trigger: Trigger,
    /// `None`: fire on every check. `Some(n)`: fire exactly once, on
    /// the n-th check of the site (1-based).
    pub nth: Option<u64>,
}

impl FaultSpec {
    /// Parses `site:trigger[:n]` (e.g. `transform:nan`,
    /// `tuner:panic:3`).
    pub fn parse(spec: &str) -> Result<FaultSpec, String> {
        let mut parts = spec.trim().split(':');
        let site = parts.next().and_then(Site::parse).ok_or_else(|| {
            format!(
                "unknown fault site in {spec:?} (expected \
                 transform|gemm|tuner|cache|serve_exec|serve_sched|serve_resp)"
            )
        })?;
        let trigger = parts.next().and_then(Trigger::parse).ok_or_else(|| {
            format!(
                "unknown fault trigger in {spec:?} (expected \
                 panic|nan|inf|timeout|corrupt|stall|drop)"
            )
        })?;
        let nth =
            match parts.next() {
                None => None,
                Some(n) => Some(n.parse::<u64>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                    format!("fault count in {spec:?} must be a positive integer")
                })?),
            };
        if parts.next().is_some() {
            return Err(format!("trailing fields in fault spec {spec:?}"));
        }
        Ok(FaultSpec { site, trigger, nth })
    }
}

impl std::fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.nth {
            Some(n) => write!(f, "{}:{}:{n}", self.site, self.trigger),
            None => write!(f, "{}:{}", self.site, self.trigger),
        }
    }
}

/// Bitmask of armed sites — the single word every hook branches on.
static ARMED: AtomicU8 = AtomicU8::new(0);
/// The armed spec's trigger + nth, readable without a lock once armed.
static TRIGGER: AtomicU8 = AtomicU8::new(0);
static NTH: AtomicU64 = AtomicU64::new(0);
/// Per-site check counters (indexed by `Site::index`).
static HITS: [AtomicU64; 7] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];
/// Set when a `Timeout` trigger fires; consumed by the sandbox.
static TIMEOUT_PENDING: AtomicBool = AtomicBool::new(false);

/// Serializes tests that arm faults (global process state).
static SCOPE_LOCK: Mutex<()> = Mutex::new(());

fn trigger_code(t: Trigger) -> u8 {
    match t {
        Trigger::Panic => 1,
        Trigger::Nan => 2,
        Trigger::Inf => 3,
        Trigger::Timeout => 4,
        Trigger::Corrupt => 5,
        Trigger::Stall => 6,
        Trigger::Drop => 7,
    }
}

fn trigger_from_code(code: u8) -> Trigger {
    match code {
        1 => Trigger::Panic,
        2 => Trigger::Nan,
        3 => Trigger::Inf,
        4 => Trigger::Timeout,
        5 => Trigger::Corrupt,
        6 => Trigger::Stall,
        _ => Trigger::Drop,
    }
}

/// `true` when a fault is armed at `site`. The disabled path is one
/// relaxed load and a branch — the same cost class as [`crate::enabled`].
#[inline(always)]
pub fn armed(site: Site) -> bool {
    ARMED.load(Ordering::Relaxed) & site.bit() != 0
}

/// Arms `spec` (replacing any armed fault) or disarms everything with
/// `None`. Hit counters and any pending injected timeout are reset.
pub fn set_fault(spec: Option<FaultSpec>) {
    // Disarm first so hooks never observe a half-written spec.
    ARMED.store(0, Ordering::SeqCst);
    for hit in &HITS {
        hit.store(0, Ordering::SeqCst);
    }
    TIMEOUT_PENDING.store(false, Ordering::SeqCst);
    if let Some(spec) = spec {
        TRIGGER.store(trigger_code(spec.trigger), Ordering::SeqCst);
        NTH.store(spec.nth.unwrap_or(0), Ordering::SeqCst);
        ARMED.store(spec.site.bit(), Ordering::SeqCst);
    }
}

/// Parses `WINO_FAULT` and arms it. Unset or empty disarms; malformed
/// specs warn through [`crate::diag`] and disarm.
pub fn init_from_env() -> Option<FaultSpec> {
    init_from_value(&std::env::var("WINO_FAULT").unwrap_or_default())
}

/// Resolves one `WINO_FAULT` value and arms it — the whole contract
/// behind [`init_from_env`], factored out so tests can drive the
/// fall-back paths without touching process environment. Empty or
/// `off` disarms silently; a malformed spec warns through
/// [`crate::diag`] and disarms explicitly (never a silent ignore).
pub fn init_from_value(raw: &str) -> Option<FaultSpec> {
    let value = raw.trim();
    if value.is_empty() || value == "off" {
        set_fault(None);
        return None;
    }
    match FaultSpec::parse(value) {
        Ok(spec) => {
            set_fault(Some(spec));
            Some(spec)
        }
        Err(msg) => {
            crate::diag(format!("ignoring WINO_FAULT: {msg}"));
            set_fault(None);
            None
        }
    }
}

/// Cold half of a hook: counts the check and decides whether the armed
/// fault fires here. Call only after [`armed`] returned `true`.
#[cold]
pub fn fire(site: Site) -> Option<Trigger> {
    if !armed(site) {
        return None;
    }
    let hit = HITS[site.index()].fetch_add(1, Ordering::Relaxed) + 1;
    let nth = NTH.load(Ordering::Relaxed);
    if nth != 0 && hit != nth {
        return None;
    }
    let trigger = trigger_from_code(TRIGGER.load(Ordering::Relaxed));
    crate::counter(&format!("fault.injected.{site}")).add(1);
    if trigger == Trigger::Timeout {
        TIMEOUT_PENDING.store(true, Ordering::SeqCst);
    }
    Some(trigger)
}

/// Float-output hook: poisons `out` (NaN/Inf triggers) or panics
/// (Panic trigger). Other triggers are ignored at float sites. The
/// not-armed path is [`armed`]'s single load.
#[inline]
pub fn inject_f32(site: Site, out: &mut [f32]) {
    if !armed(site) {
        return;
    }
    inject_f32_slow(site, out);
}

#[cold]
fn inject_f32_slow(site: Site, out: &mut [f32]) {
    match fire(site) {
        Some(Trigger::Panic) => panic!("wino-fault: injected panic at {site}"),
        Some(Trigger::Nan) => {
            if let Some(v) = out.first_mut() {
                *v = f32::NAN;
            }
        }
        Some(Trigger::Inf) => {
            if let Some(v) = out.first_mut() {
                *v = f32::INFINITY;
            }
        }
        _ => {}
    }
}

/// Byte-stream hook for deserialization sites: corrupts `bytes`
/// (Corrupt trigger flips the middle byte) or panics. Returns `true`
/// when a corruption was applied.
pub fn inject_bytes(site: Site, bytes: &mut [u8]) -> bool {
    if !armed(site) {
        return false;
    }
    match fire(site) {
        Some(Trigger::Panic) => panic!("wino-fault: injected panic at {site}"),
        Some(Trigger::Corrupt) => {
            if bytes.is_empty() {
                return false;
            }
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x5a;
            true
        }
        _ => false,
    }
}

/// Consumes the pending injected-timeout flag (set by a `Timeout`
/// trigger). Sandboxes call this to decide the outcome without ever
/// sleeping or reading a clock in tests.
pub fn take_injected_timeout() -> bool {
    TIMEOUT_PENDING.swap(false, Ordering::SeqCst)
}

/// RAII guard arming `spec` for the duration of a test, serialized on
/// a process-wide lock so concurrent tests never observe each other's
/// faults. Disarms on drop.
pub struct ScopedFault {
    _lock: MutexGuard<'static, ()>,
}

/// Arms `spec` (parse errors panic — test-only API) and returns the
/// scope guard. Pass an empty string to hold the serialization lock
/// with no fault armed (for baseline halves of fault tests).
pub fn scoped(spec: &str) -> ScopedFault {
    let lock = SCOPE_LOCK.lock();
    let parsed = if spec.trim().is_empty() {
        None
    } else {
        Some(FaultSpec::parse(spec).expect("valid fault spec"))
    };
    set_fault(parsed);
    ScopedFault { _lock: lock }
}

impl Drop for ScopedFault {
    fn drop(&mut self) {
        set_fault(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parsing() {
        assert_eq!(
            FaultSpec::parse("transform:nan").unwrap(),
            FaultSpec {
                site: Site::Transform,
                trigger: Trigger::Nan,
                nth: None
            }
        );
        assert_eq!(
            FaultSpec::parse("tuner:panic:3").unwrap(),
            FaultSpec {
                site: Site::TunerCandidate,
                trigger: Trigger::Panic,
                nth: Some(3)
            }
        );
        assert!(FaultSpec::parse("quantum:nan").is_err());
        assert!(FaultSpec::parse("gemm:melt").is_err());
        assert!(FaultSpec::parse("gemm:nan:0").is_err());
        assert!(FaultSpec::parse("gemm:nan:2:junk").is_err());
        let spec = FaultSpec::parse("cache:corrupt").unwrap();
        assert_eq!(spec.to_string(), "cache:corrupt");
    }

    #[test]
    fn serve_sites_parse_and_round_trip() {
        for (name, site) in [
            ("serve_exec", Site::ServeExec),
            ("serve_sched", Site::ServeSched),
            ("serve_resp", Site::ServeResp),
        ] {
            let spec = FaultSpec::parse(&format!("{name}:panic:2")).unwrap();
            assert_eq!(spec.site, site);
            assert_eq!(spec.to_string(), format!("{name}:panic:2"));
        }
        for (name, trigger) in [("stall", Trigger::Stall), ("drop", Trigger::Drop)] {
            let spec = FaultSpec::parse(&format!("serve_sched:{name}")).unwrap();
            assert_eq!(spec.trigger, trigger);
            assert_eq!(spec.to_string(), format!("serve_sched:{name}"));
        }
        // Every site in the matrix survives a spec round-trip, so the
        // CI matrix and this enum can never silently diverge.
        for site in SITES {
            let spec = FaultSpec::parse(&format!("{site}:panic")).unwrap();
            assert_eq!(spec.site, site);
        }
    }

    #[test]
    fn serve_sites_fire_independently() {
        let _scope = scoped("serve_exec:drop:2");
        assert_eq!(fire(Site::ServeExec), None);
        assert_eq!(fire(Site::ServeSched), None, "other serve sites inert");
        assert_eq!(fire(Site::ServeExec), Some(Trigger::Drop));
        assert_eq!(fire(Site::ServeExec), None, "nth fires exactly once");
    }

    #[test]
    fn malformed_env_value_diags_and_disarms() {
        // This test drains the process-global diagnostics buffer, so
        // it serializes with the lib tests that use it too.
        let _diag_lock = crate::TEST_LOCK.lock();
        // Arm something first so the test proves malformed input
        // *disarms* rather than leaving a stale fault live.
        let _scope = scoped("transform:nan");
        assert!(armed(Site::Transform));
        assert_eq!(init_from_value("quantum:flux"), None);
        assert!(!armed(Site::Transform), "malformed spec must disarm");
        let diags = crate::take_diagnostics();
        assert!(
            diags
                .iter()
                .any(|d| d.contains("ignoring WINO_FAULT") && d.contains("quantum")),
            "missing malformed-value diagnostic: {diags:?}"
        );
        // Well-formed values and the off switch stay silent.
        assert!(init_from_value("gemm:nan:2").is_some());
        assert_eq!(init_from_value("off"), None);
        assert_eq!(init_from_value("  "), None);
        assert!(
            !crate::take_diagnostics()
                .iter()
                .any(|d| d.contains("WINO_FAULT")),
            "valid values must not warn"
        );
    }

    #[test]
    fn disarmed_is_inert() {
        let _scope = scoped("");
        assert!(!armed(Site::Transform));
        let mut out = [1.0f32; 4];
        inject_f32(Site::Transform, &mut out);
        assert_eq!(out, [1.0; 4]);
        assert!(!take_injected_timeout());
    }

    #[test]
    fn every_call_nan_poisons_each_time() {
        let _scope = scoped("transform:nan");
        for _ in 0..3 {
            let mut out = [1.0f32; 4];
            inject_f32(Site::Transform, &mut out);
            assert!(out[0].is_nan());
        }
        // Other sites stay clean.
        let mut out = [1.0f32; 4];
        inject_f32(Site::Gemm, &mut out);
        assert_eq!(out, [1.0; 4]);
    }

    #[test]
    fn nth_fires_exactly_once() {
        let _scope = scoped("gemm:inf:2");
        let mut hits = 0;
        for _ in 0..5 {
            let mut out = [0.0f32; 1];
            inject_f32(Site::Gemm, &mut out);
            if out[0].is_infinite() {
                hits += 1;
            }
        }
        assert_eq!(hits, 1);
    }

    #[test]
    fn timeout_sets_pending_flag_once() {
        let _scope = scoped("tuner:timeout:1");
        assert_eq!(fire(Site::TunerCandidate), Some(Trigger::Timeout));
        assert!(take_injected_timeout());
        assert!(!take_injected_timeout());
        assert_eq!(fire(Site::TunerCandidate), None);
    }

    #[test]
    fn corrupt_flips_a_byte() {
        let _scope = scoped("cache:corrupt");
        let mut bytes = b"hello world".to_vec();
        assert!(inject_bytes(Site::CacheDeser, &mut bytes));
        assert_ne!(bytes, b"hello world");
    }

    #[test]
    #[should_panic(expected = "injected panic at transform")]
    fn panic_trigger_panics() {
        let _scope = scoped("transform:panic");
        let mut out = [0.0f32; 1];
        inject_f32(Site::Transform, &mut out);
    }
}
