//! Fixed log2-bucketed, lock-free latency histograms.
//!
//! A [`Histogram`] is the third probe primitive next to [`Counter`]
//! and [`Gauge`](crate::Gauge): a set of 65 atomic bucket counters
//! (bucket 0 holds exact zeros, bucket `i ≥ 1` holds values in
//! `[2^(i-1), 2^i)`), plus an exact count, sum, and maximum. Recording
//! is wait-free — one bucket `fetch_add`, plus the count/sum adds and
//! a `fetch_max` — so any number of threads can record into the same
//! histogram concurrently and the merged totals are exact.
//!
//! Quantiles are *estimated* from the bucket counts: the reported
//! value is the upper edge of the bucket containing the nearest-rank
//! order statistic, so every estimate is within one bucket boundary of
//! the true sorted-array quantile (for a true quantile `t > 0` the
//! estimate `e` satisfies `t ≤ e < 2·t`). The maximum is exact.
//!
//! Like every probe primitive, the disabled path is a relaxed atomic
//! load and a branch: with tracing *and* telemetry off,
//! [`Histogram::record`] neither allocates nor interns.
//!
//! [`Counter`]: crate::Counter

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use crate::{registry, stats_enabled};

/// Number of buckets: one for exact zero plus one per power of two.
pub const BUCKETS: usize = 65;

/// Bucket index of `v`: 0 for `v == 0`, else `64 - leading_zeros(v)`
/// (so bucket `i` covers `[2^(i-1), 2^i)`).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive lower edge of bucket `i`.
pub fn bucket_lower(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Inclusive upper edge of bucket `i` (the value quantile estimation
/// reports for ranks landing in the bucket).
pub fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Atomic backing storage of one histogram.
pub(crate) struct HistCell {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistCell {
    pub(crate) fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        HistCell {
            buckets: [ZERO; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub(crate) fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    fn snapshot(&self, name: &str) -> HistogramSnapshot {
        HistogramSnapshot {
            name: name.to_string(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A named histogram usable from `static` context, mirroring
/// [`Counter`](crate::Counter)'s intern-on-first-use discipline.
pub struct Histogram {
    name: &'static str,
    cell: OnceLock<&'static HistCell>,
}

impl Histogram {
    /// A histogram handle for `name` (usable in a `static`).
    pub const fn new(name: &'static str) -> Self {
        Histogram {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Records one observation when tracing or telemetry is enabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if !stats_enabled() {
            return;
        }
        self.slot().record(v);
    }

    /// Records a [`Duration`] in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        if !stats_enabled() {
            return;
        }
        self.slot().record(saturating_ns(d));
    }

    /// Starts a timer that records the elapsed nanoseconds on drop.
    /// Disabled probes return an inert timer without reading the
    /// clock.
    #[inline]
    pub fn start(&self) -> HistTimer<'_> {
        if !stats_enabled() {
            return HistTimer { inner: None };
        }
        HistTimer {
            inner: Some((self, Instant::now())),
        }
    }

    /// Current snapshot of this histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.slot().snapshot(self.name)
    }

    fn slot(&self) -> &'static HistCell {
        self.cell.get_or_init(|| intern_hist(self.name))
    }
}

/// RAII timer from [`Histogram::start`].
pub struct HistTimer<'a> {
    inner: Option<(&'a Histogram, Instant)>,
}

impl Drop for HistTimer<'_> {
    fn drop(&mut self) {
        if let Some((hist, start)) = self.inner.take() {
            hist.record_duration(start.elapsed());
        }
    }
}

fn duration_to_ns(d: Duration) -> u128 {
    d.as_nanos()
}

fn saturating_ns(d: Duration) -> u64 {
    u64::try_from(duration_to_ns(d)).unwrap_or(u64::MAX)
}

/// Interns `name`, returning its process-wide histogram cell (same
/// idempotent-aliasing contract as counter interning).
fn intern_hist(name: &'static str) -> &'static HistCell {
    let mut hists = registry().hists.lock();
    if let Some((_, cell)) = hists.iter().find(|(n, _)| *n == name) {
        return cell;
    }
    let cell: &'static HistCell = Box::leak(Box::new(HistCell::new()));
    hists.push((name, cell));
    cell
}

/// Interns a dynamically-built histogram name and returns a recording
/// handle (the histogram analogue of [`crate::counter`]).
pub fn histogram(name: &str) -> HistogramHandle {
    let mut hists = registry().hists.lock();
    if let Some((n, cell)) = hists.iter().find(|(n, _)| *n == name) {
        return HistogramHandle { name: n, cell };
    }
    let name: &'static str = Box::leak(name.to_string().into_boxed_str());
    let cell: &'static HistCell = Box::leak(Box::new(HistCell::new()));
    hists.push((name, cell));
    HistogramHandle { name, cell }
}

/// A histogram handle for a runtime-constructed name.
#[derive(Clone, Copy)]
pub struct HistogramHandle {
    name: &'static str,
    cell: &'static HistCell,
}

impl HistogramHandle {
    /// Records one observation when tracing or telemetry is enabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if !stats_enabled() {
            return;
        }
        self.cell.record(v);
    }

    /// Current snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.cell.snapshot(self.name)
    }
}

/// Snapshot of every registered histogram, sorted by name. Histograms
/// that never recorded (only interned) report `count == 0`.
pub fn hist_values() -> Vec<HistogramSnapshot> {
    let mut values: Vec<HistogramSnapshot> = registry()
        .hists
        .lock()
        .iter()
        .map(|(name, cell)| cell.snapshot(name))
        .collect();
    values.sort_by(|a, b| a.name.cmp(&b.name));
    values
}

/// An owned, mergeable histogram state: what exporters and tests work
/// with, and also usable standalone as a single-threaded accumulator
/// (see [`HistogramSnapshot::observe`]).
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Histogram name.
    pub name: String,
    /// Per-bucket observation counts (`BUCKETS` entries).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Exact maximum observed value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot (a local accumulator for code that wants
    /// histogram quantiles without touching the global registry).
    pub fn named(name: impl Into<String>) -> Self {
        HistogramSnapshot {
            name: name.into(),
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Adds one observation to this owned snapshot.
    pub fn observe(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Merges another snapshot into this one (bucket-wise sums; the
    /// result is exactly the histogram of the union of observations).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Estimated `q`-quantile (0 < q ≤ 1) by nearest rank: the upper
    /// edge of the bucket containing the `⌈q·count⌉`-th smallest
    /// observation. Within one bucket boundary of the true sorted
    /// quantile; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= rank {
                // Never report past the exact maximum.
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_consistent() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for v in [0u64, 1, 2, 3, 7, 8, 1023, 1024, u64::MAX] {
            let i = bucket_index(v);
            assert!(bucket_lower(i) <= v && v <= bucket_upper(i), "v={v} i={i}");
        }
    }

    #[test]
    fn owned_snapshot_quantiles_track_sorted_ranks() {
        let mut h = HistogramSnapshot::named("t");
        let values = [3u64, 10, 10, 90, 1000, 1001, 5000, 5000, 65000, 70000];
        for v in values {
            h.observe(v);
        }
        assert_eq!(h.count, 10);
        assert_eq!(h.max, 70000);
        let mut sorted = values;
        sorted.sort_unstable();
        for q in [0.5f64, 0.9, 0.99, 1.0] {
            let rank = ((q * 10.0).ceil() as usize).clamp(1, 10) - 1;
            let truth = sorted[rank];
            let est = h.quantile(q);
            assert_eq!(
                bucket_index(est),
                bucket_index(truth),
                "q={q}: est {est} vs truth {truth}"
            );
        }
    }

    #[test]
    fn merge_is_union() {
        let mut a = HistogramSnapshot::named("m");
        let mut b = HistogramSnapshot::named("m");
        a.observe(5);
        a.observe(7);
        b.observe(100);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.sum, 112);
        assert_eq!(a.max, 100);
    }
}
