//! Exporters: a chrome://tracing-compatible JSON trace and a
//! plain-text summary table (count / total / mean / p50 / p95 per span
//! name), both rendered from one drained [`TraceData`] snapshot.

use crate::hist::HistogramSnapshot;
use crate::{take_events, thread_names, SpanEvent};
use serde::Value;

/// Everything one export pass needs: the drained span events plus a
/// counter snapshot. Grab it once via [`collect`] and render either
/// (or both) formats from it.
#[derive(Clone, Debug)]
pub struct TraceData {
    /// Finished spans, sorted by start time.
    pub events: Vec<SpanEvent>,
    /// `(name, value)` counter snapshot, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, current, peak)` gauge snapshot, sorted by name.
    pub gauges: Vec<(String, i64, i64)>,
    /// Histogram snapshots, sorted by name.
    pub hists: Vec<HistogramSnapshot>,
    /// `(tid, thread name)` pairs for chrome metadata events.
    pub threads: Vec<(usize, String)>,
}

/// Drains all recorded spans and snapshots every counter, gauge, and
/// histogram. Draining is destructive for spans (buffers empty
/// afterwards); counters, gauges, and histograms keep their values.
pub fn collect() -> TraceData {
    TraceData {
        events: take_events(),
        counters: crate::counter_values(),
        gauges: crate::gauge_values(),
        hists: crate::hist_values(),
        threads: thread_names(),
    }
}

impl TraceData {
    /// Aggregates spans by name into summary statistics.
    pub fn summary(&self) -> Summary {
        let mut rows: Vec<SummaryRow> = Vec::new();
        for event in &self.events {
            match rows.iter_mut().find(|r| r.name == event.name) {
                Some(row) => row.samples_ns.push(event.dur_ns),
                None => rows.push(SummaryRow {
                    name: event.name.to_string(),
                    samples_ns: vec![event.dur_ns],
                }),
            }
        }
        for row in &mut rows {
            row.samples_ns.sort_unstable();
        }
        rows.sort_by_key(|row| std::cmp::Reverse(row.total_ns()));
        Summary {
            rows,
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            hists: self.hists.clone(),
        }
    }

    /// Renders the chrome://tracing JSON object. Spans become complete
    /// (`"ph": "X"`) events with microsecond timestamps; counters
    /// become one `"ph": "C"` sample each at the trace end, so
    /// chrome://tracing and Perfetto both load the file directly.
    pub fn chrome_trace(&self) -> ChromeTrace {
        let mut trace_events: Vec<Value> = Vec::new();
        for (tid, name) in &self.threads {
            trace_events.push(Value::Object(vec![
                ("name".into(), Value::Str("thread_name".into())),
                ("ph".into(), Value::Str("M".into())),
                ("pid".into(), Value::UInt(1)),
                ("tid".into(), Value::UInt(*tid as u64)),
                (
                    "args".into(),
                    Value::Object(vec![("name".into(), Value::Str(name.clone()))]),
                ),
            ]));
        }
        let mut end_us = 0.0f64;
        for event in &self.events {
            let ts = event.start_ns as f64 / 1000.0;
            let dur = event.dur_ns as f64 / 1000.0;
            end_us = end_us.max(ts + dur);
            let mut obj = vec![
                ("name".into(), Value::Str(event.name.to_string())),
                ("cat".into(), Value::Str("wino".into())),
                ("ph".into(), Value::Str("X".into())),
                ("ts".into(), Value::Float(ts)),
                ("dur".into(), Value::Float(dur)),
                ("pid".into(), Value::UInt(1)),
                ("tid".into(), Value::UInt(event.tid as u64)),
            ];
            if !event.args.is_empty() {
                obj.push((
                    "args".into(),
                    Value::Object(
                        event
                            .args
                            .iter()
                            .map(|(k, v)| (k.to_string(), Value::Str(v.clone())))
                            .collect(),
                    ),
                ));
            }
            trace_events.push(Value::Object(obj));
        }
        for (name, value) in &self.counters {
            trace_events.push(Value::Object(vec![
                ("name".into(), Value::Str(name.clone())),
                ("cat".into(), Value::Str("wino".into())),
                ("ph".into(), Value::Str("C".into())),
                ("ts".into(), Value::Float(end_us)),
                ("pid".into(), Value::UInt(1)),
                ("tid".into(), Value::UInt(0)),
                (
                    "args".into(),
                    Value::Object(vec![("value".into(), Value::UInt(*value))]),
                ),
            ]));
        }
        for (name, current, peak) in &self.gauges {
            trace_events.push(Value::Object(vec![
                ("name".into(), Value::Str(name.clone())),
                ("cat".into(), Value::Str("wino".into())),
                ("ph".into(), Value::Str("C".into())),
                ("ts".into(), Value::Float(end_us)),
                ("pid".into(), Value::UInt(1)),
                ("tid".into(), Value::UInt(0)),
                (
                    "args".into(),
                    Value::Object(vec![
                        ("value".into(), Value::Int(*current)),
                        ("peak".into(), Value::Int(*peak)),
                    ]),
                ),
            ]));
        }
        for h in &self.hists {
            trace_events.push(Value::Object(vec![
                ("name".into(), Value::Str(h.name.clone())),
                ("cat".into(), Value::Str("wino".into())),
                ("ph".into(), Value::Str("C".into())),
                ("ts".into(), Value::Float(end_us)),
                ("pid".into(), Value::UInt(1)),
                ("tid".into(), Value::UInt(0)),
                (
                    "args".into(),
                    Value::Object(vec![
                        ("count".into(), Value::UInt(h.count)),
                        ("p50_ns".into(), Value::UInt(h.quantile(0.50))),
                        ("p99_ns".into(), Value::UInt(h.quantile(0.99))),
                        ("max_ns".into(), Value::UInt(h.max)),
                    ]),
                ),
            ]));
        }
        ChromeTrace {
            root: Value::Object(vec![
                ("traceEvents".into(), Value::Array(trace_events)),
                ("displayTimeUnit".into(), Value::Str("ms".into())),
            ]),
        }
    }
}

/// A rendered-on-demand chrome://tracing document.
pub struct ChromeTrace {
    root: Value,
}

impl ChromeTrace {
    /// The JSON text (pretty-printed; chrome://tracing accepts both).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.root).expect("trace values are always finite")
    }

    /// The underlying value tree (test hook).
    pub fn value(&self) -> &Value {
        &self.root
    }
}

/// Per-span-name aggregate statistics.
#[derive(Clone, Debug)]
pub struct SummaryRow {
    /// Span name.
    pub name: String,
    /// Sorted durations (ns) of every recorded span with this name.
    pub samples_ns: Vec<u64>,
}

impl SummaryRow {
    /// Number of spans recorded under this name.
    pub fn count(&self) -> usize {
        self.samples_ns.len()
    }

    /// Summed duration in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.samples_ns.iter().sum()
    }

    /// Mean duration in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.total_ns() as f64 / self.count().max(1) as f64 / 1e6
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) duration in milliseconds, by the
    /// nearest-rank method.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        if self.samples_ns.is_empty() {
            return 0.0;
        }
        let rank = ((q * self.samples_ns.len() as f64).ceil() as usize)
            .clamp(1, self.samples_ns.len())
            - 1;
        self.samples_ns[rank] as f64 / 1e6
    }
}

/// The plain-text summary artifact: one row per span name plus the
/// counter snapshot.
#[derive(Clone, Debug)]
pub struct Summary {
    /// Rows sorted by total time, descending.
    pub rows: Vec<SummaryRow>,
    /// `(name, value)` counter snapshot.
    pub counters: Vec<(String, u64)>,
    /// `(name, current, peak)` gauge snapshot.
    pub gauges: Vec<(String, i64, i64)>,
    /// Histogram snapshots, sorted by name.
    pub hists: Vec<HistogramSnapshot>,
}

impl Summary {
    /// Renders the fixed-width table (spans, then counters).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let headers = ["span", "count", "total ms", "mean ms", "p50 ms", "p95 ms"];
        let mut table: Vec<[String; 6]> = vec![headers.map(String::from)];
        for row in &self.rows {
            table.push([
                row.name.clone(),
                row.count().to_string(),
                format!("{:.3}", row.total_ns() as f64 / 1e6),
                format!("{:.4}", row.mean_ms()),
                format!("{:.4}", row.quantile_ms(0.50)),
                format!("{:.4}", row.quantile_ms(0.95)),
            ]);
        }
        let mut widths = [0usize; 6];
        for row in &table {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        for (i, row) in table.iter().enumerate() {
            for (col, (cell, w)) in row.iter().zip(widths).enumerate() {
                if col > 0 {
                    out.push_str("  ");
                }
                if col == 0 {
                    out.push_str(&format!("{cell:<w$}"));
                } else {
                    out.push_str(&format!("{cell:>w$}"));
                }
            }
            out.push('\n');
            if i == 0 {
                let total = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
                out.push_str(&"-".repeat(total));
                out.push('\n');
            }
        }
        let live: Vec<_> = self.counters.iter().filter(|(_, v)| *v > 0).collect();
        if !live.is_empty() {
            out.push_str("\ncounters:\n");
            let w = live.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
            for (name, value) in live {
                out.push_str(&format!("  {name:<w$}  {value}\n"));
            }
        }
        let live: Vec<_> = self
            .gauges
            .iter()
            .filter(|(_, current, peak)| *current != 0 || *peak != 0)
            .collect();
        if !live.is_empty() {
            out.push_str("\ngauges:\n");
            let w = live.iter().map(|(n, _, _)| n.len()).max().unwrap_or(0);
            for (name, current, peak) in live {
                out.push_str(&format!("  {name:<w$}  {current} (peak {peak})\n"));
            }
        }
        let live: Vec<_> = self.hists.iter().filter(|h| h.count > 0).collect();
        if !live.is_empty() {
            out.push_str("\nhistograms:\n");
            let w = live.iter().map(|h| h.name.len()).max().unwrap_or(0);
            for h in live {
                out.push_str(&format!(
                    "  {:<w$}  count={} p50={} p90={} p99={} max={}\n",
                    h.name,
                    h.count,
                    h.quantile(0.50),
                    h.quantile(0.90),
                    h.quantile(0.99),
                    h.max,
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(name: &'static str, tid: usize, start: u64, dur: u64) -> SpanEvent {
        SpanEvent {
            name,
            tid,
            start_ns: start,
            dur_ns: dur,
            depth: 0,
            args: Vec::new(),
        }
    }

    fn sample_data() -> TraceData {
        let mut lat = HistogramSnapshot::named("lat");
        lat.observe(1_000);
        lat.observe(3_000);
        TraceData {
            events: vec![
                event("a", 0, 0, 4_000_000),
                event("b", 0, 500_000, 1_000_000),
                event("a", 1, 2_000_000, 2_000_000),
            ],
            counters: vec![("hits".into(), 7), ("zeros".into(), 0)],
            gauges: vec![("depth".into(), 2, 5), ("idle".into(), 0, 0)],
            hists: vec![lat, HistogramSnapshot::named("empty")],
            threads: vec![(0, "main".into()), (1, "wino-worker-0".into())],
        }
    }

    #[test]
    fn summary_aggregates_by_name() {
        let s = sample_data().summary();
        assert_eq!(s.rows.len(), 2);
        assert_eq!(s.rows[0].name, "a"); // 6ms total sorts first
        assert_eq!(s.rows[0].count(), 2);
        assert!((s.rows[0].mean_ms() - 3.0).abs() < 1e-9);
        assert!((s.rows[0].quantile_ms(0.5) - 2.0).abs() < 1e-9);
        assert!((s.rows[0].quantile_ms(0.95) - 4.0).abs() < 1e-9);
        let text = s.render();
        assert!(text.contains("hits"));
        assert!(!text.contains("zeros"), "zero counters are elided");
        assert!(text.contains("depth"));
        assert!(text.contains("(peak 5)"));
        assert!(!text.contains("idle"), "all-zero gauges are elided");
        assert!(text.contains("histograms:"));
        assert!(text.contains("lat"));
        assert!(text.contains("count=2"));
        assert!(!text.contains("empty"), "never-recorded hists are elided");
    }

    #[test]
    fn chrome_trace_round_trips_through_json() {
        let json = sample_data().chrome_trace().to_json();
        let value: Value = serde_json::from_str(&json).unwrap();
        let Some(Value::Array(events)) = value.get("traceEvents") else {
            panic!("traceEvents must be an array");
        };
        // 2 thread_name metadata + 3 spans + 2 counters + 2 gauges
        // + 2 histograms.
        assert_eq!(events.len(), 11);
        let span_count = events
            .iter()
            .filter(|e| e.get("ph") == Some(&Value::Str("X".into())))
            .count();
        assert_eq!(span_count, 3);
        let counter_count = events
            .iter()
            .filter(|e| e.get("ph") == Some(&Value::Str("C".into())))
            .count();
        assert_eq!(
            counter_count, 6,
            "2 counters + 2 gauges + 2 hists as C events"
        );
    }

    #[test]
    fn quantiles_of_single_sample() {
        let row = SummaryRow {
            name: "x".into(),
            samples_ns: vec![1_000_000],
        };
        assert!((row.quantile_ms(0.5) - 1.0).abs() < 1e-9);
        assert!((row.quantile_ms(0.95) - 1.0).abs() < 1e-9);
    }
}
