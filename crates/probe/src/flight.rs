//! Flight recorder: a bounded per-thread ring of recent probe events,
//! dumped to a timestamped JSON file when something goes wrong.
//!
//! The guard layer can tell you *that* it demoted (the
//! `guard.demote.*` counters), but not *what the process was doing*
//! in the moments before. The flight recorder keeps the last
//! [`RING_CAP`] span completions, diagnostics, and counter deltas per
//! thread, so an incident handler ([`dump_incident`]) can write the
//! recent-history context alongside the demotion.
//!
//! Gating follows the house rule: one relaxed [`AtomicBool`] checked
//! before anything else happens. Disarmed (the default), every feed
//! point is a relaxed load and a branch; tests and the existing
//! drill/serve counter contracts see no new events. `wino-telemetry`
//! arms the recorder when `WINO_METRICS` is active.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

use serde::Value;

use crate::{diag, local_buf, now_ns, registry, Counter};

/// Events retained per thread; older events are overwritten in ring
/// order. 256 spans of context has covered every drill incident so
/// far while keeping the per-thread footprint under ~20 KiB.
pub const RING_CAP: usize = 256;

/// File-format identifier written into every dump.
pub const SCHEMA: &str = "wino-flight/v1";

static ENABLED: AtomicBool = AtomicBool::new(false);
static DUMP_SEQ: AtomicU64 = AtomicU64::new(0);
static DUMPS: Counter = Counter::new("flight.dumps");

/// `true` when the flight recorder is armed.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Arms or disarms the recorder (normally done by
/// `wino-telemetry::init_from_env`, directly callable from tests).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// One recorded moment of recent history.
#[derive(Clone, Debug)]
pub enum FlightEvent {
    /// A finished span.
    Span {
        /// End timestamp, nanoseconds since the probe epoch.
        ts_ns: u64,
        /// Dense id of the recording thread.
        tid: usize,
        /// Span name.
        name: &'static str,
        /// Span duration in nanoseconds.
        dur_ns: u64,
    },
    /// A diagnostics line.
    Diag {
        /// Timestamp, nanoseconds since the probe epoch.
        ts_ns: u64,
        /// Dense id of the recording thread.
        tid: usize,
        /// The message.
        msg: String,
    },
    /// A counter increment.
    Count {
        /// Timestamp, nanoseconds since the probe epoch.
        ts_ns: u64,
        /// Dense id of the recording thread.
        tid: usize,
        /// Counter name.
        name: &'static str,
        /// Amount added.
        delta: u64,
    },
}

impl FlightEvent {
    fn ts_ns(&self) -> u64 {
        match self {
            FlightEvent::Span { ts_ns, .. }
            | FlightEvent::Diag { ts_ns, .. }
            | FlightEvent::Count { ts_ns, .. } => *ts_ns,
        }
    }

    fn to_value(&self) -> Value {
        match self {
            FlightEvent::Span {
                ts_ns,
                tid,
                name,
                dur_ns,
            } => Value::Object(vec![
                ("kind".into(), Value::Str("span".into())),
                ("ts_ns".into(), Value::UInt(*ts_ns)),
                ("tid".into(), Value::UInt(*tid as u64)),
                ("name".into(), Value::Str((*name).into())),
                ("dur_ns".into(), Value::UInt(*dur_ns)),
            ]),
            FlightEvent::Diag { ts_ns, tid, msg } => Value::Object(vec![
                ("kind".into(), Value::Str("diag".into())),
                ("ts_ns".into(), Value::UInt(*ts_ns)),
                ("tid".into(), Value::UInt(*tid as u64)),
                ("msg".into(), Value::Str(msg.clone())),
            ]),
            FlightEvent::Count {
                ts_ns,
                tid,
                name,
                delta,
            } => Value::Object(vec![
                ("kind".into(), Value::Str("count".into())),
                ("ts_ns".into(), Value::UInt(*ts_ns)),
                ("tid".into(), Value::UInt(*tid as u64)),
                ("name".into(), Value::Str((*name).into())),
                ("delta".into(), Value::UInt(*delta)),
            ]),
        }
    }
}

/// Fixed-capacity overwrite-oldest event ring (one per thread, inside
/// the thread's buffer, so pushes never contend across threads).
pub(crate) struct Ring {
    slots: Vec<FlightEvent>,
    next: usize,
}

impl Ring {
    pub(crate) fn new() -> Self {
        Ring {
            slots: Vec::new(),
            next: 0,
        }
    }

    pub(crate) fn push(&mut self, ev: FlightEvent) {
        if self.slots.len() < RING_CAP {
            self.slots.push(ev);
        } else {
            self.slots[self.next] = ev;
            self.next = (self.next + 1) % RING_CAP;
        }
    }

    pub(crate) fn clear(&mut self) {
        self.slots.clear();
        self.next = 0;
    }

    fn events_in_order(&self) -> Vec<FlightEvent> {
        let mut out = Vec::with_capacity(self.slots.len());
        out.extend_from_slice(&self.slots[self.next..]);
        out.extend_from_slice(&self.slots[..self.next]);
        out
    }
}

/// Feed point for span completions (called from `SpanGuard::drop`).
#[inline]
pub(crate) fn note_span(name: &'static str, end_ns: u64, dur_ns: u64) {
    if !enabled() {
        return;
    }
    local_buf(|buf| {
        buf.ring.lock().push(FlightEvent::Span {
            ts_ns: end_ns,
            tid: buf.tid,
            name,
            dur_ns,
        });
    });
}

/// Feed point for diagnostics lines (called from [`crate::diag`]).
#[inline]
pub(crate) fn note_diag(msg: &str) {
    if !enabled() {
        return;
    }
    local_buf(|buf| {
        buf.ring.lock().push(FlightEvent::Diag {
            ts_ns: now_ns(),
            tid: buf.tid,
            msg: msg.to_string(),
        });
    });
}

/// Feed point for counter increments.
#[inline]
pub(crate) fn note_count(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    local_buf(|buf| {
        buf.ring.lock().push(FlightEvent::Count {
            ts_ns: now_ns(),
            tid: buf.tid,
            name,
            delta,
        });
    });
}

/// Merged snapshot of every thread's ring, oldest first. The rings
/// keep recording while the snapshot is taken; each per-thread ring is
/// internally consistent, the merge is only as ordered as the
/// timestamps.
pub fn snapshot() -> Vec<FlightEvent> {
    let buffers: Vec<_> = registry().buffers.lock().clone();
    let mut events: Vec<FlightEvent> = Vec::new();
    for buf in buffers {
        events.extend(buf.ring.lock().events_in_order());
    }
    events.sort_by_key(|e| e.ts_ns());
    events
}

/// Clears every thread's ring (test isolation; [`crate::reset`] calls
/// this too).
pub(crate) fn clear_all() {
    for buf in registry().buffers.lock().iter() {
        buf.ring.lock().clear();
    }
}

fn slugify(reason: &str) -> String {
    let mut slug: String = reason
        .chars()
        .map(|c| {
            let c = c.to_ascii_lowercase();
            if c.is_ascii_alphanumeric() {
                c
            } else {
                '-'
            }
        })
        .collect();
    slug.truncate(48);
    if slug.is_empty() {
        slug.push_str("incident");
    }
    slug
}

/// Dumps the current snapshot to `WINO_FLIGHT_DIR` (default
/// `results/flight`) when the recorder is armed. Returns the dump path
/// on success; disarmed recorders and I/O failures (after a [`diag`])
/// return `None` — an incident dump must never take the serving path
/// down with it.
pub fn dump_incident(reason: &str) -> Option<PathBuf> {
    if !enabled() {
        return None;
    }
    let dir = std::env::var("WINO_FLIGHT_DIR").unwrap_or_else(|_| "results/flight".to_string());
    dump_incident_to(&dir, reason)
}

/// [`dump_incident`] with an explicit directory (test hook; still
/// gated on the recorder being armed).
pub fn dump_incident_to(dir: &str, reason: &str) -> Option<PathBuf> {
    if !enabled() {
        return None;
    }
    let events = snapshot();
    let unix_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let root = Value::Object(vec![
        ("schema".into(), Value::Str(SCHEMA.into())),
        ("reason".into(), Value::Str(reason.to_string())),
        ("dumped_at_unix_ms".into(), Value::UInt(unix_ms)),
        ("event_count".into(), Value::UInt(events.len() as u64)),
        (
            "events".into(),
            Value::Array(events.iter().map(FlightEvent::to_value).collect()),
        ),
    ]);
    let seq = DUMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let file = format!(
        "flight-{}-p{}-{}-{}.json",
        unix_ms / 1000,
        std::process::id(),
        seq,
        slugify(reason)
    );
    let path = PathBuf::from(dir).join(file);
    if let Err(e) = std::fs::create_dir_all(dir) {
        diag(format!("flight dump skipped: create {dir:?} failed: {e}"));
        return None;
    }
    let json = serde_json::to_string_pretty(&root).expect("flight values are always finite");
    if let Err(e) = std::fs::write(&path, json) {
        diag(format!("flight dump skipped: write {path:?} failed: {e}"));
        return None;
    }
    DUMPS.add(1);
    diag(format!(
        "flight recorder dumped {} events to {} (reason: {reason})",
        events.len(),
        path.display()
    ));
    Some(path)
}
